#include "src/repair/repair.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/core/report_json.h"
#include "src/inject/injector.h"
#include "src/lang/parser.h"
#include "src/lang/rewrite.h"
#include "src/storm/profile.h"
#include "src/testing/coverage.h"
#include "src/testing/runner.h"

namespace wasabi {

namespace {

// The verdict classes the repair loop diffs. HOW and IF verdicts are
// deliberately excluded: they carry no structural prescription a template
// could apply, and the shed-on-overload template legitimately changes K=1
// behavior (a shed request fails the test's assertion instead of crashing),
// which would read as a HOW regression when it is the intended fix — the
// healthy corpus Gateway exhibits exactly the same artifact.
bool InRepairUniverse(BugType type) {
  switch (type) {
    case BugType::kWhenMissingCap:
    case BugType::kWhenMissingDelay:
    case BugType::kStormMissingJitter:
    case BugType::kStormUnboundedFanout:
    case BugType::kStormRetryOnOverload:
      return true;
    default:
      return false;
  }
}

// One pipeline pass: campaign + collated static WHEN + storm oracles, plus an
// uninjected run of the whole suite (the validator's clean-suite signal).
struct PipelineRun {
  DynamicResult dyn;
  std::vector<BugReport> confirmed;          // Universe, deduped, sorted.
  std::set<std::string> keys;                // MatchKeys of `confirmed`.
  std::map<std::string, TestStatus> clean;   // Test -> uninjected outcome.
};

std::map<std::string, TestStatus> RunCleanSuite(const mj::Program& program,
                                                const mj::ProgramIndex& index,
                                                const WasabiOptions& options) {
  RunnerOptions runner_options;
  runner_options.interp = options.interp;
  runner_options.config_overrides = options.default_configs;
  TestRunner runner(program, index, runner_options);
  std::map<std::string, TestStatus> outcomes;
  for (const TestCase& test : runner.DiscoverTests()) {
    outcomes[test.qualified_name] = runner.RunTest(test).outcome.status;
  }
  return outcomes;
}

PipelineRun RunPipelineOnce(const mj::Program& program, const mj::ProgramIndex& index,
                            const WasabiOptions& options, const StormOptions& storm_options) {
  PipelineRun run;
  Wasabi wasabi(program, index, options);
  run.dyn = wasabi.RunDynamicWorkflow();
  StaticResult static_result = wasabi.RunStaticWorkflow();
  std::vector<BugReport> collated =
      CollateStaticWithDynamic(static_result.when_bugs, run.dyn);

  // Dynamic evidence first, then surviving static reports, then storm
  // oracles; the first report of a MatchKey keeps its detail line.
  std::vector<BugReport> candidates = run.dyn.bugs;
  candidates.insert(candidates.end(), collated.begin(), collated.end());
  std::vector<EdgeRetryProfile> profiles = ExtractRetryProfiles(program, index, options.jobs);
  if (!profiles.empty()) {
    StormReport storm = RunStormSim(options.app_name, profiles, storm_options, nullptr);
    candidates.insert(candidates.end(), storm.bugs.begin(), storm.bugs.end());
  }
  for (const BugReport& report : candidates) {
    if (!InRepairUniverse(report.type)) {
      continue;
    }
    if (run.keys.insert(report.MatchKey()).second) {
      run.confirmed.push_back(report);
    }
  }
  std::sort(run.confirmed.begin(), run.confirmed.end(),
            [](const BugReport& a, const BugReport& b) {
              if (a.file != b.file) {
                return a.file < b.file;
              }
              if (a.coordinator != b.coordinator) {
                return a.coordinator < b.coordinator;
              }
              return std::string(BugTypeName(a.type)) < BugTypeName(b.type);
            });
  run.clean = RunCleanSuite(program, index, options);
  return run;
}

// Validation re-campaigns run the caller's pipeline configuration but never
// its observability sinks or record directory: those describe the repair run
// itself, not the nested what-if campaigns. The cache pointer is kept — the
// whole point is that validation re-runs only the digest-invalidated slice.
WasabiOptions SanitizeForValidation(WasabiOptions options) {
  options.tracer = nullptr;
  options.metrics = nullptr;
  options.progress = nullptr;
  options.journal = nullptr;
  options.record_dir.clear();
  return options;
}

const mj::CompilationUnit* FindUnitByFile(const mj::Program& program, const std::string& file) {
  for (const std::unique_ptr<mj::CompilationUnit>& unit : program.units()) {
    if (unit->file().name() == file) {
      return unit.get();
    }
  }
  return nullptr;
}

bool SplitQualified(const std::string& qualified, std::string* cls, std::string* method) {
  size_t dot = qualified.rfind('.');
  if (dot == std::string::npos || dot == 0 || dot + 1 == qualified.size()) {
    return false;
  }
  *cls = qualified.substr(0, dot);
  *method = qualified.substr(dot + 1);
  return true;
}

// The sibling a wrong-location patch lands in: the first other method with a
// body on the same class (deterministic in declaration order). Falls back to
// the target itself — the scaffolding decl is harmless there too.
std::string PickSiblingMethod(const mj::ProgramIndex& index, const std::string& cls_name,
                              const std::string& method_name) {
  const mj::ClassDecl* cls = index.FindClass(cls_name);
  if (cls == nullptr) {
    return method_name;
  }
  for (const mj::MethodDecl* method : cls->methods) {
    if (method != nullptr && method->body != nullptr && method->name != method_name) {
      return method->name;
    }
  }
  return method_name;
}

bool BuildPatchedProgram(const mj::Program& base, const std::string& patched_file,
                         const std::string& patched_source, mj::Program* out,
                         std::string* error) {
  for (const std::unique_ptr<mj::CompilationUnit>& unit : base.units()) {
    const std::string& name = unit->file().name();
    std::string text =
        name == patched_file ? patched_source : std::string(unit->file().text());
    mj::DiagnosticEngine diag;
    std::unique_ptr<mj::CompilationUnit> parsed = mj::ParseSource(name, std::move(text), diag);
    if (parsed == nullptr || diag.has_errors()) {
      *error = "patched program failed to parse at " + name;
      return false;
    }
    out->AddUnit(std::move(parsed));
  }
  return true;
}

// Replays the baseline's covering test with one injected fault at every retry
// location of `coordinator` (K=1, the HOW configuration). A correct repair
// keeps absorbing a single transient fault; a cap-too-low patch does not.
// One K=1 resilience probe: a single injection point plus the first test (in
// coverage-map order, so deterministic) that covers its location. Probes are
// planned PER FAULT, never bundled: a coordinator may absorb one exception
// class and correctly propagate another (a hedged broadcast retries
// unavailability but not exhaustion), so a combined run would fail even on
// the pristine program and mute the signal for the fault the retry does
// absorb.
struct SingleFaultProbe {
  std::string test;
  InjectionPoint point;
};

std::vector<SingleFaultProbe> PlanSingleFaultProbes(const DynamicResult& baseline,
                                                    const std::string& coordinator) {
  std::vector<SingleFaultProbe> probes;
  std::set<std::string> point_keys;
  for (size_t i = 0; i < baseline.locations.size(); ++i) {
    const RetryLocation& location = baseline.locations[i];
    if (location.coordinator != coordinator) {
      continue;
    }
    InjectionPoint point;
    point.callee = location.retried_method;
    point.caller = location.coordinator;
    point.exception = location.exception_name;
    point.max_injections = kInjectOnce;
    if (!point_keys.insert(point.Key()).second) {
      continue;
    }
    for (const auto& [test, covered] : baseline.coverage) {  // std::map: ordered.
      if (std::find(covered.begin(), covered.end(), i) != covered.end()) {
        probes.push_back(SingleFaultProbe{test, point});
        break;
      }
    }
  }
  return probes;
}

TestStatus RunSingleFaultProbe(const mj::Program& program, const mj::ProgramIndex& index,
                               const WasabiOptions& options, const SingleFaultProbe& probe) {
  RunnerOptions runner_options;
  runner_options.interp = options.interp;
  runner_options.config_overrides = options.default_configs;
  TestRunner runner(program, index, runner_options);
  FaultInjector injector({probe.point});
  return runner.RunTest(TestCase{probe.test}, {&injector}).outcome.status;
}

std::string JoinSorted(const std::vector<std::string>& items) {
  std::string joined;
  for (const std::string& item : items) {
    if (!joined.empty()) {
      joined += ", ";
    }
    joined += item;
  }
  return joined;
}

}  // namespace

const char* RepairOutcomeName(RepairOutcome outcome) {
  switch (outcome) {
    case RepairOutcome::kFixed:
      return "fixed";
    case RepairOutcome::kNotFixed:
      return "not-fixed";
    case RepairOutcome::kRegressed:
      return "regressed";
    case RepairOutcome::kNoTemplate:
      return "no-template";
  }
  return "not-fixed";
}

RepairReport RunRepair(const mj::Program& program, const mj::ProgramIndex& index,
                       const RepairOptions& options) {
  RepairReport report;
  report.app = options.wasabi.app_name;

  PipelineRun baseline = RunPipelineOnce(program, index, options.wasabi, options.storm);
  WasabiOptions validation_options = SanitizeForValidation(options.wasabi);
  SimRepair sim(options.sim);

  CacheStats cache_before;
  if (options.wasabi.cache != nullptr) {
    cache_before = options.wasabi.cache->stats();
  }

  for (const BugReport& bug : baseline.confirmed) {
    RepairRow row;
    row.type = bug.type;
    row.file = bug.file;
    row.coordinator = bug.coordinator;
    row.detail = bug.detail;
    row.tmpl = TemplateForBug(bug.type);
    ++report.totals.confirmed;

    if (row.tmpl == RepairTemplate::kNone) {
      row.outcome = RepairOutcome::kNoTemplate;
      row.note = "no local-patch template for this bug class";
      ++report.totals.no_template;
      report.rows.push_back(std::move(row));
      continue;
    }
    ++report.totals.eligible;

    std::string cls_name;
    std::string method_name;
    if (!SplitQualified(bug.coordinator, &cls_name, &method_name)) {
      row.outcome = RepairOutcome::kNotFixed;
      row.note = "coordinator is not a qualified Class.method name";
      ++report.totals.not_fixed;
      report.rows.push_back(std::move(row));
      continue;
    }

    row.error_mode = sim.ModeFor(bug.file, bug.coordinator, RepairTemplateName(row.tmpl));
    std::string declared_method = method_name;
    mj::MethodMutator mutator;
    switch (row.error_mode) {
      case RepairErrorMode::kWrongLocation:
        mutator = MakeWrongLocationMutator();
        declared_method = PickSiblingMethod(index, cls_name, method_name);
        break;
      case RepairErrorMode::kCapTooLow:
        mutator = MakeBoundRetryMutator(1);
        break;
      case RepairErrorMode::kDropJitter:
        mutator = MakeAddJitterMutator(/*drop_jitter=*/true);
        break;
      case RepairErrorMode::kNone:
        switch (row.tmpl) {
          case RepairTemplate::kBoundRetry:
            mutator = MakeBoundRetryMutator(options.attempt_cap);
            break;
          case RepairTemplate::kAddBackoff:
            mutator = MakeAddBackoffMutator();
            break;
          case RepairTemplate::kAddJitter:
            mutator = MakeAddJitterMutator(/*drop_jitter=*/false);
            break;
          case RepairTemplate::kShedOnOverload:
            mutator = MakeShedOnOverloadMutator("ResourceExhaustedException");
            break;
          case RepairTemplate::kNone:
            break;
        }
        break;
    }

    const mj::CompilationUnit* unit = FindUnitByFile(program, bug.file);
    if (unit == nullptr) {
      row.outcome = RepairOutcome::kNotFixed;
      row.note = "source file not found in program";
      ++report.totals.not_fixed;
      report.rows.push_back(std::move(row));
      continue;
    }

    mj::RewriteResult rewrite = mj::RewriteMethod(
        bug.file, std::string(unit->file().text()), cls_name, declared_method, mutator);
    if (!rewrite.ok) {
      row.outcome = RepairOutcome::kNotFixed;
      row.note = "patch rejected: " + rewrite.error;
      ++report.totals.not_fixed;
      report.rows.push_back(std::move(row));
      continue;
    }

    mj::Program patched;
    std::string build_error;
    if (!BuildPatchedProgram(program, bug.file, rewrite.patched_source, &patched,
                             &build_error)) {
      row.outcome = RepairOutcome::kNotFixed;
      row.note = "patch rejected: " + build_error;
      ++report.totals.not_fixed;
      report.rows.push_back(std::move(row));
      continue;
    }
    row.patched = true;
    ++report.totals.patched;

    mj::ProgramIndex patched_index(patched);
    PipelineRun post = RunPipelineOnce(patched, patched_index, validation_options, options.storm);

    // Signal 1: verdict diff over the repair universe.
    bool target_gone = post.keys.count(bug.MatchKey()) == 0;
    std::vector<std::string> new_keys;
    for (const std::string& key : post.keys) {
      if (baseline.keys.count(key) == 0) {
        new_keys.push_back(key);
      }
    }

    // Signal 2: every test that passed uninjected must still pass.
    std::vector<std::string> broken_tests;
    for (const auto& [test, status] : baseline.clean) {
      if (status != TestStatus::kPassed) {
        continue;
      }
      auto it = post.clean.find(test);
      if (it == post.clean.end() || it->second != TestStatus::kPassed) {
        broken_tests.push_back(test);
      }
    }

    // Signal 3: single-fault resilience. Only for templates whose contract is
    // "the retry still works": shed-on-overload intentionally converts the
    // injected-overload replay into a bail-out, so it is exempt.
    bool single_fault_regressed = false;
    std::string regressed_probe_test;
    if (row.tmpl != RepairTemplate::kShedOnOverload) {
      for (const SingleFaultProbe& probe :
           PlanSingleFaultProbes(baseline.dyn, bug.coordinator)) {
        TestStatus pre = RunSingleFaultProbe(program, index, validation_options, probe);
        if (pre != TestStatus::kPassed) {
          // This fault was never absorbed pre-patch; it carries no signal.
          continue;
        }
        TestStatus after =
            RunSingleFaultProbe(patched, patched_index, validation_options, probe);
        if (after != TestStatus::kPassed) {
          single_fault_regressed = true;
          regressed_probe_test = probe.test;
          break;
        }
      }
    }

    if (!new_keys.empty() || !broken_tests.empty() || single_fault_regressed) {
      row.outcome = RepairOutcome::kRegressed;
      std::string note;
      if (!new_keys.empty()) {
        note += "new verdicts: " + JoinSorted(new_keys);
      }
      if (!broken_tests.empty()) {
        if (!note.empty()) {
          note += "; ";
        }
        note += "clean tests broke: " + JoinSorted(broken_tests);
      }
      if (single_fault_regressed) {
        if (!note.empty()) {
          note += "; ";
        }
        note += "single-fault replay of " + regressed_probe_test + " no longer passes";
      }
      row.note = note;
      ++report.totals.regressed;
    } else if (!target_gone) {
      row.outcome = RepairOutcome::kNotFixed;
      row.note = "verdict persists after patch";
      ++report.totals.not_fixed;
    } else {
      row.outcome = RepairOutcome::kFixed;
      ++report.totals.fixed;
    }
    report.rows.push_back(std::move(row));
  }

  if (options.wasabi.cache != nullptr) {
    report.validation_cache_delta = DiffStats(cache_before, options.wasabi.cache->stats());
  }
  return report;
}

std::string RepairReportToJson(const RepairReport& report) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"version\": \"wasabi-repair-v1\",\n";
  out << "  \"app\": \"" << JsonEscape(report.app) << "\",\n";
  const RepairTotals& t = report.totals;
  out << "  \"totals\": {\"confirmed\": " << t.confirmed << ", \"eligible\": " << t.eligible
      << ", \"patched\": " << t.patched << ", \"fixed\": " << t.fixed
      << ", \"not_fixed\": " << t.not_fixed << ", \"regressed\": " << t.regressed
      << ", \"no_template\": " << t.no_template << "},\n";
  out << "  \"repairs\": [";
  bool first = true;
  for (const RepairRow& row : report.rows) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "\n    {\"type\": \"" << BugTypeName(row.type) << "\", \"file\": \""
        << JsonEscape(row.file) << "\", \"coordinator\": \"" << JsonEscape(row.coordinator)
        << "\", \"template\": \"" << RepairTemplateName(row.tmpl) << "\", \"error_mode\": \""
        << RepairErrorModeName(row.error_mode) << "\", \"patched\": "
        << (row.patched ? "true" : "false") << ", \"outcome\": \""
        << RepairOutcomeName(row.outcome) << "\", \"note\": \"" << JsonEscape(row.note)
        << "\"}";
  }
  out << (report.rows.empty() ? "]\n" : "\n  ]\n");
  out << "}\n";
  return out.str();
}

std::string RepairReportToText(const RepairReport& report) {
  std::ostringstream out;
  const RepairTotals& t = report.totals;
  out << "WASABI repair: app=" << report.app << "\n";
  out << "  confirmed=" << t.confirmed << " eligible=" << t.eligible << " patched=" << t.patched
      << "\n";
  out << "  fixed=" << t.fixed << " not-fixed=" << t.not_fixed << " regressed=" << t.regressed
      << " no-template=" << t.no_template << "\n";
  for (const RepairRow& row : report.rows) {
    out << "  [" << RepairOutcomeName(row.outcome) << "] " << BugTypeName(row.type) << " "
        << row.file << " " << row.coordinator << " template=" << RepairTemplateName(row.tmpl)
        << " mode=" << RepairErrorModeName(row.error_mode);
    if (!row.note.empty()) {
      out << " (" << row.note << ")";
    }
    out << "\n";
  }
  return out.str();
}

void ExportRepairStats(const RepairReport& report, MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    return;
  }
  const RepairTotals& t = report.totals;
  metrics->SetGauge("repair.confirmed", static_cast<double>(t.confirmed));
  metrics->SetGauge("repair.eligible", static_cast<double>(t.eligible));
  metrics->SetGauge("repair.patched", static_cast<double>(t.patched));
  metrics->SetGauge("repair.fixed", static_cast<double>(t.fixed));
  metrics->SetGauge("repair.not_fixed", static_cast<double>(t.not_fixed));
  metrics->SetGauge("repair.regressed", static_cast<double>(t.regressed));
  metrics->SetGauge("repair.no_template", static_cast<double>(t.no_template));
  metrics->SetGauge("repair.validation.cache_hits",
                    static_cast<double>(report.validation_cache_delta.hits));
  metrics->SetGauge("repair.validation.cache_misses",
                    static_cast<double>(report.validation_cache_delta.misses));
}

std::vector<RepairExpectation> ExpectedRepairs(const std::vector<SeededBug>& bugs) {
  std::vector<RepairExpectation> expectations;
  auto add = [&expectations](BugType type, const std::string& file,
                             const std::string& coordinator) {
    RepairExpectation expectation;
    expectation.type = type;
    expectation.file = file;
    expectation.coordinator = coordinator;
    expectation.tmpl = TemplateForBug(type);
    expectation.outcome = expectation.tmpl == RepairTemplate::kNone ? RepairOutcome::kNoTemplate
                                                                    : RepairOutcome::kFixed;
    expectations.push_back(std::move(expectation));
  };
  for (const SeededBug& bug : bugs) {
    if (!InRepairUniverse(bug.type)) {
      continue;
    }
    add(bug.type, bug.file, bug.coordinator);
    // The fan-out and overload storm services retry in a bare `while (true)`:
    // the dynamic campaign independently confirms WHEN/missing-cap on the
    // same coordinator, and that verdict IS template-fixable.
    if (bug.type == BugType::kStormUnboundedFanout ||
        bug.type == BugType::kStormRetryOnOverload) {
      add(BugType::kWhenMissingCap, bug.file, bug.coordinator);
    }
  }
  std::sort(expectations.begin(), expectations.end(),
            [](const RepairExpectation& a, const RepairExpectation& b) {
              if (a.file != b.file) {
                return a.file < b.file;
              }
              if (a.coordinator != b.coordinator) {
                return a.coordinator < b.coordinator;
              }
              return std::string(BugTypeName(a.type)) < BugTypeName(b.type);
            });
  return expectations;
}

}  // namespace wasabi
