// Automated repair loop for confirmed retry bugs (docs/REPAIR.md).
//
// RunRepair closes the paper's loop from detection to remediation:
//
//   1. Baseline. Run the full WASABI pipeline — dynamic campaign, collated
//      static WHEN checking, storm simulation — and collect every confirmed
//      verdict in the REPAIRABLE universe (WHEN/missing-cap,
//      WHEN/missing-delay, and the three storm classes). HOW and IF verdicts
//      are out of scope: their fixes are semantic, not structural.
//   2. Synthesize. Map each verdict to its repair template
//      (src/repair/templates.h), optionally detour through SimRepair's
//      modeled LLM error modes, and apply the patch as an AST rewrite
//      (src/lang/rewrite.h) that is proven to round-trip and to touch only
//      its target method.
//   3. Validate. Re-run the pipeline on the patched program and diff verdicts
//      against the baseline, re-run the clean suite, and replay the
//      baseline's covering test under K=1 injection on both programs:
//        fixed      — the target verdict is gone, nothing new appeared, no
//                     clean test broke, and the coordinator still absorbs a
//                     single fault.
//        not-fixed  — the target verdict is still reported (or no patch could
//                     be applied).
//        regressed  — the patch introduced a new verdict, broke a clean test,
//                     or killed the retry outright (the cap-too-low mode: the
//                     verdict diff alone would call it fixed; only the K=1
//                     replay catches it).
//
// Every patch is validated INDEPENDENTLY against the pristine baseline, and
// validation campaigns share the caller's CacheStore: per-file namespaces
// (q1/when) stay warm for every unpatched file, so each re-campaign only
// re-runs the digest-invalidated slice while remaining byte-identical to a
// cold re-campaign (repair_e2e_test proves both halves).
//
// Determinism: the report is a pure function of (program, options) — byte
// identical at any jobs level, any cache state, and both interpreter engines.

#ifndef WASABI_SRC_REPAIR_REPAIR_H_
#define WASABI_SRC_REPAIR_REPAIR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/cache/store.h"
#include "src/core/scoring.h"
#include "src/core/wasabi.h"
#include "src/llm/sim_repair.h"
#include "src/repair/templates.h"
#include "src/storm/storm.h"

namespace wasabi {

struct RepairOptions {
  // Pipeline configuration for the baseline and every validation re-campaign.
  // Observability sinks and record_dir apply to the BASELINE only; nested
  // validation runs always detach them (their phase structure is an
  // implementation detail of validation). The cache pointer IS shared with
  // validation runs — that sharing is the sliced-re-campaign design.
  WasabiOptions wasabi;
  StormOptions storm;
  // Modeled repair-error modes; all-off by default (faithful templates).
  SimRepairConfig sim;
  // Attempt budget installed by the bound-retry template.
  int attempt_cap = 5;
};

enum class RepairOutcome : uint8_t {
  kFixed,
  kNotFixed,
  kRegressed,
  kNoTemplate,
};

const char* RepairOutcomeName(RepairOutcome outcome);

// One confirmed verdict's trip through the repair loop.
struct RepairRow {
  BugType type = BugType::kWhenMissingCap;
  std::string file;
  std::string coordinator;
  std::string detail;                                    // From the verdict.
  RepairTemplate tmpl = RepairTemplate::kNone;
  RepairErrorMode error_mode = RepairErrorMode::kNone;   // SimRepair's draw.
  bool patched = false;          // A rewrite was produced and validated.
  RepairOutcome outcome = RepairOutcome::kNotFixed;
  std::string note;              // Rewrite error / validation evidence.
};

struct RepairTotals {
  int confirmed = 0;     // Verdicts in the repairable universe, deduplicated.
  int eligible = 0;      // Confirmed verdicts with a template (!= no-template).
  int patched = 0;
  int fixed = 0;
  int not_fixed = 0;
  int regressed = 0;
  int no_template = 0;
};

struct RepairReport {
  std::string app;
  std::vector<RepairRow> rows;   // Sorted by (file, coordinator, type name).
  RepairTotals totals;

  // Cache traffic of the validation phase only (stats delta across all
  // nested re-campaigns). In-memory evidence for the slicing claim — NEVER
  // serialized: the report's bytes must not depend on cache state.
  CacheStats validation_cache_delta;
};

// Runs the full repair loop. `program`/`index` are the pristine application;
// patched programs are rebuilt internally per row.
RepairReport RunRepair(const mj::Program& program, const mj::ProgramIndex& index,
                       const RepairOptions& options);

// Versioned ("wasabi-repair-v1"), fixed key order, integers and strings only,
// no cache or timing data — byte-stable across jobs/cache/engine settings.
std::string RepairReportToJson(const RepairReport& report);

// Human-readable summary for `wasabi repair` without --json.
std::string RepairReportToText(const RepairReport& report);

// Publishes repair.* gauges (confirmed/patched/fixed/not-fixed/regressed/
// no-template plus validation cache hit/miss counts).
void ExportRepairStats(const RepairReport& report, MetricsRegistry* metrics);

// --- Ground-truth manifest (repairlab) --------------------------------------

// Expected end state of one repairable seeded bug under the all-faithful
// (SimRepair off) configuration.
struct RepairExpectation {
  BugType type = BugType::kWhenMissingCap;
  std::string file;
  std::string coordinator;
  RepairTemplate tmpl = RepairTemplate::kNone;
  RepairOutcome outcome = RepairOutcome::kFixed;
};

// Derives the expected repair outcomes from a corpus manifest: every seeded
// bug in the repairable universe maps to its template and expected outcome
// (template-fixable -> fixed; unbounded fan-out -> no-template). Seeded
// storm services whose loops are ALSO uncapped surface as additional
// WHEN/missing-cap verdicts; those derived expectations are included.
std::vector<RepairExpectation> ExpectedRepairs(const std::vector<SeededBug>& bugs);

}  // namespace wasabi

#endif  // WASABI_SRC_REPAIR_REPAIR_H_
