#include "src/repair/templates.h"

#include <string>
#include <vector>

#include "src/lang/ast.h"

namespace wasabi {

namespace {

using mj::AssignOp;
using mj::AssignStmt;
using mj::AstKind;
using mj::BinaryExpr;
using mj::BinaryOp;
using mj::BlockStmt;
using mj::BoolLiteralExpr;
using mj::CallExpr;
using mj::CatchClause;
using mj::CompilationUnit;
using mj::Expr;
using mj::ExprStmt;
using mj::ForStmt;
using mj::IfStmt;
using mj::IntLiteralExpr;
using mj::NameExpr;
using mj::NullLiteralExpr;
using mj::ReturnStmt;
using mj::SourceLocation;
using mj::Stmt;
using mj::StringLiteralExpr;
using mj::ThrowStmt;
using mj::TryStmt;
using mj::VarDeclStmt;
using mj::WhileStmt;

// The retry loop a template patches: the first while/for (pre-order, source
// order) whose body subtree contains a try with at least one catch. The loop
// must sit directly in a BlockStmt so statements can be spliced around it.
struct LoopSite {
  Stmt* loop = nullptr;            // AstKind::kWhile or kFor.
  BlockStmt* parent = nullptr;     // Block the loop is a direct child of.
  size_t index = 0;                // loop == parent->statements[index].
  std::vector<TryStmt*> tries;     // try/catch statements inside the loop body.
};

void CollectTries(Stmt* stmt, std::vector<TryStmt*>* out) {
  if (stmt == nullptr) {
    return;
  }
  switch (stmt->kind) {
    case AstKind::kBlock:
      for (Stmt* child : static_cast<BlockStmt*>(stmt)->statements) {
        CollectTries(child, out);
      }
      break;
    case AstKind::kIf: {
      auto* node = static_cast<IfStmt*>(stmt);
      CollectTries(node->then_branch, out);
      CollectTries(node->else_branch, out);
      break;
    }
    case AstKind::kWhile:
      CollectTries(static_cast<WhileStmt*>(stmt)->body, out);
      break;
    case AstKind::kFor:
      CollectTries(static_cast<ForStmt*>(stmt)->body, out);
      break;
    case AstKind::kSwitch:
      for (mj::SwitchCase& switch_case : static_cast<mj::SwitchStmt*>(stmt)->cases) {
        for (Stmt* child : switch_case.body) {
          CollectTries(child, out);
        }
      }
      break;
    case AstKind::kTry: {
      auto* node = static_cast<TryStmt*>(stmt);
      if (!node->catches.empty()) {
        out->push_back(node);
      }
      CollectTries(node->body, out);
      for (CatchClause& clause : node->catches) {
        CollectTries(clause.body, out);
      }
      CollectTries(node->finally, out);
      break;
    }
    default:
      break;
  }
}

bool FindLoopInBlock(BlockStmt* block, LoopSite* site);

// Recurses into sub-blocks of a non-loop statement looking for a retry loop.
bool FindLoopInStmt(Stmt* stmt, LoopSite* site) {
  if (stmt == nullptr) {
    return false;
  }
  switch (stmt->kind) {
    case AstKind::kBlock:
      return FindLoopInBlock(static_cast<BlockStmt*>(stmt), site);
    case AstKind::kIf: {
      auto* node = static_cast<IfStmt*>(stmt);
      return FindLoopInStmt(node->then_branch, site) || FindLoopInStmt(node->else_branch, site);
    }
    case AstKind::kTry: {
      auto* node = static_cast<TryStmt*>(stmt);
      if (FindLoopInStmt(node->body, site)) {
        return true;
      }
      for (CatchClause& clause : node->catches) {
        if (FindLoopInStmt(clause.body, site)) {
          return true;
        }
      }
      return FindLoopInStmt(node->finally, site);
    }
    case AstKind::kWhile:
      return FindLoopInStmt(static_cast<WhileStmt*>(stmt)->body, site);
    case AstKind::kFor:
      return FindLoopInStmt(static_cast<ForStmt*>(stmt)->body, site);
    default:
      return false;
  }
}

bool FindLoopInBlock(BlockStmt* block, LoopSite* site) {
  if (block == nullptr) {
    return false;
  }
  for (size_t i = 0; i < block->statements.size(); ++i) {
    Stmt* child = block->statements[i];
    if (child == nullptr) {
      continue;
    }
    if (child->kind == AstKind::kWhile || child->kind == AstKind::kFor) {
      std::vector<TryStmt*> tries;
      Stmt* body = child->kind == AstKind::kWhile ? static_cast<WhileStmt*>(child)->body
                                                  : static_cast<ForStmt*>(child)->body;
      CollectTries(body, &tries);
      if (!tries.empty()) {
        site->loop = child;
        site->parent = block;
        site->index = i;
        site->tries = std::move(tries);
        return true;
      }
    }
    if (FindLoopInStmt(child, site)) {
      return true;
    }
  }
  return false;
}

bool FindRetryLoop(mj::MethodDecl& method, LoopSite* site, std::string* error) {
  if (!FindLoopInBlock(method.body, site)) {
    *error = "method '" + method.name + "' has no retry loop (loop containing try/catch)";
    return false;
  }
  return true;
}

// --- Small AST builders ------------------------------------------------------

NameExpr* MakeName(CompilationUnit& unit, SourceLocation loc, const std::string& name) {
  auto* node = unit.Create<NameExpr>(loc);
  node->name = name;
  return node;
}

IntLiteralExpr* MakeInt(CompilationUnit& unit, SourceLocation loc, int64_t value) {
  auto* node = unit.Create<IntLiteralExpr>(loc);
  node->value = value;
  return node;
}

StringLiteralExpr* MakeString(CompilationUnit& unit, SourceLocation loc,
                              const std::string& value) {
  auto* node = unit.Create<StringLiteralExpr>(loc);
  node->value = value;
  return node;
}

BinaryExpr* MakeBinary(CompilationUnit& unit, SourceLocation loc, BinaryOp op, Expr* lhs,
                       Expr* rhs) {
  auto* node = unit.Create<BinaryExpr>(loc);
  node->op = op;
  node->lhs = lhs;
  node->rhs = rhs;
  return node;
}

VarDeclStmt* MakeVarDecl(CompilationUnit& unit, SourceLocation loc, const std::string& name,
                         Expr* init) {
  auto* node = unit.Create<VarDeclStmt>(loc);
  node->name = name;
  node->init = init;
  return node;
}

// `base.callee(args...)`; base may be null for implicit-this calls.
CallExpr* MakeCall(CompilationUnit& unit, SourceLocation loc, Expr* base,
                   const std::string& callee, std::vector<Expr*> args) {
  auto* node = unit.Create<CallExpr>(loc);
  node->base = base;
  node->callee = callee;
  node->args = std::move(args);
  return node;
}

ExprStmt* MakeExprStmt(CompilationUnit& unit, SourceLocation loc, Expr* expr) {
  auto* node = unit.Create<ExprStmt>(loc);
  node->expr = expr;
  return node;
}

// `Config.getInt("key", fallback)` — how every corpus service reads tunables.
CallExpr* MakeConfigGetInt(CompilationUnit& unit, SourceLocation loc, const std::string& key,
                           int64_t fallback) {
  return MakeCall(unit, loc, MakeName(unit, loc, "Config"), "getInt",
                  {MakeString(unit, loc, key), MakeInt(unit, loc, fallback)});
}

bool IsTrueLiteral(const Expr* expr) {
  return expr != nullptr && expr->kind == AstKind::kBoolLiteral &&
         static_cast<const BoolLiteralExpr*>(expr)->value;
}

// First statement in `block` that is exactly `Thread.sleep(...)`.
bool FindThreadSleep(BlockStmt* block, size_t* index, CallExpr** call) {
  if (block == nullptr) {
    return false;
  }
  for (size_t i = 0; i < block->statements.size(); ++i) {
    Stmt* stmt = block->statements[i];
    if (stmt == nullptr || stmt->kind != AstKind::kExprStmt) {
      continue;
    }
    Expr* expr = static_cast<ExprStmt*>(stmt)->expr;
    if (expr == nullptr || expr->kind != AstKind::kCall) {
      continue;
    }
    auto* candidate = static_cast<CallExpr*>(expr);
    if (candidate->callee != "sleep" || candidate->base == nullptr ||
        candidate->base->kind != AstKind::kName ||
        static_cast<NameExpr*>(candidate->base)->name != "Thread" ||
        candidate->args.size() != 1) {
      continue;
    }
    *index = i;
    *call = candidate;
    return true;
  }
  return false;
}

}  // namespace

const char* RepairTemplateName(RepairTemplate tmpl) {
  switch (tmpl) {
    case RepairTemplate::kNone:
      return "none";
    case RepairTemplate::kBoundRetry:
      return "bound-retry";
    case RepairTemplate::kAddBackoff:
      return "add-backoff";
    case RepairTemplate::kAddJitter:
      return "add-jitter";
    case RepairTemplate::kShedOnOverload:
      return "shed-on-overload";
  }
  return "none";
}

RepairTemplate TemplateForBug(BugType type) {
  switch (type) {
    case BugType::kWhenMissingCap:
      return RepairTemplate::kBoundRetry;
    case BugType::kWhenMissingDelay:
      return RepairTemplate::kAddBackoff;
    case BugType::kStormMissingJitter:
      return RepairTemplate::kAddJitter;
    case BugType::kStormRetryOnOverload:
      return RepairTemplate::kShedOnOverload;
    default:
      return RepairTemplate::kNone;
  }
}

mj::MethodMutator MakeBoundRetryMutator(int attempt_cap) {
  return [attempt_cap](CompilationUnit& unit, mj::ClassDecl& cls, mj::MethodDecl& method,
                       std::string* error) -> bool {
    (void)cls;
    LoopSite site;
    if (!FindRetryLoop(method, &site, error)) {
      return false;
    }
    SourceLocation loc = site.loop->location;

    if (site.loop->kind == AstKind::kFor) {
      // Keep the author's loop; just make its exit condition a hard `< cap`.
      // This is the HDFS-15439 shape: `retry != maxAttempts` with a negative
      // configured cap never terminates, and `<` is the minimal correct bound.
      auto* loop = static_cast<ForStmt*>(site.loop);
      std::string induction;
      if (loop->init != nullptr && loop->init->kind == AstKind::kVarDecl) {
        induction = static_cast<VarDeclStmt*>(loop->init)->name;
      } else if (loop->init != nullptr && loop->init->kind == AstKind::kAssign) {
        Expr* target = static_cast<AssignStmt*>(loop->init)->target;
        if (target != nullptr && target->kind == AstKind::kName) {
          induction = static_cast<NameExpr*>(target)->name;
        }
      }
      if (induction.empty()) {
        *error = "bound-retry: for-loop induction variable not found in '" + method.name + "'";
        return false;
      }
      loop->condition = MakeBinary(unit, loc, BinaryOp::kLt, MakeName(unit, loc, induction),
                                   MakeInt(unit, loc, attempt_cap));
      return true;
    }

    // while (...) -> for (var repairAttempt = 0; ... && repairAttempt < cap;
    // repairAttempt += 1), with the last caught exception stored so exhausting
    // the budget rethrows the original failure instead of looping forever.
    auto* loop = static_cast<WhileStmt*>(site.loop);
    auto* for_loop = unit.Create<ForStmt>(loc);
    for_loop->init = MakeVarDecl(unit, loc, "repairAttempt", MakeInt(unit, loc, 0));
    Expr* cap_check = MakeBinary(unit, loc, BinaryOp::kLt, MakeName(unit, loc, "repairAttempt"),
                                 MakeInt(unit, loc, attempt_cap));
    for_loop->condition = IsTrueLiteral(loop->condition)
                              ? cap_check
                              : MakeBinary(unit, loc, BinaryOp::kAnd, loop->condition, cap_check);
    auto* update = unit.Create<AssignStmt>(loc);
    update->target = MakeName(unit, loc, "repairAttempt");
    update->op = AssignOp::kAddAssign;
    update->value = MakeInt(unit, loc, 1);
    for_loop->update = update;
    for_loop->body = loop->body;

    for (TryStmt* try_stmt : site.tries) {
      for (CatchClause& clause : try_stmt->catches) {
        auto* remember = unit.Create<AssignStmt>(clause.location);
        remember->target = MakeName(unit, clause.location, "repairLastError");
        remember->op = AssignOp::kAssign;
        remember->value = MakeName(unit, clause.location, clause.variable);
        clause.body->statements.insert(clause.body->statements.begin(), remember);
      }
    }

    auto* last_error_decl =
        MakeVarDecl(unit, loc, "repairLastError", unit.Create<NullLiteralExpr>(loc));
    auto* give_up = unit.Create<ThrowStmt>(loc);
    give_up->value = MakeName(unit, loc, "repairLastError");

    std::vector<Stmt*>& stmts = site.parent->statements;
    stmts[site.index] = for_loop;
    stmts.insert(stmts.begin() + static_cast<std::ptrdiff_t>(site.index), last_error_decl);
    stmts.insert(stmts.begin() + static_cast<std::ptrdiff_t>(site.index) + 2, give_up);
    return true;
  };
}

mj::MethodMutator MakeAddBackoffMutator() {
  return [](CompilationUnit& unit, mj::ClassDecl& cls, mj::MethodDecl& method,
            std::string* error) -> bool {
    (void)cls;
    LoopSite site;
    if (!FindRetryLoop(method, &site, error)) {
      return false;
    }
    SourceLocation loc = site.loop->location;

    std::vector<Stmt*>& stmts = site.parent->statements;
    stmts.insert(stmts.begin() + static_cast<std::ptrdiff_t>(site.index),
                 MakeVarDecl(unit, loc, "repairBackoff",
                             MakeConfigGetInt(unit, loc, "repair.backoff.ms", 50)));

    for (TryStmt* try_stmt : site.tries) {
      for (CatchClause& clause : try_stmt->catches) {
        SourceLocation cloc = clause.location;
        clause.body->statements.push_back(MakeExprStmt(
            unit, cloc,
            MakeCall(unit, cloc, MakeName(unit, cloc, "Thread"), "sleep",
                     {MakeName(unit, cloc, "repairBackoff")})));
        auto* grow = unit.Create<AssignStmt>(cloc);
        grow->target = MakeName(unit, cloc, "repairBackoff");
        grow->op = AssignOp::kAssign;
        grow->value = MakeBinary(unit, cloc, BinaryOp::kMul,
                                 MakeName(unit, cloc, "repairBackoff"), MakeInt(unit, cloc, 2));
        clause.body->statements.push_back(grow);
      }
    }
    return true;
  };
}

mj::MethodMutator MakeAddJitterMutator(bool drop_jitter) {
  return [drop_jitter](CompilationUnit& unit, mj::ClassDecl& cls, mj::MethodDecl& method,
                       std::string* error) -> bool {
    (void)cls;
    LoopSite site;
    if (!FindRetryLoop(method, &site, error)) {
      return false;
    }
    SourceLocation loc = site.loop->location;

    // The request identity the storm profiler varies between its probes; a
    // correct jitter draws from it so concurrent retries decorrelate.
    method.body->statements.insert(
        method.body->statements.begin(),
        MakeVarDecl(unit, loc, "repairRequestId",
                    MakeConfigGetInt(unit, loc, "storm.request.id", 0)));
    if (drop_jitter) {
      // SimRepair kDropJitter: the scaffolding lands, the fixed sleep stays.
      return true;
    }

    for (TryStmt* try_stmt : site.tries) {
      for (CatchClause& clause : try_stmt->catches) {
        size_t sleep_index = 0;
        CallExpr* sleep_call = nullptr;
        if (!FindThreadSleep(clause.body, &sleep_index, &sleep_call)) {
          continue;
        }
        SourceLocation cloc = clause.location;
        Expr* base_amount = sleep_call->args[0];
        // var repairBase = <old sleep amount>;
        // var repairJitter = (Clock.nowMillis() * 31 + repairRequestId * 17)
        //                    % (repairBase + 1);
        // Thread.sleep(repairBase / 2 + repairJitter / 2);
        auto* base_decl = MakeVarDecl(unit, cloc, "repairBase", base_amount);
        Expr* mix = MakeBinary(
            unit, cloc, BinaryOp::kAdd,
            MakeBinary(unit, cloc, BinaryOp::kMul,
                       MakeCall(unit, cloc, MakeName(unit, cloc, "Clock"), "nowMillis", {}),
                       MakeInt(unit, cloc, 31)),
            MakeBinary(unit, cloc, BinaryOp::kMul, MakeName(unit, cloc, "repairRequestId"),
                       MakeInt(unit, cloc, 17)));
        Expr* bound = MakeBinary(unit, cloc, BinaryOp::kAdd, MakeName(unit, cloc, "repairBase"),
                                 MakeInt(unit, cloc, 1));
        auto* jitter_decl = MakeVarDecl(unit, cloc, "repairJitter",
                                        MakeBinary(unit, cloc, BinaryOp::kMod, mix, bound));
        Expr* amount = MakeBinary(
            unit, cloc, BinaryOp::kAdd,
            MakeBinary(unit, cloc, BinaryOp::kDiv, MakeName(unit, cloc, "repairBase"),
                       MakeInt(unit, cloc, 2)),
            MakeBinary(unit, cloc, BinaryOp::kDiv, MakeName(unit, cloc, "repairJitter"),
                       MakeInt(unit, cloc, 2)));
        auto* jittered_sleep = MakeExprStmt(
            unit, cloc,
            MakeCall(unit, cloc, MakeName(unit, cloc, "Thread"), "sleep", {amount}));

        std::vector<Stmt*>& body = clause.body->statements;
        body[sleep_index] = jittered_sleep;
        body.insert(body.begin() + static_cast<std::ptrdiff_t>(sleep_index), jitter_decl);
        body.insert(body.begin() + static_cast<std::ptrdiff_t>(sleep_index), base_decl);
        return true;
      }
    }
    *error = "add-jitter: no fixed Thread.sleep(...) found in a retry catch of '" +
             method.name + "'";
    return false;
  };
}

mj::MethodMutator MakeShedOnOverloadMutator(const std::string& overload_exception) {
  return [overload_exception](CompilationUnit& unit, mj::ClassDecl& cls, mj::MethodDecl& method,
                              std::string* error) -> bool {
    (void)cls;
    LoopSite site;
    if (!FindRetryLoop(method, &site, error)) {
      return false;
    }
    for (TryStmt* try_stmt : site.tries) {
      for (CatchClause& clause : try_stmt->catches) {
        if (clause.exception_type != overload_exception) {
          continue;
        }
        SourceLocation cloc = clause.location;
        auto* give_up = unit.Create<ReturnStmt>(cloc);
        give_up->value = method.return_type == "void"
                             ? nullptr
                             : static_cast<Expr*>(MakeString(unit, cloc, "shed"));
        clause.body->statements.clear();
        clause.body->statements.push_back(MakeExprStmt(
            unit, cloc,
            MakeCall(unit, cloc, MakeName(unit, cloc, "Log"), "warn",
                     {MakeString(unit, cloc,
                                 "repair: backend overloaded; shedding this request")})));
        clause.body->statements.push_back(give_up);
        return true;
      }
    }
    *error = "shed-on-overload: no catch of " + overload_exception + " in '" + method.name + "'";
    return false;
  };
}

mj::MethodMutator MakeWrongLocationMutator() {
  return [](CompilationUnit& unit, mj::ClassDecl& cls, mj::MethodDecl& method,
            std::string* error) -> bool {
    (void)cls;
    (void)error;
    SourceLocation loc = method.body->location;
    method.body->statements.insert(method.body->statements.begin(),
                                   MakeVarDecl(unit, loc, "repairAttempt", MakeInt(unit, loc, 0)));
    return true;
  };
}

}  // namespace wasabi
