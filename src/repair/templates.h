// Repair-template library (docs/REPAIR.md).
//
// Each confirmed WHEN/storm verdict class maps to one minimal mj patch — the
// same prescriptions src/robust implements for the pipeline itself:
//
//   WHEN/missing-cap      -> bound-retry       (bounded attempts + rethrow)
//   WHEN/missing-delay    -> add-backoff       (exponential backoff in catch)
//   STORM/missing-jitter  -> add-jitter        (per-request jittered sleep)
//   STORM/retry-on-overload -> shed-on-overload (honor push-back, bail out)
//
// STORM/unbounded-fanout has no template (un-hedging a broadcast is a design
// change, not a local patch) and is reported as such. Templates are exposed
// as rewrite mutators (src/lang/rewrite.h): they mutate exactly one method's
// AST and rely on the rewriter to prove round-trip and containment.

#ifndef WASABI_SRC_REPAIR_TEMPLATES_H_
#define WASABI_SRC_REPAIR_TEMPLATES_H_

#include <cstdint>
#include <string>

#include "src/core/report.h"
#include "src/lang/rewrite.h"

namespace wasabi {

enum class RepairTemplate : uint8_t {
  kNone,
  kBoundRetry,
  kAddBackoff,
  kAddJitter,
  kShedOnOverload,
};

const char* RepairTemplateName(RepairTemplate tmpl);

// The template prescribed for a bug class; kNone when the class has no
// local-patch prescription (HOW, IF, unbounded fan-out).
RepairTemplate TemplateForBug(BugType type);

// --- Mutator factories -------------------------------------------------------
// All mutators locate the target method's retry loop (the first while/for
// whose body contains a try with at least one catch) and fail cleanly when
// the method does not have that shape.

// Bounds the retry loop at `attempt_cap` attempts. A `while` loop becomes a
// `for` over a fresh `repairAttempt` counter, every catch stores its
// exception in `repairLastError`, and the loop is followed by
// `throw repairLastError;` — giving up rethrows the ORIGINAL failure, the
// paper's correct give-up shape. A `for` loop keeps its own induction
// variable and gets its condition replaced by `<induction> < cap` (the
// HDFS-15439 `!=`-with-negative-cap shape). SimRepair's cap-too-low mode is
// this mutator with attempt_cap == 1.
mj::MethodMutator MakeBoundRetryMutator(int attempt_cap);

// Declares `var repairBackoff = Config.getInt("repair.backoff.ms", 50);`
// before the loop and appends `Thread.sleep(repairBackoff); repairBackoff =
// repairBackoff * 2;` to every catch in it: exponential backoff between
// attempts.
mj::MethodMutator MakeAddBackoffMutator();

// Replaces the loop's fixed `Thread.sleep(X)` with a per-request jittered
// sleep derived from the `storm.request.id` config (the identity the storm
// profiler varies between probes):
//   var repairBase = X;
//   var repairJitter = (Clock.nowMillis() * 31 + repairRequestId * 17)
//                      % (repairBase + 1);
//   Thread.sleep(repairBase / 2 + repairJitter / 2);
// With `drop_jitter` (SimRepair's backoff-without-jitter mode) only the
// requestId scaffolding is inserted and the sleep stays fixed — the patch
// looks plausible but changes nothing the jitter oracle can see.
mj::MethodMutator MakeAddJitterMutator(bool drop_jitter);

// Replaces the body of the loop's `catch (ResourceExhaustedException …)`
// clause with a warn + bail-out (`return "shed";`, or a bare return for void
// methods): overload push-back is honored instead of retried.
mj::MethodMutator MakeShedOnOverloadMutator(const std::string& overload_exception);

// SimRepair's wrong-location mode: a harmless, plausible-looking scaffolding
// declaration inserted at the top of whatever method it is applied to. The
// repair engine points it at a SIBLING of the buggy coordinator, so the
// patch applies cleanly, changes the file digest, and fixes nothing.
mj::MethodMutator MakeWrongLocationMutator();

}  // namespace wasabi

#endif  // WASABI_SRC_REPAIR_TEMPLATES_H_
