#include "src/robust/chaos.h"

#include <cstdlib>

namespace wasabi {

std::string ChaosHostFault::What() const {
  return "chaos host fault at identity " + std::to_string(identity) + " attempt " +
         std::to_string(attempt);
}

namespace {

// splitmix64 finalizer: a strong 64-bit mix, cheap and dependency-free.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t ChaosDraw(const ChaosConfig& config, uint64_t identity, int attempt) {
  uint64_t h = Mix64(config.seed ^ Mix64(identity));
  if (config.transient) {
    h = Mix64(h ^ static_cast<uint64_t>(attempt));
  }
  return h;
}

}  // namespace

bool ChaosShouldFault(const ChaosConfig& config, uint64_t identity, int attempt) {
  if (!config.enabled || config.rate <= 0.0) {
    return false;
  }
  if (config.rate >= 1.0) {
    return true;
  }
  // Map the draw to [0, 1) with 53 bits of the hash; compare against the rate.
  uint64_t h = ChaosDraw(config, identity, attempt);
  double unit = static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
  return unit < config.rate;
}

void ChaosMaybeFault(const ChaosConfig& config, uint64_t identity, int attempt) {
  if (!ChaosShouldFault(config, identity, attempt)) {
    return;
  }
  if (config.budget_fraction > 0.0) {
    // A second independent draw decides the presentation of the fault.
    uint64_t h = Mix64(ChaosDraw(config, identity, attempt) ^ 0xc2b2ae3d27d4eb4fULL);
    double unit = static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
    if (unit < config.budget_fraction) {
      static const AbortReason kFlavors[] = {AbortReason::kStepBudget,
                                             AbortReason::kVirtualTimeBudget,
                                             AbortReason::kStackOverflow};
      throw ChaosBudgetFault{kFlavors[h % 3], identity};
    }
  }
  throw ChaosHostFault{identity, attempt};
}

bool ChaosDegradedEnvironment(const ChaosConfig& config, uint64_t identity) {
  if (!config.enabled || config.env_rate <= 0.0) {
    return false;
  }
  if (config.env_rate >= 1.0) {
    return true;
  }
  // Independent of the fault draw: xor-ing a distinct constant into the seeded
  // identity mix decorrelates "this run fails" from "this run runs degraded".
  uint64_t h = Mix64(config.seed ^ Mix64(identity) ^ 0x9ae16a3b2f90404fULL);
  double unit = static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
  return unit < config.env_rate;
}

namespace {

bool ParseUnitRate(const std::string& text, double* out) {
  char* end = nullptr;
  double rate = std::strtod(text.c_str(), &end);
  if (text.empty() || end == text.c_str() || *end != '\0' || rate < 0.0 || rate > 1.0) {
    return false;
  }
  *out = rate;
  return true;
}

}  // namespace

bool ParseChaosSpec(const std::string& spec, ChaosConfig* config, std::string* error) {
  size_t colon = spec.find(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= spec.size()) {
    if (error != nullptr) {
      *error = "expected SEED:RATE[:ENV_RATE]";
    }
    return false;
  }
  const std::string seed_text = spec.substr(0, colon);
  std::string rate_text = spec.substr(colon + 1);
  // Optional third field: the degraded-environment rate.
  std::string env_text;
  bool has_env = false;
  if (size_t second = rate_text.find(':'); second != std::string::npos) {
    env_text = rate_text.substr(second + 1);
    rate_text = rate_text.substr(0, second);
    has_env = true;
  }
  char* end = nullptr;
  unsigned long long seed = std::strtoull(seed_text.c_str(), &end, 10);
  if (end == seed_text.c_str() || *end != '\0') {
    if (error != nullptr) {
      *error = "seed must be a non-negative integer";
    }
    return false;
  }
  double rate = 0.0;
  if (!ParseUnitRate(rate_text, &rate)) {
    if (error != nullptr) {
      *error = "rate must be a number in [0, 1]";
    }
    return false;
  }
  double env_rate = 0.0;
  if (has_env && !ParseUnitRate(env_text, &env_rate)) {
    if (error != nullptr) {
      *error = "env rate must be a number in [0, 1]";
    }
    return false;
  }
  config->enabled = true;
  config->seed = static_cast<uint64_t>(seed);
  config->rate = rate;
  config->env_rate = env_rate;
  return true;
}

}  // namespace wasabi
