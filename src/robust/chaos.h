// Deterministic self-chaos harness (docs/ROBUSTNESS.md).
//
// The containment guarantees in this PR are only worth anything if they are
// exercised: ChaosConfig makes a seeded, configurable fraction of pipeline
// runs fail at the host level — by throwing a chaos host exception or by
// simulating a leaked interpreter-budget abort — so tests (and operators, via
// `--chaos SEED:RATE`) can prove the campaign survives, quarantines exactly
// the faulted runs, and produces an otherwise byte-identical report.
//
// Determinism contract: whether a given (run identity, attempt) faults is a
// pure function of the seed, never of scheduling, wall clock, or worker
// count. Transient faults depend on the attempt number, so a retry policy can
// recover them; persistent faults ignore it, so the quarantine set is exactly
// predictable.

#ifndef WASABI_SRC_ROBUST_CHAOS_H_
#define WASABI_SRC_ROBUST_CHAOS_H_

#include <cstdint>
#include <stdexcept>
#include <string>

#include "src/interp/interpreter.h"

namespace wasabi {

// The host exception the chaos harness throws. Deliberately NOT derived from
// std::exception: containment must also hold for foreign exception types that
// only `catch (...)` sees.
struct ChaosHostFault {
  uint64_t identity = 0;
  int attempt = 0;
  std::string What() const;
};

// A simulated interpreter-budget abort escaping the runner. Distinct from the
// real ExecutionAborted so classification can tag the failure as chaos-made.
struct ChaosBudgetFault {
  AbortReason reason = AbortReason::kStepBudget;
  uint64_t identity = 0;
};

struct ChaosConfig {
  bool enabled = false;
  uint64_t seed = 0;
  double rate = 0.0;  // Fraction of (identity, attempt) draws that fault.
  // Transient faults hash the attempt number in, so retries recover them;
  // persistent faults hit every attempt at a faulted identity.
  bool transient = true;
  // Fraction of faults that present as budget aborts instead of host
  // exceptions (cycling step-budget / virtual-time / stack-overflow flavors).
  double budget_fraction = 0.0;
  // Fraction of campaign runs that execute in a degraded ENVIRONMENT instead
  // of failing outright: the run proceeds normally but the interpreter config
  // key "chaos.degraded" is true, visible to applications via
  // Config.getBool("chaos.degraded", false). The flakiness prober uses this to
  // detect chaos-induced verdicts (docs/FLAKINESS.md). Default off, so the
  // PR 3 chaos-containment byte-identity contract is untouched.
  double env_rate = 0.0;
};

// Pure decision function: should this (identity, attempt) draw fault?
bool ChaosShouldFault(const ChaosConfig& config, uint64_t identity, int attempt);

// Throws ChaosHostFault or ChaosBudgetFault iff the draw faults; otherwise a
// no-op. Call at a pipeline seam before executing the real work.
void ChaosMaybeFault(const ChaosConfig& config, uint64_t identity, int attempt);

// Pure decision function: does this run identity execute under the degraded
// environment? Independent of the fault draw (distinct mix constant) and of
// the attempt number — the environment is a property of the run, so host-level
// retries of a degraded run stay degraded.
bool ChaosDegradedEnvironment(const ChaosConfig& config, uint64_t identity);

// Parses the CLI `--chaos SEED:RATE[:ENV_RATE]` spec (e.g. "42:0.1" or
// "42:0:0.25"). Returns false and fills `error` on malformed input; RATE and
// ENV_RATE must be in [0, 1].
bool ParseChaosSpec(const std::string& spec, ChaosConfig* config, std::string* error);

}  // namespace wasabi

#endif  // WASABI_SRC_ROBUST_CHAOS_H_
