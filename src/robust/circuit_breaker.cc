#include "src/robust/circuit_breaker.h"

#include <algorithm>

namespace wasabi {

bool CircuitBreaker::IsOpen(const std::string& key) const {
  return StateOf(key) == BreakerState::kOpen;
}

BreakerState CircuitBreaker::StateOf(const std::string& key) const {
  if (threshold_ <= 0) {
    return BreakerState::kClosed;
  }
  auto it = states_.find(key);
  return it == states_.end() ? BreakerState::kClosed : it->second.state;
}

BreakerDecision CircuitBreaker::Admit(const std::string& key) {
  if (threshold_ <= 0) {
    return BreakerDecision::kAllow;
  }
  auto it = states_.find(key);
  if (it == states_.end()) {
    return BreakerDecision::kAllow;
  }
  State& state = it->second;
  switch (state.state) {
    case BreakerState::kClosed:
      return BreakerDecision::kAllow;
    case BreakerState::kHalfOpen:
      // The probe is already in flight; shed everything else until it
      // resolves via RecordSuccess/RecordFailure.
      return BreakerDecision::kShed;
    case BreakerState::kOpen:
      if (cooldown_ <= 0) {
        return BreakerDecision::kShed;  // Campaign semantics: no recovery.
      }
      if (state.shed_since_open < cooldown_) {
        ++state.shed_since_open;
        return BreakerDecision::kShed;
      }
      state.state = BreakerState::kHalfOpen;
      state.shed_since_open = 0;
      return BreakerDecision::kProbe;
  }
  return BreakerDecision::kAllow;
}

void CircuitBreaker::RecordSuccess(const std::string& key) {
  if (threshold_ <= 0) {
    return;
  }
  auto it = states_.find(key);
  if (it == states_.end()) {
    return;
  }
  State& state = it->second;
  state.consecutive_failures = 0;
  if (state.state == BreakerState::kHalfOpen) {
    // The probe succeeded: close the circuit and forget the episode.
    state.state = BreakerState::kClosed;
    state.shed_since_open = 0;
  }
  // An open circuit stays open: the campaign has no half-open probe phase —
  // once a location is condemned, its remaining runs are quarantined. Only
  // an Admit()-granted probe (kHalfOpen) can close a circuit.
}

void CircuitBreaker::RecordFailure(const std::string& key) {
  if (threshold_ <= 0) {
    return;
  }
  State& state = states_[key];
  if (state.state == BreakerState::kHalfOpen) {
    // The probe failed: back to open, restart the cooldown from scratch.
    state.state = BreakerState::kOpen;
    state.shed_since_open = 0;
    return;
  }
  ++state.consecutive_failures;
  if (state.consecutive_failures >= threshold_) {
    state.state = BreakerState::kOpen;
    state.shed_since_open = 0;
  }
}

std::vector<std::string> CircuitBreaker::OpenKeys() const {
  std::vector<std::string> keys;
  for (const auto& [key, state] : states_) {
    if (state.state != BreakerState::kClosed) {
      keys.push_back(key);
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace wasabi
