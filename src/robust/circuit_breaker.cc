#include "src/robust/circuit_breaker.h"

#include <algorithm>

namespace wasabi {

bool CircuitBreaker::IsOpen(const std::string& key) const {
  if (threshold_ <= 0) {
    return false;
  }
  auto it = states_.find(key);
  return it != states_.end() && it->second.open;
}

void CircuitBreaker::RecordSuccess(const std::string& key) {
  if (threshold_ <= 0) {
    return;
  }
  auto it = states_.find(key);
  if (it != states_.end()) {
    it->second.consecutive_failures = 0;
    // An open circuit stays open: a campaign has no half-open probe phase —
    // once a location is condemned, its remaining runs are quarantined.
  }
}

void CircuitBreaker::RecordFailure(const std::string& key) {
  if (threshold_ <= 0) {
    return;
  }
  State& state = states_[key];
  ++state.consecutive_failures;
  if (state.consecutive_failures >= threshold_) {
    state.open = true;
  }
}

std::vector<std::string> CircuitBreaker::OpenKeys() const {
  std::vector<std::string> keys;
  for (const auto& [key, state] : states_) {
    if (state.open) {
      keys.push_back(key);
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace wasabi
