// Per-location circuit breaker for the campaign executor.
//
// When injections into one retry location keep killing the pipeline (M
// consecutive infrastructure failures), further runs against that location
// are skipped and quarantined immediately instead of burning attempts — the
// paper's prescription that retry must be bounded applies to the harness too.
// The breaker is fed serially, in run-id order, at reduce time, so its
// open/closed decisions are independent of worker scheduling.

#ifndef WASABI_SRC_ROBUST_CIRCUIT_BREAKER_H_
#define WASABI_SRC_ROBUST_CIRCUIT_BREAKER_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

namespace wasabi {

class CircuitBreaker {
 public:
  // `threshold` consecutive failures open the circuit for a key; <= 0
  // disables the breaker entirely.
  explicit CircuitBreaker(int threshold) : threshold_(threshold) {}

  bool IsOpen(const std::string& key) const;
  void RecordSuccess(const std::string& key);
  void RecordFailure(const std::string& key);

  // Keys whose circuit is open, sorted for deterministic reporting.
  std::vector<std::string> OpenKeys() const;

 private:
  struct State {
    int consecutive_failures = 0;
    bool open = false;
  };
  int threshold_;
  std::unordered_map<std::string, State> states_;
};

}  // namespace wasabi

#endif  // WASABI_SRC_ROBUST_CIRCUIT_BREAKER_H_
