// Per-location circuit breaker for the campaign executor and the storm
// simulator.
//
// When injections into one retry location keep killing the pipeline (M
// consecutive infrastructure failures), further runs against that location
// are skipped and quarantined immediately instead of burning attempts — the
// paper's prescription that retry must be bounded applies to the harness too.
// The breaker is fed serially, in run-id order, at reduce time, so its
// open/closed decisions are independent of worker scheduling.
//
// Recovery (half-open) is opt-in via `cooldown`: admission-controlled callers
// (src/storm, and any future service frontend) use Admit() and get a
// deterministic probe-after-cooldown cycle; the campaign keeps the legacy
// cooldown = 0 configuration, where an open circuit stays open for the rest
// of the run. See docs/ROBUSTNESS.md and docs/STORM.md.

#ifndef WASABI_SRC_ROBUST_CIRCUIT_BREAKER_H_
#define WASABI_SRC_ROBUST_CIRCUIT_BREAKER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace wasabi {

enum class BreakerState : uint8_t {
  kClosed,    // Requests flow; failures are being counted.
  kOpen,      // Requests are shed.
  kHalfOpen,  // One probe request is in flight; everything else is shed.
};

// Outcome of an admission check (Admit). kProbe marks the single request that
// transitions an open circuit to half-open — callers journal it as
// `breaker_half_open` so time-to-recover is measurable from the event stream.
enum class BreakerDecision : uint8_t { kAllow, kProbe, kShed };

class CircuitBreaker {
 public:
  // `threshold` consecutive failures open the circuit for a key; <= 0
  // disables the breaker entirely. `cooldown` is the number of admissions an
  // open circuit sheds before it goes half-open and admits one probe;
  // <= 0 (the default, and the campaign's setting) means an open circuit
  // never recovers. Both counts make recovery a pure function of the call
  // sequence — no wall clock anywhere.
  explicit CircuitBreaker(int threshold, int cooldown = 0)
      : threshold_(threshold), cooldown_(cooldown) {}

  // True while the key's circuit is open (kOpen only: a half-open circuit is
  // admitting its probe, so legacy IsOpen callers see it as recovering).
  bool IsOpen(const std::string& key) const;
  BreakerState StateOf(const std::string& key) const;

  // Admission check for one request. Closed -> kAllow. Open -> kShed until
  // `cooldown` requests have been shed, then the next request transitions the
  // circuit to half-open and is admitted as the probe (kProbe). Half-open ->
  // kShed (the probe is already in flight). With cooldown <= 0 an open
  // circuit sheds forever, matching the campaign's quarantine semantics.
  BreakerDecision Admit(const std::string& key);

  // Probe resolution: RecordSuccess on a half-open key closes the circuit
  // (full reset); RecordFailure re-opens it and restarts the cooldown.
  // On a closed key they keep the legacy consecutive-failure count.
  void RecordSuccess(const std::string& key);
  void RecordFailure(const std::string& key);

  // Keys whose circuit is open or half-open, sorted for deterministic
  // reporting.
  std::vector<std::string> OpenKeys() const;

 private:
  struct State {
    int consecutive_failures = 0;
    int shed_since_open = 0;
    BreakerState state = BreakerState::kClosed;
  };
  int threshold_;
  int cooldown_;
  std::unordered_map<std::string, State> states_;
};

}  // namespace wasabi

#endif  // WASABI_SRC_ROBUST_CIRCUIT_BREAKER_H_
