#include "src/robust/failure.h"

#include <stdexcept>

#include "src/interp/interpreter.h"
#include "src/robust/chaos.h"

namespace wasabi {

const char* RunFailureKindName(RunFailureKind kind) {
  switch (kind) {
    case RunFailureKind::kHostException:
      return "host-exception";
    case RunFailureKind::kStepBudget:
      return "step-budget";
    case RunFailureKind::kVirtualTime:
      return "virtual-time";
    case RunFailureKind::kStackOverflow:
      return "stack-overflow";
    case RunFailureKind::kChaos:
      return "chaos";
  }
  return "unknown";
}

namespace {

RunFailureKind KindForAbort(AbortReason reason) {
  switch (reason) {
    case AbortReason::kStepBudget:
      return RunFailureKind::kStepBudget;
    case AbortReason::kVirtualTimeBudget:
      return RunFailureKind::kVirtualTime;
    case AbortReason::kStackOverflow:
      return RunFailureKind::kStackOverflow;
  }
  return RunFailureKind::kHostException;
}

}  // namespace

RunFailure ClassifyFailure(const std::exception_ptr& error) {
  RunFailure failure;
  if (!error) {
    failure.detail = "no exception captured";
    return failure;
  }
  try {
    std::rethrow_exception(error);
  } catch (const ChaosHostFault& fault) {
    failure.kind = RunFailureKind::kChaos;
    failure.detail = fault.What();
    failure.chaos = true;
  } catch (const ChaosBudgetFault& fault) {
    failure.kind = KindForAbort(fault.reason);
    failure.detail = std::string("chaos-injected abort: ") + AbortReasonName(fault.reason);
    failure.chaos = true;
  } catch (const ExecutionAborted& aborted) {
    // A real interpreter abort that escaped the runner's containment — the
    // runner normally converts these into a timeout outcome, so reaching here
    // means a pipeline seam outside RunTest aborted.
    failure.kind = KindForAbort(aborted.reason);
    failure.detail = std::string("execution aborted: ") + AbortReasonName(aborted.reason);
  } catch (const std::exception& e) {
    failure.kind = RunFailureKind::kHostException;
    failure.detail = e.what();
  } catch (...) {
    failure.kind = RunFailureKind::kHostException;
    failure.detail = "unknown non-standard exception";
  }
  return failure;
}

}  // namespace wasabi
