// Structured failure taxonomy for the execution layer (docs/ROBUSTNESS.md).
//
// WASABI's own pipeline is a long fault-injection campaign over untrusted
// inputs, so its executor needs the same discipline the paper prescribes for
// the systems it studies: a host-level failure must keep its identity (which
// run, which location, what kind of fault) instead of collapsing into a
// boolean. A RunFailure is the quarantine record the campaign layer emits for
// a run whose infrastructure — not the test under injection — failed.

#ifndef WASABI_SRC_ROBUST_FAILURE_H_
#define WASABI_SRC_ROBUST_FAILURE_H_

#include <cstdint>
#include <exception>
#include <string>

namespace wasabi {

// What went wrong at the host level. Test-level outcomes (assertion failures,
// mj exceptions, budget timeouts *inside* a run) are captured in the run
// record by the runner and never reach this taxonomy; these kinds classify
// faults that escaped a pipeline task.
enum class RunFailureKind : uint8_t {
  kHostException,  // A C++ exception escaped the task (std::exception or other).
  kStepBudget,     // An interpreter step-budget abort leaked past the runner.
  kVirtualTime,    // A virtual-time-budget abort leaked past the runner.
  kStackOverflow,  // A call-depth abort leaked past the runner.
  kChaos,          // The self-chaos harness injected a host fault here.
};

const char* RunFailureKindName(RunFailureKind kind);

// One quarantined run. Ordered by run_id in every report section so the
// quarantine list is deterministic for any worker count.
struct RunFailure {
  uint64_t run_id = 0;
  std::string test;      // Qualified test name ("" when not test-scoped).
  std::string location;  // Injected location key, or a seam name like "<coverage>".
  RunFailureKind kind = RunFailureKind::kHostException;
  std::string detail;
  int attempts = 0;     // Attempts executed before quarantine.
  bool chaos = false;   // True when the fault came from the chaos harness.
};

// Classifies a captured host exception into the taxonomy; fills kind, detail,
// and the chaos flag (identity fields are the caller's).
RunFailure ClassifyFailure(const std::exception_ptr& error);

}  // namespace wasabi

#endif  // WASABI_SRC_ROBUST_FAILURE_H_
