#include "src/robust/retry_policy.h"

#include <algorithm>
#include <cmath>

namespace wasabi {

namespace {

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

int64_t RetryPolicy::BackoffMs(uint64_t identity, int next_attempt) const {
  if (next_attempt <= 1 || base_backoff_ms <= 0) {
    return 0;
  }
  // Exponential: base * multiplier^(retry_index - 1), capped.
  double backoff = static_cast<double>(base_backoff_ms) *
                   std::pow(std::max(multiplier, 1.0), next_attempt - 2);
  backoff = std::min(backoff, static_cast<double>(max_backoff_ms));
  if (jitter > 0.0) {
    // "Equal jitter"-style: keep (1 - jitter) of the backoff, randomize the
    // rest with a pure hash so the schedule replays bit-exactly.
    uint64_t h = Mix64(jitter_seed ^ Mix64(identity) ^ static_cast<uint64_t>(next_attempt));
    double unit = static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
    backoff = backoff * (1.0 - jitter) + backoff * jitter * unit;
  }
  return static_cast<int64_t>(backoff);
}

}  // namespace wasabi
