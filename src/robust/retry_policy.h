// Reference retry policy: the "correct retry" the paper prescribes (§2).
//
// Capped attempts, exponential backoff, deterministic jitter — applied to
// WASABI's own infrastructure failures before a run is quarantined. Backoff
// is charged to a *virtual* clock (a plain accumulator the caller owns), so
// retries cost no wall time and the whole schedule is reproducible: the
// jitter is a pure hash of (seed, identity, attempt), never a live RNG.

#ifndef WASABI_SRC_ROBUST_RETRY_POLICY_H_
#define WASABI_SRC_ROBUST_RETRY_POLICY_H_

#include <cstdint>

namespace wasabi {

struct RetryPolicy {
  int max_attempts = 3;          // Total attempts (first try included). 1 = no retry.
  int64_t base_backoff_ms = 10;  // Backoff before attempt 2.
  double multiplier = 2.0;       // Exponential growth per further attempt.
  int64_t max_backoff_ms = 1000;
  double jitter = 0.5;      // Fraction of the backoff randomized (0 = none).
  uint64_t jitter_seed = 0;  // Deterministic jitter stream.

  // Whether attempt `next_attempt` (1-based; 2 = first retry) may run.
  bool ShouldRetry(int next_attempt) const { return next_attempt <= max_attempts; }

  // Virtual milliseconds to back off before `next_attempt` at `identity`.
  // Deterministic: same policy + identity + attempt → same delay.
  int64_t BackoffMs(uint64_t identity, int next_attempt) const;
};

}  // namespace wasabi

#endif  // WASABI_SRC_ROBUST_RETRY_POLICY_H_
