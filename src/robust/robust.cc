#include "src/robust/robust.h"

#include <algorithm>

namespace wasabi {

void RobustnessStats::MergeFrom(const RobustnessStats& other) {
  retries += other.retries;
  recovered += other.recovered;
  quarantined += other.quarantined;
  chaos_faults += other.chaos_faults;
  breaker_open += other.breaker_open;
  fail_fast_skipped += other.fail_fast_skipped;
  backoff_virtual_ms += other.backoff_virtual_ms;
  open_locations.insert(open_locations.end(), other.open_locations.begin(),
                        other.open_locations.end());
  std::sort(open_locations.begin(), open_locations.end());
  open_locations.erase(std::unique(open_locations.begin(), open_locations.end()),
                       open_locations.end());
  aborted = aborted || other.aborted;
}

}  // namespace wasabi
