// Umbrella header for the robustness subsystem (docs/ROBUSTNESS.md):
// failure taxonomy + retry policy + circuit breaker + chaos harness, plus the
// option/stat bundles the campaign executor and facade thread through.

#ifndef WASABI_SRC_ROBUST_ROBUST_H_
#define WASABI_SRC_ROBUST_ROBUST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/robust/chaos.h"
#include "src/robust/circuit_breaker.h"
#include "src/robust/failure.h"
#include "src/robust/retry_policy.h"

namespace wasabi {

// Knobs for fault-contained campaign execution. The default-constructed value
// is the "default-off" configuration: retry enabled for infrastructure
// failures (invisible when nothing fails), breaker armed, no chaos — with no
// failures anywhere the output is byte-identical to the legacy executor.
struct RobustnessOptions {
  RetryPolicy retry;
  // Consecutive infrastructure failures per location before its circuit
  // opens; <= 0 disables the breaker.
  int breaker_threshold = 8;
  // Shed admissions before an open circuit half-opens and admits one probe
  // (CircuitBreaker::Admit); <= 0 means an open circuit never recovers. The
  // campaign keeps 0 (quarantine is final); the storm simulator sets it.
  int breaker_cooldown = 0;
  ChaosConfig chaos;
  // Stop scheduling new waves after the first quarantined run.
  bool fail_fast = false;
  // Abort the campaign once more than this many runs are quarantined;
  // < 0 means unlimited.
  int64_t max_quarantined = -1;
};

// Deterministic aggregate counters describing where resilience kicked in.
struct RobustnessStats {
  int64_t retries = 0;            // Re-attempts executed.
  int64_t recovered = 0;          // Runs that failed then completed on retry.
  int64_t quarantined = 0;        // Runs given up on.
  int64_t chaos_faults = 0;       // Failures attributed to the chaos harness.
  int64_t breaker_open = 0;       // Runs skipped because a circuit was open.
  int64_t fail_fast_skipped = 0;  // Runs skipped by --fail-fast / --max-quarantined.
  int64_t backoff_virtual_ms = 0;  // Total virtual backoff charged.
  std::vector<std::string> open_locations;  // Sorted open-circuit keys.
  bool aborted = false;  // True when --max-quarantined cut the campaign short.

  void MergeFrom(const RobustnessStats& other);
};

}  // namespace wasabi

#endif  // WASABI_SRC_ROBUST_ROBUST_H_
