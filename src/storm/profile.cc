#include "src/storm/profile.h"

#include <algorithm>
#include <string>
#include <vector>

#include "src/exec/task_pool.h"
#include "src/interp/exec_log.h"
#include "src/interp/interpreter.h"

namespace wasabi {
namespace {

// Caps keeping probe results tidy when the loop under probe never gives up.
constexpr int kMaxRecordedAttempts = 64;
constexpr size_t kMaxRecordedBackoffs = 8;

// Small budgets: a probe only needs to see the loop give up or prove it
// won't. An unbounded loop with sleeps trips the virtual-time budget; one
// without sleeps trips the step budget. Either abort reason means unbounded.
InterpOptions ProbeOptions() {
  InterpOptions options;
  options.step_budget = 300'000;
  options.virtual_time_budget_ms = 20'000;
  return options;
}

// Forces every call to `callee` to throw `exception` (empty = count only,
// never throw). Fire count is the attempt count of the probe.
class SendProbe : public CallInterceptor {
 public:
  SendProbe(std::string callee, std::string exception)
      : callee_(std::move(callee)), exception_(std::move(exception)) {}

  void OnCall(const CallEvent& event, Interpreter& interp) override {
    if (event.callee != callee_) {
      return;
    }
    ++fires_;
    if (!exception_.empty()) {
      throw ThrownException{interp.MakeException(exception_, "storm probe")};
    }
  }

  int64_t fires() const { return fires_; }

 private:
  std::string callee_;
  std::string exception_;
  int64_t fires_ = 0;
};

struct ProbeResult {
  int64_t send_fires = 0;
  bool completed = false;  // handle() returned or threw an mj exception.
  bool aborted = false;    // Step/virtual-time budget: the loop never gives up.
  std::vector<int64_t> sleeps_ms;
};

ProbeResult RunProbe(const mj::Program& program, const mj::ProgramIndex& index,
                     const std::string& service, const std::string& exception,
                     int64_t request_id) {
  ProbeResult result;
  Interpreter interp(program, index, ProbeOptions());
  interp.SetConfig("storm.request.id", Value{request_id});
  SendProbe probe(service + ".send", exception);
  interp.AddInterceptor(&probe);
  try {
    interp.Invoke(service + ".handle");
    result.completed = true;
  } catch (ThrownException&) {
    result.completed = true;  // Gave up by (re)throwing: still a bounded policy.
  } catch (const ExecutionAborted&) {
    result.aborted = true;
  }
  result.send_fires = probe.fires();
  for (const LogEntry& entry : interp.log().entries()) {
    if (entry.kind == LogEntryKind::kSleep && result.sleeps_ms.size() < kMaxRecordedBackoffs) {
      result.sleeps_ms.push_back(entry.amount);
    }
  }
  return result;
}

EdgeRetryProfile ProbeService(const mj::Program& program, const mj::ProgramIndex& index,
                              const mj::ClassDecl& cls, const mj::MethodDecl& handle) {
  EdgeRetryProfile profile;
  profile.service = cls.name;
  profile.coordinator = cls.name + ".handle";
  profile.location = handle.location;
  if (const mj::CompilationUnit* unit = index.UnitOf(cls); unit != nullptr) {
    profile.file = unit->file().name();
  }

  // Probe 0 (clean): fan-out = sends per successful request.
  ProbeResult clean = RunProbe(program, index, cls.name, /*exception=*/"", /*request_id=*/0);
  profile.fanout = static_cast<int>(std::max<int64_t>(1, clean.send_fires));

  // Probe 1 (persistent transport failure): attempts + backoff schedule.
  ProbeResult transport =
      RunProbe(program, index, cls.name, "ServiceUnavailableException", /*request_id=*/0);
  profile.bounded = !transport.aborted;
  profile.attempts = static_cast<int>(
      std::clamp<int64_t>(transport.send_fires, 1, kMaxRecordedAttempts));
  profile.backoff_ms = transport.sleeps_ms;

  // Probe 2 (same failure, different request identity): a backoff schedule
  // that depends on which request is retrying is jittered.
  ProbeResult shifted =
      RunProbe(program, index, cls.name, "ServiceUnavailableException", /*request_id=*/1);
  const size_t compare = std::min(transport.sleeps_ms.size(), shifted.sleeps_ms.size());
  for (size_t i = 0; i < compare; ++i) {
    if (transport.sleeps_ms[i] != shifted.sleeps_ms[i]) {
      profile.jittered = true;
      break;
    }
  }

  // Probe 3 (overload push-back): a frontend that sends again after
  // ResourceExhaustedException retries on overload instead of shedding.
  ProbeResult overload =
      RunProbe(program, index, cls.name, "ResourceExhaustedException", /*request_id=*/0);
  profile.retries_on_overload = overload.send_fires >= 2;
  if (profile.retries_on_overload && !overload.sleeps_ms.empty()) {
    profile.overload_backoff_ms = overload.sleeps_ms.front();
  }
  return profile;
}

}  // namespace

std::vector<EdgeRetryProfile> ExtractRetryProfiles(const mj::Program& program,
                                                   const mj::ProgramIndex& index, int jobs) {
  struct Service {
    const mj::ClassDecl* cls = nullptr;
    const mj::MethodDecl* handle = nullptr;
  };
  std::vector<Service> services;
  for (const mj::ClassDecl* cls : index.all_classes()) {
    const mj::MethodDecl* handle = index.ResolveMethod(*cls, "handle");
    const mj::MethodDecl* send = index.ResolveMethod(*cls, "send");
    if (handle == nullptr || send == nullptr || handle->body == nullptr ||
        !handle->params.empty()) {
      continue;
    }
    services.push_back(Service{cls, handle});
  }
  std::sort(services.begin(), services.end(),
            [](const Service& a, const Service& b) { return a.cls->name < b.cls->name; });

  // Index-addressed results: the reduce order is the sorted service order, so
  // the profile list is byte-identical at any worker count.
  std::vector<EdgeRetryProfile> profiles(services.size());
  TaskPool pool(jobs);
  pool.ParallelFor(services.size(), [&](size_t i) {
    profiles[i] = ProbeService(program, index, *services[i].cls, *services[i].handle);
  });
  return profiles;
}

}  // namespace wasabi
