// Per-edge retry-policy extraction for the storm simulator (docs/STORM.md).
//
// A "service" is any mj class exposing the frontend shape the corpus storm
// templates follow: a zero-arg `handle()` entry point that (possibly) retries
// a downstream `send()`. Instead of statically guessing what each retry loop
// does, the extractor RUNS `handle()` a few times under an interceptor that
// forces `send()` to fail — the same pointcut seam the injection campaign
// uses — and measures the policy the code actually implements:
//
//   - probe 0 (clean):      sends per successful request  -> fan-out
//   - probe 1 (transport):  every send throws ServiceUnavailableException;
//                           attempts until give-up (budget abort = unbounded)
//                           and the virtual-sleep schedule between attempts
//   - probe 2 (transport'): same, with a different storm.request.id config —
//                           a schedule that changes with request identity is
//                           jittered, a byte-identical schedule is not
//   - probe 3 (overload):   every send throws ResourceExhaustedException;
//                           retrying instead of shedding is the
//                           retry-on-overload signal
//
// Probes run on private Interpreters with small budgets, in parallel across
// services via TaskPool; results land in a pre-sized vector by index, so the
// extracted profiles are byte-identical at any worker count.

#ifndef WASABI_SRC_STORM_PROFILE_H_
#define WASABI_SRC_STORM_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/lang/sema.h"
#include "src/lang/source.h"

namespace wasabi {

struct EdgeRetryProfile {
  std::string service;      // Class name.
  std::string coordinator;  // "Class.handle" — joins the retry ground truth.
  std::string file;         // Unit file the class lives in.
  mj::SourceLocation location;  // Of the handle() declaration.

  // Transport-failure retry policy (probe 1/2).
  bool bounded = true;  // false: probe 1 hit the step/virtual-time budget.
  int attempts = 1;     // Attempts observed under persistent failure (<= 64).
  std::vector<int64_t> backoff_ms;  // Sleep schedule between attempts (<= 8 kept).
  bool jittered = false;

  // Overload behavior (probe 3).
  bool retries_on_overload = false;
  int64_t overload_backoff_ms = 0;  // First sleep before an overload retry.

  // Copies offered downstream per attempt (probe 0).
  int fanout = 1;

  bool operator==(const EdgeRetryProfile& other) const {
    return service == other.service && coordinator == other.coordinator && file == other.file &&
           location.offset == other.location.offset && location.line == other.location.line &&
           location.column == other.location.column && bounded == other.bounded &&
           attempts == other.attempts && backoff_ms == other.backoff_ms &&
           jittered == other.jittered && retries_on_overload == other.retries_on_overload &&
           overload_backoff_ms == other.overload_backoff_ms && fanout == other.fanout;
  }
};

// Extracts one profile per service class, sorted by class name. `jobs`
// follows TaskPool semantics (<= 0 = hardware default, 1 = serial).
std::vector<EdgeRetryProfile> ExtractRetryProfiles(const mj::Program& program,
                                                   const mj::ProgramIndex& index, int jobs = 1);

}  // namespace wasabi

#endif  // WASABI_SRC_STORM_PROFILE_H_
