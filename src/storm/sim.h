// Determinism kit for the retry-storm simulator (docs/STORM.md).
//
// Three small pieces, modeled on the Mars-sim SimClock/Rng/Recorder idiom the
// ROADMAP names: a virtual clock that only ever moves when an event says so,
// a seeded splittable RNG (splitmix64) so every edge draws jitter from its
// own stream regardless of event interleaving, and a binary-heap event queue
// keyed by (time, tiebreak seq) so same-instant events pop in push order.
// Nothing here reads wall time; a storm run is a pure function of
// (profiles, options, seed).

#ifndef WASABI_SRC_STORM_SIM_H_
#define WASABI_SRC_STORM_SIM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace wasabi {

// Virtual milliseconds. Advanced only by the event loop, never by wall time.
class SimClock {
 public:
  int64_t now_ms() const { return now_ms_; }

  // Time is monotone: popping the event queue in (time, seq) order can only
  // move the clock forward, so a backwards AdvanceTo is clamped (and would
  // indicate a scheduling bug upstream).
  void AdvanceTo(int64_t t_ms) {
    if (t_ms > now_ms_) {
      now_ms_ = t_ms;
    }
  }

 private:
  int64_t now_ms_ = 0;
};

// splitmix64 (Steele et al., "Fast splittable pseudorandom number
// generators"): tiny state, full 64-bit period per stream, and cheap
// splitting — hashing a salt into the current state yields an independent
// child stream. Each storm edge gets its own split so adding or removing an
// edge never perturbs another edge's jitter draws.
class SimRng {
 public:
  explicit SimRng(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    state_ += 0x9e3779b97f4a7c15ull;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Independent child stream: mixes the salt through one splitmix step so
  // Split(1) and Split(2) diverge even from a zero seed.
  SimRng Split(uint64_t salt) const {
    SimRng child(state_ ^ (salt + 0x9e3779b97f4a7c15ull));
    child.Next();
    return child;
  }

  // Uniform in [lo, hi], inclusive. hi < lo yields lo.
  int64_t NextInt(int64_t lo, int64_t hi) {
    if (hi <= lo) {
      return lo;
    }
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(Next() % span);
  }

 private:
  uint64_t state_;
};

// Min-heap of events keyed by (at_ms, seq); seq is assigned at push, so
// same-instant events pop in push order — the tiebreak that makes the whole
// simulation insensitive to heap internals.
template <typename Payload>
class EventQueue {
 public:
  struct Entry {
    int64_t at_ms = 0;
    uint64_t seq = 0;
    Payload payload;
  };

  void Push(int64_t at_ms, Payload payload) {
    entries_.push_back(Entry{at_ms, next_seq_++, std::move(payload)});
    SiftUp(entries_.size() - 1);
  }

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }
  const Entry& top() const { return entries_.front(); }

  Entry PopMin() {
    Entry min = std::move(entries_.front());
    entries_.front() = std::move(entries_.back());
    entries_.pop_back();
    if (!entries_.empty()) {
      SiftDown(0);
    }
    return min;
  }

 private:
  static bool Less(const Entry& a, const Entry& b) {
    if (a.at_ms != b.at_ms) {
      return a.at_ms < b.at_ms;
    }
    return a.seq < b.seq;
  }

  void SiftUp(size_t i) {
    while (i > 0) {
      size_t parent = (i - 1) / 2;
      if (!Less(entries_[i], entries_[parent])) {
        break;
      }
      std::swap(entries_[i], entries_[parent]);
      i = parent;
    }
  }

  void SiftDown(size_t i) {
    const size_t n = entries_.size();
    while (true) {
      size_t left = 2 * i + 1;
      size_t right = left + 1;
      size_t smallest = i;
      if (left < n && Less(entries_[left], entries_[smallest])) {
        smallest = left;
      }
      if (right < n && Less(entries_[right], entries_[smallest])) {
        smallest = right;
      }
      if (smallest == i) {
        break;
      }
      std::swap(entries_[i], entries_[smallest]);
      i = smallest;
    }
  }

  std::vector<Entry> entries_;
  uint64_t next_seq_ = 0;
};

}  // namespace wasabi

#endif  // WASABI_SRC_STORM_SIM_H_
