#include "src/storm/storm.h"

#include <algorithm>
#include <deque>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "src/core/report_json.h"
#include "src/obs/journal.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/robust/circuit_breaker.h"
#include "src/storm/sim.h"

namespace wasabi {
namespace {

enum class EvKind : uint8_t {
  kArrival,        // Burst of new requests for an edge.
  kDispatch,       // A request's (re)try fires after backoff.
  kBackendArrive,  // One copy reaches the backend.
  kBackendDone,    // The copy in service finished.
  kResponse,       // Primary copy's outcome reaches the edge.
  kTimeout,        // Client abandons the request if still live.
  kSample,         // Gauge sampling tick.
};

struct Ev {
  EvKind kind = EvKind::kArrival;
  int edge = -1;
  uint64_t req = 0;
  int attempt = 0;
  bool primary = false;
  bool ok = false;
  bool overload = false;
};

struct Request {
  int attempt = 1;
  bool probe = false;  // Admitted as the breaker's half-open probe.
};

struct EdgeRt {
  StormEdgeStats stats;
  bool has_breaker = false;  // Overload-shedding edges get admission control.
  CircuitBreaker breaker{1};
  SimRng rng{0};
  JournalRun run;
  std::unordered_map<uint64_t, Request> live;
  std::unordered_map<int64_t, int64_t> retries_at_ms;  // For wave_peak.
  uint64_t next_req = 0;
  int64_t inflight_retries = 0;
  int64_t queued = 0;  // Copies currently in the backend queue / in service.
};

struct BackendCopy {
  int edge = 0;
  uint64_t req = 0;
  int attempt = 0;
  bool primary = false;
};

// Clamps user-supplied options into a well-formed timeline so degenerate
// values (zero latency, inverted fault window) cannot hang the event loop.
StormOptions Normalize(StormOptions o) {
  o.duration_ms = std::max<int64_t>(1, o.duration_ms);
  o.arrival_interval_ms = std::max<int64_t>(1, o.arrival_interval_ms);
  o.burst = std::max(1, o.burst);
  o.service_ms = std::max<int64_t>(1, o.service_ms);
  o.latency_ms = std::max<int64_t>(1, o.latency_ms);
  o.queue_limit = std::max(1, o.queue_limit);
  o.reject_cost_ms = std::max<int64_t>(0, o.reject_cost_ms);
  o.request_timeout_ms = std::max<int64_t>(1, o.request_timeout_ms);
  o.breaker_threshold = std::max(1, o.breaker_threshold);
  o.breaker_cooldown = std::max(0, o.breaker_cooldown);
  o.sample_interval_ms = std::max<int64_t>(1, o.sample_interval_ms);
  o.fault_start_ms = std::clamp<int64_t>(o.fault_start_ms, 0, o.duration_ms);
  o.fault_end_ms = std::clamp<int64_t>(o.fault_end_ms, o.fault_start_ms, o.duration_ms);
  o.recovery_window_ms = std::clamp<int64_t>(o.recovery_window_ms, 1, o.duration_ms);
  return o;
}

class StormSim {
 public:
  StormSim(std::string_view app, const std::vector<EdgeRetryProfile>& profiles,
           const StormOptions& options, RetryJournal* journal)
      : opt_(Normalize(options)), journal_(journal) {
    report_.app.assign(app);
    report_.options = opt_;
    SimRng root(opt_.seed);
    edges_.resize(profiles.size());
    for (size_t i = 0; i < profiles.size(); ++i) {
      EdgeRt& edge = edges_[i];
      edge.stats.profile = profiles[i];
      edge.has_breaker = !profiles[i].retries_on_overload;
      edge.breaker = CircuitBreaker(opt_.breaker_threshold, opt_.breaker_cooldown);
      edge.rng = root.Split(static_cast<uint64_t>(i) + 1);
    }
  }

  StormReport Run() {
    SetupJournal();
    for (size_t i = 0; i < edges_.size(); ++i) {
      // Staggered first bursts spread steady-state load across the interval.
      int64_t first = opt_.arrival_interval_ms * static_cast<int64_t>(i) /
                      static_cast<int64_t>(std::max<size_t>(1, edges_.size()));
      queue_.Push(first, Ev{EvKind::kArrival, static_cast<int>(i)});
    }
    queue_.Push(0, Ev{EvKind::kSample});
    while (!queue_.empty()) {
      auto entry = queue_.PopMin();
      if (entry.at_ms > opt_.duration_ms) {
        break;  // Heap pops in time order: everything left is past the end.
      }
      clock_.AdvanceTo(entry.at_ms);
      Handle(entry.at_ms, entry.payload);
    }
    Finalize();
    return std::move(report_);
  }

 private:
  void SetupJournal() {
    backend_run_.Begin(journal_, JournalStream::kStorm, 0, "backend", "backend", 0);
    backend_run_.FaultBegin(opt_.fault_start_ms);
    backend_run_.FaultEnd(opt_.fault_end_ms);
    for (size_t i = 0; i < edges_.size(); ++i) {
      const EdgeRetryProfile& p = edges_[i].stats.profile;
      edges_[i].run.Begin(journal_, JournalStream::kStorm, i + 1, p.service, p.coordinator, 0);
    }
  }

  bool InFault(int64_t t) const { return t >= opt_.fault_start_ms && t < opt_.fault_end_ms; }
  int64_t WindowStart() const { return opt_.duration_ms - opt_.recovery_window_ms; }

  void Handle(int64_t t, const Ev& ev) {
    switch (ev.kind) {
      case EvKind::kArrival:
        Arrival(t, ev.edge);
        break;
      case EvKind::kDispatch: {
        EdgeRt& edge = edges_[ev.edge];
        if (edge.live.find(ev.req) != edge.live.end()) {
          Dispatch(t, ev.edge, ev.req, ev.attempt);
        }
        break;
      }
      case EvKind::kBackendArrive:
        BackendArrive(t, ev);
        break;
      case EvKind::kBackendDone:
        BackendDone(t);
        break;
      case EvKind::kResponse:
        Response(t, ev);
        break;
      case EvKind::kTimeout:
        Timeout(t, ev);
        break;
      case EvKind::kSample:
        Sample(t);
        break;
    }
  }

  void Arrival(int64_t t, int e) {
    EdgeRt& edge = edges_[e];
    for (int b = 0; b < opt_.burst; ++b) {
      edge.stats.requests++;
      bool probe = false;
      if (edge.has_breaker) {
        BreakerDecision decision = edge.breaker.Admit(edge.stats.profile.coordinator);
        if (decision == BreakerDecision::kShed) {
          edge.stats.shed_by_breaker++;
          continue;
        }
        if (decision == BreakerDecision::kProbe) {
          probe = true;
          edge.run.BreakerTransition(JournalEventKind::kBreakerHalfOpen, t);
        }
      }
      uint64_t id = edge.next_req++;
      edge.live.emplace(id, Request{1, probe});
      queue_.Push(t + opt_.request_timeout_ms, Ev{EvKind::kTimeout, e, id});
      Dispatch(t, e, id, 1);
    }
    if (t + opt_.arrival_interval_ms < opt_.duration_ms) {
      queue_.Push(t + opt_.arrival_interval_ms, Ev{EvKind::kArrival, e});
    }
  }

  void Dispatch(int64_t t, int e, uint64_t req, int attempt) {
    EdgeRt& edge = edges_[e];
    edge.stats.attempts++;
    if (attempt >= 2) {
      int64_t& count = edge.retries_at_ms[t];
      ++count;
      edge.stats.wave_peak = std::max(edge.stats.wave_peak, count);
    }
    if (t >= WindowStart()) {
      edge.stats.post_window_attempts++;
    }
    for (int c = 0; c < edge.stats.profile.fanout; ++c) {
      edge.stats.copies_sent++;
      queue_.Push(t + opt_.latency_ms,
                  Ev{EvKind::kBackendArrive, e, req, attempt, /*primary=*/c == 0});
    }
  }

  void BackendArrive(int64_t t, const Ev& ev) {
    EdgeRt& edge = edges_[ev.edge];
    if (t >= WindowStart()) {
      report_.post_window_copies++;
    }
    if (InFault(t)) {
      edge.stats.unavailable_responses++;
      report_.backend_unavailable++;
      if (ev.primary) {
        queue_.Push(t + opt_.latency_ms,
                    Ev{EvKind::kResponse, ev.edge, ev.req, ev.attempt, true, false, false});
      }
      return;
    }
    int64_t depth = static_cast<int64_t>(backlog_.size()) + (busy_ ? 1 : 0);
    if (depth >= opt_.queue_limit) {
      edge.stats.overload_responses++;
      report_.backend_overload_rejections++;
      // Saying "no" costs the server real time (accept + reject path). The
      // debt is charged to the next service slot, which is what lets a
      // retry-on-overload client hold the backend underwater indefinitely.
      reject_debt_ms_ += opt_.reject_cost_ms;
      report_.backend_reject_work_ms += opt_.reject_cost_ms;
      if (ev.primary) {
        queue_.Push(t + opt_.latency_ms,
                    Ev{EvKind::kResponse, ev.edge, ev.req, ev.attempt, true, false, true});
      }
      return;
    }
    backlog_.push_back(BackendCopy{ev.edge, ev.req, ev.attempt, ev.primary});
    edge.queued++;
    edge.stats.queue_depth_max = std::max(edge.stats.queue_depth_max, edge.queued);
    report_.backend_queue_peak = std::max(report_.backend_queue_peak, depth + 1);
    if (!busy_) {
      StartNext(t);
    }
  }

  void StartNext(int64_t t) {
    busy_ = true;
    in_service_ = backlog_.front();
    backlog_.pop_front();
    // Rejection debt accrued while the server was saying "no" extends the
    // next service slot; the debt is server overhead, not edge work.
    queue_.Push(t + opt_.service_ms + reject_debt_ms_, Ev{EvKind::kBackendDone});
    reject_debt_ms_ = 0;
  }

  void BackendDone(int64_t t) {
    BackendCopy copy = in_service_;
    busy_ = false;
    EdgeRt& edge = edges_[copy.edge];
    edge.queued--;
    edge.stats.work_ms += opt_.service_ms;
    if (copy.primary) {
      queue_.Push(t + opt_.latency_ms,
                  Ev{EvKind::kResponse, copy.edge, copy.req, copy.attempt,
                     /*primary=*/true, /*ok=*/true, false});
    }
    if (!backlog_.empty()) {
      StartNext(t);
    }
  }

  void Response(int64_t t, const Ev& ev) {
    EdgeRt& edge = edges_[ev.edge];
    auto it = edge.live.find(ev.req);
    if (it == edge.live.end() || it->second.attempt != ev.attempt) {
      return;  // Request already completed (e.g. client timeout) — stale.
    }
    const EdgeRetryProfile& p = edge.stats.profile;
    if (ev.ok) {
      edge.stats.succeeded++;
      edge.stats.goodput_ms += opt_.service_ms;
      if (edge.stats.time_to_recover_ms < 0 && t >= opt_.fault_end_ms) {
        edge.stats.time_to_recover_ms = t - opt_.fault_end_ms;
      }
      RecordBreaker(t, ev.edge, /*success=*/true);
      Complete(ev.edge, it);
      return;
    }
    if (ev.overload && !p.retries_on_overload) {
      edge.stats.shed_on_overload++;  // Honors push-back: shed, don't retry.
      RecordBreaker(t, ev.edge, /*success=*/false);
      Complete(ev.edge, it);
      return;
    }
    if (!ev.overload && p.bounded && ev.attempt >= p.attempts) {
      edge.stats.gave_up++;
      RecordBreaker(t, ev.edge, /*success=*/false);
      Complete(ev.edge, it);
      return;
    }
    Retry(t, ev.edge, it, ev.attempt, ev.overload);
  }

  void Retry(int64_t t, int e, std::unordered_map<uint64_t, Request>::iterator it,
             int attempt, bool overload) {
    EdgeRt& edge = edges_[e];
    const EdgeRetryProfile& p = edge.stats.profile;
    int next = attempt + 1;
    it->second.attempt = next;
    if (next == 2) {
      edge.inflight_retries++;
      edge.stats.inflight_retries_max =
          std::max(edge.stats.inflight_retries_max, edge.inflight_retries);
    }
    int64_t delay;
    if (overload) {
      // Overload retries use the (fixed) overload backoff the probe measured.
      delay = std::max<int64_t>(1, p.overload_backoff_ms);
    } else {
      int64_t base = 1;
      if (!p.backoff_ms.empty()) {
        size_t idx = std::min<size_t>(attempt - 1, p.backoff_ms.size() - 1);
        base = std::max<int64_t>(1, p.backoff_ms[idx]);
      }
      delay = base;
      if (p.jittered) {
        delay = std::max<int64_t>(1, base / 2 + edge.rng.NextInt(0, base - base / 2));
      }
    }
    queue_.Push(t + delay, Ev{EvKind::kDispatch, e, it->first, next});
  }

  void Timeout(int64_t t, const Ev& ev) {
    EdgeRt& edge = edges_[ev.edge];
    auto it = edge.live.find(ev.req);
    if (it == edge.live.end()) {
      return;
    }
    edge.stats.timed_out++;
    RecordBreaker(t, ev.edge, /*success=*/false);
    Complete(ev.edge, it);
  }

  // Request-level breaker accounting; transitions go to the edge journal.
  void RecordBreaker(int64_t t, int e, bool success) {
    EdgeRt& edge = edges_[e];
    if (!edge.has_breaker) {
      return;
    }
    const std::string& key = edge.stats.profile.coordinator;
    BreakerState before = edge.breaker.StateOf(key);
    if (success) {
      edge.breaker.RecordSuccess(key);
    } else {
      edge.breaker.RecordFailure(key);
    }
    BreakerState after = edge.breaker.StateOf(key);
    if (after == before) {
      return;
    }
    if (after == BreakerState::kOpen) {
      edge.run.BreakerTransition(JournalEventKind::kBreakerOpen, t);
    } else if (after == BreakerState::kClosed) {
      edge.run.BreakerTransition(JournalEventKind::kBreakerClose, t);
    }
  }

  void Complete(int e, std::unordered_map<uint64_t, Request>::iterator it) {
    EdgeRt& edge = edges_[e];
    if (it->second.attempt >= 2) {
      edge.inflight_retries--;
    }
    edge.stats.needed_attempts += std::min<int64_t>(it->second.attempt, 4);
    edge.live.erase(it);
  }

  void Sample(int64_t t) {
    StormSample sample;
    sample.t_ms = t;
    sample.backend_depth = static_cast<int64_t>(backlog_.size()) + (busy_ ? 1 : 0);
    backend_run_.QueueDepth(t, sample.backend_depth);
    sample.edge_inflight.reserve(edges_.size());
    for (EdgeRt& edge : edges_) {
      sample.edge_inflight.push_back(edge.inflight_retries);
      edge.run.InflightRetries(t, edge.inflight_retries);
    }
    if (report_.time_to_recover_ms < 0 && t >= opt_.fault_end_ms && sample.backend_depth == 0) {
      report_.time_to_recover_ms = t - opt_.fault_end_ms;
    }
    report_.samples.push_back(std::move(sample));
    if (t + opt_.sample_interval_ms <= opt_.duration_ms) {
      queue_.Push(t + opt_.sample_interval_ms, Ev{EvKind::kSample});
    }
  }

  void Finalize() {
    // A correct policy would retry a burst-window request at most a few
    // times; twice the expected arrivals marks an edge still storming.
    const int64_t expected_window_arrivals =
        (opt_.recovery_window_ms / opt_.arrival_interval_ms) * opt_.burst;
    for (EdgeRt& edge : edges_) {
      StormEdgeStats& s = edge.stats;
      s.unfinished = static_cast<int64_t>(edge.live.size());
      for (const auto& [id, req] : edge.live) {
        (void)id;
        s.needed_attempts += std::min<int64_t>(req.attempt, 4);
      }
      s.amplification_x1000 = s.copies_sent * 1000 / std::max<int64_t>(1, s.needed_attempts);
      s.metastable = s.post_window_attempts > 2 * expected_window_arrivals;

      report_.total_requests += s.requests;
      report_.total_attempts += s.attempts;
      report_.total_copies += s.copies_sent;
      report_.total_succeeded += s.succeeded;
      report_.total_work_ms += s.work_ms;
      report_.total_goodput_ms += s.goodput_ms;
      report_.total_needed_attempts += s.needed_attempts;
    }
    report_.amplification_x1000 =
        report_.total_copies * 1000 / std::max<int64_t>(1, report_.total_needed_attempts);
    report_.goodput_x1000 =
        report_.total_goodput_ms * 1000 / std::max<int64_t>(1, report_.total_work_ms);
    report_.metastable =
        report_.post_window_copies * opt_.service_ms > opt_.recovery_window_ms;
    for (EdgeRt& edge : edges_) {
      EmitOracles(edge.stats);
      report_.edges.push_back(std::move(edge.stats));
    }
  }

  void EmitOracles(const StormEdgeStats& s) {
    const EdgeRetryProfile& p = s.profile;
    // Missing jitter: a fixed backoff schedule turned synchronized failures
    // into a synchronized retry wave (>= 3 dispatches in one simulated ms).
    if (!p.jittered && !p.backoff_ms.empty() && s.unavailable_responses > 0 &&
        s.wave_peak >= 3) {
      std::ostringstream detail;
      detail << "fixed backoff, retry wave peak of " << s.wave_peak
             << " dispatches in one simulated ms";
      PushBug(BugType::kStormMissingJitter, p, detail.str());
    }
    // Unbounded fan-out retry: every retry multiplies load by fanout and the
    // loop never gives up, so offered copies dwarf what a capped policy needs.
    if (p.fanout >= 2 && !p.bounded && s.amplification_x1000 >= 3000) {
      std::ostringstream detail;
      detail << "unbounded retry x fanout " << p.fanout << " amplified load to "
             << s.amplification_x1000 / 1000 << "." << (s.amplification_x1000 % 1000) / 100
             << "x offered copies per needed attempt";
      PushBug(BugType::kStormUnboundedFanout, p, detail.str());
    }
    // Retry-on-overload: treating push-back as transient keeps the backend
    // saturated after the fault clears — the metastable failure mode.
    if (p.retries_on_overload && s.metastable) {
      std::ostringstream detail;
      detail << "retries rejected work under overload; still storming "
             << s.post_window_attempts << " attempts in the final "
             << opt_.recovery_window_ms << "ms window";
      PushBug(BugType::kStormRetryOnOverload, p, detail.str());
    }
  }

  void PushBug(BugType type, const EdgeRetryProfile& p, std::string detail) {
    BugReport bug;
    bug.type = type;
    bug.technique = DetectionTechnique::kStormSim;
    bug.app = report_.app;
    bug.file = p.file;
    bug.coordinator = p.coordinator;
    bug.detail = std::move(detail);
    bug.group_key = p.coordinator;
    bug.location = p.location;
    report_.bugs.push_back(std::move(bug));
  }

  StormOptions opt_;
  RetryJournal* journal_;
  StormReport report_;
  SimClock clock_;
  EventQueue<Ev> queue_;
  std::vector<EdgeRt> edges_;
  JournalRun backend_run_;
  std::deque<BackendCopy> backlog_;
  bool busy_ = false;
  BackendCopy in_service_;
  int64_t reject_debt_ms_ = 0;
};

}  // namespace

StormReport RunStormSim(std::string_view app, const std::vector<EdgeRetryProfile>& profiles,
                        const StormOptions& options, RetryJournal* journal) {
  StormSim sim(app, profiles, options, journal);
  return sim.Run();
}

std::string StormReportToJson(const StormReport& report) {
  const StormOptions& o = report.options;
  std::ostringstream out;
  out << "{\n";
  out << "  \"version\": \"wasabi-storm-v1\",\n";
  out << "  \"app\": \"" << JsonEscape(report.app) << "\",\n";
  out << "  \"options\": {\"seed\": " << o.seed << ", \"duration_ms\": " << o.duration_ms
      << ", \"fault_start_ms\": " << o.fault_start_ms
      << ", \"fault_end_ms\": " << o.fault_end_ms
      << ", \"arrival_interval_ms\": " << o.arrival_interval_ms
      << ", \"burst\": " << o.burst << ", \"service_ms\": " << o.service_ms
      << ", \"latency_ms\": " << o.latency_ms << ", \"queue_limit\": " << o.queue_limit
      << ", \"reject_cost_ms\": " << o.reject_cost_ms
      << ", \"request_timeout_ms\": " << o.request_timeout_ms
      << ", \"breaker_threshold\": " << o.breaker_threshold
      << ", \"breaker_cooldown\": " << o.breaker_cooldown
      << ", \"sample_interval_ms\": " << o.sample_interval_ms
      << ", \"recovery_window_ms\": " << o.recovery_window_ms << "},\n";
  out << "  \"totals\": {\"requests\": " << report.total_requests
      << ", \"attempts\": " << report.total_attempts
      << ", \"copies\": " << report.total_copies
      << ", \"succeeded\": " << report.total_succeeded
      << ", \"work_ms\": " << report.total_work_ms
      << ", \"goodput_ms\": " << report.total_goodput_ms
      << ", \"needed_attempts\": " << report.total_needed_attempts
      << ", \"amplification_x1000\": " << report.amplification_x1000
      << ", \"goodput_x1000\": " << report.goodput_x1000
      << ", \"backend_queue_peak\": " << report.backend_queue_peak
      << ", \"backend_unavailable\": " << report.backend_unavailable
      << ", \"backend_overload_rejections\": " << report.backend_overload_rejections
      << ", \"backend_reject_work_ms\": " << report.backend_reject_work_ms
      << ", \"post_window_copies\": " << report.post_window_copies
      << ", \"time_to_recover_ms\": " << report.time_to_recover_ms
      << ", \"metastable\": " << (report.metastable ? "true" : "false") << "},\n";
  out << "  \"edges\": [";
  for (size_t i = 0; i < report.edges.size(); ++i) {
    const StormEdgeStats& s = report.edges[i];
    const EdgeRetryProfile& p = s.profile;
    if (i > 0) {
      out << ",";
    }
    out << "\n    {\"service\": \"" << JsonEscape(p.service) << "\", \"coordinator\": \""
        << JsonEscape(p.coordinator) << "\", \"file\": \"" << JsonEscape(p.file)
        << "\", \"bounded\": " << (p.bounded ? "true" : "false")
        << ", \"attempts_cap\": " << p.attempts << ", \"jittered\": "
        << (p.jittered ? "true" : "false") << ", \"retries_on_overload\": "
        << (p.retries_on_overload ? "true" : "false") << ", \"fanout\": " << p.fanout
        << ", \"requests\": " << s.requests << ", \"shed_by_breaker\": " << s.shed_by_breaker
        << ", \"attempts\": " << s.attempts << ", \"copies_sent\": " << s.copies_sent
        << ", \"succeeded\": " << s.succeeded << ", \"gave_up\": " << s.gave_up
        << ", \"shed_on_overload\": " << s.shed_on_overload
        << ", \"timed_out\": " << s.timed_out << ", \"unfinished\": " << s.unfinished
        << ", \"unavailable_responses\": " << s.unavailable_responses
        << ", \"overload_responses\": " << s.overload_responses
        << ", \"work_ms\": " << s.work_ms << ", \"goodput_ms\": " << s.goodput_ms
        << ", \"amplification_x1000\": " << s.amplification_x1000
        << ", \"wave_peak\": " << s.wave_peak
        << ", \"inflight_retries_max\": " << s.inflight_retries_max
        << ", \"queue_depth_max\": " << s.queue_depth_max
        << ", \"post_window_attempts\": " << s.post_window_attempts
        << ", \"time_to_recover_ms\": " << s.time_to_recover_ms
        << ", \"metastable\": " << (s.metastable ? "true" : "false") << "}";
  }
  out << "\n  ],\n";
  out << "  \"bugs\": " << BugReportsToJson(report.bugs);
  // BugReportsToJson ends with "]\n"; close the object on its own line.
  out << "}\n";
  return out.str();
}

std::string StormReportToText(const StormReport& report) {
  std::ostringstream out;
  out << "storm: app=" << report.app << " edges=" << report.edges.size()
      << " seed=" << report.options.seed << " duration=" << report.options.duration_ms
      << "ms fault=[" << report.options.fault_start_ms << ","
      << report.options.fault_end_ms << ")\n";
  out << "  totals: requests=" << report.total_requests
      << " attempts=" << report.total_attempts << " copies=" << report.total_copies
      << " succeeded=" << report.total_succeeded << " amplification="
      << report.amplification_x1000 / 1000 << "." << (report.amplification_x1000 % 1000) / 100
      << "x goodput=" << report.goodput_x1000 / 10 << "% queue_peak="
      << report.backend_queue_peak << " ttr="
      << report.time_to_recover_ms << "ms metastable="
      << (report.metastable ? "yes" : "no") << "\n";
  for (const StormEdgeStats& s : report.edges) {
    out << "  edge " << s.profile.coordinator << ": requests=" << s.requests
        << " attempts=" << s.attempts << " succeeded=" << s.succeeded
        << " shed=" << s.shed_by_breaker + s.shed_on_overload
        << " timed_out=" << s.timed_out << " amplification="
        << s.amplification_x1000 / 1000 << "." << (s.amplification_x1000 % 1000) / 100
        << "x wave_peak=" << s.wave_peak << " ttr=" << s.time_to_recover_ms
        << "ms" << (s.metastable ? " METASTABLE" : "") << "\n";
  }
  for (const BugReport& bug : report.bugs) {
    out << "  bug " << BugTypeName(bug.type) << " @ " << bug.coordinator << ": "
        << bug.detail << "\n";
  }
  return out.str();
}

void ExportStormStats(const StormReport& report, MetricsRegistry* metrics, Tracer* tracer) {
  if (metrics != nullptr) {
    metrics->SetGauge("storm.requests", static_cast<double>(report.total_requests));
    metrics->SetGauge("storm.attempts", static_cast<double>(report.total_attempts));
    metrics->SetGauge("storm.copies", static_cast<double>(report.total_copies));
    metrics->SetGauge("storm.succeeded", static_cast<double>(report.total_succeeded));
    metrics->SetGauge("storm.amplification", report.amplification_x1000 / 1000.0);
    metrics->SetGauge("storm.goodput_ratio", report.goodput_x1000 / 1000.0);
    metrics->SetGauge("storm.backend_queue_peak",
                      static_cast<double>(report.backend_queue_peak));
    metrics->SetGauge("storm.time_to_recover_ms",
                      static_cast<double>(report.time_to_recover_ms));
    metrics->SetGauge("storm.metastable", report.metastable ? 1.0 : 0.0);
    metrics->SetGauge("storm.bugs", static_cast<double>(report.bugs.size()));
    for (const StormEdgeStats& s : report.edges) {
      metrics->SetGauge("storm." + s.profile.service + ".queue_depth_max",
                        static_cast<double>(s.queue_depth_max));
      metrics->SetGauge("storm." + s.profile.service + ".inflight_retries_max",
                        static_cast<double>(s.inflight_retries_max));
    }
  }
  if (tracer != nullptr) {
    // Counter tracks: one Chrome counter series for the backend queue and one
    // per-edge in-flight-retry series, replayed sample by sample so `wasabi
    // report` dashboards render the storm timeline.
    for (const StormSample& sample : report.samples) {
      tracer->Counter("storm.queue_depth", "backend", sample.backend_depth);
      for (size_t e = 0; e < sample.edge_inflight.size() && e < report.edges.size(); ++e) {
        tracer->Counter("storm.inflight_retries", report.edges[e].profile.service,
                        sample.edge_inflight[e]);
      }
    }
    for (const StormEdgeStats& s : report.edges) {
      tracer->Counter("storm.amplification_x1000", s.profile.coordinator,
                      s.amplification_x1000);
    }
  }
}

}  // namespace wasabi
