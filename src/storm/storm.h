// Deterministic retry-storm simulator (docs/STORM.md).
//
// The paper's worst retry bugs are not single-test failures: they are
// system-level storms — synchronized retry waves, fan-out amplification, and
// metastable overload where load stays above capacity long after the fault
// that caused it has cleared. RunStormSim replays a whole app's extracted
// retry policies (src/storm/profile.h) against one shared backend in a
// discrete-event simulation and measures exactly those behaviors.
//
// Model. Every profiled service is one "edge" (frontend -> backend call
// site). Open-loop traffic arrives in bursts of `burst` requests every
// `arrival_interval_ms` per edge; each attempt ships `fanout` copies to a
// single-server backend with a bounded FIFO queue; a transient fault window
// [fault_start_ms, fault_end_ms) makes the backend instantly unavailable.
// Failed primaries retry per the edge's own extracted policy (attempt cap,
// backoff schedule, jitter, overload behavior); requests not done after
// `request_timeout_ms` abandon. Edges that shed on overload get an
// admission CircuitBreaker (threshold + half-open cooldown from
// src/robust); edges that retry on overload lack one — that is the bug.
//
// Determinism. The event loop is serial over an EventQueue keyed
// (time, push seq); all jitter comes from per-edge SimRng splits; the
// journal (stream kStorm) and the report are pure functions of
// (profiles, options). Reports are byte-identical at any --jobs level and
// across repeated same-seed runs (bench/stress_storm proves it).

#ifndef WASABI_SRC_STORM_STORM_H_
#define WASABI_SRC_STORM_STORM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/report.h"
#include "src/storm/profile.h"

namespace wasabi {

class RetryJournal;
class MetricsRegistry;
class Tracer;

struct StormOptions {
  uint64_t seed = 1;

  // Timeline (simulated milliseconds).
  int64_t duration_ms = 30'000;
  int64_t fault_start_ms = 5'000;
  int64_t fault_end_ms = 10'000;

  // Open-loop traffic: every edge receives `burst` simultaneous requests
  // each `arrival_interval_ms` (bursts are what synchronize retry waves).
  // The defaults put steady offered load at ~90% of backend capacity, so a
  // well-behaved app runs fine but has no headroom to absorb a retry storm.
  int64_t arrival_interval_ms = 400;
  int burst = 12;

  // Backend: single server, FIFO queue bounded at `queue_limit` (arrivals
  // beyond it get an overload rejection), `service_ms` per copy, one-way
  // network latency `latency_ms`. Rejecting a copy is not free: each
  // queue-full rejection charges the server `reject_cost_ms` of overhead —
  // the wasted work that makes retry-on-overload metastable (the server
  // spends its capacity saying "no" instead of draining the queue).
  int64_t service_ms = 5;
  int64_t latency_ms = 5;
  int queue_limit = 64;
  int64_t reject_cost_ms = 1;

  // Clients abandon a request that has not completed after this long.
  int64_t request_timeout_ms = 8'000;

  // Admission breaker for overload-shedding edges (src/robust semantics:
  // threshold consecutive failures open it; `cooldown` shed admissions
  // later it half-opens for one probe).
  int breaker_threshold = 5;
  int breaker_cooldown = 25;

  // Gauge sampling cadence and the trailing window used for the
  // metastability verdict ("is load still above capacity at the end?").
  int64_t sample_interval_ms = 250;
  int64_t recovery_window_ms = 5'000;
};

// One gauge sample, taken every sample_interval_ms by the event loop.
struct StormSample {
  int64_t t_ms = 0;
  int64_t backend_depth = 0;                // Queued + in service.
  std::vector<int64_t> edge_inflight;       // Retrying requests, per edge.
};

// Per-edge outcome counters. All ratios are integer x1000 so the report
// serializes byte-stably with no float formatting.
struct StormEdgeStats {
  EdgeRetryProfile profile;

  int64_t requests = 0;          // Offered by the traffic model.
  int64_t shed_by_breaker = 0;   // Rejected at admission (breaker open).
  int64_t attempts = 0;          // Dispatched attempts (all copies of one send).
  int64_t copies_sent = 0;       // attempts x fanout.
  int64_t succeeded = 0;
  int64_t gave_up = 0;           // Bounded policy exhausted its attempts.
  int64_t shed_on_overload = 0;  // Completed by honoring overload push-back.
  int64_t timed_out = 0;
  int64_t unfinished = 0;        // Still mid-retry when the sim ended.

  int64_t unavailable_responses = 0;  // Fault-window rejections seen.
  int64_t overload_responses = 0;     // Queue-full rejections seen.

  int64_t work_ms = 0;          // Backend service time consumed by this edge.
  int64_t goodput_ms = 0;       // Service time of copies whose request succeeded.
  int64_t needed_attempts = 0;  // Per request: min(attempts used, 4) — the
                                // same cap retry_stats charges a correct policy.
  int64_t amplification_x1000 = 1000;  // copies_sent / needed_attempts.

  int64_t wave_peak = 0;             // Max retry dispatches in one simulated ms.
  int64_t inflight_retries_max = 0;  // Peak concurrently-retrying requests.
  int64_t queue_depth_max = 0;       // Peak backend-queue copies owned by edge.
  int64_t post_window_attempts = 0;  // Attempts in the last recovery window.
  int64_t time_to_recover_ms = -1;   // First success after the fault cleared.
  bool metastable = false;           // Still storming in the recovery window.
};

struct StormReport {
  std::string app;
  StormOptions options;
  std::vector<StormEdgeStats> edges;
  std::vector<StormSample> samples;  // In-memory only (journal carries them).

  // Totals across edges.
  int64_t total_requests = 0;
  int64_t total_attempts = 0;
  int64_t total_copies = 0;
  int64_t total_succeeded = 0;
  int64_t total_work_ms = 0;
  int64_t total_goodput_ms = 0;
  int64_t total_needed_attempts = 0;
  int64_t amplification_x1000 = 1000;  // total copies / total needed attempts.
  int64_t goodput_x1000 = 1000;        // goodput_ms / work_ms.

  // Backend-side aggregates.
  int64_t backend_queue_peak = 0;
  int64_t backend_unavailable = 0;         // Fault-window rejections issued.
  int64_t backend_overload_rejections = 0; // Queue-full rejections issued.
  int64_t backend_reject_work_ms = 0;      // Server time burned rejecting.
  int64_t post_window_copies = 0;          // Copies offered in the last window.
  int64_t time_to_recover_ms = -1;  // First empty-backend sample after the
                                    // fault cleared; -1 = never drained.
  bool metastable = false;  // Offered work in the last window exceeds capacity.

  // Storm oracles (technique kStormSim): missing jitter, unbounded fan-out
  // retry, retry-on-overload. Scored against the corpus manifest exactly.
  std::vector<BugReport> bugs;
};

// Runs the simulation. Serial and allocation-bounded; `journal` (nullable)
// receives the kStorm stream: run 0 = backend timeline (queue-depth samples,
// fault markers), run e+1 = edge e (breaker transitions, in-flight-retry
// samples). `app` stamps the bug reports and journal export.
StormReport RunStormSim(std::string_view app, const std::vector<EdgeRetryProfile>& profiles,
                        const StormOptions& options, RetryJournal* journal = nullptr);

// Versioned ("wasabi-storm-v1"), fixed key order, integers only —
// byte-stable for the determinism benches and CLI smoke diffs.
std::string StormReportToJson(const StormReport& report);

// Human-readable summary for `wasabi storm` without --json.
std::string StormReportToText(const StormReport& report);

// Publishes storm gauges ("storm.*", including per-service queue-depth and
// in-flight-retry peaks) and Chrome-trace counter tracks from the samples.
void ExportStormStats(const StormReport& report, MetricsRegistry* metrics, Tracer* tracer);

}  // namespace wasabi

#endif  // WASABI_SRC_STORM_STORM_H_
