#include "src/study/listings.h"

namespace wasabi {

namespace {

// ---------------------------------------------------------------------------
// Listing 1 — KAFKA-6829: UNKNOWN_TOPIC_OR_PARTITION (code 3) is recoverable
// during broker initialization but is missing from the response handler's
// retryable set. Error-code driven and single-site: WASABI cannot detect it;
// the observable consequence is a commit lost instead of retried.
// ---------------------------------------------------------------------------

std::string Listing1Source(bool fixed) {
  std::string handler =
      "// Decides what to do with a commit response code.\n"
      "// Verdicts: 2 = success, 1 = retry, 0 = terminal failure.\n"
      "class CommitResponseHandler {\n"
      "  int handle(code) {\n"
      "    if (code == 0) {\n"
      "      return 2;\n"
      "    }\n"
      "    if (code == 14) {  // COORDINATOR_LOAD_IN_PROGRESS\n"
      "      return 1;\n"
      "    }\n";
  if (fixed) {
    handler +=
        "    if (code == 3) {  // UNKNOWN_TOPIC_OR_PARTITION (the KAFKA-6829 patch)\n"
        "      return 1;\n"
        "    }\n";
  }
  handler +=
      "    return 0;\n"
      "  }\n"
      "}\n";

  std::string coordinator =
      "\n"
      "class ConsumerCoordinator {\n"
      "  int brokerCallsUntilReady = 2;\n"
      "\n"
      "  // Commits with retry driven by the handler's verdict; returns the\n"
      "  // attempt count on success, the negated count when it gave up.\n"
      "  int commitWithRetries(msg) {\n"
      "    var handler = new CommitResponseHandler();\n"
      "    var attempts = 0;\n"
      "    while (attempts < 10) {\n"
      "      attempts += 1;\n"
      "      var code = this.sendCommit(msg);\n"
      "      var verdict = handler.handle(code);\n"
      "      if (verdict == 2) {\n"
      "        return attempts;\n"
      "      }\n"
      "      if (verdict == 0) {\n"
      "        Log.error(\"commit failed permanently\");\n"
      "        return 0 - attempts;\n"
      "      }\n"
      "      Thread.sleep(50);\n"
      "    }\n"
      "    return 0;\n"
      "  }\n"
      "\n"
      "  // The broker reports UNKNOWN_TOPIC_OR_PARTITION while initializing.\n"
      "  int sendCommit(msg) {\n"
      "    if (this.brokerCallsUntilReady > 0) {\n"
      "      this.brokerCallsUntilReady -= 1;\n"
      "      return 3;\n"
      "    }\n"
      "    return 0;\n"
      "  }\n"
      "}\n";
  return handler + coordinator;
}

constexpr const char* kListing1Tests = R"mj(
class Listing1Scenario {
  String run() {
    var coordinator = new ConsumerCoordinator();
    var outcome = coordinator.commitWithRetries("offsets");
    if (outcome > 0) {
      return "commit succeeded after " + outcome + " attempt(s)";
    }
    return "commit LOST: handler gave up after " + (0 - outcome) + " attempt(s)";
  }
}
class ConsumerCoordinatorTest {
  void testCommit() {
    var coordinator = new ConsumerCoordinator();
    coordinator.commitWithRetries("offsets");
  }
}
)mj";

// ---------------------------------------------------------------------------
// Listing 2 — HADOOP-16683: AccessControlException is correctly not retried,
// but other code paths wrap it inside HadoopException, which IS retried. The
// patch unwraps the cause. Single-site wrong policy: behavioral evidence.
// ---------------------------------------------------------------------------

std::string Listing2Source(bool fixed) {
  std::string hadoop_catch;
  if (fixed) {
    hadoop_catch =
        "      } catch (HadoopException he) {\n"
        "        // AccessControlException may be wrapped (the HADOOP-16683 patch).\n"
        "        if (he.getCause() instanceof AccessControlException) {\n"
        "          break;\n"
        "        }\n"
        "        Log.warn(\"transient wrapper failure; will retry\");\n";
  } else {
    hadoop_catch =
        "      } catch (HadoopException he) {\n"
        "        Log.warn(\"transient wrapper failure; will retry\");\n";
  }
  return std::string(
             "class WebHdfsFileSystem {\n"
             "  int maxAttempts = 4;\n"
             "  bool aclDenied = false;\n"
             "  int attemptsMade = 0;\n"
             "\n"
             "  String run() {\n"
             "    for (var retry = 0; retry < this.maxAttempts; retry++) {\n"
             "      try {\n"
             "        this.attemptsMade += 1;\n"
             "        var conn = this.connect(\"url\");\n"
             "        return this.getResponse(conn);\n"
             "      } catch (AccessControlException e) {\n"
             "        break;\n") +
         hadoop_catch +
         "      } catch (ConnectException ce) {\n"
         "        Log.warn(\"connect failed\");\n"
         "      }\n"
         "      Thread.sleep(1000);\n"
         "    }\n"
         "    return null;\n"
         "  }\n"
         "\n"
         "  String connect(url) throws AccessControlException, HadoopException, "
         "ConnectException {\n"
         "    if (this.aclDenied) {\n"
         "      throw new HadoopException(\"rpc failed\", new "
         "AccessControlException(\"permission denied\"));\n"
         "    }\n"
         "    return \"conn\";\n"
         "  }\n"
         "\n"
         "  String getResponse(conn) throws HadoopException {\n"
         "    return \"response\";\n"
         "  }\n"
         "}\n";
}

constexpr const char* kListing2Tests = R"mj(
class Listing2Scenario {
  String run() {
    var fs = new WebHdfsFileSystem();
    fs.aclDenied = true;
    fs.run();
    return "attempts against a PERMANENT permission error: " + fs.attemptsMade
        + ", wasted backoff: " + Clock.nowMillis() + "ms";
  }
}
class WebHdfsFileSystemTest {
  void testRun() {
    var fs = new WebHdfsFileSystem();
    Assert.assertEquals("response", fs.run());
  }
}
)mj";

// ---------------------------------------------------------------------------
// Listing 3 — HIVE-23894: a canceled TezTask is treated as failed and
// re-enqueued forever. The patch checks isShutdown before resubmitting.
// ---------------------------------------------------------------------------

std::string Listing3Source(bool fixed) {
  std::string requeue;
  if (fixed) {
    requeue =
        "        // FIX: only retry if not canceled (the HIVE-23894 patch).\n"
        "        if (task.isShutdown == false) {\n"
        "          this.taskQueue.put(task);\n"
        "        }\n";
  } else {
    requeue = "        this.taskQueue.put(task);\n";
  }
  return std::string(
             "class TezTask {\n"
             "  bool isShutdown = false;\n"
             "  var payload = null;\n"
             "\n"
             "  void init(p) {\n"
             "    this.payload = p;\n"
             "  }\n"
             "\n"
             "  void execute() throws TaskCanceledException {\n"
             "    if (this.isShutdown) {\n"
             "      throw new TaskCanceledException(\"task canceled\");\n"
             "    }\n"
             "    Log.debug(\"executed \" + this.payload);\n"
             "  }\n"
             "}\n"
             "\n"
             "class TaskProcessor {\n"
             "  Queue taskQueue = new Queue();\n"
             "\n"
             "  void submit(task) {\n"
             "    this.taskQueue.put(task);\n"
             "  }\n"
             "\n"
             "  int run() {\n"
             "    var completed = 0;\n"
             "    while (this.taskQueue.isEmpty() == false) {\n"
             "      var task = this.taskQueue.take();\n"
             "      try {\n"
             "        task.execute();\n"
             "        completed += 1;\n"
             "      } catch (Exception e) {\n"
             "        Log.warn(\"task failed; resubmitting\");\n"
             "        Thread.sleep(20);\n") +
         requeue +
         "      }\n"
         "    }\n"
         "    return completed;\n"
         "  }\n"
         "}\n";
}

constexpr const char* kListing3Tests = R"mj(
class Listing3Scenario {
  String run() {
    var processor = new TaskProcessor();
    var normal = new TezTask();
    normal.init("etl-1");
    var canceled = new TezTask();
    canceled.init("etl-2");
    canceled.isShutdown = true;
    processor.submit(normal);
    processor.submit(canceled);
    var completed = processor.run();
    return "drain finished; completed=" + completed + " (canceled task dropped)";
  }
}
class TaskProcessorTest {
  void testDrainNormalTask() {
    var processor = new TaskProcessor();
    var task = new TezTask();
    task.init("etl-1");
    processor.submit(task);
    Assert.assertEquals(1, processor.run());
  }
}
)mj";

// ---------------------------------------------------------------------------
// Listing 4 — HBASE-20492: the state-machine step is implicitly retried with
// state unchanged, but no delay is taken, congesting the executor. The patch
// adds exponential backoff. WASABI's missing-delay oracle catches the buggy
// variant; the LLM's Q2 prompt agrees.
// ---------------------------------------------------------------------------

std::string Listing4Source(bool fixed) {
  std::string backoff;
  if (fixed) {
    backoff =
        "            // Fix adds delay before the implicit retry (HBASE-20492).\n"
        "            var backoff = 1000 * Math.pow(2, Math.min(this.attempts, 5));\n"
        "            Thread.sleep(backoff);\n";
  } else {
    backoff =
        "            // State deliberately unchanged: the executor retries this\n"
        "            // step immediately.\n";
  }
  return std::string(
             "class UnassignProcedure {\n"
             "  int state = 1;\n"
             "  int attempts = 0;\n"
             "\n"
             "  String executeWithRetries() {\n"
             "    while (true) {\n"
             "      switch (this.state) {\n"
             "        case 1:\n"
             "          try {\n"
             "            this.markRegionAsClosing();\n"
             "            this.state = 2;\n"
             "          } catch (RemoteException e) {\n"
             "            this.attempts += 1;\n"
             "            if (this.attempts > 20) {\n"
             "              return \"failed\";\n"
             "            }\n") +
         backoff +
         "          }\n"
         "          break;\n"
         "        case 2:\n"
         "          this.sendFinish();\n"
         "          this.state = 3;\n"
         "          break;\n"
         "        default:\n"
         "          return \"done\";\n"
         "      }\n"
         "    }\n"
         "  }\n"
         "\n"
         "  void markRegionAsClosing() throws RemoteException {\n"
         "    Log.debug(\"marking region as closing\");\n"
         "  }\n"
         "\n"
         "  void sendFinish() {\n"
         "    Log.debug(\"region transition finished\");\n"
         "  }\n"
         "}\n";
}

constexpr const char* kListing4Tests = R"mj(
class UnassignProcedureTest {
  void testExecute() {
    var procedure = new UnassignProcedure();
    Assert.assertEquals("done", procedure.executeWithRetries());
  }
}
)mj";

std::vector<PaperListing> BuildListings() {
  std::vector<PaperListing> listings;

  {
    PaperListing listing;
    listing.id = "Listing 1";
    listing.issue_id = "KAFKA-6829";
    listing.title = "Recoverable error code missing from the retryable set";
    listing.description =
        "The commit response handler forgets UNKNOWN_TOPIC_OR_PARTITION, which is "
        "transient while a broker initializes; the commit is lost instead of retried. "
        "Error-code driven and single-site: outside WASABI's detectors, so the evidence "
        "is behavioral.";
    listing.evidence = ListingEvidence::kBehavioral;
    listing.coordinator = "ConsumerCoordinator.commitWithRetries";
    listing.buggy_source = Listing1Source(/*fixed=*/false);
    listing.fixed_source = Listing1Source(/*fixed=*/true);
    listing.test_source = kListing1Tests;
    listing.file_name = "listing1/ConsumerCoordinator.mj";
    listings.push_back(std::move(listing));
  }
  {
    PaperListing listing;
    listing.id = "Listing 2";
    listing.issue_id = "HADOOP-16683";
    listing.title = "Non-recoverable error retried when wrapped";
    listing.description =
        "AccessControlException is correctly terminal, but a HadoopException wrapper "
        "around it is retried wholesale; the patch unwraps the cause. Single-site wrong "
        "policy: behavioral evidence (wasted attempts + backoff against a permanent "
        "permission error).";
    listing.evidence = ListingEvidence::kBehavioral;
    listing.coordinator = "WebHdfsFileSystem.run";
    listing.buggy_source = Listing2Source(/*fixed=*/false);
    listing.fixed_source = Listing2Source(/*fixed=*/true);
    listing.test_source = kListing2Tests;
    listing.file_name = "listing2/WebHdfsFileSystem.mj";
    listings.push_back(std::move(listing));
  }
  {
    PaperListing listing;
    listing.id = "Listing 3";
    listing.issue_id = "HIVE-23894";
    listing.title = "Canceled task re-enqueued forever";
    listing.description =
        "The task processor treats a canceled TezTask as failed and resubmits it "
        "unconditionally; the patch checks isShutdown. The buggy drain never terminates "
        "(virtual 15-minute budget trips), the patched one completes.";
    listing.evidence = ListingEvidence::kBehavioral;
    listing.coordinator = "TaskProcessor.run";
    listing.buggy_source = Listing3Source(/*fixed=*/false);
    listing.fixed_source = Listing3Source(/*fixed=*/true);
    listing.test_source = kListing3Tests;
    listing.file_name = "listing3/TaskProcessor.mj";
    listings.push_back(std::move(listing));
  }
  {
    PaperListing listing;
    listing.id = "Listing 4";
    listing.issue_id = "HBASE-20492";
    listing.title = "State-machine step retried without delay";
    listing.description =
        "REGION_TRANSITION_DISPATCH failures leave the state unchanged so the executor "
        "re-runs the step, but no delay is taken; the patch adds exponential backoff. "
        "WASABI's missing-delay oracle flags the buggy variant and stays quiet on the "
        "patched one.";
    listing.evidence = ListingEvidence::kWasabiReport;
    listing.expected_type = BugType::kWhenMissingDelay;
    listing.coordinator = "UnassignProcedure.executeWithRetries";
    listing.buggy_source = Listing4Source(/*fixed=*/false);
    listing.fixed_source = Listing4Source(/*fixed=*/true);
    listing.test_source = kListing4Tests;
    listing.file_name = "listing4/UnassignProcedure.mj";
    listings.push_back(std::move(listing));
  }
  return listings;
}

}  // namespace

const std::vector<PaperListing>& PaperListings() {
  static const std::vector<PaperListing>* kListings =
      new std::vector<PaperListing>(BuildListings());
  return *kListings;
}

}  // namespace wasabi
