// The paper's code listings as executable mj programs.
//
// Each of the four listings in §2 is transliterated twice: the buggy code as
// reported in the issue, and the developers' patch (the '+' lines in the
// paper). Both variants share the same unit tests, so WASABI's verdict — or,
// for the bug classes WASABI cannot detect, the observable run-time behavior —
// can be compared across the patch like a regression suite distilled from the
// study.

#ifndef WASABI_SRC_STUDY_LISTINGS_H_
#define WASABI_SRC_STUDY_LISTINGS_H_

#include <string>
#include <vector>

#include "src/core/report.h"

namespace wasabi {

// How the listing's defect is expected to manifest in this reproduction.
enum class ListingEvidence : uint8_t {
  kWasabiReport,   // WASABI reports the bug on the buggy variant only.
  kBehavioral,     // Observable behavior differs (WASABI cannot detect it).
};

struct PaperListing {
  std::string id;           // "Listing 4".
  std::string issue_id;     // "HBASE-20492".
  std::string title;
  std::string description;  // What the bug is and what the patch does.
  ListingEvidence evidence = ListingEvidence::kWasabiReport;
  BugType expected_type = BugType::kWhenMissingDelay;  // For kWasabiReport.
  std::string coordinator;  // Qualified method carrying the defect.
  std::string buggy_source;
  std::string fixed_source;
  std::string test_source;  // Shared by both variants.
  std::string file_name;    // e.g. "listing4/UnassignProcedure.mj".
};

// The four §2 listings (Listing 1 KAFKA-6829, Listing 2 HADOOP-16683,
// Listing 3 HIVE-23894, Listing 4 HBASE-20492).
const std::vector<PaperListing>& PaperListings();

}  // namespace wasabi

#endif  // WASABI_SRC_STUDY_LISTINGS_H_
