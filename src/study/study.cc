#include "src/study/study.h"

#include <algorithm>
#include <cassert>

namespace wasabi {

const char* StudyRootCauseName(StudyRootCause cause) {
  switch (cause) {
    case StudyRootCause::kWrongPolicy:
      return "Wrong retry policy";
    case StudyRootCause::kMissingMechanism:
      return "Missing or disabled retry mechanism";
    case StudyRootCause::kDelay:
      return "Delay problem";
    case StudyRootCause::kCap:
      return "Cap problem";
    case StudyRootCause::kStateReset:
      return "Improper state reset";
    case StudyRootCause::kJobTracking:
      return "Broken/raced job tracking";
    case StudyRootCause::kOther:
      return "Other";
  }
  return "unknown";
}

StudyCategory CategoryOf(StudyRootCause cause) {
  switch (cause) {
    case StudyRootCause::kWrongPolicy:
    case StudyRootCause::kMissingMechanism:
      return StudyCategory::kIf;
    case StudyRootCause::kDelay:
    case StudyRootCause::kCap:
      return StudyCategory::kWhen;
    default:
      return StudyCategory::kHow;
  }
}

const char* StudyCategoryName(StudyCategory category) {
  switch (category) {
    case StudyCategory::kIf:
      return "IF retry should be performed";
    case StudyCategory::kWhen:
      return "WHEN retry should be performed";
    case StudyCategory::kHow:
      return "HOW to execute retry";
  }
  return "unknown";
}

const char* StudySeverityName(StudySeverity severity) {
  switch (severity) {
    case StudySeverity::kBlocker:
      return "blocker";
    case StudySeverity::kCritical:
      return "critical";
    case StudySeverity::kMajor:
      return "major";
    case StudySeverity::kMinor:
      return "minor";
    case StudySeverity::kUnlabeled:
      return "unlabeled";
  }
  return "unknown";
}

namespace {

StudyIssue Pinned(const char* id, const char* app, StudyRootCause cause,
                  RetryMechanism mechanism, StudyTrigger trigger, StudySeverity severity,
                  bool regression, const char* summary) {
  StudyIssue issue;
  issue.id = id;
  issue.app = app;
  issue.root_cause = cause;
  issue.mechanism = mechanism;
  issue.trigger = trigger;
  issue.severity = severity;
  issue.regression_test_added = regression;
  issue.summary = summary;
  issue.pinned = true;
  return issue;
}

const char* SummaryFor(StudyRootCause cause) {
  switch (cause) {
    case StudyRootCause::kWrongPolicy:
      return "retry-or-not decision wrong for at least one error type";
    case StudyRootCause::kMissingMechanism:
      return "a recoverable failure path has no retry support at all";
    case StudyRootCause::kDelay:
      return "retry attempts issued back-to-back without delay/backoff";
    case StudyRootCause::kCap:
      return "retry attempts unbounded or mis-counted against the cap";
    case StudyRootCause::kStateReset:
      return "partial work from a failed attempt not cleaned up before retry";
    case StudyRootCause::kJobTracking:
      return "original and retried jobs race on shared bookkeeping";
    case StudyRootCause::kOther:
      return "miscellaneous retry-execution defect";
  }
  return "";
}

std::vector<StudyIssue> BuildDataset() {
  std::vector<StudyIssue> issues;

  // --- The thirteen issues the paper discusses by name ----------------------
  issues.push_back(Pinned(
      "KAFKA-6829", "kafka", StudyRootCause::kWrongPolicy, RetryMechanism::kQueue,
      StudyTrigger::kErrorCode, StudySeverity::kMajor, true,
      "UNKNOWN_TOPIC_OR_PARTITION missing from the commit response handler's retryable set"));
  issues.push_back(Pinned(
      "HBASE-25743", "hbase", StudyRootCause::kWrongPolicy, RetryMechanism::kLoop,
      StudyTrigger::kException, StudySeverity::kMajor, true,
      "Zookeeper upgrade introduced KeeperException.RequestTimeout, unretried for a year"));
  issues.push_back(Pinned(
      "KAFKA-12339", "kafka", StudyRootCause::kWrongPolicy, RetryMechanism::kLoop,
      StudyTrigger::kException, StudySeverity::kCritical, true,
      "library change surfaced UnknownTopicOrPartitionException, callers did not retry it"));
  issues.push_back(Pinned(
      "HADOOP-16580", "hadoop", StudyRootCause::kWrongPolicy, RetryMechanism::kLoop,
      StudyTrigger::kException, StudySeverity::kMajor, true,
      "IOException retried wholesale although AccessControlException is non-recoverable"));
  issues.push_back(Pinned(
      "HADOOP-16683", "hadoop", StudyRootCause::kWrongPolicy, RetryMechanism::kLoop,
      StudyTrigger::kException, StudySeverity::kMajor, true,
      "AccessControlException wrapped in HadoopException gets retried; fix unwraps the cause"));
  issues.push_back(Pinned(
      "ELASTICSEARCH-53687", "elasticsearch", StudyRootCause::kWrongPolicy,
      RetryMechanism::kQueue, StudyTrigger::kException, StudySeverity::kMajor, true,
      "ResultsPersisterService treats job cancellation as recoverable and rewrites forever"));
  issues.push_back(Pinned(
      "HIVE-23894", "hive", StudyRootCause::kWrongPolicy, RetryMechanism::kQueue,
      StudyTrigger::kException, StudySeverity::kMajor, true,
      "canceled TezTask re-submitted to the task queue; fix checks isShutdown"));
  issues.push_back(Pinned(
      "HIVE-20349", "hive", StudyRootCause::kMissingMechanism, RetryMechanism::kLoop,
      StudyTrigger::kException, StudySeverity::kMajor, false,
      "segment fetch failures never retried against other nodes holding redundant data"));
  issues.push_back(Pinned(
      "HBASE-20492", "hbase", StudyRootCause::kDelay, RetryMechanism::kStateMachine,
      StudyTrigger::kException, StudySeverity::kCritical, true,
      "UnassignProcedure re-runs REGION_TRANSITION_DISPATCH with no delay, congesting the "
      "executor"));
  issues.push_back(Pinned(
      "HDFS-15439", "hadoop", StudyRootCause::kCap, RetryMechanism::kLoop,
      StudyTrigger::kException, StudySeverity::kMajor, true,
      "negative dfs.mover.retry.max.attempts makes `retries == cap` unreachable: infinite "
      "retry"));
  issues.push_back(Pinned(
      "YARN-8362", "hadoop", StudyRootCause::kCap, RetryMechanism::kStateMachine,
      StudyTrigger::kException, StudySeverity::kMajor, true,
      "attempt counter incremented twice per transition failure halves the configured cap"));
  issues.push_back(Pinned(
      "SPARK-27630", "spark", StudyRootCause::kJobTracking, RetryMechanism::kQueue,
      StudyTrigger::kException, StudySeverity::kMajor, true,
      "zombie stages share stageId with retried stages and corrupt stageIdToNumTasks"));
  issues.push_back(Pinned(
      "HBASE-20616", "hbase", StudyRootCause::kStateReset, RetryMechanism::kStateMachine,
      StudyTrigger::kException, StudySeverity::kMajor, true,
      "CREATE_FS_LAYOUT retry trips over files written by the failed attempt"));

  // --- Synthesized remainder, matching every aggregate exactly ---------------
  struct AppFill {
    const char* app;
    const char* prefix;
    int base_number;
    int remaining;
  };
  AppFill apps[] = {
      {"elasticsearch", "ELASTICSEARCH", 41200, 10},
      {"hadoop", "HADOOP", 15800, 11},
      {"hbase", "HBASE", 21300, 12},
      {"hive", "HIVE", 19700, 9},
      {"kafka", "KAFKA", 7800, 7},
      {"spark", "SPARK", 24100, 8},
  };
  // Remaining pools after subtracting the pinned issues from the paper totals.
  std::vector<std::pair<StudyRootCause, int>> causes = {
      {StudyRootCause::kWrongPolicy, 10}, {StudyRootCause::kMissingMechanism, 7},
      {StudyRootCause::kDelay, 9},        {StudyRootCause::kCap, 11},
      {StudyRootCause::kStateReset, 11},  {StudyRootCause::kJobTracking, 7},
      {StudyRootCause::kOther, 2},
  };
  std::vector<std::pair<RetryMechanism, int>> mechanisms = {
      {RetryMechanism::kLoop, 33},
      {RetryMechanism::kQueue, 13},
      {RetryMechanism::kStateMachine, 11},
  };
  std::vector<std::pair<StudyTrigger, int>> triggers = {
      {StudyTrigger::kException, 37},
      {StudyTrigger::kErrorCode, 20},
  };
  std::vector<std::pair<StudySeverity, int>> severities = {
      {StudySeverity::kMajor, 34},   {StudySeverity::kUnlabeled, 10},
      {StudySeverity::kCritical, 5}, {StudySeverity::kBlocker, 4},
      {StudySeverity::kMinor, 4},
  };
  int regression_remaining = 30;  // Of 57 synthesized (42 total minus 12 pinned).

  auto take_max = [](auto& pool) {
    auto it = std::max_element(pool.begin(), pool.end(), [](const auto& a, const auto& b) {
      return a.second < b.second;
    });
    assert(it != pool.end() && it->second > 0);
    --it->second;
    return it->first;
  };

  int synthesized = 0;
  for (AppFill& fill : apps) {
    for (int i = 0; i < fill.remaining; ++i, ++synthesized) {
      StudyIssue issue;
      issue.id = std::string(fill.prefix) + "-" + std::to_string(fill.base_number + i * 37);
      issue.app = fill.app;
      issue.root_cause = take_max(causes);
      issue.mechanism = take_max(mechanisms);
      issue.trigger = take_max(triggers);
      issue.severity = take_max(severities);
      issue.regression_test_added = regression_remaining > 0 && synthesized % 2 == 0;
      if (issue.regression_test_added) {
        --regression_remaining;
      }
      issue.summary = SummaryFor(issue.root_cause);
      issues.push_back(std::move(issue));
    }
  }
  // Distribute any leftover regression flags onto non-flagged synthesized
  // records (keeps the 42/70 share exact regardless of parity).
  for (size_t i = 13; i < issues.size() && regression_remaining > 0; ++i) {
    if (!issues[i].regression_test_added) {
      issues[i].regression_test_added = true;
      --regression_remaining;
    }
  }
  assert(regression_remaining == 0);
  assert(issues.size() == 70);
  return issues;
}

}  // namespace

const std::vector<StudyIssue>& StudyDataset() {
  static const std::vector<StudyIssue>* kDataset = new std::vector<StudyIssue>(BuildDataset());
  return *kDataset;
}

std::map<std::string, int> StudyCountByApp() {
  std::map<std::string, int> counts;
  for (const StudyIssue& issue : StudyDataset()) {
    counts[issue.app] += 1;
  }
  return counts;
}

std::map<StudyRootCause, int> StudyCountByRootCause() {
  std::map<StudyRootCause, int> counts;
  for (const StudyIssue& issue : StudyDataset()) {
    counts[issue.root_cause] += 1;
  }
  return counts;
}

std::map<StudyCategory, int> StudyCountByCategory() {
  std::map<StudyCategory, int> counts;
  for (const StudyIssue& issue : StudyDataset()) {
    counts[CategoryOf(issue.root_cause)] += 1;
  }
  return counts;
}

std::map<RetryMechanism, int> StudyCountByMechanism() {
  std::map<RetryMechanism, int> counts;
  for (const StudyIssue& issue : StudyDataset()) {
    counts[issue.mechanism] += 1;
  }
  return counts;
}

std::map<StudySeverity, int> StudyCountBySeverity() {
  std::map<StudySeverity, int> counts;
  for (const StudyIssue& issue : StudyDataset()) {
    counts[issue.severity] += 1;
  }
  return counts;
}

int StudyExceptionTriggeredCount() {
  int count = 0;
  for (const StudyIssue& issue : StudyDataset()) {
    if (issue.trigger == StudyTrigger::kException) {
      ++count;
    }
  }
  return count;
}

int StudyRegressionTestCount() {
  int count = 0;
  for (const StudyIssue& issue : StudyDataset()) {
    if (issue.regression_test_added) {
      ++count;
    }
  }
  return count;
}

}  // namespace wasabi
