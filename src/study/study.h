// The §2 issue-study dataset: 70 real-world retry issues across six
// applications (Table 1), categorized by root cause (Table 2), retry
// mechanism, trigger kind, severity, and whether developers added a
// regression test (§2.5).
//
// The thirteen issues the paper discusses by name are encoded with their real
// identifiers and summaries; the remaining records are synthesized with
// plausible identifiers so that every aggregate the paper reports is
// reproduced exactly (the per-app totals, the Table-2 root-cause counts, the
// 55/25/20 mechanism split, the 70/30 exception/error-code split, the severity
// distribution, and the 42/70 regression-test share).

#ifndef WASABI_SRC_STUDY_STUDY_H_
#define WASABI_SRC_STUDY_STUDY_H_

#include <map>
#include <string>
#include <vector>

#include "src/analysis/retry_model.h"

namespace wasabi {

enum class StudyRootCause : uint8_t {
  kWrongPolicy,        // IF: wrong retry policy.
  kMissingMechanism,   // IF: missing or disabled retry mechanism.
  kDelay,              // WHEN: delay problem.
  kCap,                // WHEN: cap problem.
  kStateReset,         // HOW: improper state reset.
  kJobTracking,        // HOW: broken/raced job tracking.
  kOther,              // HOW: other.
};

const char* StudyRootCauseName(StudyRootCause cause);

// The three top-level categories of Table 2.
enum class StudyCategory : uint8_t { kIf, kWhen, kHow };
StudyCategory CategoryOf(StudyRootCause cause);
const char* StudyCategoryName(StudyCategory category);

enum class StudySeverity : uint8_t { kBlocker, kCritical, kMajor, kMinor, kUnlabeled };
const char* StudySeverityName(StudySeverity severity);

enum class StudyTrigger : uint8_t { kException, kErrorCode };

struct StudyIssue {
  std::string id;    // "HBASE-20492" or a synthesized identifier.
  std::string app;   // "hadoop", "hbase", "hive", "kafka", "spark", "elasticsearch".
  StudyRootCause root_cause = StudyRootCause::kWrongPolicy;
  RetryMechanism mechanism = RetryMechanism::kLoop;
  StudyTrigger trigger = StudyTrigger::kException;
  StudySeverity severity = StudySeverity::kMajor;
  bool regression_test_added = false;
  std::string summary;
  bool pinned = false;  // True for the issues the paper discusses by name.
};

// The full 70-issue dataset (stable order, built once).
const std::vector<StudyIssue>& StudyDataset();

// Aggregations used by the Table-1/Table-2/§2.5 benches.
std::map<std::string, int> StudyCountByApp();
std::map<StudyRootCause, int> StudyCountByRootCause();
std::map<StudyCategory, int> StudyCountByCategory();
std::map<RetryMechanism, int> StudyCountByMechanism();
std::map<StudySeverity, int> StudyCountBySeverity();
int StudyExceptionTriggeredCount();
int StudyRegressionTestCount();

}  // namespace wasabi

#endif  // WASABI_SRC_STUDY_STUDY_H_
