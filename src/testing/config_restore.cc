#include "src/testing/config_restore.h"

#include <algorithm>
#include <cctype>
#include <unordered_set>

#include "src/lang/ast.h"

namespace wasabi {

namespace {

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool IsRetryIshKey(std::string_view key) {
  std::string lower(key);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  for (std::string_view word : {"retry", "retries", "attempt", "backoff"}) {
    if (lower.find(word) != std::string::npos) {
      return true;
    }
  }
  return false;
}

}  // namespace

ConfigRestorationResult ScanTestsForRetryRestrictions(const mj::Program& program,
                                                      int64_t max_restricted_value) {
  ConfigRestorationResult result;
  std::unordered_set<std::string> seen_keys;

  for (const auto& unit : program.units()) {
    for (const mj::ClassDecl* cls : unit->classes()) {
      if (!EndsWith(cls->name, "Test")) {
        continue;
      }
      for (const mj::MethodDecl* method : cls->methods) {
        if (method->body == nullptr) {
          continue;
        }
        mj::WalkStmts(
            method->body, [](const mj::Stmt&) {},
            [&](const mj::Expr& expr) {
              if (expr.kind != mj::AstKind::kCall) {
                return;
              }
              const auto& call = static_cast<const mj::CallExpr&>(expr);
              if (call.callee != "set" || call.base == nullptr ||
                  call.base->kind != mj::AstKind::kName ||
                  static_cast<const mj::NameExpr*>(call.base)->name != "Config") {
                return;
              }
              if (call.args.size() != 2 ||
                  call.args[0]->kind != mj::AstKind::kStringLiteral ||
                  call.args[1]->kind != mj::AstKind::kIntLiteral) {
                return;
              }
              const std::string& key =
                  static_cast<const mj::StringLiteralExpr*>(call.args[0])->value;
              int64_t value = static_cast<const mj::IntLiteralExpr*>(call.args[1])->value;
              if (!IsRetryIshKey(key) || value > max_restricted_value || value < 0) {
                return;
              }
              RetryConfigRestriction restriction;
              restriction.test_class = cls->name;
              restriction.test_method = method->name;
              restriction.key = key;
              restriction.restricted_value = value;
              result.restrictions.push_back(std::move(restriction));
              if (seen_keys.insert(key).second) {
                result.keys_to_freeze.push_back(key);
              }
            });
      }
    }
  }
  return result;
}

}  // namespace wasabi
