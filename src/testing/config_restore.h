// Restoring default retry configurations in unit tests (§3.1.4).
//
// Developers sometimes deliberately restrict retry in unit tests by overriding
// the retry-attempt configuration to 0, 1, or 2. The paper neutralizes these
// overrides with a scanning script so injected faults exercise the *intended*
// retry behavior. Here the scan walks test-class ASTs looking for
// `Config.set("<retry-ish key>", <small literal>)` calls; the returned keys
// are frozen on the interpreter so the in-test overrides become no-ops, and
// the application's documented defaults (provided by the corpus manifest) are
// applied instead.

#ifndef WASABI_SRC_TESTING_CONFIG_RESTORE_H_
#define WASABI_SRC_TESTING_CONFIG_RESTORE_H_

#include <string>
#include <vector>

#include "src/lang/sema.h"

namespace wasabi {

struct RetryConfigRestriction {
  std::string test_class;
  std::string test_method;
  std::string key;
  int64_t restricted_value = 0;
};

struct ConfigRestorationResult {
  std::vector<RetryConfigRestriction> restrictions;
  // Unique keys to freeze, in first-seen order.
  std::vector<std::string> keys_to_freeze;
};

// Scans all `*Test` classes for retry-restricting Config.set calls.
// A key is retry-ish when it contains one of: retry, retries, attempt, backoff.
// A value is restricting when it is an int literal <= `max_restricted_value`.
ConfigRestorationResult ScanTestsForRetryRestrictions(const mj::Program& program,
                                                      int64_t max_restricted_value = 2);

}  // namespace wasabi

#endif  // WASABI_SRC_TESTING_CONFIG_RESTORE_H_
