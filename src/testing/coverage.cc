#include "src/testing/coverage.h"

#include <unordered_set>

namespace wasabi {

CoverageRecorder::CoverageRecorder(const std::vector<RetryLocation>* locations)
    : locations_(locations), seen_(locations->size(), false) {}

void CoverageRecorder::OnCall(const CallEvent& event, Interpreter& /*interp*/) {
  for (size_t i = 0; i < locations_->size(); ++i) {
    if (seen_[i]) {
      continue;
    }
    const RetryLocation& location = (*locations_)[i];
    if (location.retried_method == event.callee && location.coordinator == event.caller) {
      seen_[i] = true;
      hits_.push_back(i);
    }
  }
}

void CoverageRecorder::Reset() {
  seen_.assign(locations_->size(), false);
  hits_.clear();
}

CoverageMap MapCoverage(const TestRunner& runner, const std::vector<TestCase>& tests,
                        const std::vector<RetryLocation>& locations) {
  CoverageMap coverage;
  for (const TestCase& test : tests) {
    CoverageRecorder recorder(&locations);
    runner.RunTest(test, {&recorder});
    if (!recorder.hits().empty()) {
      coverage[test.qualified_name] = recorder.hits();
    }
  }
  return coverage;
}

std::vector<PlanEntry> PlanInjections(const CoverageMap& coverage, size_t location_count) {
  std::vector<PlanEntry> plan;
  std::vector<bool> covered(location_count, false);
  bool progress = true;
  while (progress) {
    progress = false;
    for (const auto& [test, hit_indices] : coverage) {
      for (size_t index : hit_indices) {
        if (index < location_count && !covered[index]) {
          covered[index] = true;
          plan.push_back(PlanEntry{test, index});
          progress = true;
          break;  // One location per test per pass: spreads over tests.
        }
      }
    }
  }
  return plan;
}

std::vector<PlanEntry> NaivePlan(const CoverageMap& coverage) {
  std::vector<PlanEntry> plan;
  for (const auto& [test, hit_indices] : coverage) {
    for (size_t index : hit_indices) {
      plan.push_back(PlanEntry{test, index});
    }
  }
  return plan;
}

}  // namespace wasabi
