// Coverage mapping and fault-injection planning (§3.1.4).
//
// Before any fault is injected, WASABI instruments every retry location and
// runs the whole test suite once to learn which unit test covers which retry
// location. The planner then produces a list of {test, location} pairs such
// that every coverable location appears exactly once, greedily spreading the
// pairs over as many distinct tests as possible.

#ifndef WASABI_SRC_TESTING_COVERAGE_H_
#define WASABI_SRC_TESTING_COVERAGE_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "src/analysis/retry_model.h"
#include "src/interp/interpreter.h"
#include "src/testing/runner.h"

namespace wasabi {

// Records which of a fixed set of retry locations fire during a run.
// Locations are matched by (callee, caller) qualified names.
class CoverageRecorder : public CallInterceptor {
 public:
  explicit CoverageRecorder(const std::vector<RetryLocation>* locations);

  void OnCall(const CallEvent& event, Interpreter& interp) override;

  // Indices into the location vector, in order of first hit.
  const std::vector<size_t>& hits() const { return hits_; }
  void Reset();

 private:
  const std::vector<RetryLocation>* locations_;
  std::vector<bool> seen_;
  std::vector<size_t> hits_;
};

// test qualified name -> location indices covered (in first-hit order).
// std::map keeps iteration deterministic.
using CoverageMap = std::map<std::string, std::vector<size_t>>;

// Runs every test once with a CoverageRecorder attached.
CoverageMap MapCoverage(const TestRunner& runner, const std::vector<TestCase>& tests,
                        const std::vector<RetryLocation>& locations);

// One planned fault-injection experiment: inject at `location_index` while
// running `test`.
struct PlanEntry {
  std::string test;
  size_t location_index = 0;
};

// §3.1.4 planning: every covered location exactly once; unique tests maximized
// greedily by iterating tests round-robin and giving each its first uncovered
// location until all locations are planned.
std::vector<PlanEntry> PlanInjections(const CoverageMap& coverage, size_t location_count);

// The naive plan used as the paper's baseline (Table 6 "w/o planning"): every
// {test, covered location} pair.
std::vector<PlanEntry> NaivePlan(const CoverageMap& coverage);

}  // namespace wasabi

#endif  // WASABI_SRC_TESTING_COVERAGE_H_
