#include "src/testing/oracles.h"

#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace wasabi {

const char* OracleKindName(OracleKind kind) {
  switch (kind) {
    case OracleKind::kMissingCap:
      return "missing-cap";
    case OracleKind::kMissingDelay:
      return "missing-delay";
    case OracleKind::kDifferentException:
      return "different-exception";
  }
  return "unknown";
}

const char* VerdictStabilityName(VerdictStability stability) {
  switch (stability) {
    case VerdictStability::kStable:
      return "stable";
    case VerdictStability::kFlaky:
      return "flaky";
    case VerdictStability::kChaosInduced:
      return "chaos-induced";
  }
  return "unknown";
}

namespace {

std::string StructureGroupKey(const char* prefix, const RetryLocation& location) {
  // One cap/delay bug per retry structure: group by where the coordinator is.
  return std::string(prefix) + "|" + location.file + "|" + location.coordinator;
}

bool StackContains(const std::vector<std::string>& stack, const std::string& method) {
  for (const std::string& frame : stack) {
    if (frame == method) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::vector<OracleReport> EvaluateOracles(const TestRunRecord& record,
                                          const RetryLocation& location,
                                          const OracleOptions& options) {
  std::vector<OracleReport> reports;

  // --- Missing cap -----------------------------------------------------------
  bool cap_hit = false;
  std::string cap_detail;
  if (!options.context_aware_cap) {
    for (size_t i = 0; i < record.injected_points.size(); ++i) {
      int count = i < record.injection_counts.size() ? record.injection_counts[i] : 0;
      if (count >= options.cap_injection_threshold) {
        cap_hit = true;
        cap_detail = "injection point fired " + std::to_string(count) + " times (threshold " +
                     std::to_string(options.cap_injection_threshold) + ")";
      }
    }
  } else {
    // §4.5 mitigation: group injections by (point, coordinator activation) so
    // harness loops over many tasks do not accumulate across activations.
    std::unordered_map<std::string, int> per_activation;
    for (const LogEntry& entry : record.log.entries()) {
      if (entry.kind != LogEntryKind::kInjection) {
        continue;
      }
      std::string key = entry.injection_callee + "<-" + entry.injection_caller + ":" +
                        entry.injection_exception + "@" +
                        std::to_string(entry.caller_activation);
      int count = ++per_activation[key];
      if (count >= options.cap_injection_threshold) {
        cap_hit = true;
        cap_detail = "injection point fired " + std::to_string(count) +
                     " times within one coordinator activation (threshold " +
                     std::to_string(options.cap_injection_threshold) + ")";
      }
    }
  }
  if (!cap_hit && record.outcome.status == TestStatus::kTimeout) {
    cap_hit = true;
    // Name the specific abort: "ran out of virtual time" and "spun through
    // the step budget" are different retry pathologies (the former is the
    // paper's 15-minute timeout, the latter a sleepless runaway loop), and
    // stack exhaustion points at unbounded retry recursion.
    switch (record.outcome.abort_kind) {
      case AbortReason::kStepBudget:
        cap_detail = "test exhausted the step budget (runaway retry loop without sleeps)";
        break;
      case AbortReason::kVirtualTimeBudget:
        cap_detail = "test exceeded the virtual-time budget (retries kept it alive past the "
                     "test timeout)";
        break;
      case AbortReason::kStackOverflow:
        cap_detail = "test overflowed the call stack (unbounded retry recursion)";
        break;
    }
  }
  if (cap_hit) {
    OracleReport report;
    report.kind = OracleKind::kMissingCap;
    report.test = record.test.qualified_name;
    report.location = location;
    report.detail = cap_detail;
    report.group_key = StructureGroupKey("cap", location);
    reports.push_back(std::move(report));
  }

  // --- Missing delay ---------------------------------------------------------
  // Scan the log: consecutive injections at the same point must have a sleep
  // from the coordinator somewhere in between.
  int consecutive_pairs = 0;
  int pairs_with_sleep = 0;
  {
    // Last log index of an injection per point key, and whether a coordinator
    // sleep was seen since.
    struct PointState {
      bool armed = false;  // An injection seen; watching for the next one.
      bool slept_since = false;
    };
    std::unordered_map<std::string, PointState> states;
    for (const LogEntry& entry : record.log.entries()) {
      if (entry.kind == LogEntryKind::kSleep) {
        if (StackContains(entry.call_stack, location.coordinator)) {
          for (auto& [key, state] : states) {
            if (state.armed) {
              state.slept_since = true;
            }
          }
        }
        continue;
      }
      if (entry.kind != LogEntryKind::kInjection) {
        continue;
      }
      std::string key =
          entry.injection_callee + "<-" + entry.injection_caller + ":" + entry.injection_exception;
      PointState& state = states[key];
      if (state.armed) {
        ++consecutive_pairs;
        if (state.slept_since) {
          ++pairs_with_sleep;
        }
      }
      state.armed = true;
      state.slept_since = false;
    }
  }
  if (consecutive_pairs + 1 >= options.delay_min_injections && consecutive_pairs > 0 &&
      pairs_with_sleep == 0) {
    OracleReport report;
    report.kind = OracleKind::kMissingDelay;
    report.test = record.test.qualified_name;
    report.location = location;
    report.detail = std::to_string(consecutive_pairs + 1) +
                    " retry attempts with no coordinator sleep in between";
    report.group_key = StructureGroupKey("delay", location);
    reports.push_back(std::move(report));
  }

  // --- Different exception ------------------------------------------------------
  bool crashed = record.outcome.status == TestStatus::kException;
  bool asserted = record.outcome.status == TestStatus::kAssertionFailed;
  if (asserted && options.assertions_require_single_injection) {
    int total_injections = 0;
    for (int count : record.injection_counts) {
      total_injections += count;
    }
    if (total_injections != 1) {
      asserted = false;
    }
  }
  if (crashed || asserted) {
    bool same_as_injected = false;
    for (const InjectionPoint& point : record.injected_points) {
      if (record.outcome.exception_class == point.exception) {
        same_as_injected = true;  // Correct give-up behavior: not a bug.
      }
      if (options.prune_wrapped_exceptions) {
        // §4.5 mitigation: a wrapper around the injected exception is the
        // fault propagating, not a new failure.
        for (const std::string& cause : record.outcome.cause_chain) {
          if (cause == point.exception) {
            same_as_injected = true;
          }
        }
      }
    }
    if (!same_as_injected) {
      OracleReport report;
      report.kind = OracleKind::kDifferentException;
      report.test = record.test.qualified_name;
      report.location = location;
      report.detail = (asserted ? "assertion failed: " : "crashed with ") +
                      record.outcome.exception_class +
                      (record.outcome.exception_message.empty()
                           ? ""
                           : " (" + record.outcome.exception_message + ")");
      std::ostringstream key;
      key << "diffexc|" << record.outcome.exception_class;
      for (const std::string& frame : record.outcome.crash_stack) {
        key << ";" << frame;
      }
      report.group_key = key.str();
      reports.push_back(std::move(report));
    }
  }

  return reports;
}

namespace {

// Dominance order for merging probed duplicates: chaos-induced beats flaky
// beats stable (mirrors DeduplicateBugs in src/core/report.cc).
int StabilityRank(VerdictStability stability) {
  switch (stability) {
    case VerdictStability::kStable:
      return 0;
    case VerdictStability::kFlaky:
      return 1;
    case VerdictStability::kChaosInduced:
      return 2;
  }
  return 0;
}

}  // namespace

std::vector<OracleReport> DeduplicateReports(std::vector<OracleReport> reports) {
  std::vector<OracleReport> unique;
  std::unordered_map<std::string, size_t> seen;  // Key -> index in `unique`.
  for (OracleReport& report : reports) {
    std::string key = std::string(OracleKindName(report.kind)) + "|" + report.group_key;
    auto [it, inserted] = seen.emplace(std::move(key), unique.size());
    if (inserted) {
      unique.push_back(std::move(report));
      continue;
    }
    // A later probed duplicate from another run may carry a more unstable
    // classification; the survivor takes the dominant one so downstream
    // consumers never see a bug as stable when any of its runs flipped.
    // With probed == false everywhere this is byte-identical to keep-first.
    OracleReport& survivor = unique[it->second];
    if (report.probed) {
      if (!survivor.probed ||
          StabilityRank(report.stability) > StabilityRank(survivor.stability)) {
        survivor.stability = report.stability;
        if (!report.flaky_cause.empty()) {
          survivor.flaky_cause = report.flaky_cause;
        }
      }
      survivor.probed = true;
      if (survivor.flaky_cause.empty() && !report.flaky_cause.empty()) {
        survivor.flaky_cause = report.flaky_cause;
      }
    }
  }
  return unique;
}

}  // namespace wasabi
