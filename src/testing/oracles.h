// The three retry-specific, application-agnostic test oracles (§3.1.3).
//
// "Missing cap": an injection point fired >= 100 times, or the test exceeded
// its (virtual) 15-minute budget — the retry has no effective cap.
//
// "Missing delay": between two consecutive injections at the same point there
// was no sleep issued from the coordinator method — the retry has no delay.
//
// "Different exception": the test crashed with an exception DIFFERENT from
// the injected one — evidence of a HOW bug (broken state after retry).
// Crashes that simply re-throw the injected exception are correct give-up
// behavior and are not reported; this also absorbs static-analysis
// inaccuracies (an injected non-trigger exception just crashes the test with
// itself). Assertion failures under injection count as different-exception
// evidence too (the existing test oracle caught corrupted state).

#ifndef WASABI_SRC_TESTING_ORACLES_H_
#define WASABI_SRC_TESTING_ORACLES_H_

#include <string>
#include <vector>

#include "src/analysis/retry_model.h"
#include "src/testing/test_model.h"

namespace wasabi {

enum class OracleKind : uint8_t {
  kMissingCap,
  kMissingDelay,
  kDifferentException,
};

const char* OracleKindName(OracleKind kind);

// Flakiness classification of a failing verdict (docs/FLAKINESS.md). Assigned
// by the N-repetition prober: kStable reproduces under timing perturbation,
// kFlaky diverges under it, kChaosInduced only reproduces in the chaos-
// degraded environment the run happened to execute in.
enum class VerdictStability : uint8_t {
  kStable,
  kFlaky,
  kChaosInduced,
};

const char* VerdictStabilityName(VerdictStability stability);

struct OracleReport {
  OracleKind kind = OracleKind::kMissingCap;
  std::string test;
  RetryLocation location;  // The injected retry location.
  std::string detail;
  // Reports with equal group keys are the same underlying bug: cap/delay
  // reports group per retry structure (file + coordinator), different-
  // exception reports group per crash stack (§4.1).
  std::string group_key;
  // Filled by the flakiness prober; `probed == false` (default) means the
  // verdict was never classified and all downstream output stays exactly as
  // it was before stability existed. `flaky_cause` is SimLLM's judged root
  // cause for non-stable classifications ("" = not judged).
  bool probed = false;
  VerdictStability stability = VerdictStability::kStable;
  std::string flaky_cause;
};

struct OracleOptions {
  // The paper's thresholds: 100 injections, or a 15-minute test run.
  int cap_injection_threshold = 100;
  // Minimum number of injections at a point before the delay oracle applies
  // (one attempt has no "in-between" to check).
  int delay_min_injections = 2;
  // Assertion failures count as HOW evidence only for single-injection (K=1)
  // runs: one transparent retry must not corrupt state. Under heavy injection
  // the application legitimately gives up, so downstream assertions failing is
  // expected, not a bug signal.
  bool assertions_require_single_injection = true;

  // --- §4.5 false-positive mitigations (off by default: the defaults model
  // --- the paper's evaluated prototype; these implement its future work).

  // Different-exception oracle: do not report a crash whose CAUSE CHAIN
  // contains the injected exception — the application merely wrapped the
  // injected fault in a generic exception (the paper's 5 HOW FPs).
  bool prune_wrapped_exceptions = false;

  // Missing-cap oracle: count injections per coordinator ACTIVATION instead of
  // globally, so a test harness that re-invokes a properly-capped retry for
  // many tasks no longer accumulates past the threshold (the paper's 8
  // missing-cap FPs).
  bool context_aware_cap = false;
};

// Evaluates all three oracles over one injected test run. `location` is the
// retry location the run targeted.
std::vector<OracleReport> EvaluateOracles(const TestRunRecord& record,
                                          const RetryLocation& location,
                                          const OracleOptions& options = {});

// Deduplicates reports by (kind, group_key), keeping first occurrences in order.
std::vector<OracleReport> DeduplicateReports(std::vector<OracleReport> reports);

}  // namespace wasabi

#endif  // WASABI_SRC_TESTING_ORACLES_H_
