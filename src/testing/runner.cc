#include "src/testing/runner.h"

#include <optional>
#include <sstream>

namespace wasabi {

Interpreter& InterpreterArena::Acquire(const mj::Program& program, const mj::ProgramIndex& index,
                                       const InterpOptions& options) {
  if (interp_ != nullptr && program_ == &program && index_ == &index && options_ == options) {
    interp_->ResetForRun();
    return *interp_;
  }
  interp_ = std::make_unique<Interpreter>(program, index, options);
  program_ = &program;
  index_ = &index;
  options_ = options;
  return *interp_;
}

const char* TestStatusName(TestStatus status) {
  switch (status) {
    case TestStatus::kPassed:
      return "passed";
    case TestStatus::kAssertionFailed:
      return "assertion-failed";
    case TestStatus::kException:
      return "exception";
    case TestStatus::kTimeout:
      return "timeout";
  }
  return "unknown";
}

namespace {

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.rfind(prefix, 0) == 0;
}

}  // namespace

TestRunner::TestRunner(const mj::Program& program, const mj::ProgramIndex& index,
                       RunnerOptions options)
    : program_(program), index_(index), options_(std::move(options)) {}

std::vector<TestCase> TestRunner::DiscoverTests() const {
  std::vector<TestCase> tests;
  for (const auto& unit : program_.units()) {
    for (const mj::ClassDecl* cls : unit->classes()) {
      if (!EndsWith(cls->name, "Test")) {
        continue;
      }
      for (const mj::MethodDecl* method : cls->methods) {
        if (StartsWith(method->name, "test") && method->body != nullptr &&
            method->params.empty()) {
          tests.push_back(TestCase{method->QualifiedName()});
        }
      }
    }
  }
  return tests;
}

TestRunRecord TestRunner::RunTest(const TestCase& test,
                                  std::vector<CallInterceptor*> interceptors,
                                  InterpreterArena* arena) const {
  return RunTest(test, std::move(interceptors), arena, RunPerturbation{});
}

TestRunRecord TestRunner::RunTest(const TestCase& test,
                                  std::vector<CallInterceptor*> interceptors,
                                  InterpreterArena* arena,
                                  const RunPerturbation& perturbation) const {
  TestRunRecord record;
  record.test = test;

  std::optional<Interpreter> local;
  Interpreter& interp = arena != nullptr ? arena->Acquire(program_, index_, options_.interp)
                                         : local.emplace(program_, index_, options_.interp);
  if (perturbation.virtual_clock_epoch_ms != 0) {
    interp.set_run_epoch_ms(perturbation.virtual_clock_epoch_ms);
  }
  interp.set_dispatch_observer(perturbation.dispatch_observer);
  interp.set_loop_observer(perturbation.loop_observer);
  if (perturbation.chaos_degraded_env) {
    interp.SetConfig("chaos.degraded", Value{true});
  }
  for (const auto& [key, value] : options_.config_overrides) {
    interp.SetConfig(key, value);
  }
  for (const std::string& key : options_.frozen_keys) {
    interp.FreezeConfig(key);
  }
  FaultInjector* injector = nullptr;
  for (CallInterceptor* interceptor : interceptors) {
    interp.AddInterceptor(interceptor);
    if (auto* as_injector = dynamic_cast<FaultInjector*>(interceptor); as_injector != nullptr) {
      injector = as_injector;
    }
  }

  try {
    interp.Invoke(test.qualified_name);
    record.outcome.status = TestStatus::kPassed;
  } catch (ThrownException& thrown) {
    const ObjectRef& exception = thrown.exception;
    record.outcome.status = index_.IsSubtype(exception->class_name(), "AssertionError")
                                ? TestStatus::kAssertionFailed
                                : TestStatus::kException;
    record.outcome.exception_class = exception->class_name();
    record.outcome.exception_message = exception->message();
    record.outcome.crash_stack = exception->origin_stack();
    ObjectRef cause = exception->cause();
    for (int depth = 0; cause != nullptr && depth < 8; ++depth) {
      record.outcome.cause_chain.push_back(cause->class_name());
      cause = cause->cause();
    }
  } catch (const ExecutionAborted& aborted) {
    record.outcome.status = TestStatus::kTimeout;
    record.outcome.abort_reason = AbortReasonName(aborted.reason);
    record.outcome.abort_kind = aborted.reason;
  }

  record.log = interp.log();
  record.virtual_duration_ms = interp.now_ms() - interp.run_epoch_ms();
  record.steps = interp.steps();
  record.loop_iterations = interp.loop_iterations();
  if (injector != nullptr) {
    record.injected_points = injector->points();
    record.injection_counts.reserve(injector->points().size());
    for (size_t i = 0; i < injector->points().size(); ++i) {
      record.injection_counts.push_back(injector->InjectionCount(i));
    }
  }
  return record;
}

}  // namespace wasabi
