// Unit-test discovery and execution over the mj interpreter.
//
// Tests follow the JUnit-ish convention the corpus uses: classes whose names
// end in "Test", methods whose names start with "test". Every run gets a
// FRESH interpreter state (clean singletons, clock, log) so runs are
// independent — the property the paper's planner relies on. The interpreter
// OBJECT may be reused across a worker's runs via InterpreterArena; reuse
// keeps warm storage only, never observable state.

#ifndef WASABI_SRC_TESTING_RUNNER_H_
#define WASABI_SRC_TESTING_RUNNER_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/interp/interpreter.h"
#include "src/testing/test_model.h"

namespace wasabi {

// Per-worker interpreter reuse (docs/PERFORMANCE.md): a campaign worker keeps
// one arena holding a warm Interpreter whose frame/value storage and dispatch
// cache survive across that worker's runs. Acquire() reconstructs only when
// the program/index/options change; otherwise ResetForRun() restores the
// fresh-run isolation contract (clean singletons, config, clock, log) without
// reallocating. Not thread-safe: each arena must be owned by exactly one
// worker at a time.
class InterpreterArena {
 public:
  Interpreter& Acquire(const mj::Program& program, const mj::ProgramIndex& index,
                       const InterpOptions& options);

 private:
  std::unique_ptr<Interpreter> interp_;
  const mj::Program* program_ = nullptr;
  const mj::ProgramIndex* index_ = nullptr;
  InterpOptions options_;
};

struct RunnerOptions {
  InterpOptions interp;
  // Config values applied before each run (e.g. restored retry defaults).
  std::vector<std::pair<std::string, Value>> config_overrides;
  // Keys whose mj-level Config.set calls are ignored (§3.1.4 restoration).
  std::vector<std::string> frozen_keys;
};

// Per-run perturbation applied on top of RunnerOptions (docs/FLAKINESS.md).
// Deliberately NOT part of InterpOptions: arenas compare options for warm
// reuse, and a perturbed probe repetition must still reuse the worker's warm
// interpreter.
struct RunPerturbation {
  // Virtual-clock epoch the run starts at. The time budget stays relative
  // (a skewed run gets the full allowance); Clock.nowMillis() observes the
  // skewed absolute clock — the flakiness prober's timing perturbation.
  int64_t virtual_clock_epoch_ms = 0;
  // Sets interpreter config "chaos.degraded" = true for this run, the seeded
  // degraded-environment chaos mode applications can branch on.
  bool chaos_degraded_env = false;
  // Non-owning; observes dispatch-cache resolutions for record/replay.
  DispatchObserver* dispatch_observer = nullptr;
  // Non-owning; observes while/for back-edges for the retry journal.
  LoopObserver* loop_observer = nullptr;
};

class TestRunner {
 public:
  TestRunner(const mj::Program& program, const mj::ProgramIndex& index,
             RunnerOptions options = {});

  // All `*Test.test*` methods, in declaration order.
  std::vector<TestCase> DiscoverTests() const;

  // Runs one test with optional extra interceptors (injector, coverage
  // recorder). Never throws: all outcomes are captured in the record.
  // With an arena, the run reuses the arena's warm interpreter (identical
  // observable behavior, no per-run construction); without one, a fresh
  // interpreter is built as before.
  TestRunRecord RunTest(const TestCase& test, std::vector<CallInterceptor*> interceptors = {},
                        InterpreterArena* arena = nullptr) const;

  // As above, with a per-run perturbation (clock epoch, degraded environment,
  // dispatch observer). The default RunPerturbation{} is behavior-identical to
  // the three-argument overload.
  TestRunRecord RunTest(const TestCase& test, std::vector<CallInterceptor*> interceptors,
                        InterpreterArena* arena, const RunPerturbation& perturbation) const;

  const RunnerOptions& options() const { return options_; }
  void set_options(RunnerOptions options) { options_ = std::move(options); }

 private:
  const mj::Program& program_;
  const mj::ProgramIndex& index_;
  RunnerOptions options_;
};

}  // namespace wasabi

#endif  // WASABI_SRC_TESTING_RUNNER_H_
