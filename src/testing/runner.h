// Unit-test discovery and execution over the mj interpreter.
//
// Tests follow the JUnit-ish convention the corpus uses: classes whose names
// end in "Test", methods whose names start with "test". Every run gets a
// FRESH interpreter (clean singletons, clock, log) so runs are independent —
// the property the paper's planner relies on.

#ifndef WASABI_SRC_TESTING_RUNNER_H_
#define WASABI_SRC_TESTING_RUNNER_H_

#include <string>
#include <utility>
#include <vector>

#include "src/interp/interpreter.h"
#include "src/testing/test_model.h"

namespace wasabi {

struct RunnerOptions {
  InterpOptions interp;
  // Config values applied before each run (e.g. restored retry defaults).
  std::vector<std::pair<std::string, Value>> config_overrides;
  // Keys whose mj-level Config.set calls are ignored (§3.1.4 restoration).
  std::vector<std::string> frozen_keys;
};

class TestRunner {
 public:
  TestRunner(const mj::Program& program, const mj::ProgramIndex& index,
             RunnerOptions options = {});

  // All `*Test.test*` methods, in declaration order.
  std::vector<TestCase> DiscoverTests() const;

  // Runs one test with optional extra interceptors (injector, coverage
  // recorder). Never throws: all outcomes are captured in the record.
  TestRunRecord RunTest(const TestCase& test,
                        std::vector<CallInterceptor*> interceptors = {}) const;

  const RunnerOptions& options() const { return options_; }
  void set_options(RunnerOptions options) { options_ = std::move(options); }

 private:
  const mj::Program& program_;
  const mj::ProgramIndex& index_;
  RunnerOptions options_;
};

}  // namespace wasabi

#endif  // WASABI_SRC_TESTING_RUNNER_H_
