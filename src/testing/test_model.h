// Test-case and test-run data model for the dynamic workflow.

#ifndef WASABI_SRC_TESTING_TEST_MODEL_H_
#define WASABI_SRC_TESTING_TEST_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/inject/injector.h"
#include "src/interp/exec_log.h"
#include "src/interp/interpreter.h"

namespace wasabi {

// One unit test: a `test*` method on a `*Test` class.
struct TestCase {
  std::string qualified_name;  // "WebHdfsTest.testRead".

  bool operator==(const TestCase& other) const {
    return qualified_name == other.qualified_name;
  }
};

enum class TestStatus : uint8_t {
  kPassed,
  kAssertionFailed,  // An Assert.* builtin failed (existing test oracle).
  kException,        // An uncaught non-assertion mj exception escaped the test.
  kTimeout,          // Step or virtual-time budget exhausted.
};

const char* TestStatusName(TestStatus status);

struct TestOutcome {
  TestStatus status = TestStatus::kPassed;
  std::string exception_class;    // For kAssertionFailed / kException.
  std::string exception_message;
  std::vector<std::string> crash_stack;  // Where the escaping exception originated.
  // Class names of the escaping exception's cause chain (outermost first,
  // excluding the exception itself). Lets the §4.5 wrapping-chain mitigation
  // recognize an injected exception inside a generic wrapper.
  std::vector<std::string> cause_chain;
  std::string abort_reason;       // For kTimeout (human-readable name).
  // The structured reason behind kTimeout. Step-budget and stack-overflow
  // aborts are different evidence than virtual-time exhaustion (a runaway
  // loop or unbounded recursion vs a genuine slow timeout), so oracles must
  // not fold them together. Only meaningful when status == kTimeout.
  AbortReason abort_kind = AbortReason::kVirtualTimeBudget;
};

// The record of one (possibly fault-injected) test execution.
struct TestRunRecord {
  TestCase test;
  TestOutcome outcome;
  ExecutionLog log;
  std::vector<InjectionPoint> injected_points;
  std::vector<int> injection_counts;  // Parallel to injected_points.
  int64_t virtual_duration_ms = 0;
  int64_t steps = 0;
  int64_t loop_iterations = 0;
};

}  // namespace wasabi

#endif  // WASABI_SRC_TESTING_TEST_MODEL_H_
