// One-time AST -> bytecode compiler. Pure and deterministic: the output is a
// function of the resolved Program only, so chunks are compiled once per
// interpreter and shared across every run (they survive ResetForRun).
//
// The compiler mirrors the tree-walker statement by statement. Anything it
// lowers natively preserves the walker's evaluation order, step-accounting
// points, and error wording exactly; anything subtle (calls, news, switch,
// try-with-finally, throw, fallback-chain names, field targets) is delegated
// back to the walker via the kCallTree/kNewTree/kEvalTree/kExecTree opcodes,
// which keeps every injection pointcut and observer hook on the shared path.

#include "src/vm/bytecode.h"

#include <utility>

namespace wasabi::vm {
namespace {

using mj::AstKind;

// A name the VM may address as a raw frame slot: resolved, no fallback chain
// (fallback lookups go through the walker's LookupName via delegation).
bool IsSimpleName(const mj::Expr& expr) {
  if (expr.kind != AstKind::kName) {
    return false;
  }
  const auto& name = static_cast<const mj::NameExpr&>(expr);
  return name.slot != mj::kNoSlot && name.fallback_chain == mj::kNoNameChain;
}

int32_t SlotOf(const mj::Expr& expr) {
  return static_cast<const mj::NameExpr&>(expr).slot;
}

bool IsIntLiteral(const mj::Expr& expr) { return expr.kind == AstKind::kIntLiteral; }

int64_t IntLiteralValue(const mj::Expr& expr) {
  return static_cast<const mj::IntLiteralExpr&>(expr).value;
}

bool IsComparison(mj::BinaryOp op) {
  return op == mj::BinaryOp::kLt || op == mj::BinaryOp::kLe || op == mj::BinaryOp::kGt ||
         op == mj::BinaryOp::kGe;
}

// Flattens a pure integer-arithmetic expression (add/sub/mul/div/mod/neg over
// simple-name slots and int literals) into a postfix IntProgram, left to
// right — the walker's evaluation order. Returns false for any other shape
// or when the program would need more scratch than kMaxIntScratch.
bool FlattenIntExpr(const mj::Expr& expr, IntProgram& prog, uint32_t& depth) {
  switch (expr.kind) {
    case AstKind::kIntLiteral:
      prog.code.push_back(IntInsn{IntOpKind::kPushConst, 0, IntLiteralValue(expr)});
      if (++depth > prog.max_stack) {
        prog.max_stack = depth;
      }
      return depth <= kMaxIntScratch;

    case AstKind::kName:
      if (!IsSimpleName(expr)) {
        return false;
      }
      prog.code.push_back(IntInsn{IntOpKind::kPushSlot, SlotOf(expr), 0});
      if (++depth > prog.max_stack) {
        prog.max_stack = depth;
      }
      return depth <= kMaxIntScratch;

    case AstKind::kUnary: {
      const auto& unary = static_cast<const mj::UnaryExpr&>(expr);
      if (unary.op == mj::UnaryOp::kNot) {
        return false;
      }
      if (!FlattenIntExpr(*unary.operand, prog, depth)) {
        return false;
      }
      prog.code.push_back(IntInsn{IntOpKind::kNeg, 0, 0});
      return true;
    }

    case AstKind::kBinary: {
      const auto& bin = static_cast<const mj::BinaryExpr&>(expr);
      IntOpKind kind;
      switch (bin.op) {
        case mj::BinaryOp::kAdd: kind = IntOpKind::kAdd; break;
        case mj::BinaryOp::kSub: kind = IntOpKind::kSub; break;
        case mj::BinaryOp::kMul: kind = IntOpKind::kMul; break;
        case mj::BinaryOp::kDiv: kind = IntOpKind::kDiv; break;
        case mj::BinaryOp::kMod: kind = IntOpKind::kMod; break;
        default: return false;
      }
      if (!FlattenIntExpr(*bin.lhs, prog, depth) || !FlattenIntExpr(*bin.rhs, prog, depth)) {
        return false;
      }
      prog.code.push_back(IntInsn{kind, 0, 0});
      --depth;
      return true;
    }

    default:
      return false;
  }
}

class MethodCompiler {
 public:
  explicit MethodCompiler(Chunk& chunk) : chunk_(chunk) {}

  void Compile(const mj::MethodDecl& method) {
    CompileBlockInner(*method.body);
    // Falling off the end returns null — and so do top-level break/continue,
    // which the walker lets propagate out of the body unanswered.
    const int32_t end = Here();
    Emit(Op::kReturnNull);
    for (auto [insn, operand] : end_patches_) {
      Patch(insn, operand, end);
    }
    chunk_.max_stack = static_cast<uint32_t>(max_depth_);
    chunk_.compiled = true;
  }

 private:
  // Patch-operand selectors (which int32 of the instruction to fill).
  enum : int { kOperandA = 0, kOperandB = 1, kOperandC = 2 };

  struct LoopCtx {
    std::vector<std::pair<size_t, int>> break_patches;
    std::vector<std::pair<size_t, int>> continue_patches;
    size_t handler_depth = 0;
  };

  int32_t Here() const { return static_cast<int32_t>(chunk_.code.size()); }

  size_t Emit(Op op, uint8_t flags = 0, int32_t a = 0, int32_t b = 0, int32_t c = 0,
              int32_t d = 0) {
    chunk_.code.push_back(Insn{op, flags, a, b, c, d});
    return chunk_.code.size() - 1;
  }

  void Patch(size_t insn, int operand, int32_t target) {
    Insn& code = chunk_.code[insn];
    (operand == kOperandA ? code.a : operand == kOperandB ? code.b : code.c) = target;
  }

  int32_t NodeIdx(const mj::AstNode& node) {
    chunk_.nodes.push_back(&node);
    return static_cast<int32_t>(chunk_.nodes.size() - 1);
  }

  int32_t ConstIdx(Value value) {
    chunk_.consts.push_back(std::move(value));
    return static_cast<int32_t>(chunk_.consts.size() - 1);
  }

  int32_t IntIdx(int64_t value) {
    chunk_.ints.push_back(value);
    return static_cast<int32_t>(chunk_.ints.size() - 1);
  }

  // Operand-stack accounting; only the high-water mark matters (reserve hint).
  void Push(int n = 1) {
    depth_ += n;
    if (depth_ > max_depth_) {
      max_depth_ = depth_;
    }
  }
  void Pop(int n = 1) { depth_ -= n; }

  // --- Statements -----------------------------------------------------------

  // ExecBlock: clear the subtree's slots, then run the statements. No kStep —
  // the caller accounts for the block's own statement entry when there is one.
  void CompileBlockInner(const mj::BlockStmt& block) {
    if (block.slot_count > 0) {
      Emit(Op::kClearSlots, 0, static_cast<int32_t>(block.slot_base),
           static_cast<int32_t>(block.slot_count));
    }
    for (const mj::Stmt* stmt : block.statements) {
      CompileStmt(*stmt);
    }
  }

  // Delegate one statement to the tree-walker. ExecStmt runs its own Step(),
  // so no kStep precedes it. Break/continue flows escaping the subtree jump
  // to the enclosing loop's targets (or fall out of the method, like the
  // walker's unanswered Flow propagation).
  void CompileExecTree(const mj::Stmt& stmt) {
    size_t insn;
    if (!loops_.empty()) {
      LoopCtx& loop = loops_.back();
      insn = Emit(Op::kExecTree, static_cast<uint8_t>(handler_depth_ - loop.handler_depth), 0,
                  0, 0, NodeIdx(stmt));
      loop.break_patches.emplace_back(insn, kOperandA);
      loop.continue_patches.emplace_back(insn, kOperandB);
    } else {
      insn = Emit(Op::kExecTree, static_cast<uint8_t>(handler_depth_), 0, 0, 0, NodeIdx(stmt));
      end_patches_.emplace_back(insn, kOperandA);
      end_patches_.emplace_back(insn, kOperandB);
    }
  }

  void CompileStmt(const mj::Stmt& stmt) {
    switch (stmt.kind) {
      case AstKind::kBlock:
        Emit(Op::kStep);
        CompileBlockInner(static_cast<const mj::BlockStmt&>(stmt));
        return;

      case AstKind::kVarDecl: {
        const auto& decl = static_cast<const mj::VarDeclStmt&>(stmt);
        Emit(Op::kStep);
        CompileExpr(*decl.init);
        Emit(Op::kStoreSlot, 0, decl.slot);
        Pop();
        return;
      }

      case AstKind::kAssign:
        CompileAssign(static_cast<const mj::AssignStmt&>(stmt));
        return;

      case AstKind::kExprStmt: {
        Emit(Op::kStep);
        CompileExpr(*static_cast<const mj::ExprStmt&>(stmt).expr);
        Emit(Op::kPop);
        Pop();
        return;
      }

      case AstKind::kIf: {
        const auto& node = static_cast<const mj::IfStmt&>(stmt);
        Emit(Op::kStep);
        auto false_patches = CompileCondJumpFalse(*node.condition, stmt);
        CompileStmt(*node.then_branch);
        if (node.else_branch != nullptr) {
          size_t skip = Emit(Op::kJump);
          const int32_t else_ip = Here();
          for (auto [insn, operand] : false_patches) {
            Patch(insn, operand, else_ip);
          }
          CompileStmt(*node.else_branch);
          Patch(skip, kOperandA, Here());
        } else {
          const int32_t end = Here();
          for (auto [insn, operand] : false_patches) {
            Patch(insn, operand, end);
          }
        }
        return;
      }

      case AstKind::kWhile: {
        const auto& node = static_cast<const mj::WhileStmt&>(stmt);
        Emit(Op::kStep);
        const int32_t cond_ip = Here();
        loops_.push_back(LoopCtx{{}, {}, handler_depth_});
        auto false_patches = CompileCondJumpFalse(*node.condition, stmt);
        EmitLoopIter(false_patches);
        CompileStmt(*node.body);
        Emit(Op::kJump, 0, cond_ip);
        FinishLoop(std::move(false_patches), cond_ip);
        return;
      }

      case AstKind::kFor: {
        const auto& node = static_cast<const mj::ForStmt&>(stmt);
        Emit(Op::kStep);
        if (node.slot_count > 0) {
          Emit(Op::kClearSlots, 0, static_cast<int32_t>(node.slot_base),
               static_cast<int32_t>(node.slot_count));
        }
        if (node.init != nullptr) {
          CompileStmt(*node.init);
        }
        const int32_t cond_ip = Here();
        loops_.push_back(LoopCtx{{}, {}, handler_depth_});
        std::vector<std::pair<size_t, int>> false_patches;
        if (node.condition != nullptr) {
          false_patches = CompileCondJumpFalse(*node.condition, stmt);
        }
        EmitLoopIter(false_patches);
        CompileStmt(*node.body);
        const int32_t update_ip = Here();
        if (node.update != nullptr) {
          CompileStmt(*node.update);
        }
        // A single kIncSlotImm update (the canonical `i++` / `i += C`)
        // absorbs the back-edge jump. Safe: nothing inside the body patches a
        // jump past update_ip, so no control flow relied on the elided kJump.
        if (Here() == update_ip + 1 && chunk_.code.back().op == Op::kIncSlotImm) {
          chunk_.code.back().flags |= kFlagJumpAfter;
          chunk_.code.back().c = cond_ip;
        } else {
          Emit(Op::kJump, 0, cond_ip);
        }
        FinishLoop(std::move(false_patches), update_ip);
        return;
      }

      case AstKind::kTry: {
        const auto& node = static_cast<const mj::TryStmt&>(stmt);
        if (node.finally != nullptr) {
          // Finally interleaves with every flow kind; the walker owns it.
          CompileExecTree(stmt);
          return;
        }
        Emit(Op::kStep);
        size_t push = Emit(Op::kPushHandler);
        ++handler_depth_;
        CompileBlockInner(*node.body);
        --handler_depth_;
        Emit(Op::kPopHandlers, 0, 1);
        std::vector<size_t> end_jumps;
        end_jumps.push_back(Emit(Op::kJump));
        // Catch dispatch: the executor lands here with the pending exception.
        Patch(push, kOperandA, Here());
        std::vector<size_t> catch_insns;
        for (const mj::CatchClause& clause : node.catches) {
          chunk_.catches.push_back(CatchSite{&clause.exception_type, clause.var_slot,
                                             clause.slot_base, clause.slot_count, 0});
          catch_insns.push_back(
              Emit(Op::kCatch, 0, static_cast<int32_t>(chunk_.catches.size() - 1)));
        }
        Emit(Op::kRethrow);
        for (size_t idx = 0; idx < node.catches.size(); ++idx) {
          chunk_.catches[chunk_.code[catch_insns[idx]].a].target = Here();
          CompileBlockInner(*node.catches[idx].body);
          end_jumps.push_back(Emit(Op::kJump));
        }
        const int32_t end = Here();
        for (size_t jump : end_jumps) {
          Patch(jump, kOperandA, end);
        }
        return;
      }

      case AstKind::kReturn: {
        const auto& node = static_cast<const mj::ReturnStmt&>(stmt);
        Emit(Op::kStep);
        if (node.value != nullptr) {
          CompileExpr(*node.value);
          Emit(Op::kReturn);
          Pop();
        } else {
          Emit(Op::kReturnNull);
        }
        return;
      }

      case AstKind::kBreak:
      case AstKind::kContinue: {
        Emit(Op::kStep);
        const bool is_break = stmt.kind == AstKind::kBreak;
        if (!loops_.empty()) {
          LoopCtx& loop = loops_.back();
          const size_t pops = handler_depth_ - loop.handler_depth;
          if (pops > 0) {
            Emit(Op::kPopHandlers, 0, static_cast<int32_t>(pops));
          }
          size_t jump = Emit(Op::kJump);
          (is_break ? loop.break_patches : loop.continue_patches)
              .emplace_back(jump, kOperandA);
        } else {
          // No enclosing loop: the walker's Flow propagates out of the method
          // body and CallMethod returns null.
          if (handler_depth_ > 0) {
            Emit(Op::kPopHandlers, 0, static_cast<int32_t>(handler_depth_));
          }
          end_patches_.emplace_back(Emit(Op::kJump), kOperandA);
        }
        return;
      }

      // Switch (subject/label scan + fallthrough) and throw stay on the
      // walker; both are cold next to the retry loops this engine targets.
      case AstKind::kSwitch:
      case AstKind::kThrow:
      default:
        CompileExecTree(stmt);
        return;
    }
  }

  // Back-edge accounting after the loop condition passed. When the condition
  // compiled to exactly one fused kBrCmp that is still the last instruction,
  // the kLoopIter effects (Step + iteration count + LoopObserver) fold into
  // its TRUE outcome; otherwise a standalone kLoopIter is emitted.
  void EmitLoopIter(const std::vector<std::pair<size_t, int>>& false_patches) {
    if (false_patches.size() == 1 && false_patches[0].first == chunk_.code.size() - 1) {
      Insn& insn = chunk_.code[false_patches[0].first];
      if (insn.op == Op::kBrCmpSS || insn.op == Op::kBrCmpSI) {
        insn.flags |= kFlagLoopHead;
        return;
      }
    }
    Emit(Op::kLoopIter);
  }

  void FinishLoop(std::vector<std::pair<size_t, int>> false_patches, int32_t continue_ip) {
    LoopCtx loop = std::move(loops_.back());
    loops_.pop_back();
    const int32_t end = Here();
    for (auto [insn, operand] : false_patches) {
      Patch(insn, operand, end);
    }
    for (auto [insn, operand] : loop.break_patches) {
      Patch(insn, operand, end);
    }
    for (auto [insn, operand] : loop.continue_patches) {
      Patch(insn, operand, continue_ip);
    }
  }

  // --- Assignments ----------------------------------------------------------

  void CompileAssign(const mj::AssignStmt& stmt) {
    // Field targets and fallback-chain names keep the walker's exact
    // base-eval / null-check / rhs-eval order and error wording.
    if (!IsSimpleName(*stmt.target)) {
      CompileExecTree(stmt);
      return;
    }
    const int32_t slot = SlotOf(*stmt.target);

    // Superinstruction: `x += C` / `x -= C` (also x++/x--).
    if (stmt.op != mj::AssignOp::kAssign && IsIntLiteral(*stmt.value)) {
      Emit(Op::kIncSlotImm, static_cast<uint8_t>(stmt.op), slot,
           IntIdx(IntLiteralValue(*stmt.value)), 0, NodeIdx(stmt));
      return;
    }
    // Superinstruction: `x = y + C` / `x = y - C` (loop-counter updates).
    if (stmt.op == mj::AssignOp::kAssign && stmt.value->kind == AstKind::kBinary) {
      const auto& bin = static_cast<const mj::BinaryExpr&>(*stmt.value);
      if ((bin.op == mj::BinaryOp::kAdd || bin.op == mj::BinaryOp::kSub) &&
          IsSimpleName(*bin.lhs) && IsIntLiteral(*bin.rhs)) {
        Emit(Op::kAssignBinSlotImm, static_cast<uint8_t>(bin.op), slot, SlotOf(*bin.lhs),
             IntIdx(IntLiteralValue(*bin.rhs)), NodeIdx(stmt));
        return;
      }
    }

    // Superinstruction: the whole rhs is a pure integer-arithmetic tree. One
    // dispatch evaluates it on raw int64 scratch; any non-int operand at run
    // time bails out and replays the statement through the walker. Gated on a
    // compound rhs so plain copies (`x = y`, `x = 5`, `s += t`), which must
    // handle every value type natively, keep the generic lowering below.
    if (stmt.value->kind == AstKind::kBinary || stmt.value->kind == AstKind::kUnary) {
      IntProgram prog;
      uint32_t depth = 0;
      if (FlattenIntExpr(*stmt.value, prog, depth)) {
        chunk_.int_programs.push_back(std::move(prog));
        Emit(Op::kAssignIntExpr, static_cast<uint8_t>(stmt.op), slot,
             static_cast<int32_t>(chunk_.int_programs.size() - 1), 0, NodeIdx(stmt));
        return;
      }
    }

    // General shape: Step + assert the target is live BEFORE the rhs runs
    // (same order as the walker), then evaluate and store/combine.
    Emit(Op::kStepAssertSlot, 0, slot, 0, 0, NodeIdx(stmt));
    CompileExpr(*stmt.value);
    if (stmt.op == mj::AssignOp::kAssign) {
      Emit(Op::kStoreSlot, 0, slot);
    } else {
      Emit(Op::kStoreCombine, static_cast<uint8_t>(stmt.op), slot, 0, 0, NodeIdx(stmt));
    }
    Pop();
  }

  // --- Conditions -----------------------------------------------------------

  // Emits code that falls through when `cond` is true and jumps (via the
  // returned patch sites) when false. Mirrors EvalBool(cond, stmt.location):
  // comparisons error at their own location, everything else coerces at the
  // statement's location.
  std::vector<std::pair<size_t, int>> CompileCondJumpFalse(const mj::Expr& cond,
                                                           const mj::Stmt& stmt) {
    std::vector<std::pair<size_t, int>> patches;
    if (cond.kind == AstKind::kBinary) {
      const auto& bin = static_cast<const mj::BinaryExpr&>(cond);
      if (IsComparison(bin.op)) {
        // Fused compare-and-branch when the operands are raw slots/ints.
        if (IsSimpleName(*bin.lhs) && IsSimpleName(*bin.rhs)) {
          patches.emplace_back(Emit(Op::kBrCmpSS, static_cast<uint8_t>(bin.op),
                                    SlotOf(*bin.lhs), SlotOf(*bin.rhs), 0, NodeIdx(bin)),
                               kOperandC);
          return patches;
        }
        if (IsSimpleName(*bin.lhs) && IsIntLiteral(*bin.rhs)) {
          patches.emplace_back(Emit(Op::kBrCmpSI, static_cast<uint8_t>(bin.op),
                                    SlotOf(*bin.lhs), IntIdx(IntLiteralValue(*bin.rhs)), 0,
                                    NodeIdx(bin)),
                               kOperandC);
          return patches;
        }
        CompileExpr(cond);  // Comparison opcodes produce a raw bool.
        patches.emplace_back(Emit(Op::kJumpIfFalse), kOperandA);
        Pop();
        return patches;
      }
    }
    CompileBoolValue(cond, stmt);
    patches.emplace_back(Emit(Op::kJumpIfFalse), kOperandA);
    Pop();
    return patches;
  }

  // Leaves a guaranteed bool on the stack; non-bool results raise the
  // walker's "expected bool" type error at `location_node`'s location.
  void CompileBoolValue(const mj::Expr& expr, const mj::AstNode& location_node) {
    CompileExpr(expr);
    if (expr.kind == AstKind::kBinary &&
        IsComparison(static_cast<const mj::BinaryExpr&>(expr).op)) {
      return;  // Comparisons already produce a raw bool.
    }
    Emit(Op::kAsBool, 0, 0, 0, 0, NodeIdx(location_node));
  }

  // --- Expressions ----------------------------------------------------------

  void CompileExpr(const mj::Expr& expr) {
    switch (expr.kind) {
      case AstKind::kIntLiteral:
        Emit(Op::kConst, 0, ConstIdx(Value{static_cast<const mj::IntLiteralExpr&>(expr).value}));
        Push();
        return;
      case AstKind::kBoolLiteral:
        Emit(Op::kConst, 0,
             ConstIdx(Value{static_cast<const mj::BoolLiteralExpr&>(expr).value}));
        Push();
        return;
      case AstKind::kStringLiteral:
        Emit(Op::kConst, 0,
             ConstIdx(Value{static_cast<const mj::StringLiteralExpr&>(expr).value}));
        Push();
        return;
      case AstKind::kNullLiteral:
        Emit(Op::kConst, 0, ConstIdx(Value{}));
        Push();
        return;

      case AstKind::kName:
        if (IsSimpleName(expr)) {
          Emit(Op::kLoadSlot, 0, SlotOf(expr), 0, 0, NodeIdx(expr));
          Push();
        } else {
          // Fallback-chain lookup stays on the walker's LookupName.
          Emit(Op::kEvalTree, 0, 0, 0, 0, NodeIdx(expr));
          Push();
        }
        return;

      case AstKind::kUnary: {
        const auto& unary = static_cast<const mj::UnaryExpr&>(expr);
        CompileExpr(*unary.operand);
        Emit(unary.op == mj::UnaryOp::kNot ? Op::kNotBool : Op::kNegInt, 0, 0, 0, 0,
             NodeIdx(expr));
        return;
      }

      case AstKind::kBinary:
        CompileBinary(static_cast<const mj::BinaryExpr&>(expr));
        return;

      case AstKind::kCall:
        Emit(Op::kCallTree, 0, 0, 0, 0, NodeIdx(expr));
        Push();
        return;
      case AstKind::kNew:
        Emit(Op::kNewTree, 0, 0, 0, 0, NodeIdx(expr));
        Push();
        return;

      // Field access, `this`, instanceof, and anything new: full tree eval.
      case AstKind::kFieldAccess:
      case AstKind::kThis:
      case AstKind::kInstanceOf:
      default:
        Emit(Op::kEvalTree, 0, 0, 0, 0, NodeIdx(expr));
        Push();
        return;
    }
  }

  void CompileBinary(const mj::BinaryExpr& bin) {
    // Short-circuit operators become jump chains producing a raw bool; the
    // operand coercions error at the binary's own location (EvalBinaryFast).
    if (bin.op == mj::BinaryOp::kAnd || bin.op == mj::BinaryOp::kOr) {
      CompileBoolValue(*bin.lhs, bin);
      size_t split = Emit(bin.op == mj::BinaryOp::kAnd ? Op::kJumpIfFalse : Op::kJumpIfTrue);
      Pop();
      CompileBoolValue(*bin.rhs, bin);
      size_t done = Emit(Op::kJump);
      Pop();  // Merge point: exactly one of the two pushes survives.
      Patch(split, kOperandA, Here());
      Emit(Op::kConst, 0, ConstIdx(Value{bin.op == mj::BinaryOp::kOr}));
      Push();
      Patch(done, kOperandA, Here());
      return;
    }

    // Superinstructions for slot/immediate operand shapes. Their slow paths
    // re-evaluate the original node through the walker (names and literals
    // are side-effect free), reproducing error order and wording exactly.
    if (IsSimpleName(*bin.lhs)) {
      if (IsIntLiteral(*bin.rhs)) {
        Emit(Op::kBinarySI, static_cast<uint8_t>(bin.op), SlotOf(*bin.lhs),
             IntIdx(IntLiteralValue(*bin.rhs)), 0, NodeIdx(bin));
        Push();
        return;
      }
      if (IsSimpleName(*bin.rhs)) {
        Emit(Op::kBinarySS, static_cast<uint8_t>(bin.op), SlotOf(*bin.lhs), SlotOf(*bin.rhs),
             0, NodeIdx(bin));
        Push();
        return;
      }
    }
    CompileExpr(*bin.lhs);
    if (IsIntLiteral(*bin.rhs)) {
      Emit(Op::kBinaryTI, static_cast<uint8_t>(bin.op), 0, IntIdx(IntLiteralValue(*bin.rhs)),
           0, NodeIdx(bin));
      return;
    }
    if (IsSimpleName(*bin.rhs)) {
      Emit(Op::kBinaryTS, static_cast<uint8_t>(bin.op), SlotOf(*bin.rhs), 0,
           NodeIdx(*bin.rhs), NodeIdx(bin));
      return;
    }
    CompileExpr(*bin.rhs);
    Emit(Op::kBinary, static_cast<uint8_t>(bin.op), 0, 0, 0, NodeIdx(bin));
    Pop();
  }

  Chunk& chunk_;
  std::vector<LoopCtx> loops_;
  std::vector<std::pair<size_t, int>> end_patches_;
  size_t handler_depth_ = 0;
  int depth_ = 0;
  int max_depth_ = 0;
};

}  // namespace

std::shared_ptr<const CompiledProgram> Compile(const mj::Program& program,
                                               const mj::ProgramIndex& index) {
  auto compiled = std::make_shared<CompiledProgram>();
  compiled->methods.resize(index.method_count());
  for (const auto& unit : program.units()) {
    for (const mj::ClassDecl* cls : unit->classes()) {
      for (const mj::MethodDecl* method : cls->methods) {
        if (method->body == nullptr) {
          continue;
        }
        MethodCompiler(compiled->methods[method->method_index]).Compile(*method);
      }
    }
  }
  return compiled;
}

}  // namespace wasabi::vm
