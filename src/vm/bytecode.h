// Flat bytecode for the mj substrate (docs/PERFORMANCE.md "Bytecode VM").
//
// A one-time compiler lowers every resolved method body into a Chunk of
// fixed-width instructions. The compiled form is a pure function of the
// immutable Program — it carries no run state, so one CompiledProgram is
// shared by every run of an interpreter (and survives ResetForRun exactly
// like the dispatch cache does).
//
// Design rule: the VM must be byte-identical to the tree-walker — same error
// wording, same evaluation order, same step counts, same abort points. The
// instruction set therefore splits into three tiers:
//   1. native opcodes for the hot statement/expression shapes, whose error
//      paths either replicate the tree-walker's code exactly or re-evaluate
//      the original (side-effect-free) AST node through the tree-walker;
//   2. superinstructions fusing the dominant arithmetic/compare/branch/
//      compound-assign chains (PR 4's profile), which fall back to the
//      de-fused semantics whenever an operand is not a defined int slot;
//   3. delegation opcodes (kCallTree/kNewTree/kEvalTree/kExecTree) that hand
//      a subtree to the tree-walker — calls, news, switch, try-with-finally,
//      throw. Every observation point (CallInterceptor pointcuts, injector
//      fire/skip sites, the per-site monomorphic dispatch cache + observer,
//      LoopObserver back-edges, ExecLog writes, step/virtual-time budgets)
//      lives on those shared paths, so src/inject, src/exec, src/obs and
//      src/record see the exact same hooks under either engine.

#ifndef WASABI_SRC_VM_BYTECODE_H_
#define WASABI_SRC_VM_BYTECODE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/interp/value.h"
#include "src/lang/ast.h"
#include "src/lang/sema.h"

namespace wasabi::vm {

// Operand conventions: `a`..`d` are int32 payloads, `flags` carries a small
// enum (BinaryOp / AssignOp / handler-pop counts). `d` is almost always an
// index into Chunk::nodes — the original AST node, used for source locations
// in error messages and for slow-path re-evaluation through the tree-walker.
enum class Op : uint8_t {
  // --- Values ---------------------------------------------------------------
  kConst,          // push consts[a]
  kLoadSlot,       // a=slot, d=NameExpr: push slot or "undefined variable"
  kStoreSlot,      // a=slot: slots[a] = pop (definedness asserted earlier)
  kPop,            // drop top
  // --- Accounting / scopes --------------------------------------------------
  kStep,           // statement-entry Step() (budget check)
  kLoopIter,       // back-edge: Step() + ++loop_iterations_ + LoopObserver
  kClearSlots,     // a=base, b=count: clear `defined` on scope (re-)entry
  // --- Control flow ---------------------------------------------------------
  kJump,           // ip = a
  kJumpIfFalse,    // pop bool (guaranteed by construction); ip = a when false
  kJumpIfTrue,     // pop bool; ip = a when true
  kReturn,         // return pop
  kReturnNull,     // return Value{}
  // --- Coercions (tree-walker error wording at nodes[d]->location) ----------
  kAsBool,         // top must be bool, else "expected bool, got ..."
  kNotBool,        // top = !AsBool(top)
  kNegInt,         // top = -AsInt(top)
  // --- Binary operators -----------------------------------------------------
  kBinary,         // flags=BinaryOp, d=BinaryExpr: pop rhs, lhs; push result
  // --- Superinstructions (tier 2) -------------------------------------------
  kBinarySS,       // flags=op, a=lhs slot, b=rhs slot, d=BinaryExpr
  kBinarySI,       // flags=op, a=lhs slot, b=ints[] index, d=BinaryExpr
  kBinaryTS,       // flags=op, a=rhs slot, c=rhs NameExpr node, d=BinaryExpr
  kBinaryTI,       // flags=op, b=ints[] index, d=BinaryExpr
  kBrCmpSS,        // flags=cmp op (|kFlagLoopHead), a=lhs slot, b=rhs slot,
                   //   c=target, d=node: jump to c when the comparison is
                   //   FALSE; with kFlagLoopHead a TRUE outcome also performs
                   //   the back-edge accounting a separate kLoopIter would
  kBrCmpSI,        // flags=cmp op (|kFlagLoopHead), a=lhs slot,
                   //   b=ints[] index, c=target, d=node
  kIncSlotImm,     // compound `x += imm` / `x -= imm`: flags=AssignOp
                   //   (|kFlagJumpAfter: jump to c afterwards — for-loop tail
                   //   fusion), a=slot, b=ints[] index, d=AssignStmt
                   //   (includes Step)
  kAssignBinSlotImm,  // `x = y + imm` / `x = y - imm`: flags=BinaryOp,
                   //   a=target slot, b=source slot, c=ints[] index,
                   //   d=AssignStmt (includes Step)
  kAssignIntExpr,  // whole `x = <pure int expr>` / `x ±= <pure int expr>` in
                   //   one dispatch: flags=AssignOp, a=target slot,
                   //   b=int_programs[] index, d=AssignStmt. The scratch
                   //   program is evaluated side-effect free FIRST; any
                   //   undefined/non-int operand or div-by-zero bails out to
                   //   an ExecStmt replay before the statement's Step

  // --- Assignment helpers ---------------------------------------------------
  kStepAssertSlot, // Step() + assert slot a defined, else "assignment to
                   //   undefined variable" (d=AssignStmt)
  kStoreCombine,   // compound assign tail: flags=AssignOp, a=slot,
                   //   d=AssignStmt: slots[a] = combine(slots[a], pop)
  // --- Exception handling ---------------------------------------------------
  kPushHandler,    // a=dispatch target: arm a catch handler at current depth
  kPopHandlers,    // a=count: disarm the innermost `count` handlers
  kCatch,          // a=catches[] index: subtype-match the pending exception
  kRethrow,        // rethrow the pending exception (no clause matched)
  // --- Delegation to the tree-walker (tier 3) -------------------------------
  kCallTree,       // d=CallExpr: push Interpreter::EvalCall (pointcuts, IC)
  kNewTree,        // d=NewExpr: push Interpreter::EvalNew
  kEvalTree,       // d=Expr: push Interpreter::Eval (field access, this, ...)
  kExecTree,       // d=Stmt, a=break target, b=continue target,
                   //   flags=handlers to pop before a break/continue jump:
                   //   run Interpreter::ExecStmt and map the returned Flow
};

// High bit of `flags`, shared by the fused-loop opcodes (BinaryOp/AssignOp
// values stay far below it): on kBrCmpSS/kBrCmpSI the comparison guards a
// loop head; on kIncSlotImm the update jumps to operand `c` afterwards.
inline constexpr uint8_t kFlagLoopHead = 0x80;
inline constexpr uint8_t kFlagJumpAfter = 0x80;
inline constexpr uint8_t kFlagOpMask = 0x7F;

struct Insn {
  Op op = Op::kReturnNull;
  uint8_t flags = 0;
  int32_t a = 0;
  int32_t b = 0;
  int32_t c = 0;
  int32_t d = 0;
};

// --- Scratch programs for kAssignIntExpr ------------------------------------
// A pure integer expression flattened to a tiny stack program over int64
// scratch (no Value variants, no heap). Leaves read frame slots or push
// immediates; interior ops are the five arithmetic operators plus negation.
// Evaluation is side-effect free, so the executor can run it BEFORE the
// statement's Step() and bail to a tree-walker replay on any slot that is
// undefined or non-int and on any division/modulo by zero — reproducing the
// walker's evaluation order, error wording, and step accounting exactly.
enum class IntOpKind : uint8_t {
  kPushSlot,   // slot
  kPushConst,  // imm
  kAdd,
  kSub,
  kMul,
  kDiv,  // Bails on rhs == 0.
  kMod,  // Bails on rhs == 0.
  kNeg,
};

struct IntInsn {
  IntOpKind kind = IntOpKind::kPushConst;
  int32_t slot = 0;
  int64_t imm = 0;
};

struct IntProgram {
  std::vector<IntInsn> code;
  uint32_t max_stack = 0;
};

// Executor scratch bound; the compiler refuses deeper programs (they take the
// generic expression lowering instead).
inline constexpr uint32_t kMaxIntScratch = 32;

// One kCatch site: the data the tree-walker's catch-clause path consumes.
struct CatchSite {
  const std::string* exception_type = nullptr;  // AST-owned.
  int32_t var_slot = 0;
  uint32_t slot_base = 0;
  uint32_t slot_count = 0;
  int32_t target = 0;  // Clause body entry point.
};

// Flat code for one method body.
struct Chunk {
  std::vector<Insn> code;
  std::vector<Value> consts;
  std::vector<int64_t> ints;                 // Immediates for superinstructions.
  std::vector<const mj::AstNode*> nodes;     // Error locations + slow paths.
  std::vector<IntProgram> int_programs;      // kAssignIntExpr scratch programs.
  std::vector<CatchSite> catches;
  uint32_t max_stack = 0;
  bool compiled = false;  // False => the tree-walker runs this method.
};

// Chunks indexed by MethodDecl::method_index.
struct CompiledProgram {
  std::vector<Chunk> methods;
};

// Compiles every method body of `program`. Deterministic, side-effect free,
// and safe to share across threads afterwards (the result is immutable).
std::shared_ptr<const CompiledProgram> Compile(const mj::Program& program,
                                               const mj::ProgramIndex& index);

// "computed-goto" when the executor was built with labels-as-values threaded
// dispatch (GCC/Clang), "switch" on the portable fallback. Recorded in bench
// context and docs/PERFORMANCE.md.
const char* DispatchKindName();

}  // namespace wasabi::vm

#endif  // WASABI_SRC_VM_BYTECODE_H_
