// The bytecode dispatch loop (docs/PERFORMANCE.md "Bytecode VM").
//
// Two dispatch strategies share one set of opcode bodies via the VM_CASE /
// VM_NEXT / VM_JUMP macros:
//   * threaded dispatch with GNU labels-as-values (computed goto), where every
//     opcode body jumps straight to the next handler — the indirect branch per
//     opcode gets its own predictor slot instead of funnelling through one
//     shared switch branch;
//   * a portable switch fallback for compilers without the extension (or with
//     WASABI_VM_FORCE_SWITCH defined, which the vm tests use to prove both
//     strategies execute identically).
//
// Byte-identity with the tree-walker is the invariant every opcode body keeps:
// same Step() accounting, same evaluation order, same error wording (slow
// paths either call the same Interpreter helpers or re-evaluate the original
// AST node through the tree-walker).

#include "src/vm/vm.h"

#include <cassert>
#include <string>
#include <utility>

#include "src/interp/interpreter.h"

#if !defined(WASABI_VM_FORCE_SWITCH) && (defined(__GNUC__) || defined(__clang__))
#define WASABI_VM_COMPUTED_GOTO 1
#else
#define WASABI_VM_COMPUTED_GOTO 0
#endif

namespace wasabi::vm {

const char* DispatchKindName() {
#if WASABI_VM_COMPUTED_GOTO
  return "computed-goto";
#else
  return "switch";
#endif
}

Value VmExecutor::IntArith(Interpreter& in, mj::BinaryOp op, int64_t lhs, int64_t rhs) {
  using mj::BinaryOp;
  switch (op) {
    case BinaryOp::kAdd:
      return Value{lhs + rhs};
    case BinaryOp::kSub:
      return Value{lhs - rhs};
    case BinaryOp::kMul:
      return Value{lhs * rhs};
    case BinaryOp::kDiv:
      if (rhs == 0) {
        in.ThrowMj("ArithmeticException", "division by zero");
      }
      return Value{lhs / rhs};
    case BinaryOp::kMod:
      if (rhs == 0) {
        in.ThrowMj("ArithmeticException", "modulo by zero");
      }
      return Value{lhs % rhs};
    case BinaryOp::kEq:
      return Value{lhs == rhs};
    case BinaryOp::kNe:
      return Value{lhs != rhs};
    case BinaryOp::kLt:
      return Value{lhs < rhs};
    case BinaryOp::kLe:
      return Value{lhs <= rhs};
    case BinaryOp::kGt:
      return Value{lhs > rhs};
    case BinaryOp::kGe:
      return Value{lhs >= rhs};
    default:
      in.ThrowMj("IllegalStateException", "unsupported binary operator");
  }
}

Value VmExecutor::Run(Interpreter& in, const Chunk& chunk) {
  // Pooled operand stack, indexed by VM invocation depth (same discipline as
  // the interpreter's arg buffers): capacity stays warm across calls and runs.
  if (in.vm_stack_depth_ == in.vm_stacks_.size()) {
    in.vm_stacks_.emplace_back();
  }
  std::vector<Value>& stack = in.vm_stacks_[in.vm_stack_depth_++];
  struct StackReleaser {
    Interpreter* interp;
    std::vector<Value>* stack;
    ~StackReleaser() {
      stack->clear();  // Keeps capacity, releases object references.
      --interp->vm_stack_depth_;
    }
  } release{&in, &stack};
  if (stack.capacity() < chunk.max_stack) {
    stack.reserve(chunk.max_stack);
  }

  std::vector<Handler> handlers;
  ObjectRef pending;
  int32_t ip = 0;
  for (;;) {
    try {
      return Execute(in, chunk, stack, handlers, pending, ip);
    } catch (ThrownException& thrown) {
      // An mj exception with a handler armed in THIS chunk: unwind the operand
      // stack to the handler's depth and resume at its dispatch sequence. The
      // handler is disarmed first, so exceptions thrown by a catch clause body
      // propagate outward — exactly the tree-walker's nested-try behavior.
      // ExecutionAborted is deliberately not caught anywhere in the VM.
      if (handlers.empty()) {
        throw;
      }
      const Handler handler = handlers.back();
      handlers.pop_back();
      stack.resize(handler.depth);
      pending = std::move(thrown.exception);
      ip = handler.ip;
    }
  }
}

Value VmExecutor::Execute(Interpreter& in, const Chunk& chunk, std::vector<Value>& stack,
                          std::vector<Handler>& handlers, ObjectRef& pending, int32_t& ip) {
  const Insn* const code = chunk.code.data();
  // The frame is stable for the whole invocation: nested calls push and pop
  // DEEPER frames, and the frame deque never moves existing elements.
  Interpreter::Frame& frame = in.CurrentFrame();
  // Raw scratch for kAssignIntExpr programs (compiler-bounded depth).
  int64_t int_scratch[kMaxIntScratch];

#if WASABI_VM_COMPUTED_GOTO
  // Label table — MUST stay in exact Op enum order.
  static const void* const kDispatch[] = {
      &&case_kConst,
      &&case_kLoadSlot,
      &&case_kStoreSlot,
      &&case_kPop,
      &&case_kStep,
      &&case_kLoopIter,
      &&case_kClearSlots,
      &&case_kJump,
      &&case_kJumpIfFalse,
      &&case_kJumpIfTrue,
      &&case_kReturn,
      &&case_kReturnNull,
      &&case_kAsBool,
      &&case_kNotBool,
      &&case_kNegInt,
      &&case_kBinary,
      &&case_kBinarySS,
      &&case_kBinarySI,
      &&case_kBinaryTS,
      &&case_kBinaryTI,
      &&case_kBrCmpSS,
      &&case_kBrCmpSI,
      &&case_kIncSlotImm,
      &&case_kAssignBinSlotImm,
      &&case_kAssignIntExpr,
      &&case_kStepAssertSlot,
      &&case_kStoreCombine,
      &&case_kPushHandler,
      &&case_kPopHandlers,
      &&case_kCatch,
      &&case_kRethrow,
      &&case_kCallTree,
      &&case_kNewTree,
      &&case_kEvalTree,
      &&case_kExecTree,
  };
#define VM_CASE(name) case_##name
#define VM_DISPATCH() goto* kDispatch[static_cast<uint8_t>(code[ip].op)]
  VM_DISPATCH();
#else
#define VM_CASE(name) case Op::name
#define VM_DISPATCH() goto dispatch
dispatch:
  switch (code[ip].op) {
#endif
#define VM_NEXT()  \
  do {             \
    ++ip;          \
    VM_DISPATCH(); \
  } while (0)
#define VM_JUMP(target)                   \
  do {                                    \
    ip = static_cast<int32_t>((target)); \
    VM_DISPATCH();                        \
  } while (0)

    VM_CASE(kConst) : {
      stack.push_back(chunk.consts[code[ip].a]);
      VM_NEXT();
    }

    VM_CASE(kLoadSlot) : {
      const Insn& insn = code[ip];
      const auto slot = static_cast<size_t>(insn.a);
      if (frame.defined[slot]) [[likely]] {
        stack.push_back(frame.slots[slot]);
        VM_NEXT();
      }
      // Simple names have no fallback chain, so undefined means undefined.
      const auto& name = static_cast<const mj::NameExpr&>(*chunk.nodes[insn.d]);
      in.ThrowMj("IllegalStateException", "undefined variable '" + name.name + "' at line " +
                                              std::to_string(name.location.line));
    }

    VM_CASE(kStoreSlot) : {
      const auto slot = static_cast<size_t>(code[ip].a);
      frame.slots[slot] = std::move(stack.back());
      stack.pop_back();
      frame.defined[slot] = 1;  // VarDecl defines; for assignments it already is.
      VM_NEXT();
    }

    VM_CASE(kPop) : {
      stack.pop_back();
      VM_NEXT();
    }

    VM_CASE(kStep) : {
      in.Step();
      VM_NEXT();
    }

    VM_CASE(kLoopIter) : {
      // The tree-walker's back-edge sequence, verbatim.
      in.Step();
      ++in.loop_iterations_;
      if (in.loop_observer_ != nullptr) {
        in.NotifyLoopIteration();
      }
      VM_NEXT();
    }

    VM_CASE(kClearSlots) : {
      const Insn& insn = code[ip];
      in.ClearSlotRange(frame, static_cast<uint32_t>(insn.a), static_cast<uint32_t>(insn.b));
      VM_NEXT();
    }

    VM_CASE(kJump) : { VM_JUMP(code[ip].a); }

    VM_CASE(kJumpIfFalse) : {
      // Producers guarantee a bool on top (kAsBool / comparison opcodes).
      const bool* value = std::get_if<bool>(&stack.back());
      assert(value != nullptr);
      const bool taken = !*value;
      stack.pop_back();
      if (taken) {
        VM_JUMP(code[ip].a);
      }
      VM_NEXT();
    }

    VM_CASE(kJumpIfTrue) : {
      const bool* value = std::get_if<bool>(&stack.back());
      assert(value != nullptr);
      const bool taken = *value;
      stack.pop_back();
      if (taken) {
        VM_JUMP(code[ip].a);
      }
      VM_NEXT();
    }

    VM_CASE(kReturn) : {
      Value result = std::move(stack.back());
      stack.pop_back();
      return result;
    }

    VM_CASE(kReturnNull) : { return Value{}; }

    VM_CASE(kAsBool) : {
      if (!std::holds_alternative<bool>(stack.back())) {
        in.ThrowTypeError("bool", stack.back(), chunk.nodes[code[ip].d]->location);
      }
      VM_NEXT();
    }

    VM_CASE(kNotBool) : {
      Value& top = stack.back();
      if (const bool* value = std::get_if<bool>(&top)) [[likely]] {
        top = Value{!*value};
        VM_NEXT();
      }
      in.ThrowTypeError("bool", top, chunk.nodes[code[ip].d]->location);
    }

    VM_CASE(kNegInt) : {
      Value& top = stack.back();
      if (const int64_t* value = std::get_if<int64_t>(&top)) [[likely]] {
        top = Value{-*value};
        VM_NEXT();
      }
      in.ThrowTypeError("int", top, chunk.nodes[code[ip].d]->location);
    }

    VM_CASE(kBinary) : {
      const Insn& insn = code[ip];
      const auto op = static_cast<mj::BinaryOp>(insn.flags);
      Value rhs = std::move(stack.back());
      stack.pop_back();
      Value& lhs = stack.back();
      const int64_t* li = std::get_if<int64_t>(&lhs);
      const int64_t* ri = std::get_if<int64_t>(&rhs);
      if (li != nullptr && ri != nullptr) [[likely]] {
        lhs = IntArith(in, op, *li, *ri);
      } else {
        lhs = in.ApplyBinary(op, lhs, rhs, chunk.nodes[insn.d]->location);
      }
      VM_NEXT();
    }

    VM_CASE(kBinarySS) : {
      const Insn& insn = code[ip];
      if (frame.defined[insn.a] && frame.defined[insn.b]) [[likely]] {
        const int64_t* lhs = std::get_if<int64_t>(&frame.slots[insn.a]);
        const int64_t* rhs = std::get_if<int64_t>(&frame.slots[insn.b]);
        if (lhs != nullptr && rhs != nullptr) [[likely]] {
          stack.push_back(IntArith(in, static_cast<mj::BinaryOp>(insn.flags), *lhs, *rhs));
          VM_NEXT();
        }
      }
      // Operands are names — side-effect free — so the original node replays
      // through the tree-walker for exact boxed/undefined semantics.
      stack.push_back(in.Eval(static_cast<const mj::Expr&>(*chunk.nodes[insn.d])));
      VM_NEXT();
    }

    VM_CASE(kBinarySI) : {
      const Insn& insn = code[ip];
      if (frame.defined[insn.a]) [[likely]] {
        const int64_t* lhs = std::get_if<int64_t>(&frame.slots[insn.a]);
        if (lhs != nullptr) [[likely]] {
          stack.push_back(
              IntArith(in, static_cast<mj::BinaryOp>(insn.flags), *lhs, chunk.ints[insn.b]));
          VM_NEXT();
        }
      }
      stack.push_back(in.Eval(static_cast<const mj::Expr&>(*chunk.nodes[insn.d])));
      VM_NEXT();
    }

    VM_CASE(kBinaryTS) : {
      const Insn& insn = code[ip];
      Value& lhs = stack.back();
      if (frame.defined[insn.a]) [[likely]] {
        const Value& rhs = frame.slots[insn.a];
        const int64_t* li = std::get_if<int64_t>(&lhs);
        const int64_t* ri = std::get_if<int64_t>(&rhs);
        if (li != nullptr && ri != nullptr) [[likely]] {
          lhs = IntArith(in, static_cast<mj::BinaryOp>(insn.flags), *li, *ri);
        } else {
          lhs = in.ApplyBinary(static_cast<mj::BinaryOp>(insn.flags), lhs, rhs,
                               chunk.nodes[insn.d]->location);
        }
        VM_NEXT();
      }
      // The lhs already evaluated (possibly with side effects); only the rhs
      // name read is replayed — which here can only mean "undefined variable".
      const auto& name = static_cast<const mj::NameExpr&>(*chunk.nodes[insn.c]);
      in.ThrowMj("IllegalStateException", "undefined variable '" + name.name + "' at line " +
                                              std::to_string(name.location.line));
    }

    VM_CASE(kBinaryTI) : {
      const Insn& insn = code[ip];
      Value& lhs = stack.back();
      if (const int64_t* li = std::get_if<int64_t>(&lhs)) [[likely]] {
        lhs = IntArith(in, static_cast<mj::BinaryOp>(insn.flags), *li, chunk.ints[insn.b]);
      } else {
        lhs = in.ApplyBinary(static_cast<mj::BinaryOp>(insn.flags), lhs,
                             Value{chunk.ints[insn.b]}, chunk.nodes[insn.d]->location);
      }
      VM_NEXT();
    }

    VM_CASE(kBrCmpSS) : {
      const Insn& insn = code[ip];
      if (frame.defined[insn.a] && frame.defined[insn.b]) [[likely]] {
        const int64_t* lhs = std::get_if<int64_t>(&frame.slots[insn.a]);
        const int64_t* rhs = std::get_if<int64_t>(&frame.slots[insn.b]);
        if (lhs != nullptr && rhs != nullptr) [[likely]] {
          bool taken;
          switch (static_cast<mj::BinaryOp>(insn.flags & kFlagOpMask)) {
            case mj::BinaryOp::kLt:
              taken = *lhs < *rhs;
              break;
            case mj::BinaryOp::kLe:
              taken = *lhs <= *rhs;
              break;
            case mj::BinaryOp::kGt:
              taken = *lhs > *rhs;
              break;
            default:
              taken = *lhs >= *rhs;
              break;
          }
          if (!taken) {
            VM_JUMP(insn.c);
          }
          // Fused loop head: a passing condition performs the back edge.
          if (insn.flags & kFlagLoopHead) {
            in.Step();
            ++in.loop_iterations_;
            if (in.loop_observer_ != nullptr) {
              in.NotifyLoopIteration();
            }
          }
          VM_NEXT();
        }
      }
      // Pure operands: replay the comparison through the tree-walker's
      // condition path (coercion errors at the comparison's own location).
      const auto& bin = static_cast<const mj::BinaryExpr&>(*chunk.nodes[insn.d]);
      if (!in.EvalBool(bin, bin.location)) {
        VM_JUMP(insn.c);
      }
      if (insn.flags & kFlagLoopHead) {
        in.Step();
        ++in.loop_iterations_;
        if (in.loop_observer_ != nullptr) {
          in.NotifyLoopIteration();
        }
      }
      VM_NEXT();
    }

    VM_CASE(kBrCmpSI) : {
      const Insn& insn = code[ip];
      if (frame.defined[insn.a]) [[likely]] {
        const int64_t* lhs = std::get_if<int64_t>(&frame.slots[insn.a]);
        if (lhs != nullptr) [[likely]] {
          const int64_t rhs = chunk.ints[insn.b];
          bool taken;
          switch (static_cast<mj::BinaryOp>(insn.flags & kFlagOpMask)) {
            case mj::BinaryOp::kLt:
              taken = *lhs < rhs;
              break;
            case mj::BinaryOp::kLe:
              taken = *lhs <= rhs;
              break;
            case mj::BinaryOp::kGt:
              taken = *lhs > rhs;
              break;
            default:
              taken = *lhs >= rhs;
              break;
          }
          if (!taken) {
            VM_JUMP(insn.c);
          }
          if (insn.flags & kFlagLoopHead) {
            in.Step();
            ++in.loop_iterations_;
            if (in.loop_observer_ != nullptr) {
              in.NotifyLoopIteration();
            }
          }
          VM_NEXT();
        }
      }
      const auto& bin = static_cast<const mj::BinaryExpr&>(*chunk.nodes[insn.d]);
      if (!in.EvalBool(bin, bin.location)) {
        VM_JUMP(insn.c);
      }
      if (insn.flags & kFlagLoopHead) {
        in.Step();
        ++in.loop_iterations_;
        if (in.loop_observer_ != nullptr) {
          in.NotifyLoopIteration();
        }
      }
      VM_NEXT();
    }

    VM_CASE(kIncSlotImm) : {
      const Insn& insn = code[ip];
      // Eligibility is checked BEFORE Step() — no side effects — so the slow
      // path's ExecStmt replay performs the one and only Step at the same
      // point the tree-walker does.
      if (frame.defined[insn.a]) [[likely]] {
        if (int64_t* slot = std::get_if<int64_t>(&frame.slots[insn.a])) [[likely]] {
          in.Step();
          const int64_t imm = chunk.ints[insn.b];
          *slot = static_cast<mj::AssignOp>(insn.flags & kFlagOpMask) == mj::AssignOp::kAddAssign
                      ? *slot + imm
                      : *slot - imm;
          // Fused for-loop tail: the update jumps straight to the condition.
          if (insn.flags & kFlagJumpAfter) {
            VM_JUMP(insn.c);
          }
          VM_NEXT();
        }
      }
      in.ExecStmt(static_cast<const mj::Stmt&>(*chunk.nodes[insn.d]));
      if (insn.flags & kFlagJumpAfter) {
        VM_JUMP(insn.c);
      }
      VM_NEXT();
    }

    VM_CASE(kAssignBinSlotImm) : {
      const Insn& insn = code[ip];
      // `target = source +/- imm`. Same pre-Step eligibility rule as above;
      // the undefined-target error order (before the rhs) is preserved
      // because the defined checks have no side effects.
      if (frame.defined[insn.a] && frame.defined[insn.b]) [[likely]] {
        if (const int64_t* source = std::get_if<int64_t>(&frame.slots[insn.b])) [[likely]] {
          in.Step();
          const int64_t imm = chunk.ints[insn.c];
          const int64_t result = static_cast<mj::BinaryOp>(insn.flags) == mj::BinaryOp::kAdd
                                     ? *source + imm
                                     : *source - imm;
          if (int64_t* target = std::get_if<int64_t>(&frame.slots[insn.a])) {
            *target = result;
          } else {
            frame.slots[insn.a] = Value{result};
          }
          VM_NEXT();
        }
      }
      in.ExecStmt(static_cast<const mj::Stmt&>(*chunk.nodes[insn.d]));
      VM_NEXT();
    }

    VM_CASE(kAssignIntExpr) : {
      const Insn& insn = code[ip];
      // The whole rhs evaluates on raw int64 scratch. Every part of it is
      // pure (slot reads, arithmetic), so it runs BEFORE the statement's
      // Step(); any undefined/non-int operand, division or modulo by zero, or
      // (for compound assigns) non-int target bails to an ExecStmt replay,
      // which performs the one and only Step and raises the tree-walker's
      // exact error in the tree-walker's exact order.
      const auto op = static_cast<mj::AssignOp>(insn.flags);
      int64_t* target = std::get_if<int64_t>(&frame.slots[insn.a]);
      bool ok = frame.defined[insn.a] && (op == mj::AssignOp::kAssign || target != nullptr);
      if (ok) [[likely]] {
        const IntProgram& prog = chunk.int_programs[insn.b];
        int64_t* sp = int_scratch;
        for (const IntInsn& iop : prog.code) {
          switch (iop.kind) {
            case IntOpKind::kPushSlot: {
              const int64_t* value = frame.defined[iop.slot]
                                         ? std::get_if<int64_t>(&frame.slots[iop.slot])
                                         : nullptr;
              if (value == nullptr) {
                ok = false;
              } else {
                *sp++ = *value;
              }
              break;
            }
            case IntOpKind::kPushConst:
              *sp++ = iop.imm;
              break;
            case IntOpKind::kAdd:
              --sp;
              sp[-1] += *sp;
              break;
            case IntOpKind::kSub:
              --sp;
              sp[-1] -= *sp;
              break;
            case IntOpKind::kMul:
              --sp;
              sp[-1] *= *sp;
              break;
            case IntOpKind::kDiv:
              --sp;
              if (*sp == 0) {
                ok = false;
              } else {
                sp[-1] /= *sp;
              }
              break;
            case IntOpKind::kMod:
              --sp;
              if (*sp == 0) {
                ok = false;
              } else {
                sp[-1] %= *sp;
              }
              break;
            case IntOpKind::kNeg:
              sp[-1] = -sp[-1];
              break;
          }
          if (!ok) {
            break;
          }
        }
        if (ok) [[likely]] {
          in.Step();
          const int64_t rhs = int_scratch[0];
          if (op == mj::AssignOp::kAssign) {
            if (target != nullptr) {
              *target = rhs;
            } else {
              frame.slots[insn.a] = Value{rhs};
            }
          } else {
            *target = op == mj::AssignOp::kAddAssign ? *target + rhs : *target - rhs;
          }
          VM_NEXT();
        }
      }
      in.ExecStmt(static_cast<const mj::Stmt&>(*chunk.nodes[insn.d]));
      VM_NEXT();
    }

    VM_CASE(kStepAssertSlot) : {
      const Insn& insn = code[ip];
      in.Step();
      if (!frame.defined[insn.a]) [[unlikely]] {
        const auto& assign = static_cast<const mj::AssignStmt&>(*chunk.nodes[insn.d]);
        const auto& name = static_cast<const mj::NameExpr&>(*assign.target);
        in.ThrowMj("IllegalStateException",
                   "assignment to undefined variable '" + name.name + "' at line " +
                       std::to_string(assign.location.line));
      }
      VM_NEXT();
    }

    VM_CASE(kStoreCombine) : {
      const Insn& insn = code[ip];
      Value rhs = std::move(stack.back());
      stack.pop_back();
      Value& slot = frame.slots[insn.a];
      const auto op = static_cast<mj::AssignOp>(insn.flags);
      int64_t* slot_i = std::get_if<int64_t>(&slot);
      const int64_t* rhs_i = std::get_if<int64_t>(&rhs);
      if (slot_i != nullptr && rhs_i != nullptr) [[likely]] {
        *slot_i = op == mj::AssignOp::kAddAssign ? *slot_i + *rhs_i : *slot_i - *rhs_i;
        VM_NEXT();
      }
      // The tree-walker's `combine`, errors at the statement's location.
      const mj::SourceLocation location = chunk.nodes[insn.d]->location;
      if (op == mj::AssignOp::kAddAssign && (IsString(slot) || IsString(rhs))) {
        slot = Value{ValueToString(slot) + ValueToString(rhs)};
      } else {
        const int64_t old_i = in.AsInt(slot, location);
        const int64_t new_i = in.AsInt(rhs, location);
        slot = Value{op == mj::AssignOp::kAddAssign ? old_i + new_i : old_i - new_i};
      }
      VM_NEXT();
    }

    VM_CASE(kPushHandler) : {
      handlers.push_back(Handler{code[ip].a, stack.size()});
      VM_NEXT();
    }

    VM_CASE(kPopHandlers) : {
      handlers.resize(handlers.size() - static_cast<size_t>(code[ip].a));
      VM_NEXT();
    }

    VM_CASE(kCatch) : {
      const CatchSite& site = chunk.catches[code[ip].a];
      if (in.index_.IsSubtype(pending->class_name(), *site.exception_type)) {
        // The tree-walker's clause entry: clear the clause subtree, bind the
        // catch variable, run the body (whose own kClearSlots follows).
        in.ClearSlotRange(frame, site.slot_base, site.slot_count);
        const auto var_slot = static_cast<size_t>(site.var_slot);
        frame.slots[var_slot] = Value{std::move(pending)};
        frame.defined[var_slot] = 1;
        VM_JUMP(site.target);
      }
      VM_NEXT();
    }

    VM_CASE(kRethrow) : { throw ThrownException{std::move(pending)}; }

    VM_CASE(kCallTree) : {
      stack.push_back(in.EvalCall(static_cast<const mj::CallExpr&>(*chunk.nodes[code[ip].d])));
      VM_NEXT();
    }

    VM_CASE(kNewTree) : {
      stack.push_back(in.EvalNew(static_cast<const mj::NewExpr&>(*chunk.nodes[code[ip].d])));
      VM_NEXT();
    }

    VM_CASE(kEvalTree) : {
      stack.push_back(in.Eval(static_cast<const mj::Expr&>(*chunk.nodes[code[ip].d])));
      VM_NEXT();
    }

    VM_CASE(kExecTree) : {
      const Insn& insn = code[ip];
      Interpreter::Flow flow = in.ExecStmt(static_cast<const mj::Stmt&>(*chunk.nodes[insn.d]));
      switch (flow.kind) {
        case Interpreter::FlowKind::kNormal:
          VM_NEXT();
        case Interpreter::FlowKind::kReturn:
          return std::move(flow.value);
        case Interpreter::FlowKind::kBreak:
          if (insn.flags != 0) {
            handlers.resize(handlers.size() - insn.flags);
          }
          VM_JUMP(insn.a);
        case Interpreter::FlowKind::kContinue:
          if (insn.flags != 0) {
            handlers.resize(handlers.size() - insn.flags);
          }
          VM_JUMP(insn.b);
      }
      VM_NEXT();  // Unreachable; keeps the case body well-formed.
    }

#if !WASABI_VM_COMPUTED_GOTO
  }
  return Value{};  // Unreachable: every opcode jumps, returns, or throws.
#endif

#undef VM_CASE
#undef VM_DISPATCH
#undef VM_NEXT
#undef VM_JUMP
}

}  // namespace wasabi::vm
