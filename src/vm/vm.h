// Bytecode executor for compiled mj method bodies (src/vm/bytecode.h).
//
// VmExecutor::Run executes one Chunk inside a live Interpreter activation:
// CallMethod pushes the frame, binds parameters, and fires interceptors as
// always, then hands the body to Run instead of ExecBlock. Everything
// observable — budgets, the virtual clock, the execution log, the dispatch
// cache and its observer, loop back-edges — lives on the Interpreter and is
// shared with the tree-walking engine.

#ifndef WASABI_SRC_VM_VM_H_
#define WASABI_SRC_VM_VM_H_

#include <cstdint>
#include <vector>

#include "src/interp/value.h"
#include "src/vm/bytecode.h"

namespace wasabi {
class Interpreter;
}  // namespace wasabi

namespace wasabi::vm {

// Stateless: all run state lives on the Interpreter (shared with the tree
// engine) or on Execute's C++ stack. Befriended by Interpreter.
class VmExecutor {
 public:
  // Executes `chunk` in the interpreter's current frame. Returns the method's
  // return value (null for fall-off / unanswered break/continue). Throws
  // ThrownException for uncaught mj exceptions and ExecutionAborted for
  // budget/depth aborts, exactly like the tree-walker's ExecBlock path.
  static Value Run(Interpreter& interp, const Chunk& chunk);

 private:
  // An armed catch handler: where to dispatch and the operand-stack depth to
  // unwind to. Mirrors the C++ try nesting the tree-walker gets for free.
  struct Handler {
    int32_t ip = 0;
    size_t depth = 0;
  };

  static Value Execute(Interpreter& interp, const Chunk& chunk, std::vector<Value>& stack,
                       std::vector<Handler>& handlers, ObjectRef& pending, int32_t& ip);

  // Int-int binary kernel: the tree-walker's EvalBinaryFast all-int arm,
  // including the division/modulo-by-zero errors.
  static Value IntArith(Interpreter& interp, mj::BinaryOp op, int64_t lhs, int64_t rhs);
};

}  // namespace wasabi::vm

#endif  // WASABI_SRC_VM_VM_H_
