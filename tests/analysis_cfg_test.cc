// Unit tests for CFG construction and reachability.

#include "src/analysis/cfg.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/lang/diagnostics.h"
#include "src/lang/parser.h"

namespace wasabi {
namespace {

class CfgTest : public ::testing::Test {
 protected:
  // Parses a class and builds the CFG of its first method.
  const Cfg& BuildFor(const std::string& source) {
    mj::DiagnosticEngine diag;
    unit_ = mj::ParseSource("test.mj", source, diag);
    EXPECT_FALSE(diag.has_errors()) << diag.FormatAll(nullptr);
    method_ = unit_->classes().at(0)->methods.at(0);
    cfg_ = builder_.Build(*method_);
    return cfg_;
  }

  // Finds the n-th statement of the given kind in the method body (pre-order).
  const mj::Stmt* FindStmt(mj::AstKind kind, int n = 0) const {
    const mj::Stmt* found = nullptr;
    int count = 0;
    mj::WalkStmts(
        method_->body,
        [&](const mj::Stmt& stmt) {
          if (stmt.kind == kind && count++ == n && found == nullptr) {
            found = &stmt;
          }
        },
        [](const mj::Expr&) {});
    return found;
  }

  const mj::CatchClause* FindCatch(int try_n = 0, int clause_n = 0) const {
    const mj::Stmt* try_stmt = FindStmt(mj::AstKind::kTry, try_n);
    if (try_stmt == nullptr) {
      return nullptr;
    }
    const auto& catches = static_cast<const mj::TryStmt*>(try_stmt)->catches;
    return clause_n < static_cast<int>(catches.size()) ? &catches[clause_n] : nullptr;
  }

  std::unique_ptr<mj::CompilationUnit> unit_;
  const mj::MethodDecl* method_ = nullptr;
  CfgBuilder builder_;
  Cfg cfg_;
};

TEST_F(CfgTest, EmptyBodyConnectsEntryToExit) {
  const Cfg& cfg = BuildFor("class C { void f() { } }");
  EXPECT_TRUE(cfg.Reaches(cfg.entry(), cfg.exit()));
  EXPECT_EQ(cfg.size(), 2u);
}

TEST_F(CfgTest, AbstractMethodHasTrivialGraph) {
  const Cfg& cfg = BuildFor("class C { void f(); }");
  EXPECT_TRUE(cfg.Reaches(cfg.entry(), cfg.exit()));
}

TEST_F(CfgTest, StraightLineFlow) {
  const Cfg& cfg = BuildFor("class C { void f() { var x = 1; x = 2; this.g(x); } }");
  EXPECT_TRUE(cfg.Reaches(cfg.entry(), cfg.exit()));
  // entry + exit + 3 statements.
  EXPECT_EQ(cfg.size(), 5u);
}

TEST_F(CfgTest, WhileLoopHasBackEdge) {
  const Cfg& cfg = BuildFor("class C { void f() { while (this.more()) { this.step(); } } }");
  const mj::Stmt* loop = FindStmt(mj::AstKind::kWhile);
  ASSERT_NE(loop, nullptr);
  CfgNodeId header = cfg.HeaderOf(*loop);
  ASSERT_NE(header, kInvalidCfgNode);
  // The body statement reaches the header again (back edge).
  bool found_back_edge = false;
  for (const CfgNode& node : cfg.nodes()) {
    if (node.kind == CfgNodeKind::kStatement) {
      for (CfgNodeId succ : node.successors) {
        if (succ == header) {
          found_back_edge = true;
        }
      }
    }
  }
  EXPECT_TRUE(found_back_edge);
  EXPECT_TRUE(cfg.Reaches(header, cfg.exit()));
}

TEST_F(CfgTest, ForLoopRoutesBodyThroughUpdate) {
  const Cfg& cfg =
      BuildFor("class C { void f() { for (var i = 0; i < 3; i++) { this.g(); } } }");
  const mj::Stmt* loop = FindStmt(mj::AstKind::kFor);
  CfgNodeId header = cfg.HeaderOf(*loop);
  ASSERT_NE(header, kInvalidCfgNode);
  EXPECT_TRUE(cfg.Reaches(cfg.entry(), header));
  EXPECT_TRUE(cfg.Reaches(header, cfg.exit()));
}

TEST_F(CfgTest, BreakExitsLoop) {
  const Cfg& cfg = BuildFor(R"(
    class C {
      void f() {
        while (true) {
          if (this.done()) {
            break;
          }
          this.step();
        }
        this.after();
      }
    }
  )");
  const mj::Stmt* break_stmt = FindStmt(mj::AstKind::kBreak);
  ASSERT_NE(break_stmt, nullptr);
  const mj::Stmt* loop = FindStmt(mj::AstKind::kWhile);
  CfgNodeId header = cfg.HeaderOf(*loop);
  // Find the break node and assert it does NOT flow back to the header.
  for (const CfgNode& node : cfg.nodes()) {
    if (node.stmt == break_stmt) {
      ASSERT_EQ(node.successors.size(), 1u);
      EXPECT_NE(node.successors[0], header);
      EXPECT_FALSE(cfg.Reaches(node.successors[0], header));
    }
  }
}

TEST_F(CfgTest, ContinueReturnsToHeader) {
  const Cfg& cfg = BuildFor(R"(
    class C {
      void f() {
        while (this.more()) {
          if (this.skip()) {
            continue;
          }
          this.work();
        }
      }
    }
  )");
  const mj::Stmt* continue_stmt = FindStmt(mj::AstKind::kContinue);
  const mj::Stmt* loop = FindStmt(mj::AstKind::kWhile);
  CfgNodeId header = cfg.HeaderOf(*loop);
  for (const CfgNode& node : cfg.nodes()) {
    if (node.stmt == continue_stmt) {
      ASSERT_EQ(node.successors.size(), 1u);
      EXPECT_EQ(node.successors[0], header);
    }
  }
}

TEST_F(CfgTest, ReturnGoesToExit) {
  const Cfg& cfg = BuildFor(R"(
    class C {
      int f() {
        while (true) {
          return 1;
        }
      }
    }
  )");
  const mj::Stmt* ret = FindStmt(mj::AstKind::kReturn);
  const mj::Stmt* loop = FindStmt(mj::AstKind::kWhile);
  CfgNodeId header = cfg.HeaderOf(*loop);
  for (const CfgNode& node : cfg.nodes()) {
    if (node.stmt == ret) {
      EXPECT_FALSE(cfg.Reaches(node.successors[0], header));
    }
  }
}

TEST_F(CfgTest, CatchEntryFallsThroughToAfterTry) {
  // Listing-2 shape: empty catch body falls through to the sleep and back to
  // the header — the catch *reaches* the header.
  const Cfg& cfg = BuildFor(R"(
    class C {
      void f() {
        for (var retry = 0; retry < 3; retry++) {
          try {
            this.connect();
            return;
          } catch (ConnectException e) {
            Log.warn("retrying");
          }
          Thread.sleep(1000);
        }
      }
      void connect() throws ConnectException;
    }
  )");
  const mj::Stmt* loop = FindStmt(mj::AstKind::kFor);
  CfgNodeId header = cfg.HeaderOf(*loop);
  const mj::CatchClause* clause = FindCatch();
  ASSERT_NE(clause, nullptr);
  CfgNodeId entry = cfg.CatchEntryOf(*clause);
  ASSERT_NE(entry, kInvalidCfgNode);
  EXPECT_TRUE(cfg.Reaches(entry, header));
}

TEST_F(CfgTest, CatchWithBreakDoesNotReachHeader) {
  // Listing-2 shape: catch (AccessControlException) { break; } exits the loop.
  const Cfg& cfg = BuildFor(R"(
    class C {
      void f() {
        for (var retry = 0; retry < 3; retry++) {
          try {
            this.connect();
          } catch (AccessControlException e) {
            break;
          }
        }
      }
      void connect() throws AccessControlException;
    }
  )");
  const mj::Stmt* loop = FindStmt(mj::AstKind::kFor);
  CfgNodeId header = cfg.HeaderOf(*loop);
  const mj::CatchClause* clause = FindCatch();
  CfgNodeId entry = cfg.CatchEntryOf(*clause);
  EXPECT_FALSE(cfg.Reaches(entry, header));
}

TEST_F(CfgTest, CatchWithReturnDoesNotReachHeader) {
  const Cfg& cfg = BuildFor(R"(
    class C {
      int f() {
        while (true) {
          try {
            return this.connect();
          } catch (IOException e) {
            return 0;
          }
        }
      }
      int connect() throws IOException;
    }
  )");
  const mj::Stmt* loop = FindStmt(mj::AstKind::kWhile);
  const mj::CatchClause* clause = FindCatch();
  EXPECT_FALSE(cfg.Reaches(cfg.CatchEntryOf(*clause), cfg.HeaderOf(*loop)));
}

TEST_F(CfgTest, CatchWithThrowDoesNotReachHeader) {
  const Cfg& cfg = BuildFor(R"(
    class C {
      void f() {
        while (true) {
          try {
            this.connect();
          } catch (IOException e) {
            throw new RuntimeException("fatal");
          }
        }
      }
      void connect() throws IOException;
    }
  )");
  const mj::Stmt* loop = FindStmt(mj::AstKind::kWhile);
  const mj::CatchClause* clause = FindCatch();
  EXPECT_FALSE(cfg.Reaches(cfg.CatchEntryOf(*clause), cfg.HeaderOf(*loop)));
}

TEST_F(CfgTest, TryStatementsHaveEdgesToCatchEntries) {
  const Cfg& cfg = BuildFor(R"(
    class C {
      void f() {
        try {
          this.a();
          this.b();
        } catch (Exception e) {
          this.log(e);
        }
      }
    }
  )");
  const mj::CatchClause* clause = FindCatch();
  CfgNodeId entry = cfg.CatchEntryOf(*clause);
  // Both calls inside the try have an edge to the catch entry.
  int edges_to_catch = 0;
  for (const CfgNode& node : cfg.nodes()) {
    if (node.kind == CfgNodeKind::kStatement) {
      for (CfgNodeId succ : node.successors) {
        if (succ == entry) {
          ++edges_to_catch;
        }
      }
    }
  }
  EXPECT_EQ(edges_to_catch, 2);
}

TEST_F(CfgTest, NestedTryConnectsToOuterHandlers) {
  const Cfg& cfg = BuildFor(R"(
    class C {
      void f() {
        try {
          try {
            this.a();
          } catch (IOException e) {
            this.inner(e);
          }
        } catch (Exception e) {
          this.outer(e);
        }
      }
    }
  )");
  const mj::CatchClause* inner = FindCatch(1, 0);  // Pre-order: outer try is 0.
  const mj::CatchClause* outer = FindCatch(0, 0);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(outer, nullptr);
  // The statement inside the inner try reaches both handlers.
  CfgNodeId inner_entry = cfg.CatchEntryOf(*inner);
  CfgNodeId outer_entry = cfg.CatchEntryOf(*outer);
  bool to_inner = false;
  bool to_outer = false;
  for (const CfgNode& node : cfg.nodes()) {
    if (node.kind == CfgNodeKind::kStatement && node.stmt != nullptr &&
        node.stmt->kind == mj::AstKind::kExprStmt) {
      for (CfgNodeId succ : node.successors) {
        to_inner |= succ == inner_entry;
        to_outer |= succ == outer_entry;
      }
    }
  }
  EXPECT_TRUE(to_inner);
  EXPECT_TRUE(to_outer);
}

TEST_F(CfgTest, FinallyRunsAfterBothPaths) {
  const Cfg& cfg = BuildFor(R"(
    class C {
      void f() {
        try {
          this.a();
        } catch (Exception e) {
          this.b();
        } finally {
          this.cleanup();
        }
        this.after();
      }
    }
  )");
  EXPECT_TRUE(cfg.Reaches(cfg.entry(), cfg.exit()));
  const mj::CatchClause* clause = FindCatch();
  // Catch body reaches exit only through the finally/after statements.
  EXPECT_TRUE(cfg.Reaches(cfg.CatchEntryOf(*clause), cfg.exit()));
}

TEST_F(CfgTest, SwitchFallthroughAndBreak) {
  const Cfg& cfg = BuildFor(R"(
    class C {
      void f(s) {
        switch (s) {
          case 1:
            this.a();
            break;
          case 2:
            this.b();
          default:
            this.c();
        }
        this.after();
      }
    }
  )");
  EXPECT_TRUE(cfg.Reaches(cfg.entry(), cfg.exit()));
  // Switch head has 3 case successors (and no direct next edge: default exists).
  for (const CfgNode& node : cfg.nodes()) {
    if (node.kind == CfgNodeKind::kSwitchHead) {
      EXPECT_EQ(node.successors.size(), 3u);
    }
  }
}

TEST_F(CfgTest, SwitchInsideLoopStateMachineRetryShape) {
  // Listing-4 shape: a state machine driven by an outer executor loop; the
  // catch leaves the state unchanged and returns — an implicit retry happens
  // because the framework re-invokes execute. Inside a single invocation the
  // catch does NOT reach any loop header.
  const Cfg& cfg = BuildFor(R"(
    class P {
      void driver() {
        while (this.hasWork()) {
          switch (this.state) {
            case 1:
              try {
                this.dispatch();
                this.state = 2;
              } catch (IOException e) {
                continue;
              }
              break;
            default:
              return;
          }
        }
      }
      void dispatch() throws IOException;
    }
  )");
  const mj::Stmt* loop = FindStmt(mj::AstKind::kWhile);
  const mj::CatchClause* clause = FindCatch();
  // `continue` returns control to the while header: this IS loop retry.
  EXPECT_TRUE(cfg.Reaches(cfg.CatchEntryOf(*clause), cfg.HeaderOf(*loop)));
}

TEST_F(CfgTest, ThrowWithoutHandlerGoesToExit) {
  const Cfg& cfg = BuildFor(R"(
    class C {
      void f() {
        throw new IOException("x");
      }
    }
  )");
  const mj::Stmt* throw_stmt = FindStmt(mj::AstKind::kThrow);
  for (const CfgNode& node : cfg.nodes()) {
    if (node.stmt == throw_stmt) {
      ASSERT_EQ(node.successors.size(), 1u);
      EXPECT_EQ(node.successors[0], cfg.exit());
    }
  }
}

TEST_F(CfgTest, BreakInSwitchInsideLoopTargetsSwitchNotLoop) {
  const Cfg& cfg = BuildFor(R"(
    class C {
      void f() {
        while (this.more()) {
          switch (this.state) {
            case 1:
              break;
          }
          this.afterSwitch();
        }
      }
    }
  )");
  // The loop must still be exitable and the break must not leave the loop:
  // after the switch-break, afterSwitch still runs, then back to the header.
  const mj::Stmt* loop = FindStmt(mj::AstKind::kWhile);
  const mj::Stmt* break_stmt = FindStmt(mj::AstKind::kBreak);
  CfgNodeId header = cfg.HeaderOf(*loop);
  for (const CfgNode& node : cfg.nodes()) {
    if (node.stmt == break_stmt) {
      ASSERT_EQ(node.successors.size(), 1u);
      // Break target leads back to the header (through afterSwitch).
      EXPECT_TRUE(cfg.Reaches(node.successors[0], header));
      EXPECT_NE(node.successors[0], header);
    }
  }
}

TEST_F(CfgTest, ReachesIsReflexive) {
  const Cfg& cfg = BuildFor("class C { void f() { this.g(); } }");
  EXPECT_TRUE(cfg.Reaches(cfg.entry(), cfg.entry()));
}

TEST_F(CfgTest, DumpProducesOneLinePerNode) {
  const Cfg& cfg = BuildFor("class C { void f() { var x = 1; } }");
  std::string dump = cfg.Dump();
  size_t lines = static_cast<size_t>(std::count(dump.begin(), dump.end(), '\n'));
  EXPECT_EQ(lines, cfg.size());
}

}  // namespace
}  // namespace wasabi
