// Unit tests for the retry-ratio IF-bug outlier analysis (§3.2.2 / §4.1).

#include "src/analysis/if_outliers.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/lang/diagnostics.h"
#include "src/lang/parser.h"

namespace wasabi {
namespace {

// Generates a class with `retried` retry loops that retry on `exception` and
// `not_retried` retry loops that catch it but bail out.
std::string MakeRatioProgram(const std::string& exception, int retried, int not_retried) {
  std::ostringstream out;
  out << "class Ratio {\n";
  int id = 0;
  for (int i = 0; i < retried; ++i, ++id) {
    out << "  void retryOp" << id << "() {\n"
        << "    for (var retry = 0; retry < 3; retry++) {\n"
        << "      try {\n"
        << "        this.op" << id << "();\n"
        << "        return;\n"
        << "      } catch (" << exception << " e) {\n"
        << "        Thread.sleep(10);\n"
        << "      }\n"
        << "    }\n"
        << "  }\n"
        << "  void op" << id << "() throws " << exception << ";\n";
  }
  for (int i = 0; i < not_retried; ++i, ++id) {
    out << "  void retryOp" << id << "() {\n"
        << "    for (var retry = 0; retry < 3; retry++) {\n"
        << "      try {\n"
        << "        this.op" << id << "();\n"
        << "        return;\n"
        << "      } catch (" << exception << " e) {\n"
        << "        break;\n"
        << "      } catch (IOException io) {\n"
        << "        Thread.sleep(10);\n"
        << "      }\n"
        << "    }\n"
        << "  }\n"
        << "  void op" << id << "() throws " << exception << ", IOException;\n";
  }
  out << "}\n";
  return out.str();
}

mj::Program ParseProgram(const std::string& source) {
  mj::Program program;
  mj::DiagnosticEngine diag;
  program.AddUnit(mj::ParseSource("ratio.mj", source, diag));
  EXPECT_FALSE(diag.has_errors()) << diag.FormatAll(nullptr);
  return program;
}

TEST(IfOutliersTest, MostlyRetriedExceptionFlagsNonRetriedSites) {
  // KeeperException analog: retried 5/6 places -> the 1 non-retried site is
  // the outlier.
  mj::Program program = ParseProgram(MakeRatioProgram("KeeperException", 5, 1));
  mj::ProgramIndex index(program);
  IfOutlierAnalysis analysis(program, index);
  auto reports = analysis.FindOutliers();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].exception, "KeeperException");
  EXPECT_TRUE(reports[0].mostly_retried);
  EXPECT_EQ(reports[0].caught_in_retry_loops, 6);
  EXPECT_EQ(reports[0].retried, 5);
  ASSERT_EQ(reports[0].outlier_sites.size(), 1u);
  EXPECT_FALSE(reports[0].outlier_sites[0].retried);
}

TEST(IfOutliersTest, MostlyNotRetriedExceptionFlagsRetriedSites) {
  mj::Program program = ParseProgram(MakeRatioProgram("IllegalArgumentException", 1, 6));
  mj::ProgramIndex index(program);
  IfOutlierAnalysis analysis(program, index);
  auto reports = analysis.FindOutliers();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_FALSE(reports[0].mostly_retried);
  ASSERT_EQ(reports[0].outlier_sites.size(), 1u);
  EXPECT_TRUE(reports[0].outlier_sites[0].retried);
}

TEST(IfOutliersTest, UnanimousBehaviorIsNotAnOutlier) {
  mj::Program program = ParseProgram(MakeRatioProgram("SocketException", 6, 0));
  mj::ProgramIndex index(program);
  IfOutlierAnalysis analysis(program, index);
  EXPECT_TRUE(analysis.FindOutliers().empty());
}

TEST(IfOutliersTest, MixedBehaviorNearHalfIsNotAnOutlier) {
  mj::Program program = ParseProgram(MakeRatioProgram("TimeoutException", 3, 3));
  mj::ProgramIndex index(program);
  IfOutlierAnalysis analysis(program, index);
  EXPECT_TRUE(analysis.FindOutliers().empty());
}

TEST(IfOutliersTest, TooFewSitesAreIgnored) {
  mj::Program program = ParseProgram(MakeRatioProgram("EOFException", 1, 1));
  mj::ProgramIndex index(program);
  IfOutlierAnalysis analysis(program, index);
  EXPECT_TRUE(analysis.FindOutliers().empty());
}

TEST(IfOutliersTest, StatsCountBothKinds) {
  mj::Program program = ParseProgram(MakeRatioProgram("KeeperException", 2, 1));
  mj::ProgramIndex index(program);
  IfOutlierAnalysis analysis(program, index);
  auto stats = analysis.ComputeStats();
  // KeeperException + IOException (from the not-retried variant's 2nd catch).
  bool found = false;
  for (const ExceptionRetryStats& stat : stats) {
    if (stat.exception == "KeeperException") {
      found = true;
      EXPECT_EQ(stat.caught_in_retry_loops, 3);
      EXPECT_EQ(stat.retried, 2);
      EXPECT_NEAR(stat.ratio(), 2.0 / 3.0, 1e-9);
    }
  }
  EXPECT_TRUE(found);
}

// Parameterized threshold sweep: ratios at/below 1/3 or at/above 2/3 (but not
// 0 or 1) are outliers; everything else is not.
struct RatioCase {
  int retried;
  int not_retried;
  bool expect_outlier;
};

class RatioSweepTest : public ::testing::TestWithParam<RatioCase> {};

TEST_P(RatioSweepTest, ThresholdBoundary) {
  const RatioCase& param = GetParam();
  mj::Program program =
      ParseProgram(MakeRatioProgram("KeeperException", param.retried, param.not_retried));
  mj::ProgramIndex index(program);
  IfOutlierAnalysis analysis(program, index);
  bool has_keeper_outlier = false;
  for (const IfOutlierReport& report : analysis.FindOutliers()) {
    if (report.exception == "KeeperException") {
      has_keeper_outlier = true;
    }
  }
  EXPECT_EQ(has_keeper_outlier, param.expect_outlier)
      << "retried=" << param.retried << " not_retried=" << param.not_retried;
}

INSTANTIATE_TEST_SUITE_P(Boundaries, RatioSweepTest,
                         ::testing::Values(RatioCase{6, 0, false},   // ratio 1.0
                                           RatioCase{5, 1, true},    // 0.833
                                           RatioCase{4, 2, true},    // 0.667 == 2/3
                                           RatioCase{3, 3, false},   // 0.5
                                           RatioCase{2, 4, true},    // 0.333 == 1/3
                                           RatioCase{1, 5, true},    // 0.167
                                           RatioCase{0, 6, false},   // ratio 0.0
                                           RatioCase{17, 3, true},   // KeeperException 17/20
                                           RatioCase{2, 7, true}));  // IllegalArgument 2/9

}  // namespace
}  // namespace wasabi
