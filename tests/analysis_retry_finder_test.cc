// Unit tests for the CodeQL-style retry finder and local type inference.

#include "src/analysis/retry_finder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "src/analysis/type_infer.h"
#include "src/lang/diagnostics.h"
#include "src/lang/parser.h"

namespace wasabi {
namespace {

mj::Program MakeProgram(std::initializer_list<std::string> sources) {
  mj::Program program;
  mj::DiagnosticEngine diag;
  int i = 0;
  for (const std::string& text : sources) {
    program.AddUnit(mj::ParseSource("unit" + std::to_string(i++) + ".mj", text, diag));
  }
  EXPECT_FALSE(diag.has_errors()) << diag.FormatAll(nullptr);
  return program;
}

// The Listing-2 analog: a loop retry with a retry-named counter, one
// non-retried catch (break) and one retried catch.
constexpr const char* kWebHdfsSource = R"(
class WebHdfsFileSystem {
  int maxAttempts = 3;
  HttpResponse run() throws IOException {
    for (var retry = 0; retry < this.maxAttempts; retry++) {
      try {
        var conn = this.connect("url");
        var response = this.getResponse(conn);
        return response;
      } catch (AccessControlException e) {
        break;
      } catch (ConnectException ce) {
        Log.warn("connect failed");
      }
      Thread.sleep(1000);
    }
    return null;
  }
  HttpUrlConnection connect(String url) throws AccessControlException, ConnectException;
  HttpResponse getResponse(HttpUrlConnection conn) throws SocketException;
}
)";

TEST(RetryFinderTest, FindsListing2LoopRetry) {
  mj::Program program = MakeProgram({kWebHdfsSource});
  mj::ProgramIndex index(program);
  RetryFinder finder(program, index);
  std::vector<RetryStructure> structures = finder.FindLoopStructures();
  ASSERT_EQ(structures.size(), 1u);
  const RetryStructure& structure = structures[0];
  EXPECT_EQ(structure.coordinator, "WebHdfsFileSystem.run");
  EXPECT_EQ(structure.mechanism, RetryMechanism::kLoop);
  EXPECT_TRUE(structure.found_by.codeql);
  EXPECT_TRUE(structure.keyword_evidence);

  // Triplets: connect can throw ConnectException (retried via catch #2) and
  // AccessControlException (catch #1 breaks: NOT a trigger). getResponse can
  // throw SocketException, which no catch handles... except none matches, so
  // it is not a trigger either.
  ASSERT_EQ(structure.locations.size(), 1u);
  const RetryLocation& location = structure.locations[0];
  EXPECT_EQ(location.retried_method, "WebHdfsFileSystem.connect");
  EXPECT_EQ(location.exception_name, "ConnectException");
  EXPECT_EQ(location.coordinator, "WebHdfsFileSystem.run");
}

TEST(RetryFinderTest, CatchOfSupertypeMatchesSubtypeException) {
  mj::Program program = MakeProgram({R"(
    class Client {
      void fetchWithRetries() {
        var attempts = 0;
        while (attempts < 5) {
          try {
            this.fetch();
            return;
          } catch (IOException e) {
            attempts++;
          }
        }
      }
      void fetch() throws ConnectException;
    }
  )"});
  mj::ProgramIndex index(program);
  RetryFinder finder(program, index);
  auto structures = finder.FindLoopStructures();
  ASSERT_EQ(structures.size(), 1u);
  ASSERT_EQ(structures[0].locations.size(), 1u);
  // ConnectException <: IOException, so it is a trigger.
  EXPECT_EQ(structures[0].locations[0].exception_name, "ConnectException");
}

TEST(RetryFinderTest, KeywordFilterSuppressesUnnamedLoops) {
  // A retry-shaped loop with no retry-ish naming: candidate but filtered, the
  // exact false-negative mode the paper reports for CodeQL (§4.2).
  mj::Program program = MakeProgram({R"(
    class Poller {
      void pump() {
        var n = 0;
        while (n < 5) {
          try {
            this.fetch();
            return;
          } catch (IOException e) {
            n++;
          }
        }
      }
      void fetch() throws IOException;
    }
  )"});
  mj::ProgramIndex index(program);
  RetryFinder finder(program, index);
  EXPECT_TRUE(finder.FindLoopStructures().empty());

  auto candidates = finder.FindCandidateLoops();
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_FALSE(candidates[0].keyword_evidence);

  RetryFinderOptions no_filter;
  no_filter.require_keyword = false;
  RetryFinder unfiltered(program, index, no_filter);
  EXPECT_EQ(unfiltered.FindLoopStructures().size(), 1u);
}

TEST(RetryFinderTest, KeywordInStringLiteralCounts) {
  mj::Program program = MakeProgram({R"(
    class C {
      void go() {
        var n = 0;
        while (n < 5) {
          try {
            this.fetch();
            return;
          } catch (IOException e) {
            Log.warn("will retry the fetch");
            n++;
          }
        }
      }
      void fetch() throws IOException;
    }
  )"});
  mj::ProgramIndex index(program);
  RetryFinder finder(program, index);
  EXPECT_EQ(finder.FindLoopStructures().size(), 1u);
}

TEST(RetryFinderTest, KeywordInCalleeNameCounts) {
  mj::Program program = MakeProgram({R"(
    class C {
      void go() {
        while (this.shouldRetry()) {
          try {
            this.fetch();
            return;
          } catch (IOException e) {
          }
        }
      }
      bool shouldRetry() { return true; }
      void fetch() throws IOException;
    }
  )"});
  mj::ProgramIndex index(program);
  RetryFinder finder(program, index);
  EXPECT_EQ(finder.FindLoopStructures().size(), 1u);
}

TEST(RetryFinderTest, LoopWithoutCatchIsNotCandidate) {
  mj::Program program = MakeProgram({R"(
    class C {
      void retryLoop() {
        for (var retry = 0; retry < 3; retry++) {
          this.step();
        }
      }
      void step() { }
    }
  )"});
  mj::ProgramIndex index(program);
  RetryFinder finder(program, index);
  EXPECT_TRUE(finder.FindCandidateLoops().empty());
}

TEST(RetryFinderTest, CatchThatAlwaysBreaksIsNotCandidate) {
  mj::Program program = MakeProgram({R"(
    class C {
      void retryLoop() {
        for (var retry = 0; retry < 3; retry++) {
          try {
            this.step();
          } catch (IOException e) {
            break;
          }
        }
      }
      void step() throws IOException;
    }
  )"});
  mj::ProgramIndex index(program);
  RetryFinder finder(program, index);
  EXPECT_TRUE(finder.FindCandidateLoops().empty());
}

TEST(RetryFinderTest, IterationLoopWithLoggingCatchIsCandidateButHasNoKeyword) {
  // The classic CodeQL false-positive candidate the keyword filter removes:
  // iterating items, catching and logging per-item errors.
  mj::Program program = MakeProgram({R"(
    class BatchProcessor {
      void processAll(items) {
        for (var i = 0; i < items.size(); i++) {
          try {
            this.processOne(items.get(i));
          } catch (IOException e) {
            Log.warn("item failed, skipping");
          }
        }
      }
      void processOne(item) throws IOException;
    }
  )"});
  mj::ProgramIndex index(program);
  RetryFinder finder(program, index);
  auto candidates = finder.FindCandidateLoops();
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_FALSE(candidates[0].keyword_evidence);
  EXPECT_TRUE(finder.FindLoopStructures().empty());
}

TEST(RetryFinderTest, TripletsForCoordinatorEnumeratesAllCalls) {
  mj::Program program = MakeProgram({R"(
    class TaskProcessor {
      Queue taskQueue = new Queue();
      void run() {
        var task = this.take();
        try {
          this.execute(task);
        } catch (Exception e) {
          this.requeue(task);
        }
      }
      Task take() { return null; }
      void execute(t) throws TimeoutException, IOException;
      void requeue(t) { }
    }
  )"});
  mj::ProgramIndex index(program);
  RetryFinder finder(program, index);
  const mj::MethodDecl* run = index.FindQualified("TaskProcessor.run");
  ASSERT_NE(run, nullptr);
  auto triplets = finder.TripletsForCoordinator(*run, RetryMechanism::kQueue);
  // execute throws 2 exception types -> 2 triplets; take/requeue throw nothing.
  ASSERT_EQ(triplets.size(), 2u);
  EXPECT_EQ(triplets[0].retried_method, "TaskProcessor.execute");
  EXPECT_EQ(triplets[0].mechanism, RetryMechanism::kQueue);
  std::vector<std::string> exceptions = {triplets[0].exception_name,
                                         triplets[1].exception_name};
  std::sort(exceptions.begin(), exceptions.end());
  EXPECT_EQ(exceptions[0], "IOException");
  EXPECT_EQ(exceptions[1], "TimeoutException");
}

TEST(RetryFinderTest, CrossClassResolutionThroughFieldType) {
  mj::Program program = MakeProgram({R"(
    class Store {
      Connection conn = new Connection();
      void saveWithRetry(data) {
        for (var retry = 0; retry < 3; retry++) {
          try {
            this.conn.write(data);
            return;
          } catch (SocketException e) {
            Thread.sleep(100);
          }
        }
      }
    }
  )",
                                     R"(
    class Connection {
      void write(data) throws SocketException;
    }
  )"});
  mj::ProgramIndex index(program);
  RetryFinder finder(program, index);
  auto structures = finder.FindLoopStructures();
  ASSERT_EQ(structures.size(), 1u);
  ASSERT_EQ(structures[0].locations.size(), 1u);
  EXPECT_EQ(structures[0].locations[0].retried_method, "Connection.write");
}

TEST(RetryFinderTest, NestedRetryLoopsReportedSeparately) {
  mj::Program program = MakeProgram({R"(
    class C {
      void outerRetry() {
        for (var retry = 0; retry < 3; retry++) {
          try {
            this.phase1();
          } catch (IOException e) {
            continue;
          }
          for (var retries = 0; retries < 5; retries++) {
            try {
              this.phase2();
              break;
            } catch (TimeoutException t) {
              Thread.sleep(10);
            }
          }
        }
      }
      void phase1() throws IOException;
      void phase2() throws TimeoutException;
    }
  )"});
  mj::ProgramIndex index(program);
  RetryFinder finder(program, index);
  auto structures = finder.FindLoopStructures();
  EXPECT_EQ(structures.size(), 2u);
}

// --- LocalTypes -----------------------------------------------------------

TEST(LocalTypesTest, InfersFromNewAndParamsAndFields) {
  mj::Program program = MakeProgram({R"(
    class Helper { int work() { return 1; } }
    class C {
      Helper member = new Helper();
      void f(Helper param) {
        var local = new Helper();
        var fromField = this.member;
        var fromCall = this.make();
        local.work();
        param.work();
        fromField.work();
        fromCall.work();
      }
      Helper make() { return new Helper(); }
    }
  )"});
  mj::ProgramIndex index(program);
  const mj::MethodDecl* f = index.FindQualified("C.f");
  ASSERT_NE(f, nullptr);
  LocalTypes types(*f, index);

  // All four receiver forms resolve Helper.work.
  int resolved_calls = 0;
  mj::WalkStmts(
      f->body, [](const mj::Stmt&) {},
      [&](const mj::Expr& expr) {
        if (expr.kind == mj::AstKind::kCall) {
          const auto& call = static_cast<const mj::CallExpr&>(expr);
          if (call.callee == "work") {
            const mj::MethodDecl* resolved = types.ResolveCall(call);
            ASSERT_NE(resolved, nullptr);
            EXPECT_EQ(resolved->QualifiedName(), "Helper.work");
            ++resolved_calls;
          }
        }
      });
  EXPECT_EQ(resolved_calls, 4);
}

TEST(LocalTypesTest, BuiltinReceiversDoNotResolve) {
  mj::Program program = MakeProgram({R"(
    class C {
      void sleep() { }
      void f() {
        Thread.sleep(100);
      }
    }
  )"});
  mj::ProgramIndex index(program);
  const mj::MethodDecl* f = index.FindQualified("C.f");
  LocalTypes types(*f, index);
  mj::WalkStmts(
      f->body, [](const mj::Stmt&) {},
      [&](const mj::Expr& expr) {
        if (expr.kind == mj::AstKind::kCall) {
          // Thread.sleep must NOT resolve to C.sleep.
          EXPECT_EQ(types.ResolveCall(static_cast<const mj::CallExpr&>(expr)), nullptr);
        }
      });
}

TEST(LocalTypesTest, UniqueSimpleNameFallback) {
  mj::Program program = MakeProgram({R"(
    class Worker { void uniqueOp() throws IOException; }
    class Driver {
      void f(w) {
        w.uniqueOp();
      }
    }
  )"});
  mj::ProgramIndex index(program);
  const mj::MethodDecl* f = index.FindQualified("Driver.f");
  LocalTypes types(*f, index);
  mj::WalkStmts(
      f->body, [](const mj::Stmt&) {},
      [&](const mj::Expr& expr) {
        if (expr.kind == mj::AstKind::kCall) {
          const mj::MethodDecl* resolved =
              types.ResolveCall(static_cast<const mj::CallExpr&>(expr));
          ASSERT_NE(resolved, nullptr);
          EXPECT_EQ(resolved->QualifiedName(), "Worker.uniqueOp");
        }
      });
}

TEST(LocalTypesTest, AmbiguousSimpleNameDoesNotResolve) {
  mj::Program program = MakeProgram({R"(
    class A { void op() { } }
    class B { void op() { } }
    class Driver {
      void f(x) {
        x.op();
      }
    }
  )"});
  mj::ProgramIndex index(program);
  const mj::MethodDecl* f = index.FindQualified("Driver.f");
  LocalTypes types(*f, index);
  mj::WalkStmts(
      f->body, [](const mj::Stmt&) {},
      [&](const mj::Expr& expr) {
        if (expr.kind == mj::AstKind::kCall) {
          EXPECT_EQ(types.ResolveCall(static_cast<const mj::CallExpr&>(expr)), nullptr);
        }
      });
}

}  // namespace
}  // namespace wasabi
