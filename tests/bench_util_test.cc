// Tests for the bench-side table rendering helpers (they format every
// reproduced table, so their alignment/format contract matters).

#include "bench/bench_util.h"

#include <gtest/gtest.h>

#include <sstream>

namespace wasabi {
namespace {

TEST(TablePrinterTest, AlignsColumnsToWidestCell) {
  TablePrinter table({"A", "Header"});
  table.AddRow({"wide-cell-value", "x"});
  table.AddRow({"y", "z"});
  std::ostringstream out;
  table.Print(out);
  std::string text = out.str();

  // Four lines: header, separator, two rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
  // Every line has the same length (fixed-width columns).
  std::istringstream lines(text);
  std::string line;
  size_t width = 0;
  while (std::getline(lines, line)) {
    if (width == 0) {
      width = line.size();
    }
    EXPECT_EQ(line.size(), width) << line;
  }
  EXPECT_NE(text.find("wide-cell-value"), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsPadWithEmptyCells) {
  TablePrinter table({"A", "B", "C"});
  table.AddRow({"only-one"});
  std::ostringstream out;
  table.Print(out);
  // Renders without crashing and keeps three column separators per row.
  std::string text = out.str();
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find("only-one") != std::string::npos) {
      EXPECT_EQ(std::count(line.begin(), line.end(), '|'), 4);
    }
  }
}

TEST(CellWithFpTest, FormatsCountsAndDash) {
  EXPECT_EQ(CellWithFp(0, 0), "-");
  EXPECT_EQ(CellWithFp(5, 2), "5 (2 FP)");
  EXPECT_EQ(CellWithFp(1, 0), "1 (0 FP)");
}

TEST(PercentTest, HandlesZeroDenominator) {
  EXPECT_EQ(Percent(1, 0), "n/a");
  EXPECT_EQ(Percent(1, 2), "50%");
  EXPECT_EQ(Percent(2, 3), "67%");
  EXPECT_EQ(Percent(0, 5), "0%");
}

}  // namespace
}  // namespace wasabi
