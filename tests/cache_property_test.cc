// Cache-correctness property tests (ctest label "cache", docs/CACHING.md).
//
// The contract under test: attaching a CacheStore NEVER changes any workflow
// output — not on a cold run (populate), not on a warm run (full replay), not
// after mutating exactly one corpus file (partial replay), and not with a
// poisoned cache directory (checksum/version fallback). The cache may only
// ever trade recomputation for lookups; a wrong report is the one failure
// mode that must be impossible.
//
// Invalidation granularity is also pinned here: mutating one non-test source
// file must recompute exactly that file's per-file SimLLM entries (q1/when
// namespaces) while every other file replays, and must invalidate the
// program-digest-keyed namespaces (cov/camp) wholesale.

#include <unistd.h>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/cache/store.h"
#include "src/core/report_json.h"
#include "src/core/wasabi.h"
#include "src/corpus/corpus.h"
#include "src/lang/diagnostics.h"
#include "src/lang/parser.h"
#include "src/obs/metrics.h"

namespace wasabi {
namespace {

// Flattens everything the dynamic workflow reports (the golden-equivalence
// fingerprint): bugs, raw oracle firings, coverage, counters, quarantine set.
std::string DynamicFingerprint(const DynamicResult& result) {
  std::ostringstream out;
  out << "bugs=" << BugReportsToJson(result.bugs);
  out << "\nraw_reports=" << result.raw_reports.size() << "\n";
  for (const OracleReport& report : result.raw_reports) {
    out << OracleKindName(report.kind) << "|" << report.test << "|"
        << report.location.retried_method << "|" << report.group_key << "|" << report.detail
        << "\n";
  }
  out << "coverage=\n";
  for (const auto& [test, hits] : result.coverage) {
    out << test << ":";
    for (size_t hit : hits) {
      out << " " << hit;
    }
    out << "\n";
  }
  out << "locations=" << result.locations.size() << " total_tests=" << result.total_tests
      << " covering=" << result.tests_covering_retry << " planned=" << result.planned_runs
      << " naive=" << result.naive_runs << " structures=" << result.structures_identified << "/"
      << result.structures_covered << " restored=" << result.config_restrictions_restored << "\n";
  out << "degraded=" << result.degraded << " quarantined=" << result.quarantined.size() << "\n";
  for (const RunFailure& failure : result.quarantined) {
    out << failure.run_id << "|" << failure.test << "|" << failure.location << "|"
        << RunFailureKindName(failure.kind) << "|" << failure.attempts << "\n";
  }
  out << "robust retries=" << result.robustness.retries
      << " recovered=" << result.robustness.recovered
      << " quarantined=" << result.robustness.quarantined
      << " chaos=" << result.robustness.chaos_faults
      << " breaker=" << result.robustness.breaker_open
      << " backoff=" << result.robustness.backoff_virtual_ms << "\n";
  return out.str();
}

// Static workflow surface, including the replayed LLM usage counters (the
// cache stores per-file usage deltas; their sum must reproduce the cache-off
// totals exactly).
std::string StaticFingerprint(const StaticResult& result) {
  std::ostringstream out;
  out << "when=" << BugReportsToJson(result.when_bugs);
  out << "\nif=" << BugReportsToJson(result.if_bugs);
  out << "\noutliers=" << result.if_outliers.size();
  out << "\nllm calls=" << result.llm_usage.calls << " bytes=" << result.llm_usage.bytes_sent
      << " tokens=" << result.llm_usage.prompt_tokens << "\n";
  return out.str();
}

std::string IdentificationFingerprint(const IdentificationResult& result) {
  std::ostringstream out;
  out << "structures=" << result.structures.size() << "\n";
  for (const RetryStructure& structure : result.structures) {
    out << structure.coordinator << "|" << static_cast<int>(structure.mechanism) << "|"
        << structure.found_by.codeql << structure.found_by.llm << "\n";
  }
  out << "truncated=" << result.files_truncated_by_llm
      << " candidates=" << result.candidate_loops_without_keyword_filter
      << " llm calls=" << result.llm_usage.calls << " bytes=" << result.llm_usage.bytes_sent
      << " tokens=" << result.llm_usage.prompt_tokens << "\n";
  return out.str();
}

bool IsTestUnit(const std::string& file) {
  return file.find("/test/") != std::string::npos || file.rfind("test/", 0) == 0;
}

// Reparses `base` into a fresh Program, appending a comment (digest-visible,
// semantics-preserving) to the unit at `mutate_index`; pass SIZE_MAX for a
// byte-identical rebuild.
mj::Program RebuildProgram(const mj::Program& base, size_t mutate_index) {
  mj::Program rebuilt;
  mj::DiagnosticEngine diag;
  for (size_t i = 0; i < base.units().size(); ++i) {
    const auto& unit = base.units()[i];
    std::string text(unit->file().text());
    if (i == mutate_index) {
      text += "\n// cache-property mutation\n";
    }
    rebuilt.AddUnit(mj::ParseSource(unit->file().name(), text, diag));
  }
  EXPECT_FALSE(diag.has_errors()) << diag.FormatAll(nullptr);
  return rebuilt;
}

size_t FirstNonTestUnit(const mj::Program& program) {
  for (size_t i = 0; i < program.units().size(); ++i) {
    if (!IsTestUnit(program.units()[i]->file().name())) {
      return i;
    }
  }
  ADD_FAILURE() << "corpus app has no non-test unit";
  return 0;
}

class CachePropertyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "wasabi_cache_property_test_" +
           std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()) +
           "_" + std::to_string(::getpid());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::unique_ptr<CacheStore> OpenStore() {
    std::string error;
    std::unique_ptr<CacheStore> store = CacheStore::Open(dir_, &error);
    EXPECT_NE(store, nullptr) << error;
    return store;
  }

  static WasabiOptions OptionsFor(const CorpusApp& app) {
    WasabiOptions options;
    options.app_name = app.name;
    options.default_configs = app.default_configs;
    return options;
  }

  std::string dir_;
};

TEST_F(CachePropertyTest, WarmRunIsByteIdenticalAndSkipsEveryNamespace) {
  CorpusApp app = BuildCorpusApp("hacommon");

  // Ground truth: the workflows without any cache attached.
  Wasabi plain(app.program, *app.index, OptionsFor(app));
  const std::string base_identify = IdentificationFingerprint(plain.IdentifyRetryStructures());
  const std::string base_dynamic = DynamicFingerprint(plain.RunDynamicWorkflow());
  const std::string base_static = StaticFingerprint(plain.RunStaticWorkflow());

  // Cold run populates; output must not move.
  MetricsRegistry cold_metrics;
  {
    std::unique_ptr<CacheStore> store = OpenStore();
    Wasabi cold(app.program, *app.index, OptionsFor(app));
    cold.set_cache(store.get());
    cold.set_observability(nullptr, &cold_metrics);
    EXPECT_EQ(IdentificationFingerprint(cold.IdentifyRetryStructures()), base_identify);
    EXPECT_EQ(DynamicFingerprint(cold.RunDynamicWorkflow()), base_dynamic);
    EXPECT_EQ(StaticFingerprint(cold.RunStaticWorkflow()), base_static);
    std::string error;
    ASSERT_TRUE(store->Flush(&error)) << error;
    EXPECT_GT(store->stats().puts, 0);
  }
  EXPECT_GT(cold_metrics.CounterValue("cache.misses.q1"), 0);
  EXPECT_GT(cold_metrics.CounterValue("cache.misses.cov"), 0);
  EXPECT_EQ(cold_metrics.CounterValue("cache.misses.camp"), 1);
  EXPECT_GT(cold_metrics.CounterValue("cache.misses.when"), 0);

  // Warm run replays everything: zero misses, hit counts mirror the cold
  // misses, and every fingerprint is byte-identical.
  MetricsRegistry warm_metrics;
  std::unique_ptr<CacheStore> store = OpenStore();
  EXPECT_GT(store->stats().loaded_entries, 0);
  Wasabi warm(app.program, *app.index, OptionsFor(app));
  warm.set_cache(store.get());
  warm.set_observability(nullptr, &warm_metrics);
  EXPECT_EQ(IdentificationFingerprint(warm.IdentifyRetryStructures()), base_identify);
  EXPECT_EQ(DynamicFingerprint(warm.RunDynamicWorkflow()), base_dynamic);
  EXPECT_EQ(StaticFingerprint(warm.RunStaticWorkflow()), base_static);

  EXPECT_EQ(warm_metrics.CounterValue("cache.misses.q1"), 0);
  EXPECT_EQ(warm_metrics.CounterValue("cache.misses.cov"), 0);
  EXPECT_EQ(warm_metrics.CounterValue("cache.misses.camp"), 0);
  EXPECT_EQ(warm_metrics.CounterValue("cache.misses.when"), 0);
  EXPECT_EQ(warm_metrics.CounterValue("cache.hits.q1"),
            cold_metrics.CounterValue("cache.misses.q1"));
  EXPECT_EQ(warm_metrics.CounterValue("cache.hits.cov"),
            cold_metrics.CounterValue("cache.misses.cov"));
  EXPECT_EQ(warm_metrics.CounterValue("cache.hits.camp"), 1);
  EXPECT_EQ(warm_metrics.CounterValue("cache.hits.when"),
            cold_metrics.CounterValue("cache.misses.when"));
}

TEST_F(CachePropertyTest, SingleFileMutationRecomputesOnlyDigestDependents) {
  CorpusApp app = BuildCorpusApp("hacommon");

  // Populate from the pristine program.
  MetricsRegistry cold_metrics;
  {
    std::unique_ptr<CacheStore> store = OpenStore();
    Wasabi cold(app.program, *app.index, OptionsFor(app));
    cold.set_cache(store.get());
    cold.set_observability(nullptr, &cold_metrics);
    cold.RunDynamicWorkflow();
    cold.RunStaticWorkflow();
    std::string error;
    ASSERT_TRUE(store->Flush(&error)) << error;
  }

  // Mutate exactly one non-test file (an appended comment: the content digest
  // hashes comments and byte length, so this invalidates like a code edit).
  const size_t mutated_unit = FirstNonTestUnit(app.program);
  mj::Program mutated = RebuildProgram(app.program, mutated_unit);
  mj::ProgramIndex mutated_index(mutated);

  WasabiOptions options = OptionsFor(app);
  Wasabi mutated_plain(mutated, mutated_index, options);
  const std::string base_dynamic = DynamicFingerprint(mutated_plain.RunDynamicWorkflow());
  const std::string base_static = StaticFingerprint(mutated_plain.RunStaticWorkflow());

  MetricsRegistry warm_metrics;
  std::unique_ptr<CacheStore> store = OpenStore();
  Wasabi warm(mutated, mutated_index, options);
  warm.set_cache(store.get());
  warm.set_observability(nullptr, &warm_metrics);
  DynamicResult dynamic = warm.RunDynamicWorkflow();
  EXPECT_EQ(DynamicFingerprint(dynamic), base_dynamic);
  EXPECT_EQ(StaticFingerprint(warm.RunStaticWorkflow()), base_static);

  // Per-file namespaces: exactly the mutated file recomputes.
  EXPECT_EQ(warm_metrics.CounterValue("cache.misses.q1"), 1);
  EXPECT_EQ(warm_metrics.CounterValue("cache.hits.q1"),
            cold_metrics.CounterValue("cache.misses.q1") - 1);
  EXPECT_EQ(warm_metrics.CounterValue("cache.misses.when"), 1);
  EXPECT_EQ(warm_metrics.CounterValue("cache.hits.when"),
            cold_metrics.CounterValue("cache.misses.when") - 1);

  // Program-digest namespaces: invalidated wholesale (a mutated file moves
  // the program digest, and run verdicts are only sound for the exact
  // program they were produced by).
  EXPECT_EQ(warm_metrics.CounterValue("cache.hits.cov"), 0);
  EXPECT_EQ(warm_metrics.CounterValue("cache.misses.cov"),
            static_cast<int64_t>(dynamic.total_tests));
  EXPECT_EQ(warm_metrics.CounterValue("cache.hits.camp"), 0);
  EXPECT_EQ(warm_metrics.CounterValue("cache.misses.camp"), 1);
}

TEST_F(CachePropertyTest, PoisonedEntriesFallBackColdWithoutWrongReports) {
  CorpusApp app = BuildCorpusApp("hacommon");
  Wasabi plain(app.program, *app.index, OptionsFor(app));
  const std::string base_dynamic = DynamicFingerprint(plain.RunDynamicWorkflow());

  {
    std::unique_ptr<CacheStore> store = OpenStore();
    Wasabi cold(app.program, *app.index, OptionsFor(app));
    cold.set_cache(store.get());
    cold.RunDynamicWorkflow();
    std::string error;
    ASSERT_TRUE(store->Flush(&error)) << error;
  }

  // Poison the entries file: tear off the tail mid-record and append garbage.
  const std::string entries_path = dir_ + "/entries.tsv";
  std::string content;
  {
    std::ifstream in(entries_path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    content = buffer.str();
  }
  ASSERT_GT(content.size(), 100u);
  content.resize(content.size() * 3 / 5);
  content += "\ngarbage that is definitely not a record\n\t\t\t\t\t\n";
  {
    std::ofstream out(entries_path, std::ios::binary | std::ios::trunc);
    out << content;
  }

  // The damaged store must detect and drop poisoned records (counted), serve
  // what survived, and the report must still not move by a byte.
  std::unique_ptr<CacheStore> store = OpenStore();
  EXPECT_GT(store->stats().corrupt_entries, 0);
  Wasabi warm(app.program, *app.index, OptionsFor(app));
  warm.set_cache(store.get());
  EXPECT_EQ(DynamicFingerprint(warm.RunDynamicWorkflow()), base_dynamic);
}

TEST_F(CachePropertyTest, VersionMismatchFallsBackColdAndRecovers) {
  CorpusApp app = BuildCorpusApp("hacommon");
  Wasabi plain(app.program, *app.index, OptionsFor(app));
  const std::string base_dynamic = DynamicFingerprint(plain.RunDynamicWorkflow());

  {
    std::unique_ptr<CacheStore> store = OpenStore();
    Wasabi cold(app.program, *app.index, OptionsFor(app));
    cold.set_cache(store.get());
    cold.RunDynamicWorkflow();
    std::string error;
    ASSERT_TRUE(store->Flush(&error)) << error;
  }
  {
    std::ofstream version(dir_ + "/VERSION", std::ios::trunc);
    version << "wasabi-cache-v999-from-the-future\n";
  }

  // Stale-schema store: discarded wholesale, run falls back cold, and the
  // Flush re-populates the directory under the current schema.
  MetricsRegistry metrics;
  {
    std::unique_ptr<CacheStore> store = OpenStore();
    EXPECT_EQ(store->stats().version_mismatches, 1);
    EXPECT_EQ(store->stats().loaded_entries, 0);
    Wasabi warm(app.program, *app.index, OptionsFor(app));
    warm.set_cache(store.get());
    warm.set_observability(nullptr, &metrics);
    EXPECT_EQ(DynamicFingerprint(warm.RunDynamicWorkflow()), base_dynamic);
    EXPECT_EQ(metrics.CounterValue("cache.hits.camp"), 0);
    std::string error;
    ASSERT_TRUE(store->Flush(&error)) << error;
  }
  std::unique_ptr<CacheStore> recovered = OpenStore();
  EXPECT_EQ(recovered->stats().version_mismatches, 0);
  EXPECT_GT(recovered->stats().loaded_entries, 0);
}

}  // namespace
}  // namespace wasabi
