// Unit tests for the versioned on-disk cache store (src/cache/store.h, ctest
// label "cache"): field escaping, persistence across sessions, last-write-wins
// reload, schema-version invalidation, and — the robustness contract — that
// corrupt or truncated records can only ever cause recomputation (dropped +
// counted), never a wrong value and never a crash.

#include "src/cache/store.h"

#include <unistd.h>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace wasabi {
namespace {

class CacheStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "wasabi_cache_store_test_" +
           std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()) +
           "_" + std::to_string(::getpid());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::unique_ptr<CacheStore> Open() {
    std::string error;
    std::unique_ptr<CacheStore> store = CacheStore::Open(dir_, &error);
    EXPECT_NE(store, nullptr) << error;
    return store;
  }

  std::string EntriesPath() const { return dir_ + "/entries.tsv"; }

  std::string ReadEntriesFile() const {
    std::ifstream in(EntriesPath(), std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  }

  void WriteEntriesFile(const std::string& content) const {
    std::ofstream out(EntriesPath(), std::ios::binary | std::ios::trunc);
    out << content;
  }

  std::string dir_;
};

TEST_F(CacheStoreTest, EscapeRoundTripsEveryHostileByte) {
  const std::vector<std::string> cases = {
      "",
      "plain",
      "tab\there",
      "newline\nhere",
      "carriage\rreturn",
      "back\\slash",
      std::string("field\x1fsep"),
      std::string("record\x1esep"),
      "\\t literal backslash-t",
      std::string("\t\n\\\x1f\x1e"),
  };
  for (const std::string& raw : cases) {
    const std::string escaped = CacheStore::EscapeField(raw);
    EXPECT_EQ(escaped.find('\t'), std::string::npos) << raw;
    EXPECT_EQ(escaped.find('\n'), std::string::npos) << raw;
    std::string back;
    ASSERT_TRUE(CacheStore::UnescapeField(escaped, &back)) << raw;
    EXPECT_EQ(back, raw);
  }
}

TEST_F(CacheStoreTest, GetPutAndStatsAccounting) {
  std::unique_ptr<CacheStore> store = Open();
  EXPECT_FALSE(store->Get("ns", "missing").has_value());
  store->Put("ns", "k", "v");
  std::optional<std::string> hit = store->Get("ns", "k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "v");
  // Namespaces partition the key space.
  EXPECT_FALSE(store->Get("other", "k").has_value());

  CacheStats stats = store->stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 2);
  EXPECT_EQ(stats.puts, 1);
  EXPECT_EQ(stats.hits_by_namespace.at("ns"), 1);
  EXPECT_EQ(stats.misses_by_namespace.at("other"), 1);
}

TEST_F(CacheStoreTest, FlushPersistsAcrossSessionsAndLastWriteWins) {
  {
    std::unique_ptr<CacheStore> store = Open();
    store->Put("run", "key1", "first");
    store->Put("cov", "key with\ttab", "value with\nnewline");
    std::string error;
    ASSERT_TRUE(store->Flush(&error)) << error;
  }
  {
    std::unique_ptr<CacheStore> store = Open();
    EXPECT_EQ(store->stats().loaded_entries, 2);
    EXPECT_EQ(store->Get("run", "key1").value_or(""), "first");
    EXPECT_EQ(store->Get("cov", "key with\ttab").value_or(""), "value with\nnewline");
    // Overwrite in a second session: Flush appends, reload takes the latest.
    store->Put("run", "key1", "second");
    std::string error;
    ASSERT_TRUE(store->Flush(&error)) << error;
  }
  std::unique_ptr<CacheStore> store = Open();
  EXPECT_EQ(store->Get("run", "key1").value_or(""), "second");
  EXPECT_EQ(store->stats().corrupt_entries, 0);
  EXPECT_EQ(store->stats().version_mismatches, 0);
}

TEST_F(CacheStoreTest, VersionMismatchDiscardsStoreAndRewrites) {
  {
    std::unique_ptr<CacheStore> store = Open();
    store->Put("run", "old", "stale");
    std::string error;
    ASSERT_TRUE(store->Flush(&error)) << error;
  }
  {
    std::ofstream version(dir_ + "/VERSION", std::ios::trunc);
    version << "wasabi-cache-v0-bogus\n";
  }
  {
    std::unique_ptr<CacheStore> store = Open();
    // Stale-schema entries must never be served.
    EXPECT_FALSE(store->Get("run", "old").has_value());
    EXPECT_EQ(store->stats().version_mismatches, 1);
    EXPECT_EQ(store->stats().loaded_entries, 0);
    store->Put("run", "fresh", "value");
    std::string error;
    ASSERT_TRUE(store->Flush(&error)) << error;
  }
  // The rewrite restored the current schema: reload is clean.
  std::unique_ptr<CacheStore> store = Open();
  EXPECT_EQ(store->stats().version_mismatches, 0);
  EXPECT_FALSE(store->Get("run", "old").has_value());
  EXPECT_EQ(store->Get("run", "fresh").value_or(""), "value");
  std::ifstream version(dir_ + "/VERSION");
  std::string tag;
  std::getline(version, tag);
  EXPECT_EQ(tag, std::string(kCacheSchemaVersion));
}

TEST_F(CacheStoreTest, BitFlippedAndGarbageRecordsAreDroppedNotServed) {
  {
    std::unique_ptr<CacheStore> store = Open();
    store->Put("ns", "intact", "good");
    store->Put("ns", "victim", "value");
    std::string error;
    ASSERT_TRUE(store->Flush(&error)) << error;
  }
  std::string content = ReadEntriesFile();
  // Flip the last byte of the record holding "value" — checksum must catch it.
  size_t victim_pos = content.find("value");
  ASSERT_NE(victim_pos, std::string::npos);
  content[victim_pos + 4] = 'X';
  // And append lines that are not records at all.
  content += "not a record at all\n";
  content += "deadbeef\tns\tonly-three-fields\n";
  WriteEntriesFile(content);

  std::unique_ptr<CacheStore> store = Open();
  EXPECT_EQ(store->Get("ns", "intact").value_or(""), "good");
  EXPECT_FALSE(store->Get("ns", "victim").has_value())
      << "a checksum-failed record must read as a miss, not a wrong value";
  EXPECT_GE(store->stats().corrupt_entries, 3);
  EXPECT_EQ(store->stats().loaded_entries, 1);
}

TEST_F(CacheStoreTest, TruncatedEntriesFileLosesOnlyTheTornRecord) {
  {
    std::unique_ptr<CacheStore> store = Open();
    store->Put("ns", "first", "aaaa");
    store->Put("ns", "second", "bbbb");
    std::string error;
    ASSERT_TRUE(store->Flush(&error)) << error;
  }
  std::string content = ReadEntriesFile();
  // Tear the file mid-way through the final record (a crash mid-append).
  WriteEntriesFile(content.substr(0, content.size() - 5));

  std::unique_ptr<CacheStore> store = Open();
  EXPECT_EQ(store->stats().loaded_entries, 1);
  EXPECT_GE(store->stats().corrupt_entries, 1);
  EXPECT_EQ(store->Get("ns", "first").value_or(""), "aaaa");
  EXPECT_FALSE(store->Get("ns", "second").has_value());
}

TEST_F(CacheStoreTest, WholeFileGarbageFallsBackToEmptyStore) {
  {
    std::unique_ptr<CacheStore> store = Open();
    store->Put("ns", "k", "v");
    std::string error;
    ASSERT_TRUE(store->Flush(&error)) << error;
  }
  WriteEntriesFile(std::string("\x00\x01\x02\xff binary junk\twith tabs\n\n\t\t\t\t\n", 33));
  std::unique_ptr<CacheStore> store = Open();
  EXPECT_EQ(store->stats().loaded_entries, 0);
  EXPECT_GE(store->stats().corrupt_entries, 1);
  EXPECT_FALSE(store->Get("ns", "k").has_value());
  // The damaged store stays fully usable.
  store->Put("ns", "k", "v2");
  std::string error;
  ASSERT_TRUE(store->Flush(&error)) << error;
}

TEST_F(CacheStoreTest, OpenFailsCleanlyWhenDirIsAFile) {
  std::ofstream blocker(dir_);
  blocker << "not a directory";
  blocker.close();
  std::string error;
  std::unique_ptr<CacheStore> store = CacheStore::Open(dir_, &error);
  EXPECT_EQ(store, nullptr);
  EXPECT_FALSE(error.empty());
  std::filesystem::remove(dir_);
}

}  // namespace
}  // namespace wasabi
