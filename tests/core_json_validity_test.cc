// Validates that BugReportsToJson emits strictly well-formed JSON, using the
// shared standalone validator (no third-party dependency) over reports whose
// fields contain adversarial content.

#include <gtest/gtest.h>

#include <string>

#include "src/core/report_json.h"
#include "tests/json_validator.h"

namespace wasabi {
namespace {

TEST(JsonValidatorSelfTest, AcceptsAndRejectsCorrectly) {
  EXPECT_TRUE(JsonValidator("[]").Validate());
  EXPECT_TRUE(JsonValidator("[{\"a\": 1, \"b\": \"x\\ny\"}]").Validate());
  EXPECT_TRUE(JsonValidator("{\"k\": [true, false, null, -5]}").Validate());
  EXPECT_TRUE(JsonValidator("[0.5, -3.25, 1e+06, 2E-3, 1.5e2]").Validate());
  EXPECT_FALSE(JsonValidator("[").Validate());
  EXPECT_FALSE(JsonValidator("{\"a\" 1}").Validate());
  EXPECT_FALSE(JsonValidator("[1,]").Validate());
  EXPECT_FALSE(JsonValidator("[1.]").Validate());
  EXPECT_FALSE(JsonValidator("[1e]").Validate());
  EXPECT_FALSE(JsonValidator("[01]").Validate());
  EXPECT_FALSE(JsonValidator("\"unterminated").Validate());
  EXPECT_FALSE(JsonValidator(std::string("\"ctrl\x01\"")).Validate());
  EXPECT_FALSE(JsonValidator("[] trailing").Validate());
}

TEST(JsonValidityTest, EmptyReportListIsValidJson) {
  EXPECT_TRUE(JsonValidator(BugReportsToJson({})).Validate());
}

TEST(JsonValidityTest, AdversarialFieldContentStaysValid) {
  BugReport bug;
  bug.type = BugType::kHow;
  bug.technique = DetectionTechnique::kUnitTesting;
  bug.app = "a\"pp\\ with \n newline";
  bug.file = "dir/\tfile.mj";
  bug.coordinator = "C.m\"]},{";
  bug.exception = std::string("Ctrl\x02Chars\x1f");
  bug.detail = "quotes \" backslashes \\ braces {} brackets [] commas ,,, \r\n";
  bug.location.line = 7;

  BugReport plain;
  plain.app = "plain";

  std::string json = BugReportsToJson({bug, plain, bug});
  EXPECT_TRUE(JsonValidator(json).Validate()) << json;
}

}  // namespace
}  // namespace wasabi
