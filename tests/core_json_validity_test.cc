// Validates that BugReportsToJson emits strictly well-formed JSON, using a
// small standalone validator (no third-party dependency) over reports whose
// fields contain adversarial content.

#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "src/core/report_json.h"

namespace wasabi {
namespace {

// Minimal JSON well-formedness checker: values, objects, arrays, strings with
// escapes, numbers, true/false/null. Returns true iff the whole input is one
// valid JSON value (plus trailing whitespace).
class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : text_(text) {}

  bool Validate() {
    SkipSpace();
    if (!Value()) {
      return false;
    }
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }
  bool String() {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // Raw control character: invalid.
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) {
          return false;
        }
        char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (std::string_view("\"\\/bfnrt").find(esc) == std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }
  bool Number() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return pos_ > start && std::isdigit(static_cast<unsigned char>(text_[pos_ - 1]));
  }
  bool Value() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return false;
    }
    char c = text_[pos_];
    if (c == '{') {
      return Object();
    }
    if (c == '[') {
      return Array();
    }
    if (c == '"') {
      return String();
    }
    if (c == 't') {
      return Literal("true");
    }
    if (c == 'f') {
      return Literal("false");
    }
    if (c == 'n') {
      return Literal("null");
    }
    return Number();
  }
  bool Object() {
    ++pos_;  // '{'
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      if (!String()) {
        return false;
      }
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return false;
      }
      ++pos_;
      if (!Value()) {
        return false;
      }
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      if (!Value()) {
        return false;
      }
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

TEST(JsonValidatorSelfTest, AcceptsAndRejectsCorrectly) {
  EXPECT_TRUE(JsonValidator("[]").Validate());
  EXPECT_TRUE(JsonValidator("[{\"a\": 1, \"b\": \"x\\ny\"}]").Validate());
  EXPECT_TRUE(JsonValidator("{\"k\": [true, false, null, -5]}").Validate());
  EXPECT_FALSE(JsonValidator("[").Validate());
  EXPECT_FALSE(JsonValidator("{\"a\" 1}").Validate());
  EXPECT_FALSE(JsonValidator("[1,]").Validate());
  EXPECT_FALSE(JsonValidator("\"unterminated").Validate());
  EXPECT_FALSE(JsonValidator(std::string("\"ctrl\x01\"")).Validate());
  EXPECT_FALSE(JsonValidator("[] trailing").Validate());
}

TEST(JsonValidityTest, EmptyReportListIsValidJson) {
  EXPECT_TRUE(JsonValidator(BugReportsToJson({})).Validate());
}

TEST(JsonValidityTest, AdversarialFieldContentStaysValid) {
  BugReport bug;
  bug.type = BugType::kHow;
  bug.technique = DetectionTechnique::kUnitTesting;
  bug.app = "a\"pp\\ with \n newline";
  bug.file = "dir/\tfile.mj";
  bug.coordinator = "C.m\"]},{";
  bug.exception = std::string("Ctrl\x02Chars\x1f");
  bug.detail = "quotes \" backslashes \\ braces {} brackets [] commas ,,, \r\n";
  bug.location.line = 7;

  BugReport plain;
  plain.app = "plain";

  std::string json = BugReportsToJson({bug, plain, bug});
  EXPECT_TRUE(JsonValidator(json).Validate()) << json;
}

}  // namespace
}  // namespace wasabi
