// Tests for JSON serialization of bug reports.

#include "src/core/report_json.h"

#include <gtest/gtest.h>

namespace wasabi {
namespace {

TEST(JsonEscapeTest, PassesPlainTextThrough) {
  EXPECT_EQ(JsonEscape("hello world 123"), "hello world 123");
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(ReportJsonTest, EmptyListIsEmptyArray) {
  EXPECT_EQ(BugReportsToJson({}), "[\n]\n");
}

TEST(ReportJsonTest, RendersAllFields) {
  BugReport bug;
  bug.type = BugType::kWhenMissingDelay;
  bug.technique = DetectionTechnique::kLlmStatic;
  bug.app = "demo";
  bug.file = "demo/Client.mj";
  bug.location.line = 17;
  bug.coordinator = "Client.fetchWithRetry";
  bug.exception = "IOException";
  bug.detail = "no sleep \"anywhere\"";
  std::string json = BugReportsToJson({bug});
  EXPECT_NE(json.find("\"type\": \"WHEN/missing-delay\""), std::string::npos);
  EXPECT_NE(json.find("\"technique\": \"llm-static\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 17"), std::string::npos);
  EXPECT_NE(json.find("\"coordinator\": \"Client.fetchWithRetry\""), std::string::npos);
  EXPECT_NE(json.find("no sleep \\\"anywhere\\\""), std::string::npos);
}

TEST(ReportJsonTest, MultipleReportsAreCommaSeparated) {
  BugReport a;
  a.app = "x";
  BugReport b;
  b.app = "y";
  std::string json = BugReportsToJson({a, b});
  // Two objects, one comma between them, valid bracketing.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'), 2);
  EXPECT_EQ(std::count(json.begin(), json.end(), '}'), 2);
  EXPECT_NE(json.find("},\n"), std::string::npos);
  EXPECT_EQ(json.front(), '[');
}

}  // namespace
}  // namespace wasabi
