// Tests for JSON serialization of bug reports.

#include "src/core/report_json.h"

#include <gtest/gtest.h>

namespace wasabi {
namespace {

TEST(JsonEscapeTest, PassesPlainTextThrough) {
  EXPECT_EQ(JsonEscape("hello world 123"), "hello world 123");
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(ReportJsonTest, EmptyListIsEmptyArray) {
  EXPECT_EQ(BugReportsToJson({}), "[\n]\n");
}

TEST(ReportJsonTest, RendersAllFields) {
  BugReport bug;
  bug.type = BugType::kWhenMissingDelay;
  bug.technique = DetectionTechnique::kLlmStatic;
  bug.app = "demo";
  bug.file = "demo/Client.mj";
  bug.location.line = 17;
  bug.coordinator = "Client.fetchWithRetry";
  bug.exception = "IOException";
  bug.detail = "no sleep \"anywhere\"";
  std::string json = BugReportsToJson({bug});
  EXPECT_NE(json.find("\"type\": \"WHEN/missing-delay\""), std::string::npos);
  EXPECT_NE(json.find("\"technique\": \"llm-static\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 17"), std::string::npos);
  EXPECT_NE(json.find("\"coordinator\": \"Client.fetchWithRetry\""), std::string::npos);
  EXPECT_NE(json.find("no sleep \\\"anywhere\\\""), std::string::npos);
}

TEST(ReportJsonTest, MultipleReportsAreCommaSeparated) {
  BugReport a;
  a.app = "x";
  BugReport b;
  b.app = "y";
  std::string json = BugReportsToJson({a, b});
  // Two objects, one comma between them, valid bracketing.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'), 2);
  EXPECT_EQ(std::count(json.begin(), json.end(), '}'), 2);
  EXPECT_NE(json.find("},\n"), std::string::npos);
  EXPECT_EQ(json.front(), '[');
}

// --- Degraded-mode analysis report (docs/ROBUSTNESS.md) ----------------------

TEST(AnalysisReportJsonTest, CleanHealthIsByteIdenticalToTheLegacyArray) {
  BugReport bug;
  bug.app = "demo";
  bug.detail = "evidence";
  const std::vector<BugReport> bugs = {bug};
  // The default-off guarantee: downstream consumers of the plain array never
  // see a format change unless something actually went wrong.
  EXPECT_EQ(AnalysisReportToJson(bugs, ReportHealth{}), BugReportsToJson(bugs));
  EXPECT_EQ(AnalysisReportToJson({}, ReportHealth{}), BugReportsToJson({}));
}

TEST(AnalysisReportJsonTest, SkippedFilesFlipTheReportToDegraded) {
  ReportHealth health;
  health.skipped_files.push_back(SkippedFile{"broken.mj", "3 parse error(s)"});
  ASSERT_TRUE(health.degraded());

  BugReport bug;
  bug.app = "demo";
  std::string json = AnalysisReportToJson({bug}, health);
  EXPECT_NE(json.find("\"degraded\": true"), std::string::npos);
  EXPECT_NE(json.find("\"bugs\":"), std::string::npos);
  EXPECT_NE(json.find("\"path\": \"broken.mj\""), std::string::npos);
  EXPECT_NE(json.find("\"reason\": \"3 parse error(s)\""), std::string::npos);
  // The bugs array inside the envelope is the same array.
  EXPECT_NE(json.find("\"app\": \"demo\""), std::string::npos);
}

TEST(AnalysisReportJsonTest, QuarantinedRunsAreRenderedWithTheFullTaxonomy) {
  ReportHealth health;
  RunFailure failure;
  failure.run_id = 7;
  failure.test = "T.testX";
  failure.location = "C.op<-C.go:IOException";
  failure.kind = RunFailureKind::kChaos;
  failure.detail = "chaos host fault";
  failure.attempts = 3;
  failure.chaos = true;
  health.quarantined.push_back(failure);

  std::string json = AnalysisReportToJson({}, health);
  EXPECT_NE(json.find("\"degraded\": true"), std::string::npos);
  EXPECT_NE(json.find("\"run_id\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"test\": \"T.testX\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"chaos\""), std::string::npos);
  EXPECT_NE(json.find("\"attempts\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"chaos\": true"), std::string::npos);
}

TEST(AnalysisReportJsonTest, DegradedEnvelopeEscapesUntrustedStrings) {
  ReportHealth health;
  health.skipped_files.push_back(SkippedFile{"we\"ird.mj", "bad \\ input"});
  std::string json = AnalysisReportToJson({}, health);
  EXPECT_NE(json.find("we\\\"ird.mj"), std::string::npos);
  EXPECT_NE(json.find("bad \\\\ input"), std::string::npos);
}

}  // namespace
}  // namespace wasabi
