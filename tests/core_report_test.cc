// Unit tests for the report model, overlap computation, and ground-truth
// scoring.

#include "src/core/report.h"

#include <gtest/gtest.h>

#include "src/core/scoring.h"

namespace wasabi {
namespace {

BugReport MakeBug(BugType type, DetectionTechnique technique, const std::string& app,
                  const std::string& file, const std::string& coordinator) {
  BugReport bug;
  bug.type = type;
  bug.technique = technique;
  bug.app = app;
  bug.file = file;
  bug.coordinator = coordinator;
  bug.group_key = std::string(BugTypeName(type)) + "|" + file + "|" + coordinator;
  return bug;
}

SeededBug MakeTruth(const std::string& id, BugType type, const std::string& app,
                    const std::string& file, const std::string& coordinator) {
  SeededBug bug;
  bug.id = id;
  bug.type = type;
  bug.app = app;
  bug.file = file;
  bug.coordinator = coordinator;
  return bug;
}

TEST(ReportTest, MatchKeyIgnoresTechniqueAndDetail) {
  BugReport a = MakeBug(BugType::kWhenMissingCap, DetectionTechnique::kUnitTesting, "app",
                        "f.mj", "C.m");
  BugReport b = MakeBug(BugType::kWhenMissingCap, DetectionTechnique::kLlmStatic, "app",
                        "f.mj", "C.m");
  a.detail = "one";
  b.detail = "two";
  EXPECT_EQ(a.MatchKey(), b.MatchKey());
  BugReport c = MakeBug(BugType::kWhenMissingDelay, DetectionTechnique::kUnitTesting, "app",
                        "f.mj", "C.m");
  EXPECT_NE(a.MatchKey(), c.MatchKey());
}

TEST(ReportTest, DeduplicateKeepsFirstPerGroupKey) {
  std::vector<BugReport> reports;
  reports.push_back(MakeBug(BugType::kHow, DetectionTechnique::kUnitTesting, "a", "f", "m"));
  reports[0].detail = "first";
  reports.push_back(MakeBug(BugType::kHow, DetectionTechnique::kUnitTesting, "a", "f", "m"));
  reports[1].detail = "second";
  reports.push_back(MakeBug(BugType::kHow, DetectionTechnique::kLlmStatic, "a", "f", "m"));
  auto unique = DeduplicateBugs(std::move(reports));
  // Same (technique, type, group_key) deduped; different technique kept.
  ASSERT_EQ(unique.size(), 2u);
  EXPECT_EQ(unique[0].detail, "first");
}

TEST(ReportTest, OverlapPartitionsCorrectly) {
  std::vector<BugReport> unit = {
      MakeBug(BugType::kWhenMissingCap, DetectionTechnique::kUnitTesting, "a", "f1", "m1"),
      MakeBug(BugType::kHow, DetectionTechnique::kUnitTesting, "a", "f2", "m2"),
  };
  std::vector<BugReport> statics = {
      MakeBug(BugType::kWhenMissingCap, DetectionTechnique::kLlmStatic, "a", "f1", "m1"),
      MakeBug(BugType::kWhenMissingDelay, DetectionTechnique::kLlmStatic, "a", "f3", "m3"),
  };
  OverlapSummary overlap = ComputeOverlap(unit, statics);
  EXPECT_EQ(overlap.both, 1);
  EXPECT_EQ(overlap.unit_only, 1);
  EXPECT_EQ(overlap.static_only, 1);
}

TEST(ReportTest, OverlapOfEmptySetsIsZero) {
  OverlapSummary overlap = ComputeOverlap({}, {});
  EXPECT_EQ(overlap.both + overlap.unit_only + overlap.static_only, 0);
}

TEST(ScoringTest, TruePositiveCountedOncePerSeededBug) {
  std::vector<SeededBug> truth = {
      MakeTruth("B1", BugType::kWhenMissingCap, "app", "f.mj", "C.m"),
  };
  std::vector<BugReport> reports = {
      MakeBug(BugType::kWhenMissingCap, DetectionTechnique::kUnitTesting, "app", "f.mj", "C.m"),
      MakeBug(BugType::kWhenMissingCap, DetectionTechnique::kUnitTesting, "app", "f.mj", "C.m"),
  };
  Scorecard score = ScoreReports(reports, truth);
  EXPECT_EQ(score.TotalAll().true_positives, 1);
  EXPECT_EQ(score.TotalAll().false_positives, 0);
  EXPECT_EQ(score.TotalAll().false_negatives, 0);
  ASSERT_EQ(score.matched_bug_ids.size(), 1u);
  EXPECT_EQ(score.matched_bug_ids[0], "B1");
}

TEST(ScoringTest, TypeMismatchIsAFalsePositiveAndFalseNegative) {
  std::vector<SeededBug> truth = {
      MakeTruth("B1", BugType::kWhenMissingCap, "app", "f.mj", "C.m"),
  };
  std::vector<BugReport> reports = {
      MakeBug(BugType::kWhenMissingDelay, DetectionTechnique::kUnitTesting, "app", "f.mj",
              "C.m"),
  };
  Scorecard score = ScoreReports(reports, truth);
  EXPECT_EQ(score.TotalAll().true_positives, 0);
  EXPECT_EQ(score.TotalAll().false_positives, 1);
  EXPECT_EQ(score.TotalAll().false_negatives, 1);
  ASSERT_EQ(score.missed_bugs.size(), 1u);
  EXPECT_EQ(score.missed_bugs[0].id, "B1");
}

TEST(ScoringTest, PerAppPerTypeCells) {
  std::vector<SeededBug> truth = {
      MakeTruth("A1", BugType::kHow, "appA", "fa.mj", "A.m"),
      MakeTruth("B1", BugType::kWhenMissingCap, "appB", "fb.mj", "B.m"),
  };
  std::vector<BugReport> reports = {
      MakeBug(BugType::kHow, DetectionTechnique::kUnitTesting, "appA", "fa.mj", "A.m"),
      MakeBug(BugType::kHow, DetectionTechnique::kUnitTesting, "appA", "fa.mj", "A.other"),
  };
  Scorecard score = ScoreReports(reports, truth);
  EXPECT_EQ(score.cells["appA"][BugType::kHow].true_positives, 1);
  EXPECT_EQ(score.cells["appA"][BugType::kHow].false_positives, 1);
  EXPECT_EQ(score.cells["appB"][BugType::kWhenMissingCap].false_negatives, 1);
  EXPECT_EQ(score.Total(BugType::kHow).reported(), 2);
}

TEST(ScoringTest, DetectableBugsFiltersByTechnique) {
  std::vector<SeededBug> truth = {
      MakeTruth("C1", BugType::kWhenMissingCap, "a", "f", "m1"),
      MakeTruth("D1", BugType::kWhenMissingDelay, "a", "f", "m2"),
      MakeTruth("H1", BugType::kHow, "a", "f", "m3"),
      MakeTruth("I1", BugType::kIfOutlier, "a", "f", "m4"),
  };
  EXPECT_EQ(DetectableBugs(truth, DetectionTechnique::kUnitTesting).size(), 3u);
  EXPECT_EQ(DetectableBugs(truth, DetectionTechnique::kLlmStatic).size(), 2u);
  EXPECT_EQ(DetectableBugs(truth, DetectionTechnique::kCodeQlStatic).size(), 1u);
}

TEST(ScoringTest, NamesAreStable) {
  EXPECT_STREQ(BugTypeName(BugType::kWhenMissingCap), "WHEN/missing-cap");
  EXPECT_STREQ(BugTypeName(BugType::kIfOutlier), "IF/outlier");
  EXPECT_STREQ(DetectionTechniqueName(DetectionTechnique::kUnitTesting), "unit-testing");
}

}  // namespace
}  // namespace wasabi
