// End-to-end tests for the Wasabi facade on corpus applications.

#include "src/core/wasabi.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "src/core/scoring.h"
#include "src/corpus/corpus.h"

namespace wasabi {
namespace {

WasabiOptions OptionsFor(const CorpusApp& app) {
  WasabiOptions options;
  options.app_name = app.name;
  options.default_configs = app.default_configs;
  return options;
}

// Seeded bugs a given technique can possibly detect.
std::vector<SeededBug> TruthFor(const CorpusApp& app, DetectionTechnique technique) {
  std::vector<SeededBug> truth;
  for (const SeededBug& bug : app.bugs) {
    switch (technique) {
      case DetectionTechnique::kUnitTesting:
        if (bug.type != BugType::kIfOutlier) {
          truth.push_back(bug);
        }
        break;
      case DetectionTechnique::kLlmStatic:
        if (bug.type == BugType::kWhenMissingCap || bug.type == BugType::kWhenMissingDelay) {
          truth.push_back(bug);
        }
        break;
      case DetectionTechnique::kCodeQlStatic:
        if (bug.type == BugType::kIfOutlier) {
          truth.push_back(bug);
        }
        break;
    }
  }
  return truth;
}

TEST(WasabiIdentificationTest, FindsAllThreeMechanismsInHBase) {
  CorpusApp app = BuildCorpusApp("hbase");
  Wasabi wasabi(app.program, *app.index, OptionsFor(app));
  IdentificationResult identification = wasabi.IdentifyRetryStructures();

  int loops = 0;
  int queues = 0;
  int state_machines = 0;
  int by_codeql = 0;
  int by_llm = 0;
  for (const RetryStructure& structure : identification.structures) {
    switch (structure.mechanism) {
      case RetryMechanism::kLoop:
        ++loops;
        break;
      case RetryMechanism::kQueue:
        ++queues;
        break;
      case RetryMechanism::kStateMachine:
        ++state_machines;
        break;
    }
    by_codeql += structure.found_by.codeql ? 1 : 0;
    by_llm += structure.found_by.llm ? 1 : 0;
  }
  EXPECT_GT(loops, 10);
  EXPECT_GE(queues, 2);
  EXPECT_GE(state_machines, 2);
  // CodeQL sees only loops; the LLM adds the non-loop structures (Fig. 4).
  EXPECT_GT(by_codeql, 0);
  EXPECT_GT(by_llm, 0);
  for (const RetryStructure& structure : identification.structures) {
    if (structure.mechanism != RetryMechanism::kLoop) {
      EXPECT_FALSE(structure.found_by.codeql)
          << structure.coordinator << " non-loop retry cannot come from control-flow analysis";
    }
  }
  // The large-file module makes at least one file exceed the attention window.
  EXPECT_GE(identification.files_truncated_by_llm, 1u);
  // The keyword filter prunes candidate loops.
  EXPECT_GT(identification.candidate_loops_without_keyword_filter, 0u);
  EXPECT_GT(identification.llm_usage.calls, 0);
}

TEST(WasabiDynamicTest, FindsSeededBugsInHBaseWithGoodPrecision) {
  CorpusApp app = BuildCorpusApp("hbase");
  Wasabi wasabi(app.program, *app.index, OptionsFor(app));
  DynamicResult result = wasabi.RunDynamicWorkflow();

  ASSERT_FALSE(result.bugs.empty());
  Scorecard score =
      ScoreReports(result.bugs, TruthFor(app, DetectionTechnique::kUnitTesting));

  // Every tested seeded WHEN/HOW bug except the designed false negative
  // (halved cap) should be found.
  for (const SeededBug& missed : score.missed_bugs) {
    bool expected_miss = !missed.reachable_from_tests ||
                         missed.note.find("false negative") != std::string::npos ||
                         missed.note.find("only static") != std::string::npos;
    EXPECT_TRUE(expected_miss) << "unexpected FN: " << missed.id << " " << missed.note;
  }

  ScoreCell total = score.TotalAll();
  EXPECT_GT(total.true_positives, 5);
  // Paper: ~2 true bugs per false positive for unit testing. Allow slack but
  // require precision clearly above 50%.
  EXPECT_GT(total.true_positives, total.false_positives);

  // Planner bookkeeping.
  EXPECT_GT(result.total_tests, result.tests_covering_retry);
  EXPECT_GT(result.naive_runs, result.planned_runs);
  EXPECT_GT(result.structures_identified, result.structures_covered);
}

TEST(WasabiDynamicTest, HarnessStyleTestProducesCapFalsePositiveInYarn) {
  // Yarn's only unit-testing report should be the documented harness-loop
  // missing-cap false positive (the paper's Table 3 Yarn cell: 1 report, 1 FP).
  CorpusApp app = BuildCorpusApp("yarn");
  Wasabi wasabi(app.program, *app.index, OptionsFor(app));
  DynamicResult result = wasabi.RunDynamicWorkflow();
  Scorecard score = ScoreReports(result.bugs, TruthFor(app, DetectionTechnique::kUnitTesting));
  ScoreCell total = score.TotalAll();
  EXPECT_GE(total.false_positives, 1);
  EXPECT_EQ(total.true_positives, 0);
}

TEST(WasabiStaticTest, LlmFindsWhenBugsIncludingUntestedOnes) {
  CorpusApp app = BuildCorpusApp("yarn");
  Wasabi wasabi(app.program, *app.index, OptionsFor(app));
  StaticResult result = wasabi.RunStaticWorkflow();

  Scorecard score =
      ScoreReports(result.when_bugs, TruthFor(app, DetectionTechnique::kLlmStatic));
  // The untested nocap/nodelay bugs are reachable only statically.
  EXPECT_GE(score.TotalAll().true_positives, 2);
}

TEST(WasabiStaticTest, IfOutliersDetectedInHBase) {
  CorpusApp app = BuildCorpusApp("hbase");
  Wasabi wasabi(app.program, *app.index, OptionsFor(app));
  StaticResult result = wasabi.RunStaticWorkflow();
  ASSERT_FALSE(result.if_outliers.empty());
  bool keeper_found = false;
  for (const IfOutlierReport& outlier : result.if_outliers) {
    if (outlier.exception == "KeeperConnectionLossException") {
      keeper_found = true;
      EXPECT_TRUE(outlier.mostly_retried);
      EXPECT_EQ(outlier.outlier_sites.size(), 2u);
    }
  }
  EXPECT_TRUE(keeper_found);

  Scorecard score =
      ScoreReports(result.if_bugs, TruthFor(app, DetectionTechnique::kCodeQlStatic));
  EXPECT_EQ(score.TotalAll().true_positives, 2);
}

TEST(WasabiOverlapTest, WorkflowsOverlapPartially) {
  CorpusApp app = BuildCorpusApp("hdfs");
  Wasabi wasabi(app.program, *app.index, OptionsFor(app));
  DynamicResult dynamic = wasabi.RunDynamicWorkflow();
  StaticResult statics = wasabi.RunStaticWorkflow();

  OverlapSummary overlap = ComputeOverlap(dynamic.bugs, statics.when_bugs);
  // Figure 3: each region non-empty — unit testing finds HOW bugs and
  // config-dependent cap bugs statics cannot; the LLM finds untested/benign
  // cases; well-behaved WHEN bugs are found by both.
  EXPECT_GT(overlap.both, 0);
  EXPECT_GT(overlap.unit_only, 0);
  EXPECT_GT(overlap.static_only, 0);
}

TEST(WasabiAblationTest, PlannerReducesRunsWithoutLosingBugs) {
  CorpusApp app = BuildCorpusApp("hacommon");
  WasabiOptions with_planner = OptionsFor(app);
  Wasabi planned(app.program, *app.index, with_planner);
  DynamicResult planned_result = planned.RunDynamicWorkflow();

  WasabiOptions no_planner = OptionsFor(app);
  no_planner.use_planner = false;
  Wasabi naive(app.program, *app.index, no_planner);
  DynamicResult naive_result = naive.RunDynamicWorkflow();

  EXPECT_LT(planned_result.planned_runs, naive_result.planned_runs);

  // The planned run finds the same set of seeded bugs.
  Scorecard planned_score =
      ScoreReports(planned_result.bugs, TruthFor(app, DetectionTechnique::kUnitTesting));
  Scorecard naive_score =
      ScoreReports(naive_result.bugs, TruthFor(app, DetectionTechnique::kUnitTesting));
  EXPECT_EQ(planned_score.TotalAll().true_positives, naive_score.TotalAll().true_positives);
}

TEST(WasabiAblationTest, OraclesSlashFalseReports) {
  CorpusApp app = BuildCorpusApp("hacommon");
  WasabiOptions with_oracles = OptionsFor(app);
  Wasabi tool(app.program, *app.index, with_oracles);
  DynamicResult with_result = tool.RunDynamicWorkflow();

  WasabiOptions no_oracles = OptionsFor(app);
  no_oracles.use_oracles = false;
  Wasabi naive(app.program, *app.index, no_oracles);
  DynamicResult without_result = naive.RunDynamicWorkflow();

  // Without oracles every crash (mostly re-thrown injected exceptions) becomes
  // a report, and all cap/delay bugs disappear.
  int naive_cap_or_delay = 0;
  for (const BugReport& bug : without_result.bugs) {
    if (bug.type != BugType::kHow) {
      ++naive_cap_or_delay;
    }
  }
  EXPECT_EQ(naive_cap_or_delay, 0);
  EXPECT_GT(without_result.bugs.size(), with_result.bugs.size());
}

TEST(WasabiDeterminismTest, RepeatedRunsAgree) {
  CorpusApp app = BuildCorpusApp("cassandra");
  Wasabi wasabi(app.program, *app.index, OptionsFor(app));
  DynamicResult first = wasabi.RunDynamicWorkflow();
  DynamicResult second = wasabi.RunDynamicWorkflow();
  ASSERT_EQ(first.bugs.size(), second.bugs.size());
  for (size_t i = 0; i < first.bugs.size(); ++i) {
    EXPECT_EQ(first.bugs[i].group_key, second.bugs[i].group_key);
  }
}

}  // namespace
}  // namespace wasabi
