// Unit and property tests for the corpus generator: every template must emit
// parseable source, and knobs must map to the promised ground truth.

#include "src/corpus/generator.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/lang/diagnostics.h"
#include "src/lang/parser.h"
#include "src/lang/sema.h"

namespace wasabi {
namespace {

mj::Program ParseAll(const GeneratedApp& app) {
  mj::Program program;
  mj::DiagnosticEngine diag;
  for (const auto& [file, source] : app.files) {
    program.AddUnit(mj::ParseSource(file, source, diag));
  }
  EXPECT_FALSE(diag.has_errors()) << diag.FormatAll(nullptr);
  return program;
}

GeneratorSpec BaseSpec() {
  GeneratorSpec spec;
  spec.app = "genapp";
  spec.display_name = "GenApp";
  spec.seed = 7;
  return spec;
}

TEST(GeneratorTest, EmptySpecStillEmitsSharedRpcClient) {
  GeneratedApp app = GenerateApp(BaseSpec());
  EXPECT_EQ(app.files.size(), 1u);
  EXPECT_EQ(app.seeded_retry_structures, 2);  // ping + lookup.
  EXPECT_TRUE(app.bugs.empty());
  mj::Program program = ParseAll(app);
  mj::ProgramIndex index(program);
  EXPECT_NE(index.FindQualified("GenappRpcClient.ping"), nullptr);
}

TEST(GeneratorTest, SharedRpcClientCanBeDisabled) {
  GeneratorSpec spec = BaseSpec();
  spec.shared_rpc_client = false;
  GeneratedApp app = GenerateApp(spec);
  EXPECT_TRUE(app.files.empty());
  EXPECT_EQ(app.seeded_retry_structures, 0);
}

TEST(GeneratorTest, BugKnobsProduceMatchingManifestEntries) {
  GeneratorSpec spec = BaseSpec();
  spec.counts.nocap_loops = 2;
  spec.counts.nodelay_loops = 1;
  spec.counts.bug_queues = 1;
  spec.counts.nodelay_state_machines = 1;
  spec.counts.how_null_deref = 1;
  spec.counts.how_partial_state = 1;
  spec.counts.how_shared_map = 1;
  GeneratedApp app = GenerateApp(spec);

  int cap = 0;
  int delay = 0;
  int how = 0;
  for (const SeededBug& bug : app.bugs) {
    switch (bug.type) {
      case BugType::kWhenMissingCap:
        ++cap;
        break;
      case BugType::kWhenMissingDelay:
        ++delay;
        break;
      case BugType::kHow:
        ++how;
        break;
      default:
        break;
    }
    EXPECT_TRUE(bug.reachable_from_tests);
  }
  EXPECT_EQ(cap, 3);   // 2 nocap loops + bug queue.
  EXPECT_EQ(delay, 2); // nodelay loop + nodelay state machine.
  EXPECT_EQ(how, 3);
  ParseAll(app);
}

TEST(GeneratorTest, UntestedModulesOmitTestFiles) {
  GeneratorSpec spec = BaseSpec();
  spec.counts.nocap_loops_untested = 1;
  GeneratedApp app = GenerateApp(spec);
  ASSERT_EQ(app.bugs.size(), 1u);
  EXPECT_FALSE(app.bugs[0].reachable_from_tests);
  for (const auto& [file, source] : app.files) {
    EXPECT_EQ(file.find("/test/"), std::string::npos) << file;
  }
}

TEST(GeneratorTest, FpBaitModulesSeedNoBugs) {
  GeneratorSpec spec = BaseSpec();
  spec.counts.benign_nodelay_loops = 1;
  spec.counts.wrapped_exception_loops = 1;
  spec.counts.crossfile_delay_loops = 1;
  spec.counts.harness_cap_fp_loops = 1;
  spec.counts.iteration_loops_fp_bait = 1;
  spec.counts.poll_loops = 1;
  spec.counts.policy_files = 2;
  spec.counts.background_daemons = 1;
  GeneratedApp app = GenerateApp(spec);
  EXPECT_TRUE(app.bugs.empty());
  ParseAll(app);
}

TEST(GeneratorTest, IfRatioModuleSeedsOutlierBugsOnlyForMinority) {
  GeneratorSpec spec = BaseSpec();
  spec.counts.if_exception = "KeeperException";
  spec.counts.if_retried_sites = 5;
  spec.counts.if_not_retried_sites = 2;
  GeneratedApp app = GenerateApp(spec);
  int if_bugs = 0;
  for (const SeededBug& bug : app.bugs) {
    if (bug.type == BugType::kIfOutlier) {
      ++if_bugs;
    }
  }
  EXPECT_EQ(if_bugs, 2);
  EXPECT_EQ(app.seeded_retry_structures, 2 + 7);  // rpc(2) + 7 ratio sites.
}

TEST(GeneratorTest, LargeFilesExceedTenKilobytes) {
  GeneratorSpec spec = BaseSpec();
  spec.counts.large_file_nodelay = 1;
  spec.counts.large_file_ok_loops = 1;
  GeneratedApp app = GenerateApp(spec);
  int large = 0;
  for (const auto& [file, source] : app.files) {
    if (source.size() > 10'000) {
      ++large;
    }
  }
  EXPECT_EQ(large, 2);
  ParseAll(app);
}

TEST(GeneratorTest, ClassNamesAreUniqueWithinApp) {
  GeneratorSpec spec = BaseSpec();
  spec.counts.ok_loops = 8;
  spec.counts.nocap_loops = 4;
  spec.counts.unrelated_util_files = 8;
  spec.counts.background_daemons = 4;
  GeneratedApp app = GenerateApp(spec);
  mj::Program program = ParseAll(app);
  mj::DiagnosticEngine diag;
  mj::ProgramIndex index(program, &diag);
  EXPECT_FALSE(diag.has_errors()) << diag.FormatAll(nullptr);
}

TEST(GeneratorTest, DifferentSeedsDifferentNamesSameShape) {
  GeneratorSpec a = BaseSpec();
  a.counts.ok_loops = 2;
  GeneratorSpec b = a;
  b.seed = 8;
  GeneratedApp app_a = GenerateApp(a);
  GeneratedApp app_b = GenerateApp(b);
  ASSERT_EQ(app_a.files.size(), app_b.files.size());
  bool any_name_differs = false;
  for (size_t i = 0; i < app_a.files.size(); ++i) {
    if (app_a.files[i].first != app_b.files[i].first) {
      any_name_differs = true;
    }
  }
  EXPECT_TRUE(any_name_differs);
}

TEST(GeneratorTest, BugIdsAreSequentialAndAppScoped) {
  GeneratorSpec spec = BaseSpec();
  spec.counts.nocap_loops = 2;
  spec.counts.nodelay_loops = 1;
  GeneratedApp app = GenerateApp(spec);
  std::set<std::string> ids;
  for (const SeededBug& bug : app.bugs) {
    EXPECT_EQ(bug.id.rfind("genapp-", 0), 0u) << bug.id;
    EXPECT_TRUE(ids.insert(bug.id).second);
  }
}

}  // namespace
}  // namespace wasabi
