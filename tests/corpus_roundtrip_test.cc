// Property test: every file of every corpus application survives a
// parse → print → parse round trip with a stable printed form. This exercises
// the printer and parser against ~500 realistic compilation units.

#include <gtest/gtest.h>

#include <string>

#include "src/corpus/corpus.h"
#include "src/lang/diagnostics.h"
#include "src/lang/parser.h"
#include "src/lang/printer.h"

namespace wasabi {
namespace {

class CorpusRoundTripTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CorpusRoundTripTest, PrintParsePrintIsStableForEveryFile) {
  CorpusApp app = BuildCorpusApp(GetParam());
  size_t files_checked = 0;
  for (const auto& unit : app.program.units()) {
    std::string printed1 = mj::PrintUnit(*unit);
    mj::DiagnosticEngine diag;
    auto reparsed = mj::ParseSource(unit->file().name(), printed1, diag);
    ASSERT_FALSE(diag.has_errors())
        << unit->file().name() << " printed form failed to re-parse:\n"
        << diag.FormatAll(nullptr);
    std::string printed2 = mj::PrintUnit(*reparsed);
    EXPECT_EQ(printed1, printed2) << unit->file().name() << " printing is not a fixed point";
    // Structure preserved: same class and method counts.
    ASSERT_EQ(unit->classes().size(), reparsed->classes().size());
    for (size_t i = 0; i < unit->classes().size(); ++i) {
      EXPECT_EQ(unit->classes()[i]->name, reparsed->classes()[i]->name);
      EXPECT_EQ(unit->classes()[i]->methods.size(), reparsed->classes()[i]->methods.size());
      EXPECT_EQ(unit->classes()[i]->fields.size(), reparsed->classes()[i]->fields.size());
    }
    ++files_checked;
  }
  EXPECT_GT(files_checked, 10u);
}

INSTANTIATE_TEST_SUITE_P(AllApps, CorpusRoundTripTest,
                         ::testing::ValuesIn(CorpusAppNames()),
                         [](const ::testing::TestParamInfo<std::string>& param_info) {
                           return param_info.param;
                         });

}  // namespace
}  // namespace wasabi
