// Integration tests over the generated corpus: every application must parse,
// index, and run its whole unit-test suite green without injection; the
// ground-truth manifest must be internally consistent.

#include "src/corpus/corpus.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/testing/runner.h"

namespace wasabi {
namespace {

class CorpusAppTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CorpusAppTest, BuildsAndIndexes) {
  CorpusApp app = BuildCorpusApp(GetParam());
  EXPECT_EQ(app.name, GetParam());
  EXPECT_FALSE(app.display_name.empty());
  EXPECT_FALSE(app.short_code.empty());
  EXPECT_GT(app.source_files, 5u);
  EXPECT_GT(app.seeded_retry_structures, 0);
}

TEST_P(CorpusAppTest, AllUnitTestsPassWithoutInjection) {
  CorpusApp app = BuildCorpusApp(GetParam());
  RunnerOptions options;
  options.config_overrides = app.default_configs;
  TestRunner runner(app.program, *app.index, options);
  std::vector<TestCase> tests = runner.DiscoverTests();
  ASSERT_GT(tests.size(), 10u) << app.name << " should have a substantial test suite";
  for (const TestCase& test : tests) {
    TestRunRecord record = runner.RunTest(test);
    EXPECT_EQ(record.outcome.status, TestStatus::kPassed)
        << app.name << " " << test.qualified_name << ": " << record.outcome.exception_class
        << " " << record.outcome.exception_message << " " << record.outcome.abort_reason;
  }
}

TEST_P(CorpusAppTest, ManifestIsConsistent) {
  CorpusApp app = BuildCorpusApp(GetParam());
  std::set<std::string> ids;
  for (const SeededBug& bug : app.bugs) {
    EXPECT_EQ(bug.app, app.name);
    EXPECT_TRUE(ids.insert(bug.id).second) << "duplicate bug id " << bug.id;
    // The file named by the bug must exist in the program.
    bool file_found = false;
    bool method_found = false;
    for (const auto& unit : app.program.units()) {
      if (unit->file().name() == bug.file) {
        file_found = true;
      }
    }
    method_found = app.index->FindQualified(bug.coordinator) != nullptr;
    EXPECT_TRUE(file_found) << bug.id << " names missing file " << bug.file;
    EXPECT_TRUE(method_found) << bug.id << " names missing method " << bug.coordinator;
  }
}

TEST_P(CorpusAppTest, GenerationIsDeterministic) {
  CorpusApp first = BuildCorpusApp(GetParam());
  CorpusApp second = BuildCorpusApp(GetParam());
  EXPECT_EQ(first.source_files, second.source_files);
  EXPECT_EQ(first.source_bytes, second.source_bytes);
  ASSERT_EQ(first.bugs.size(), second.bugs.size());
  for (size_t i = 0; i < first.bugs.size(); ++i) {
    EXPECT_EQ(first.bugs[i].coordinator, second.bugs[i].coordinator);
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, CorpusAppTest,
                         ::testing::ValuesIn(CorpusAppNames()),
                         [](const ::testing::TestParamInfo<std::string>& param_info) {
                           return param_info.param;
                         });

TEST(CorpusTest, EightApplications) {
  EXPECT_EQ(CorpusAppNames().size(), 8u);
}

TEST(CorpusTest, HBaseIsTheLargestApplication) {
  // Matches the paper's Table 5 proportions.
  CorpusApp hbase = BuildCorpusApp("hbase");
  for (const std::string& name : CorpusAppNames()) {
    if (name == "hbase") {
      continue;
    }
    CorpusApp other = BuildCorpusApp(name);
    EXPECT_GE(hbase.seeded_retry_structures, other.seeded_retry_structures) << name;
  }
}

TEST(CorpusTest, EveryAppSeedsSomeBugs) {
  for (const std::string& name : CorpusAppNames()) {
    CorpusApp app = BuildCorpusApp(name);
    EXPECT_FALSE(app.bugs.empty()) << name;
  }
}

}  // namespace
}  // namespace wasabi
