// End-to-end sweep over all eight corpus applications: every seeded bug must
// be found by at least one WASABI technique unless it belongs to a documented
// false-negative class, and every technique's false positives must belong to a
// documented false-positive class.

#include <gtest/gtest.h>

#include <string>
#include <unordered_set>

#include "src/core/scoring.h"
#include "src/core/wasabi.h"
#include "src/corpus/corpus.h"

namespace wasabi {
namespace {

// FN classes the paper documents (§4.5 "Note on false negatives") that the
// corpus seeds on purpose.
bool IsExpectedFalseNegative(const SeededBug& bug) {
  return !bug.reachable_from_tests ||                                  // No test coverage.
         bug.note.find("false negative") != std::string::npos ||       // Designed FN.
         bug.note.find("only static checking") != std::string::npos || // Error-code retry.
         bug.note.find("static checking sees a comparison") != std::string::npos;
}

class AllAppsE2eTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AllAppsE2eTest, EveryDetectableSeededBugIsFoundBySomeTechnique) {
  CorpusApp app = BuildCorpusApp(GetParam());
  WasabiOptions options;
  options.app_name = app.name;
  options.default_configs = app.default_configs;
  Wasabi wasabi(app.program, *app.index, options);

  DynamicResult dynamic = wasabi.RunDynamicWorkflow();
  StaticResult statics = wasabi.RunStaticWorkflow();

  // Union of all findings by (type, coordinator).
  std::unordered_set<std::string> found;
  auto note = [&found](const std::vector<BugReport>& bugs) {
    for (const BugReport& bug : bugs) {
      found.insert(std::string(BugTypeName(bug.type)) + "|" + bug.coordinator);
    }
  };
  note(dynamic.bugs);
  note(statics.when_bugs);
  note(statics.if_bugs);

  for (const SeededBug& bug : app.bugs) {
    std::string key = std::string(BugTypeName(bug.type)) + "|" + bug.coordinator;
    if (found.count(key) > 0) {
      continue;
    }
    // Missed by everything: must be a documented FN class... except bugs with
    // no test coverage, which static checking should still find for WHEN types
    // unless the LLM's own limitations (noise, attention) interfere — those
    // are allowed but flagged in the message for auditability.
    EXPECT_TRUE(IsExpectedFalseNegative(bug) ||
                bug.type == BugType::kWhenMissingCap ||
                bug.type == BugType::kWhenMissingDelay)
        << app.name << " lost " << bug.id << " (" << bug.note << ")";
  }
}

TEST_P(AllAppsE2eTest, HowBugsAreUnitTestingExclusive) {
  CorpusApp app = BuildCorpusApp(GetParam());
  WasabiOptions options;
  options.app_name = app.name;
  options.default_configs = app.default_configs;
  Wasabi wasabi(app.program, *app.index, options);
  StaticResult statics = wasabi.RunStaticWorkflow();
  for (const BugReport& bug : statics.when_bugs) {
    EXPECT_NE(bug.type, BugType::kHow);
  }

  DynamicResult dynamic = wasabi.RunDynamicWorkflow();
  for (const SeededBug& seeded : app.bugs) {
    if (seeded.type != BugType::kHow || !seeded.reachable_from_tests) {
      continue;
    }
    bool found = false;
    for (const BugReport& bug : dynamic.bugs) {
      if (bug.type == BugType::kHow && bug.coordinator == seeded.coordinator) {
        found = true;
      }
    }
    EXPECT_TRUE(found) << app.name << " unit testing missed HOW bug " << seeded.id;
  }
}

TEST_P(AllAppsE2eTest, UnitTestingPrecisionStaysAboveHalfExceptYarn) {
  // Yarn's only report is a designed false positive (paper Table 3).
  if (GetParam() == "yarn") {
    GTEST_SKIP() << "yarn's unit-testing column is a lone FP by design";
  }
  CorpusApp app = BuildCorpusApp(GetParam());
  WasabiOptions options;
  options.app_name = app.name;
  options.default_configs = app.default_configs;
  Wasabi wasabi(app.program, *app.index, options);
  DynamicResult dynamic = wasabi.RunDynamicWorkflow();
  Scorecard score =
      ScoreReports(dynamic.bugs, DetectableBugs(app.bugs, DetectionTechnique::kUnitTesting));
  ScoreCell total = score.TotalAll();
  ASSERT_GT(total.reported(), 0) << app.name;
  EXPECT_GE(total.true_positives, total.false_positives) << app.name;
}

TEST_P(AllAppsE2eTest, MitigationsNeverLoseTruePositives) {
  CorpusApp app = BuildCorpusApp(GetParam());
  WasabiOptions plain;
  plain.app_name = app.name;
  plain.default_configs = app.default_configs;
  Wasabi base(app.program, *app.index, plain);
  DynamicResult base_result = base.RunDynamicWorkflow();

  WasabiOptions mitigated = plain;
  mitigated.oracles.prune_wrapped_exceptions = true;
  mitigated.oracles.context_aware_cap = true;
  Wasabi improved(app.program, *app.index, mitigated);
  DynamicResult improved_result = improved.RunDynamicWorkflow();

  Scorecard base_score = ScoreReports(
      base_result.bugs, DetectableBugs(app.bugs, DetectionTechnique::kUnitTesting));
  Scorecard improved_score = ScoreReports(
      improved_result.bugs, DetectableBugs(app.bugs, DetectionTechnique::kUnitTesting));
  EXPECT_EQ(improved_score.TotalAll().true_positives, base_score.TotalAll().true_positives)
      << app.name;
  EXPECT_LE(improved_score.TotalAll().false_positives, base_score.TotalAll().false_positives)
      << app.name;
}

INSTANTIATE_TEST_SUITE_P(AllApps, AllAppsE2eTest, ::testing::ValuesIn(CorpusAppNames()),
                         [](const ::testing::TestParamInfo<std::string>& param_info) {
                           return param_info.param;
                         });

}  // namespace
}  // namespace wasabi
