// Differential tests for the parallel campaign executor: for every corpus
// application, the dynamic workflow must produce byte-identical output when
// run serially and with 2/4/8 workers. This is the executor's core contract
// (stable run ids + id-ordered reduction), checked end to end — grouped bug
// reports, their JSON rendering, raw oracle firings, the coverage map, and
// the run counters all have to match, not just the headline bug list.

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/report_json.h"
#include "src/core/wasabi.h"
#include "src/corpus/corpus.h"

namespace wasabi {
namespace {

// Flattens everything the dynamic workflow reports into one comparable string,
// so a mismatch pinpoints the first diverging field.
std::string Fingerprint(const DynamicResult& result) {
  std::ostringstream out;
  out << "bugs=" << BugReportsToJson(result.bugs);
  out << "\nraw_reports=" << result.raw_reports.size() << "\n";
  for (const OracleReport& report : result.raw_reports) {
    out << OracleKindName(report.kind) << "|" << report.test << "|"
        << report.location.retried_method << "|" << report.group_key << "|" << report.detail
        << "\n";
  }
  out << "coverage=\n";
  for (const auto& [test, hits] : result.coverage) {
    out << test << ":";
    for (size_t hit : hits) {
      out << " " << hit;
    }
    out << "\n";
  }
  out << "locations=" << result.locations.size() << " total_tests=" << result.total_tests
      << " covering=" << result.tests_covering_retry << " planned=" << result.planned_runs
      << " naive=" << result.naive_runs << " structures=" << result.structures_identified
      << "/" << result.structures_covered
      << " restored=" << result.config_restrictions_restored << "\n";
  return out.str();
}

class ExecDeterminismTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ExecDeterminismTest, ParallelCampaignMatchesSerialByteForByte) {
  CorpusApp app = BuildCorpusApp(GetParam());
  WasabiOptions options;
  options.app_name = app.name;
  options.default_configs = app.default_configs;
  options.jobs = 1;
  Wasabi tool(app.program, *app.index, options);

  DynamicResult serial = tool.RunDynamicWorkflow();
  EXPECT_EQ(serial.jobs_used, 1);
  const std::string reference = Fingerprint(serial);

  for (int jobs : {2, 4, 8}) {
    tool.set_jobs(jobs);
    DynamicResult parallel = tool.RunDynamicWorkflow();
    EXPECT_EQ(parallel.jobs_used, jobs);
    EXPECT_EQ(Fingerprint(parallel), reference) << "jobs=" << jobs;
    // The JSON the CLI emits must match byte for byte as well.
    EXPECT_EQ(BugReportsToJson(parallel.bugs), BugReportsToJson(serial.bugs))
        << "jobs=" << jobs;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCorpusApps, ExecDeterminismTest,
                         ::testing::ValuesIn(CorpusAppNames()),
                         [](const ::testing::TestParamInfo<std::string>& param_info) {
                           return param_info.param;
                         });

}  // namespace
}  // namespace wasabi
