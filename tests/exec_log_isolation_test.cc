// Regression tests for execution-log isolation under the parallel campaign
// executor. Every run owns its log (one Interpreter, one ExecutionLog); the
// executor must never let records from concurrent runs interleave. The tests
// drive real injected runs through ExecuteCampaign on a multi-worker pool,
// many times, and check that
//
//   1. each result's log references ONLY that run's own injection point —
//      a foreign callee/caller/exception in any record means logs bled
//      between workers;
//   2. every parallel run's log dump is byte-identical to the same spec run
//      serially — interleaving or lost records cannot hide;
//   3. the reduce-time merge (MergeCampaignLogs) is the id-ordered
//      concatenation of the per-run logs, nothing more.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/exec/campaign.h"
#include "src/exec/task_pool.h"
#include "src/lang/diagnostics.h"
#include "src/lang/parser.h"
#include "src/testing/runner.h"

namespace wasabi {
namespace {

// Two independent retry structures with distinct coordinators, callees, and
// trigger exceptions, so cross-run contamination is detectable per field.
// Both loops sleep and log, producing multi-entry logs worth diffing.
constexpr const char* kSource = R"(
class Fetcher {
  String fetch() {
    for (var retry = 0; retry < 4; retry++) {
      try {
        return this.pull();
      } catch (IOException e) {
        Log.warn("fetch retry");
        Thread.sleep(5);
      }
    }
    return "fetch-gave-up";
  }
  String pull() throws IOException { return "data"; }
}
class Sender {
  String send() {
    for (var retry = 0; retry < 6; retry++) {
      try {
        return this.push();
      } catch (TimeoutException e) {
        Log.warn("send retry");
        Thread.sleep(9);
      }
    }
    return "send-gave-up";
  }
  String push() throws TimeoutException { return "ok"; }
}
class IsolationTest {
  void testFetch() {
    var f = new Fetcher();
    f.fetch();
  }
  void testSend() {
    var s = new Sender();
    s.send();
  }
  void testBoth() {
    var f = new Fetcher();
    var s = new Sender();
    f.fetch();
    s.send();
  }
}
)";

class ExecLogIsolationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mj::DiagnosticEngine diag;
    program_.AddUnit(mj::ParseSource("isolation.mj", kSource, diag));
    ASSERT_FALSE(diag.has_errors());
    index_ = std::make_unique<mj::ProgramIndex>(program_);
    runner_ = std::make_unique<TestRunner>(program_, *index_);

    RetryLocation fetch;
    fetch.coordinator = "Fetcher.fetch";
    fetch.retried_method = "Fetcher.pull";
    fetch.exception_name = "IOException";
    fetch.file = "isolation.mj";
    RetryLocation send;
    send.coordinator = "Sender.send";
    send.retried_method = "Sender.push";
    send.exception_name = "TimeoutException";
    send.file = "isolation.mj";
    locations_ = {fetch, send};

    // Every test against every location at both K settings: 3 x 2 x 2 = 12
    // runs per campaign, enough to keep 4 workers genuinely concurrent.
    std::vector<PlanEntry> plan;
    for (const char* test : {"IsolationTest.testFetch", "IsolationTest.testSend",
                             "IsolationTest.testBoth"}) {
      plan.push_back(PlanEntry{test, 0});
      plan.push_back(PlanEntry{test, 1});
    }
    specs_ = ExpandPlan(plan, locations_, {kInjectOnce, kInjectRepeatedly});
    ASSERT_EQ(specs_.size(), 12u);
  }

  mj::Program program_;
  std::unique_ptr<mj::ProgramIndex> index_;
  std::unique_ptr<TestRunner> runner_;
  std::vector<RetryLocation> locations_;
  std::vector<CampaignRunSpec> specs_;
};

TEST_F(ExecLogIsolationTest, ConcurrentRunsNeverInterleaveLogRecords) {
  TaskPool serial_pool(1);
  std::vector<CampaignRunResult> reference =
      ExecuteCampaign(*runner_, locations_, specs_, serial_pool);
  ASSERT_EQ(reference.size(), specs_.size());

  TaskPool pool(4);
  // Repeat to give the scheduler chances to interleave badly.
  for (int round = 0; round < 8; ++round) {
    std::vector<CampaignRunResult> results =
        ExecuteCampaign(*runner_, locations_, specs_, pool);
    ASSERT_EQ(results.size(), specs_.size());
    for (size_t i = 0; i < results.size(); ++i) {
      const CampaignRunResult& run = results[i];
      EXPECT_EQ(run.id, reference[i].id);
      const RetryLocation& own = locations_[run.location_index];

      // Runs whose test actually reaches the injected location must log the
      // injections; mismatched pairs legitimately log nothing.
      const bool covered = run.record.test.qualified_name == "IsolationTest.testBoth" ||
                           (run.location_index == 0 &&
                            run.record.test.qualified_name == "IsolationTest.testFetch") ||
                           (run.location_index == 1 &&
                            run.record.test.qualified_name == "IsolationTest.testSend");
      if (covered) {
        EXPECT_GT(run.record.log.size(), 0u) << "run " << run.id;
      }

      // (1) Log purity: every injection record names this run's own point.
      for (const LogEntry& entry : run.record.log.entries()) {
        if (entry.kind != LogEntryKind::kInjection) {
          continue;
        }
        EXPECT_EQ(entry.injection_callee, own.retried_method) << "run " << run.id;
        EXPECT_EQ(entry.injection_caller, own.coordinator) << "run " << run.id;
        EXPECT_EQ(entry.injection_exception, own.exception_name) << "run " << run.id;
      }

      // (2) Byte-identical to the serial run of the same spec.
      EXPECT_EQ(run.record.log.Dump(), reference[i].record.log.Dump())
          << "run " << run.id << " round " << round;
    }
  }
}

TEST_F(ExecLogIsolationTest, MergedLogIsIdOrderedConcatenation) {
  TaskPool pool(4);
  std::vector<CampaignRunResult> results =
      ExecuteCampaign(*runner_, locations_, specs_, pool);
  ExecutionLog merged = MergeCampaignLogs(results);

  std::string expected;
  size_t total = 0;
  for (const CampaignRunResult& run : results) {
    expected += run.record.log.Dump();
    total += run.record.log.size();
  }
  EXPECT_EQ(merged.size(), total);
  EXPECT_EQ(merged.Dump(), expected);
}

}  // namespace
}  // namespace wasabi
