// Flakiness-prober tests (ctest label "flaky", docs/FLAKINESS.md).
//
// Ground truth comes from the dedicated "flakylab" corpus app, which seeds
// exactly one failing verdict per stability class: a deterministic missing
// cap (kStable), a wall-clock-window-dependent missing cap (kFlaky), and a
// degraded-environment-only missing cap (kChaosInduced). The contracts under
// test: classification against the manifest is EXACT (precision and recall 1
// on the stability labels), classifications are byte-identical at any worker
// count, and the prober behaves identically with the result cache off, cold,
// or warm.

#include <filesystem>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/cache/store.h"
#include "src/core/report_json.h"
#include "src/core/scoring.h"
#include "src/core/wasabi.h"
#include "src/corpus/corpus.h"

namespace wasabi {
namespace {

namespace fs = std::filesystem;

WasabiOptions ProberOptionsFor(const CorpusApp& app, int repetitions) {
  WasabiOptions options;
  options.app_name = app.name;
  options.default_configs = app.default_configs;
  options.prober.repetitions = repetitions;
  // Every run executes in the degraded environment (env_rate 1, fault rate 0):
  // the chaos-cap seed fires deterministically while no host fault interferes.
  options.robust.chaos.enabled = true;
  options.robust.chaos.seed = 42;
  options.robust.chaos.rate = 0.0;
  options.robust.chaos.env_rate = 1.0;
  return options;
}

// Classification surface for byte-comparison across worker counts and cache
// modes: every bug's identity plus its full probed classification.
std::string ClassificationFingerprint(const DynamicResult& result) {
  std::ostringstream out;
  out << "probed=" << result.probed_runs << " stable=" << result.stable_runs
      << " flaky=" << result.flaky_runs << " chaos=" << result.chaos_induced_runs
      << " failures=" << result.probe_failures << "\n";
  out << BugReportsToJson(result.bugs);
  return out.str();
}

TEST(ProberClassificationTest, FlakylabManifestIsClassifiedExactly) {
  CorpusApp app = BuildCorpusApp("flakylab");
  Wasabi wasabi(app.program, *app.index, ProberOptionsFor(app, /*repetitions=*/3));
  DynamicResult result = wasabi.RunDynamicWorkflow();

  // One failing verdict per class, every failing run probed.
  EXPECT_GT(result.probed_runs, 0u);
  EXPECT_EQ(result.probe_failures, 0u);
  EXPECT_GT(result.flaky_runs, 0u);
  EXPECT_GT(result.chaos_induced_runs, 0u);
  EXPECT_GT(result.stable_runs, 0u);

  // Each seeded bug's classified stability matches the manifest exactly.
  std::map<std::string, VerdictStability> expected;
  for (const SeededBug& bug : app.bugs) {
    expected[bug.coordinator] = bug.expected_stability;
  }
  int matched = 0;
  for (const BugReport& bug : result.bugs) {
    auto it = expected.find(bug.coordinator);
    if (it == expected.end()) {
      continue;
    }
    ASSERT_TRUE(bug.probed) << bug.coordinator;
    EXPECT_EQ(bug.stability, it->second) << bug.coordinator;
    ++matched;
  }
  EXPECT_EQ(matched, static_cast<int>(app.bugs.size()));

  // The scorer agrees: every matched bug lands in the right stability bucket
  // and no classification mismatches are reported.
  std::vector<SeededBug> truth;
  for (const SeededBug& bug : app.bugs) {
    if (bug.type != BugType::kIfOutlier) {
      truth.push_back(bug);
    }
  }
  Scorecard scores = ScoreReports(result.bugs, truth);
  EXPECT_TRUE(scores.stability_mismatched_ids.empty());
  ScoreCell total = scores.TotalAll();
  EXPECT_EQ(total.stability_matches, static_cast<int>(truth.size()));
  EXPECT_EQ(total.false_negatives, 0);
}

TEST(ProberClassificationTest, SimLlmJudgesRootCauses) {
  CorpusApp app = BuildCorpusApp("flakylab");
  Wasabi wasabi(app.program, *app.index, ProberOptionsFor(app, /*repetitions=*/3));
  DynamicResult result = wasabi.RunDynamicWorkflow();

  for (const BugReport& bug : result.bugs) {
    if (!bug.probed) {
      continue;
    }
    if (bug.stability == VerdictStability::kStable) {
      EXPECT_TRUE(bug.flaky_cause.empty()) << bug.coordinator;
      continue;
    }
    // The two seeded non-stable modules carry unambiguous lexical evidence
    // (a Clock read vs a chaos.* config read), so with the default noise
    // settings the judged cause is the correct one.
    if (bug.stability == VerdictStability::kFlaky) {
      EXPECT_EQ(bug.flaky_cause, "timing-dependence") << bug.coordinator;
    } else {
      EXPECT_EQ(bug.flaky_cause, "chaos-environment") << bug.coordinator;
    }
  }
}

TEST(ProberDeterminismTest, ClassificationIdenticalAtEveryWorkerCount) {
  CorpusApp app = BuildCorpusApp("flakylab");
  std::string baseline;
  for (int jobs : {1, 2, 4, 8}) {
    WasabiOptions options = ProberOptionsFor(app, /*repetitions=*/2);
    options.jobs = jobs;
    Wasabi wasabi(app.program, *app.index, options);
    std::string fingerprint = ClassificationFingerprint(wasabi.RunDynamicWorkflow());
    if (baseline.empty()) {
      baseline = fingerprint;
    } else {
      EXPECT_EQ(fingerprint, baseline) << "jobs=" << jobs;
    }
  }
}

TEST(ProberDeterminismTest, WarmCacheReproducesColdClassification) {
  CorpusApp app = BuildCorpusApp("flakylab");

  // Cache off.
  WasabiOptions options = ProberOptionsFor(app, /*repetitions=*/2);
  Wasabi no_cache(app.program, *app.index, options);
  std::string off = ClassificationFingerprint(no_cache.RunDynamicWorkflow());

  fs::path dir = fs::path(::testing::TempDir()) / "wasabi_prober_cache_test";
  fs::remove_all(dir);
  std::string error;
  std::unique_ptr<CacheStore> store = CacheStore::Open(dir.string(), &error);
  ASSERT_NE(store, nullptr) << error;

  // Cold populate, then warm replay, against the same store.
  Wasabi cold(app.program, *app.index, options);
  cold.set_cache(store.get());
  DynamicResult cold_result = cold.RunDynamicWorkflow();

  Wasabi warm(app.program, *app.index, options);
  warm.set_cache(store.get());
  DynamicResult warm_result = warm.RunDynamicWorkflow();

  EXPECT_EQ(ClassificationFingerprint(cold_result), off);
  // A warm campaign restores the cached classifications on the reports
  // themselves; the probe-counter summary is zero (nothing re-probed), so
  // compare the report surface only.
  EXPECT_EQ(warm_result.probed_runs, 0u);
  EXPECT_EQ(BugReportsToJson(warm_result.bugs), BugReportsToJson(cold_result.bugs));
  EXPECT_NE(off.find("\"stability\""), std::string::npos) << off;

  fs::remove_all(dir);
}

TEST(ProberDeterminismTest, ProberOffLeavesReportsUnprobed) {
  CorpusApp app = BuildCorpusApp("flakylab");
  WasabiOptions options;
  options.app_name = app.name;
  options.default_configs = app.default_configs;
  Wasabi wasabi(app.program, *app.index, options);
  DynamicResult result = wasabi.RunDynamicWorkflow();
  EXPECT_EQ(result.probed_runs, 0u);
  for (const BugReport& bug : result.bugs) {
    EXPECT_FALSE(bug.probed);
  }
  // JSON stays byte-compatible with the pre-prober format: no stability keys.
  EXPECT_EQ(BugReportsToJson(result.bugs).find("\"stability\""), std::string::npos);
}

}  // namespace
}  // namespace wasabi
