// Unit tests for the work-stealing TaskPool underneath the campaign executor:
// exactly-once execution for every index, reuse of one pool across many jobs,
// serial (1-worker) inline mode, exception propagation, and worker-count
// resolution.

#include <atomic>
#include <cstddef>
#include <exception>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/exec/task_pool.h"

namespace wasabi {
namespace {

TEST(TaskPoolTest, DefaultJobCountIsAtLeastOne) {
  EXPECT_GE(DefaultJobCount(), 1);
}

TEST(TaskPoolTest, WorkerCountResolvesZeroToHardware) {
  TaskPool pool(0);
  EXPECT_EQ(pool.worker_count(), DefaultJobCount());
  TaskPool serial(1);
  EXPECT_EQ(serial.worker_count(), 1);
  TaskPool four(4);
  EXPECT_EQ(four.worker_count(), 4);
}

TEST(TaskPoolTest, EveryIndexRunsExactlyOnce) {
  for (int workers : {1, 2, 4, 8}) {
    TaskPool pool(workers);
    const size_t kCount = 1000;
    std::vector<std::atomic<int>> counts(kCount);
    pool.ParallelFor(kCount, [&](size_t i) { counts[i].fetch_add(1); });
    for (size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(counts[i].load(), 1) << "index " << i << " with " << workers << " workers";
    }
  }
}

TEST(TaskPoolTest, PoolIsReusableAcrossJobs) {
  TaskPool pool(4);
  for (int job = 0; job < 50; ++job) {
    std::atomic<size_t> sum{0};
    pool.ParallelFor(100, [&](size_t i) { sum.fetch_add(i + 1); });
    EXPECT_EQ(sum.load(), 5050u) << "job " << job;
  }
}

TEST(TaskPoolTest, ZeroCountIsANoOp) {
  TaskPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, [&](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(TaskPoolTest, CountSmallerThanWorkersStillRunsAll) {
  TaskPool pool(8);
  std::atomic<int> calls{0};
  pool.ParallelFor(3, [&](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 3);
}

TEST(TaskPoolTest, SerialPoolRunsInlineOnCallingThread) {
  TaskPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<size_t> order;
  pool.ParallelFor(10, [&](size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);  // Safe: single-threaded by contract.
  });
  ASSERT_EQ(order.size(), 10u);
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i);  // Serial mode preserves index order.
  }
}

TEST(TaskPoolTest, ExceptionInTaskPropagatesAndPoolSurvives) {
  for (int workers : {1, 4}) {
    TaskPool pool(workers);
    EXPECT_THROW(
        pool.ParallelFor(100,
                         [&](size_t i) {
                           if (i == 37) {
                             throw std::runtime_error("boom");
                           }
                         }),
        std::runtime_error)
        << workers << " workers";
    // The pool must remain usable after a failed job.
    std::atomic<int> calls{0};
    pool.ParallelFor(10, [&](size_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 10);
  }
}

// --- ParallelForCaptured: per-index exception capture --------------------------

TEST(TaskPoolTest, CapturedRunKeepsEveryExceptionInItsOwnSlot) {
  for (int workers : {1, 2, 4, 8}) {
    TaskPool pool(workers);
    std::vector<std::exception_ptr> errors =
        pool.ParallelForCaptured(100, [](size_t i) {
          if (i % 7 == 3) {
            throw std::runtime_error("fail " + std::to_string(i));
          }
        });
    ASSERT_EQ(errors.size(), 100u) << workers << " workers";
    for (size_t i = 0; i < errors.size(); ++i) {
      if (i % 7 == 3) {
        ASSERT_TRUE(errors[i]) << "index " << i << " with " << workers << " workers";
        try {
          std::rethrow_exception(errors[i]);
        } catch (const std::runtime_error& e) {
          EXPECT_EQ(e.what(), "fail " + std::to_string(i));
        }
      } else {
        EXPECT_FALSE(errors[i]) << "index " << i << " with " << workers << " workers";
      }
    }
  }
}

TEST(TaskPoolTest, CapturedRunExecutesEveryIndexDespiteFailures) {
  // Unlike the throwing ParallelFor, a captured run must not let one failure
  // shadow the rest of the job: every index still executes exactly once.
  for (int workers : {1, 4}) {
    TaskPool pool(workers);
    std::vector<std::atomic<int>> counts(200);
    pool.ParallelForCaptured(200, [&](size_t i) {
      counts[i].fetch_add(1);
      if (i % 2 == 0) {
        throw std::runtime_error("boom");
      }
    });
    for (size_t i = 0; i < counts.size(); ++i) {
      EXPECT_EQ(counts[i].load(), 1) << "index " << i << " with " << workers << " workers";
    }
  }
}

TEST(TaskPoolTest, CapturedRunContainsForeignExceptionTypes) {
  // Not derived from std::exception: only catch (...) can capture it, which
  // is exactly what the campaign's containment guarantee requires.
  TaskPool pool(4);
  std::vector<std::exception_ptr> errors =
      pool.ParallelForCaptured(10, [](size_t i) {
        if (i == 5) {
          throw 42;
        }
      });
  ASSERT_TRUE(errors[5]);
  EXPECT_THROW(std::rethrow_exception(errors[5]), int);
}

TEST(TaskPoolTest, CapturedRunWithZeroCountReturnsNoSlots) {
  TaskPool pool(4);
  EXPECT_TRUE(pool.ParallelForCaptured(0, [](size_t) {}).empty());
}

TEST(TaskPoolTest, PoolStaysUsableAfterCapturedFailures) {
  TaskPool pool(4);
  pool.ParallelForCaptured(50, [](size_t) { throw std::runtime_error("boom"); });
  std::atomic<int> calls{0};
  pool.ParallelFor(10, [&](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 10);
}

TEST(TaskPoolTest, ThrowingParallelForRethrowsTheLowestIndexError) {
  // ParallelFor now delegates to the captured variant; the exception it
  // surfaces must be deterministic — the lowest failing index — not whichever
  // worker lost the race.
  for (int workers : {1, 4}) {
    TaskPool pool(workers);
    try {
      pool.ParallelFor(100, [](size_t i) {
        if (i == 23 || i == 71) {
          throw std::runtime_error("fail " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception with " << workers << " workers";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "fail 23") << workers << " workers";
    }
  }
}

TEST(TaskPoolTest, LargeCountCompletesWithMoreWorkersThanHardware) {
  TaskPool pool(16);
  const size_t kCount = 100000;
  std::vector<std::atomic<int>> counts(kCount);
  pool.ParallelFor(kCount, [&](size_t i) { counts[i].fetch_add(1); });
  for (size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

}  // namespace
}  // namespace wasabi
