// Tests for the §4.5 false-positive mitigations: wrapping-chain pruning,
// context-aware cap counting, and static/dynamic collation.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/core/scoring.h"
#include "src/core/wasabi.h"
#include "src/corpus/corpus.h"
#include "src/inject/injector.h"
#include "src/lang/parser.h"
#include "src/testing/oracles.h"
#include "src/testing/runner.h"

namespace wasabi {
namespace {

class ExtensionsTest : public ::testing::Test {
 protected:
  void Load(const std::string& source) {
    mj::DiagnosticEngine diag;
    program_.AddUnit(mj::ParseSource("unit0.mj", source, diag));
    ASSERT_FALSE(diag.has_errors()) << diag.FormatAll(nullptr);
    index_ = std::make_unique<mj::ProgramIndex>(program_);
    runner_ = std::make_unique<TestRunner>(program_, *index_);
  }

  RetryLocation MakeLocation(const std::string& coordinator, const std::string& retried,
                             const std::string& exception) {
    RetryLocation location;
    location.coordinator = coordinator;
    location.retried_method = retried;
    location.exception_name = exception;
    location.file = "unit0.mj";
    return location;
  }

  mj::Program program_;
  std::unique_ptr<mj::ProgramIndex> index_;
  std::unique_ptr<TestRunner> runner_;
};

// --- Wrapping-chain pruning ---------------------------------------------------

constexpr const char* kWrapperSource = R"(
class Wrapper {
  String call() {
    try {
      return this.op();
    } catch (SocketException e) {
      throw new HadoopException("wrapped", e);
    }
  }
  String op() throws SocketException { return "v"; }
}
class WrapperTest {
  void testCall() {
    var w = new Wrapper();
    w.call();
  }
}
)";

TEST_F(ExtensionsTest, WrappedExceptionPrunedWhenEnabled) {
  Load(kWrapperSource);
  FaultInjector injector(
      {InjectionPoint{"Wrapper.op", "Wrapper.call", "SocketException", kInjectOnce}});
  TestRunRecord record = runner_->RunTest(TestCase{"WrapperTest.testCall"}, {&injector});
  ASSERT_EQ(record.outcome.exception_class, "HadoopException");
  ASSERT_EQ(record.outcome.cause_chain.size(), 1u);
  EXPECT_EQ(record.outcome.cause_chain[0], "SocketException");

  RetryLocation location = MakeLocation("Wrapper.call", "Wrapper.op", "SocketException");

  // Default (prototype behavior): the wrapped crash is a HOW report.
  EXPECT_EQ(EvaluateOracles(record, location).size(), 1u);

  // With the mitigation: the cause chain names the injected exception — prune.
  OracleOptions mitigated;
  mitigated.prune_wrapped_exceptions = true;
  EXPECT_TRUE(EvaluateOracles(record, location, mitigated).empty());
}

TEST_F(ExtensionsTest, PruningKeepsGenuineDifferentExceptions) {
  // A crash whose cause chain does NOT contain the injected exception stays.
  Load(R"(
    class Broken {
      Map state = null;
      String call() {
        try {
          return this.op();
        } catch (SocketException e) {
          return this.state.get("x");
        }
      }
      String op() throws SocketException { return "v"; }
    }
    class BrokenTest {
      void testCall() {
        var b = new Broken();
        b.call();
      }
    }
  )");
  FaultInjector injector(
      {InjectionPoint{"Broken.op", "Broken.call", "SocketException", kInjectOnce}});
  TestRunRecord record = runner_->RunTest(TestCase{"BrokenTest.testCall"}, {&injector});
  EXPECT_EQ(record.outcome.exception_class, "NullPointerException");
  OracleOptions mitigated;
  mitigated.prune_wrapped_exceptions = true;
  RetryLocation location = MakeLocation("Broken.call", "Broken.op", "SocketException");
  ASSERT_EQ(EvaluateOracles(record, location, mitigated).size(), 1u);
}

// --- Context-aware cap ---------------------------------------------------------

constexpr const char* kHarnessSource = R"(
class Publisher {
  int maxAttempts = 4;
  String publishWithRetry(event) throws TimeoutException {
    var lastError = null;
    for (var retry = 0; retry < this.maxAttempts; retry++) {
      try {
        return this.publish(event);
      } catch (TimeoutException e) {
        lastError = e;
        Thread.sleep(20);
      }
    }
    throw lastError;
  }
  String publish(event) throws TimeoutException { return "ok:" + event; }
}
class PublisherTest {
  void testMany() {
    var p = new Publisher();
    for (var i = 0; i < 30; i++) {
      try {
        p.publishWithRetry(i);
      } catch (TimeoutException e) {
        Log.warn("event " + i + " failed");
      }
    }
  }
}
)";

TEST_F(ExtensionsTest, ContextAwareCapRemovesHarnessFalsePositive) {
  Load(kHarnessSource);
  FaultInjector injector({InjectionPoint{"Publisher.publish", "Publisher.publishWithRetry",
                                         "TimeoutException", kInjectRepeatedly}});
  TestRunRecord record = runner_->RunTest(TestCase{"PublisherTest.testMany"}, {&injector});
  ASSERT_GE(injector.TotalInjections(), 100);
  RetryLocation location =
      MakeLocation("Publisher.publishWithRetry", "Publisher.publish", "TimeoutException");

  // Default: 100 global injections -> missing-cap FP.
  bool default_cap = false;
  for (const OracleReport& report : EvaluateOracles(record, location)) {
    default_cap |= report.kind == OracleKind::kMissingCap;
  }
  EXPECT_TRUE(default_cap);

  // Context-aware: each activation capped at 4 -> no report.
  OracleOptions mitigated;
  mitigated.context_aware_cap = true;
  for (const OracleReport& report : EvaluateOracles(record, location, mitigated)) {
    EXPECT_NE(report.kind, OracleKind::kMissingCap);
  }
}

TEST_F(ExtensionsTest, ContextAwareCapStillCatchesTrueUncappedRetry) {
  Load(R"(
    class Endless {
      String go() {
        while (true) {
          try {
            return this.op();
          } catch (TimeoutException e) {
            Thread.sleep(10);
          }
        }
      }
      String op() throws TimeoutException { return "v"; }
    }
    class EndlessTest {
      void testGo() {
        var e = new Endless();
        e.go();
      }
    }
  )");
  FaultInjector injector(
      {InjectionPoint{"Endless.op", "Endless.go", "TimeoutException", kInjectRepeatedly}});
  TestRunRecord record = runner_->RunTest(TestCase{"EndlessTest.testGo"}, {&injector});
  OracleOptions mitigated;
  mitigated.context_aware_cap = true;
  RetryLocation location = MakeLocation("Endless.go", "Endless.op", "TimeoutException");
  bool cap = false;
  for (const OracleReport& report : EvaluateOracles(record, location, mitigated)) {
    cap |= report.kind == OracleKind::kMissingCap;
  }
  EXPECT_TRUE(cap);  // All 100 injections hit ONE activation of go().
}

// --- Static/dynamic collation -----------------------------------------------------

TEST(CollationTest, DropsRefutedStaticReportsKeepsUncoveredOnes) {
  CorpusApp app = BuildCorpusApp("hdfs");
  WasabiOptions options;
  options.app_name = app.name;
  options.default_configs = app.default_configs;
  Wasabi wasabi(app.program, *app.index, options);
  DynamicResult dynamic = wasabi.RunDynamicWorkflow();
  StaticResult statics = wasabi.RunStaticWorkflow();

  std::vector<BugReport> collated = CollateStaticWithDynamic(statics.when_bugs, dynamic);
  EXPECT_LT(collated.size(), statics.when_bugs.size());

  // No true positive may be lost, EXCEPT those on coordinators the dynamic
  // workflow exercised yet judged clean despite a seeded bug (none by
  // construction when the dynamic workflow found them too).
  Scorecard before =
      ScoreReports(statics.when_bugs, DetectableBugs(app.bugs, DetectionTechnique::kLlmStatic));
  Scorecard after =
      ScoreReports(collated, DetectableBugs(app.bugs, DetectionTechnique::kLlmStatic));
  EXPECT_LE(after.TotalAll().false_positives, before.TotalAll().false_positives);
  // Untested seeded bugs (static-only TPs) must survive collation.
  for (const std::string& id : before.matched_bug_ids) {
    bool still_there = false;
    for (const std::string& kept : after.matched_bug_ids) {
      still_there |= kept == id;
    }
    if (!still_there) {
      // Only acceptable loss: a bug the dynamic workflow ALSO found (so it is
      // not lost to WASABI overall).
      bool dynamic_has_it = false;
      for (const BugReport& bug : dynamic.bugs) {
        for (const SeededBug& seeded : app.bugs) {
          if (seeded.id == id && bug.type == seeded.type &&
              bug.coordinator == seeded.coordinator) {
            dynamic_has_it = true;
          }
        }
      }
      EXPECT_TRUE(dynamic_has_it) << "collation lost " << id << " entirely";
    }
  }
}

}  // namespace
}  // namespace wasabi
