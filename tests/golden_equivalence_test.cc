// Golden-equivalence suite for the interpreter hot-path overhaul
// (docs/PERFORMANCE.md): the resolution pass, slot frames, dispatch cache and
// per-worker run reuse are pure performance work, so the observable output of
// the dynamic workflow must not move by a single byte. This suite pins that
// contract against goldens captured from the pre-overhaul interpreter:
//
//   - the full dynamic workflow (report JSON, raw oracle firings, coverage,
//     counters) on all 8 corpus apps at 1/2/4/8 workers,
//   - the same workflow under `--chaos 42:0.1` self-chaos (quarantine set,
//     robustness counters, degraded report),
//   - the per-run execution logs of every clean test run and every injected
//     campaign run, byte for byte (text, virtual timestamps, call stacks,
//     injection annotations, step/loop counters).
//
// Goldens live in tests/goldens/<app>.golden as `key value` lines; values are
// FNV-1a-64 content hashes plus the hashed byte count (so a mismatch at least
// localizes to a section and says whether content grew or shrank). Regenerate
// with: WASABI_UPDATE_GOLDENS=1 ./golden_equivalence_test  — but only ever
// from a build whose behavior is already trusted.

#include <unistd.h>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "src/cache/store.h"
#include "src/core/report_json.h"
#include "src/core/wasabi.h"
#include "src/corpus/corpus.h"
#include "src/exec/campaign.h"
#include "src/testing/config_restore.h"
#include "src/testing/coverage.h"

#ifndef WASABI_GOLDENS_DIR
#define WASABI_GOLDENS_DIR "tests/goldens"
#endif

namespace wasabi {
namespace {

uint64_t Fnv1a64(std::string_view text) {
  uint64_t hash = 1469598103934665603ull;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

// "fnv=<hex> bytes=<n>": enough to compare, enough to debug a mismatch.
std::string Digest(std::string_view text) {
  std::ostringstream out;
  out << "fnv=" << std::hex << Fnv1a64(text) << std::dec << " bytes=" << text.size();
  return out.str();
}

// Everything the dynamic workflow reports, flattened (the exec_determinism
// fingerprint plus the robustness-layer outputs).
std::string WorkflowFingerprint(const DynamicResult& result) {
  std::ostringstream out;
  out << "bugs=" << BugReportsToJson(result.bugs);
  out << "\nraw_reports=" << result.raw_reports.size() << "\n";
  for (const OracleReport& report : result.raw_reports) {
    out << OracleKindName(report.kind) << "|" << report.test << "|"
        << report.location.retried_method << "|" << report.group_key << "|" << report.detail
        << "\n";
  }
  out << "coverage=\n";
  for (const auto& [test, hits] : result.coverage) {
    out << test << ":";
    for (size_t hit : hits) {
      out << " " << hit;
    }
    out << "\n";
  }
  out << "locations=" << result.locations.size() << " total_tests=" << result.total_tests
      << " covering=" << result.tests_covering_retry << " planned=" << result.planned_runs
      << " naive=" << result.naive_runs << " structures=" << result.structures_identified
      << "/" << result.structures_covered << " restored=" << result.config_restrictions_restored
      << "\n";
  out << "degraded=" << result.degraded << " quarantined=" << result.quarantined.size() << "\n";
  for (const RunFailure& failure : result.quarantined) {
    out << failure.run_id << "|" << failure.test << "|" << failure.location << "|"
        << RunFailureKindName(failure.kind) << "|" << failure.attempts << "\n";
  }
  out << "robust retries=" << result.robustness.retries
      << " recovered=" << result.robustness.recovered
      << " quarantined=" << result.robustness.quarantined
      << " chaos=" << result.robustness.chaos_faults
      << " breaker=" << result.robustness.breaker_open
      << " backoff=" << result.robustness.backoff_virtual_ms << "\n";
  return out.str();
}

// One run's full observable record: outcome, counters, and the execution log
// rendered byte for byte.
void AppendRunRecord(std::ostringstream& out, const TestRunRecord& record) {
  out << record.test.qualified_name << "|" << TestStatusName(record.outcome.status) << "|"
      << record.outcome.exception_class << "|" << record.outcome.exception_message << "|"
      << record.outcome.abort_reason << "|vt=" << record.virtual_duration_ms
      << "|steps=" << record.steps << "|loops=" << record.loop_iterations << "\n";
  for (const std::string& frame : record.outcome.crash_stack) {
    out << "  crash@" << frame << "\n";
  }
  for (const std::string& cause : record.outcome.cause_chain) {
    out << "  cause:" << cause << "\n";
  }
  for (int count : record.injection_counts) {
    out << "  injections:" << count << "\n";
  }
  out << record.log.Dump() << "\n";
}

using GoldenMap = std::map<std::string, std::string>;

// Computes every golden section for one corpus app under the given engine.
// The committed goldens were captured from the tree-walking interpreter; the
// bytecode VM (docs/PERFORMANCE.md) must reproduce every section byte for
// byte, so both engines compute against the same files.
GoldenMap ComputeGoldens(const std::string& app_name,
                         EngineKind engine = EngineKind::kVm) {
  GoldenMap goldens;
  CorpusApp app = BuildCorpusApp(app_name);

  WasabiOptions options;
  options.app_name = app.name;
  options.default_configs = app.default_configs;
  options.jobs = 1;
  options.interp.engine = engine;
  Wasabi tool(app.program, *app.index, options);

  DynamicResult serial = tool.RunDynamicWorkflow();
  goldens["workflow.jobs1"] = Digest(WorkflowFingerprint(serial));
  for (int jobs : {2, 4, 8}) {
    tool.set_jobs(jobs);
    goldens["workflow.jobs" + std::to_string(jobs)] =
        Digest(WorkflowFingerprint(tool.RunDynamicWorkflow()));
  }

  // Self-chaos variant: quarantine decisions and the degraded report are part
  // of the frozen surface too (they depend on run identities, not schedules).
  WasabiOptions chaos_options = options;
  chaos_options.robust.chaos.enabled = true;
  chaos_options.robust.chaos.seed = 42;
  chaos_options.robust.chaos.rate = 0.1;
  Wasabi chaos_tool(app.program, *app.index, chaos_options);
  for (int jobs : {1, 2, 4, 8}) {
    chaos_tool.set_jobs(jobs);
    goldens["chaos.jobs" + std::to_string(jobs)] =
        Digest(WorkflowFingerprint(chaos_tool.RunDynamicWorkflow()));
  }

  // Per-run execution logs, with the exact runner configuration the workflow
  // uses (defaults + §3.1.4 config restoration).
  RunnerOptions runner_options;
  runner_options.interp.engine = engine;
  runner_options.config_overrides = app.default_configs;
  runner_options.frozen_keys = ScanTestsForRetryRestrictions(app.program).keys_to_freeze;
  TestRunner runner(app.program, *app.index, runner_options);
  std::vector<TestCase> tests = runner.DiscoverTests();

  std::ostringstream clean_logs;
  for (const TestCase& test : tests) {
    AppendRunRecord(clean_logs, runner.RunTest(test));
  }
  goldens["logs.clean"] = Digest(clean_logs.str());

  std::vector<PlanEntry> plan = PlanInjections(serial.coverage, serial.locations.size());
  std::vector<CampaignRunSpec> specs =
      ExpandPlan(plan, serial.locations, {kInjectOnce, kInjectRepeatedly});
  TaskPool pool(1);
  std::vector<CampaignRunResult> results = ExecuteCampaign(runner, serial.locations, specs, pool);
  std::ostringstream campaign_logs;
  for (const CampaignRunResult& run : results) {
    campaign_logs << "run=" << run.id << " location=" << run.location_index << " k=" << run.k
                  << "\n";
    AppendRunRecord(campaign_logs, run.record);
  }
  goldens["logs.campaign"] = Digest(campaign_logs.str());

  return goldens;
}

std::string GoldenPath(const std::string& app_name) {
  return std::string(WASABI_GOLDENS_DIR) + "/" + app_name + ".golden";
}

GoldenMap LoadGoldens(const std::string& app_name) {
  GoldenMap goldens;
  std::ifstream in(GoldenPath(app_name));
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    size_t space = line.find(' ');
    if (space != std::string::npos) {
      goldens[line.substr(0, space)] = line.substr(space + 1);
    }
  }
  return goldens;
}

void WriteGoldens(const std::string& app_name, const GoldenMap& goldens) {
  std::ofstream out(GoldenPath(app_name));
  out << "# Pre-overhaul dynamic-workflow goldens for " << app_name
      << " (see golden_equivalence_test.cc).\n";
  for (const auto& [key, value] : goldens) {
    out << key << " " << value << "\n";
  }
}

class GoldenEquivalenceTest : public ::testing::TestWithParam<std::string> {};

TEST_P(GoldenEquivalenceTest, MatchesPreOverhaulGoldens) {
  const std::string app_name = GetParam();
  GoldenMap computed = ComputeGoldens(app_name);

  if (std::getenv("WASABI_UPDATE_GOLDENS") != nullptr) {
    WriteGoldens(app_name, computed);
    GTEST_SKIP() << "goldens regenerated at " << GoldenPath(app_name);
  }

  GoldenMap expected = LoadGoldens(app_name);
  ASSERT_FALSE(expected.empty())
      << "no goldens at " << GoldenPath(app_name)
      << "; regenerate from a trusted build with WASABI_UPDATE_GOLDENS=1";
  EXPECT_EQ(computed.size(), expected.size());
  for (const auto& [key, value] : expected) {
    auto found = computed.find(key);
    ASSERT_NE(found, computed.end()) << "missing golden section " << key;
    EXPECT_EQ(found->second, value) << app_name << " " << key
                                    << " diverged from the pre-overhaul interpreter";
  }
}

// Engine sweep: the reference tree-walker must still match the same committed
// goldens the (default) bytecode VM matches above — together the two tests
// prove the engines observationally identical on the full dynamic workflow,
// at every worker count, under chaos, down to per-run execution logs.
TEST_P(GoldenEquivalenceTest, TreeEngineMatchesTheSameGoldens) {
  const std::string app_name = GetParam();
  if (std::getenv("WASABI_UPDATE_GOLDENS") != nullptr) {
    GTEST_SKIP() << "goldens are regenerated from the default engine only";
  }
  GoldenMap computed = ComputeGoldens(app_name, EngineKind::kTree);
  GoldenMap expected = LoadGoldens(app_name);
  ASSERT_FALSE(expected.empty())
      << "no goldens at " << GoldenPath(app_name)
      << "; regenerate from a trusted build with WASABI_UPDATE_GOLDENS=1";
  for (const auto& [key, value] : expected) {
    auto found = computed.find(key);
    ASSERT_NE(found, computed.end()) << "missing golden section " << key;
    EXPECT_EQ(found->second, value)
        << app_name << " " << key << " diverged between the engines";
  }
}

// Differential half of the suite (docs/CACHING.md): a warm `--cache-dir` run
// must be byte-identical to a cache-off run of the same configuration at
// every worker count, and under self-chaos. The cold pass populates at one
// worker count and the warm passes replay at all of them — run verdicts carry
// stable ids and the reducer consumes them in id order, so worker count can
// never leak into a cached (or uncached) report. Both configurations share
// one cache directory: their dynamic-config digests differ, which also pins
// the keyspace separation between chaos-on and chaos-off entries.
TEST_P(GoldenEquivalenceTest, WarmCacheRunsAreByteIdenticalToCacheOff) {
  const std::string app_name = GetParam();
  CorpusApp app = BuildCorpusApp(app_name);

  const std::string cache_dir =
      ::testing::TempDir() + "wasabi_cache_differential_" + app_name + "_" +
      std::to_string(::getpid());
  std::filesystem::remove_all(cache_dir);
  std::string error;
  std::unique_ptr<CacheStore> store = CacheStore::Open(cache_dir, &error);
  ASSERT_NE(store, nullptr) << error;

  WasabiOptions options;
  options.app_name = app.name;
  options.default_configs = app.default_configs;
  options.jobs = 1;
  WasabiOptions chaos_options = options;
  chaos_options.robust.chaos.enabled = true;
  chaos_options.robust.chaos.seed = 42;
  chaos_options.robust.chaos.rate = 0.1;

  Wasabi off(app.program, *app.index, options);
  Wasabi cached(app.program, *app.index, options);
  cached.set_cache(store.get());
  Wasabi chaos_off(app.program, *app.index, chaos_options);
  Wasabi chaos_cached(app.program, *app.index, chaos_options);
  chaos_cached.set_cache(store.get());

  // Cold populate at 1 worker; every later iteration replays warm.
  for (int jobs : {1, 2, 4, 8}) {
    off.set_jobs(jobs);
    cached.set_jobs(jobs);
    chaos_off.set_jobs(jobs);
    chaos_cached.set_jobs(jobs);
    EXPECT_EQ(WorkflowFingerprint(cached.RunDynamicWorkflow()),
              WorkflowFingerprint(off.RunDynamicWorkflow()))
        << app_name << " cache-on vs cache-off diverged at jobs=" << jobs;
    EXPECT_EQ(WorkflowFingerprint(chaos_cached.RunDynamicWorkflow()),
              WorkflowFingerprint(chaos_off.RunDynamicWorkflow()))
        << app_name << " cache-on vs cache-off diverged under chaos at jobs=" << jobs;
  }

  // The warm passes actually replayed: the campaign aggregate was stored once
  // per configuration and hit on every later lookup.
  CacheStats stats = store->stats();
  EXPECT_GE(stats.hits_by_namespace["camp"], 6) << "warm passes did not replay";
  std::filesystem::remove_all(cache_dir);
}

INSTANTIATE_TEST_SUITE_P(AllCorpusApps, GoldenEquivalenceTest,
                         ::testing::ValuesIn(CorpusAppNames()),
                         [](const ::testing::TestParamInfo<std::string>& param_info) {
                           return param_info.param;
                         });

}  // namespace
}  // namespace wasabi
