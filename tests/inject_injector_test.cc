// Unit tests for the Listing-5 fault-injection handler.

#include "src/inject/injector.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/lang/diagnostics.h"
#include "src/lang/parser.h"

namespace wasabi {
namespace {

class InjectorTest : public ::testing::Test {
 protected:
  void Load(const std::string& source) {
    mj::DiagnosticEngine diag;
    program_.AddUnit(mj::ParseSource("unit0.mj", source, diag));
    ASSERT_FALSE(diag.has_errors()) << diag.FormatAll(nullptr);
    index_ = std::make_unique<mj::ProgramIndex>(program_);
  }

  mj::Program program_;
  std::unique_ptr<mj::ProgramIndex> index_;
};

constexpr const char* kTarget = R"(
class Target {
  int survived = 0;
  void driver(n) {
    for (var i = 0; i < n; i++) {
      try {
        this.op();
        this.survived += 1;
      } catch (SocketException e) {
        Log.warn("op failed");
      }
    }
  }
  void viaOther() {
    try {
      this.op();
    } catch (SocketException e) {
      Log.warn("other failed");
    }
  }
  void op() { }
}
)";

TEST_F(InjectorTest, ThrowsExactlyKTimes) {
  Load(kTarget);
  Interpreter interp(program_, *index_);
  FaultInjector injector({InjectionPoint{"Target.op", "Target.driver", "SocketException", 3}});
  interp.AddInterceptor(&injector);
  interp.Invoke("Target.driver", {Value{int64_t{10}}});
  EXPECT_EQ(injector.TotalInjections(), 3);
  EXPECT_EQ(injector.InjectionCount(0), 3);
}

TEST_F(InjectorTest, CallerFilterIsRespected) {
  Load(kTarget);
  Interpreter interp(program_, *index_);
  FaultInjector injector(
      {InjectionPoint{"Target.op", "Target.driver", "SocketException", 100}});
  interp.AddInterceptor(&injector);
  // viaOther invokes the same callee from a different caller: no injection.
  interp.Invoke("Target.viaOther");
  EXPECT_EQ(injector.TotalInjections(), 0);
  interp.Invoke("Target.driver", {Value{int64_t{2}}});
  EXPECT_EQ(injector.TotalInjections(), 2);
}

TEST_F(InjectorTest, EmptyCallerMatchesAnyCaller) {
  Load(kTarget);
  Interpreter interp(program_, *index_);
  FaultInjector injector({InjectionPoint{"Target.op", "", "SocketException", 100}});
  interp.AddInterceptor(&injector);
  interp.Invoke("Target.viaOther");
  interp.Invoke("Target.driver", {Value{int64_t{1}}});
  EXPECT_EQ(injector.TotalInjections(), 2);
}

TEST_F(InjectorTest, MultiplePointsCountIndependently) {
  Load(kTarget);
  Interpreter interp(program_, *index_);
  FaultInjector injector({
      InjectionPoint{"Target.op", "Target.driver", "SocketException", 2},
      InjectionPoint{"Target.op", "Target.viaOther", "SocketException", 1},
  });
  interp.AddInterceptor(&injector);
  interp.Invoke("Target.driver", {Value{int64_t{5}}});
  interp.Invoke("Target.viaOther");
  EXPECT_EQ(injector.InjectionCount(0), 2);
  EXPECT_EQ(injector.InjectionCount(1), 1);
  EXPECT_EQ(injector.TotalInjections(), 3);
}

TEST_F(InjectorTest, LogEntriesCarryPointAndActivation) {
  Load(kTarget);
  Interpreter interp(program_, *index_);
  FaultInjector injector({InjectionPoint{"Target.op", "Target.driver", "SocketException", 2}});
  interp.AddInterceptor(&injector);
  interp.Invoke("Target.driver", {Value{int64_t{5}}});
  int injection_entries = 0;
  int64_t first_activation = -1;
  for (const LogEntry& entry : interp.log().entries()) {
    if (entry.kind != LogEntryKind::kInjection) {
      continue;
    }
    ++injection_entries;
    EXPECT_EQ(entry.injection_callee, "Target.op");
    EXPECT_EQ(entry.injection_caller, "Target.driver");
    EXPECT_EQ(entry.injection_exception, "SocketException");
    EXPECT_GT(entry.caller_activation, 0);
    if (first_activation < 0) {
      first_activation = entry.caller_activation;
    } else {
      // Same driver() activation for both injections.
      EXPECT_EQ(entry.caller_activation, first_activation);
    }
    EXPECT_FALSE(entry.call_stack.empty());
  }
  EXPECT_EQ(injection_entries, 2);
}

TEST_F(InjectorTest, ActivationsDifferAcrossInvocations) {
  Load(kTarget);
  Interpreter interp(program_, *index_);
  FaultInjector injector({InjectionPoint{"Target.op", "Target.driver", "SocketException", 2}});
  interp.AddInterceptor(&injector);
  interp.Invoke("Target.driver", {Value{int64_t{1}}});  // Injection #1.
  interp.Invoke("Target.driver", {Value{int64_t{1}}});  // Injection #2, new activation.
  std::vector<int64_t> activations;
  for (const LogEntry& entry : interp.log().entries()) {
    if (entry.kind == LogEntryKind::kInjection) {
      activations.push_back(entry.caller_activation);
    }
  }
  ASSERT_EQ(activations.size(), 2u);
  EXPECT_NE(activations[0], activations[1]);
}

TEST_F(InjectorTest, ResetRearmsThePoints) {
  Load(kTarget);
  Interpreter interp(program_, *index_);
  FaultInjector injector({InjectionPoint{"Target.op", "Target.driver", "SocketException", 1}});
  interp.AddInterceptor(&injector);
  interp.Invoke("Target.driver", {Value{int64_t{3}}});
  EXPECT_EQ(injector.TotalInjections(), 1);
  injector.Reset();
  EXPECT_EQ(injector.TotalInjections(), 0);
  interp.Invoke("Target.driver", {Value{int64_t{3}}});
  EXPECT_EQ(injector.TotalInjections(), 1);
}

TEST_F(InjectorTest, InjectedExceptionCarriesWasabiMessage) {
  Load(R"(
    class C {
      String probe() {
        try {
          this.op();
          return "no-throw";
        } catch (SocketException e) {
          return e.getMessage();
        }
      }
      void op() { }
    }
  )");
  Interpreter interp(program_, *index_);
  FaultInjector injector({InjectionPoint{"C.op", "C.probe", "SocketException", 1}});
  interp.AddInterceptor(&injector);
  Value result = interp.Invoke("C.probe");
  ASSERT_TRUE(IsString(result));
  EXPECT_NE(std::get<std::string>(result).find("injected by WASABI"), std::string::npos);
}

TEST_F(InjectorTest, PointKeyIsStable) {
  InjectionPoint point{"A.m", "A.c", "IOException", 5};
  EXPECT_EQ(point.Key(), "A.m<-A.c:IOException");
}

}  // namespace
}  // namespace wasabi
