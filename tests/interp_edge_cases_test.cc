// Interpreter edge cases: nested control flow, exception propagation through
// finally, scoping, and the retry-relevant corner cases the corpus leans on.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/interp/interpreter.h"
#include "src/lang/diagnostics.h"
#include "src/lang/parser.h"

namespace wasabi {
namespace {

class InterpEdgeTest : public ::testing::Test {
 protected:
  void Load(const std::string& source) {
    mj::DiagnosticEngine diag;
    program_.AddUnit(mj::ParseSource("edge.mj", source, diag));
    ASSERT_FALSE(diag.has_errors()) << diag.FormatAll(nullptr);
    index_ = std::make_unique<mj::ProgramIndex>(program_);
    interp_ = std::make_unique<Interpreter>(program_, *index_);
  }

  int64_t RunInt(const std::string& qualified) {
    Value value = interp_->Invoke(qualified);
    EXPECT_TRUE(IsInt(value));
    return std::get<int64_t>(value);
  }

  std::string RunString(const std::string& qualified) {
    Value value = interp_->Invoke(qualified);
    EXPECT_TRUE(IsString(value));
    return std::get<std::string>(value);
  }

  mj::Program program_;
  std::unique_ptr<mj::ProgramIndex> index_;
  std::unique_ptr<Interpreter> interp_;
};

TEST_F(InterpEdgeTest, NestedLoopsBreakBindsInnermost) {
  Load(R"(
    class C {
      int f() {
        var count = 0;
        for (var i = 0; i < 3; i++) {
          for (var j = 0; j < 10; j++) {
            if (j == 2) {
              break;
            }
            count += 1;
          }
        }
        return count;
      }
    }
  )");
  EXPECT_EQ(RunInt("C.f"), 6);  // 2 inner iterations x 3 outer.
}

TEST_F(InterpEdgeTest, ContinueInForRunsUpdate) {
  Load(R"(
    class C {
      int f() {
        var sum = 0;
        for (var i = 0; i < 5; i++) {
          if (i == 2) {
            continue;
          }
          sum += i;
        }
        return sum;
      }
    }
  )");
  EXPECT_EQ(RunInt("C.f"), 0 + 1 + 3 + 4);  // No infinite loop at i==2.
}

TEST_F(InterpEdgeTest, SwitchNestedInSwitch) {
  Load(R"(
    class C {
      int f(a, b) {
        switch (a) {
          case 1:
            switch (b) {
              case 10:
                return 110;
              default:
                return 100;
            }
          default:
            return 0;
        }
      }
      int outer() {
        return this.f(1, 10) + this.f(1, 99) + this.f(7, 10);
      }
    }
  )");
  EXPECT_EQ(RunInt("C.outer"), 110 + 100 + 0);
}

TEST_F(InterpEdgeTest, BreakInSwitchInsideLoopContinuesLoop) {
  Load(R"(
    class C {
      int f() {
        var hits = 0;
        for (var i = 0; i < 4; i++) {
          switch (i % 2) {
            case 0:
              break;
            default:
              hits += 1;
          }
        }
        return hits;
      }
    }
  )");
  EXPECT_EQ(RunInt("C.f"), 2);  // The switch-breaks do not exit the for loop.
}

TEST_F(InterpEdgeTest, FinallyRunsWhenExceptionPropagates) {
  Load(R"(
    class C {
      int cleanups = 0;
      int f() {
        try {
          this.g();
        } catch (IOException e) {
          return this.cleanups;
        }
        return -1;
      }
      void g() throws IOException {
        try {
          throw new IOException("boom");
        } finally {
          this.cleanups += 1;
        }
      }
    }
  )");
  EXPECT_EQ(RunInt("C.f"), 1);  // Finally ran before propagation.
}

TEST_F(InterpEdgeTest, CatchRethrowOfDifferentTypeEscapesSiblingClauses) {
  Load(R"(
    class C {
      String f() {
        try {
          try {
            throw new SocketException("inner");
          } catch (SocketException e) {
            throw new TimeoutException("converted");
          } catch (TimeoutException t) {
            return "WRONG: sibling catch must not see it";
          }
        } catch (TimeoutException t) {
          return "outer:" + t.getMessage();
        }
      }
    }
  )");
  EXPECT_EQ(RunString("C.f"), "outer:converted");
}

TEST_F(InterpEdgeTest, VariableShadowingInNestedScopes) {
  Load(R"(
    class C {
      int f() {
        var x = 1;
        {
          var x = 2;
          x += 10;
        }
        return x;
      }
    }
  )");
  // Inner declaration shadows; outer is untouched after the block.
  EXPECT_EQ(RunInt("C.f"), 1);
}

TEST_F(InterpEdgeTest, ForInitVariableScopedToLoop) {
  Load(R"(
    class C {
      int f() {
        var total = 0;
        for (var i = 0; i < 2; i++) {
          total += i;
        }
        for (var i = 5; i < 7; i++) {
          total += i;
        }
        return total;
      }
    }
  )");
  EXPECT_EQ(RunInt("C.f"), 0 + 1 + 5 + 6);
}

TEST_F(InterpEdgeTest, ObjectsShareReferenceSemantics) {
  Load(R"(
    class Holder {
      int n = 0;
    }
    class C {
      int f() {
        var a = new Holder();
        var b = a;
        b.n = 42;
        return a.n;
      }
    }
  )");
  EXPECT_EQ(RunInt("C.f"), 42);
}

TEST_F(InterpEdgeTest, RecursionWithinDepthLimitWorks) {
  Load(R"(
    class C {
      int fib(n) {
        if (n < 2) {
          return n;
        }
        return this.fib(n - 1) + this.fib(n - 2);
      }
      int f() { return this.fib(12); }
    }
  )");
  EXPECT_EQ(RunInt("C.f"), 144);
}

TEST_F(InterpEdgeTest, ThrowInsideFinallyReplacesOriginal) {
  Load(R"(
    class C {
      String f() {
        try {
          try {
            throw new IOException("original");
          } finally {
            throw new TimeoutException("replacement");
          }
        } catch (TimeoutException t) {
          return "got:" + t.getMessage();
        } catch (IOException e) {
          return "WRONG";
        }
      }
    }
  )");
  EXPECT_EQ(RunString("C.f"), "got:replacement");
}

TEST_F(InterpEdgeTest, NegativeSleepIsClampedToZero) {
  Load(R"(
    class C {
      void f() {
        Thread.sleep(0 - 50);
      }
    }
  )");
  interp_->Invoke("C.f");
  EXPECT_EQ(interp_->now_ms(), 0);
}

TEST_F(InterpEdgeTest, StringConcatenationInLoopsStaysCorrect) {
  Load(R"(
    class C {
      String f() {
        var s = "";
        for (var i = 0; i < 3; i++) {
          s += i;
          s = s + "-";
        }
        return s;
      }
    }
  )");
  EXPECT_EQ(RunString("C.f"), "0-1-2-");
}

TEST_F(InterpEdgeTest, InstanceOfOnPrimitivesIsFalse) {
  Load(R"(
    class C {
      bool f() {
        var n = 5;
        var s = "x";
        return (n instanceof Exception) || (s instanceof Exception) || (null instanceof Exception);
      }
    }
  )");
  Value value = interp_->Invoke("C.f");
  EXPECT_FALSE(std::get<bool>(value));
}

TEST_F(InterpEdgeTest, SingletonAndInstanceStateAreSeparate) {
  Load(R"(
    class S {
      int n = 0;
      int bumpSelf() {
        this.n += 1;
        return this.n;
      }
      int viaFresh() {
        var other = new S();
        other.bumpSelf();
        return this.n;
      }
    }
  )");
  EXPECT_EQ(RunInt("S.bumpSelf"), 1);
  // The fresh instance's bump does not touch the singleton's field.
  EXPECT_EQ(RunInt("S.viaFresh"), 1);
}

}  // namespace
}  // namespace wasabi
