// Unit tests for the mj interpreter.

#include "src/interp/interpreter.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/lang/diagnostics.h"
#include "src/lang/parser.h"

namespace wasabi {
namespace {

class InterpTest : public ::testing::Test {
 protected:
  void Load(std::initializer_list<std::string> sources) {
    mj::DiagnosticEngine diag;
    int i = 0;
    for (const std::string& text : sources) {
      program_.AddUnit(mj::ParseSource("unit" + std::to_string(i++) + ".mj", text, diag));
    }
    ASSERT_FALSE(diag.has_errors()) << diag.FormatAll(nullptr);
    index_ = std::make_unique<mj::ProgramIndex>(program_);
    interp_ = std::make_unique<Interpreter>(program_, *index_, options_);
  }

  Value Run(const std::string& qualified, std::vector<Value> args = {}) {
    return interp_->Invoke(qualified, std::move(args));
  }

  // Runs and expects an uncaught mj exception of the given class.
  ObjectRef RunExpectThrow(const std::string& qualified, const std::string& exception) {
    try {
      interp_->Invoke(qualified);
    } catch (ThrownException& thrown) {
      EXPECT_TRUE(index_->IsSubtype(thrown.exception->class_name(), exception))
          << "threw " << thrown.exception->class_name() << " (" << thrown.exception->message()
          << "), wanted " << exception;
      return thrown.exception;
    }
    ADD_FAILURE() << "expected " << exception << " to be thrown";
    return nullptr;
  }

  mj::Program program_;
  std::unique_ptr<mj::ProgramIndex> index_;
  std::unique_ptr<Interpreter> interp_;
  InterpOptions options_;
};

TEST_F(InterpTest, ArithmeticAndLocals) {
  Load({R"(
    class C {
      int f() {
        var x = 2 + 3 * 4;
        var y = x % 5;
        x -= 1;
        y += 100;
        return x * 1000 + y + (20 / 4);
      }
    }
  )"});
  Value result = Run("C.f");
  ASSERT_TRUE(IsInt(result));
  // x = 14-1 = 13; y = 4+100 = 104; 13*1000 + 104 + 5 = 13109.
  EXPECT_EQ(std::get<int64_t>(result), 13109);
}

TEST_F(InterpTest, StringConcatAndComparison) {
  Load({R"(
    class C {
      String f() {
        var s = "a" + 1 + true;
        if (s == "a1true") {
          return s + "!";
        }
        return "no";
      }
    }
  )"});
  EXPECT_EQ(std::get<std::string>(Run("C.f")), "a1true!");
}

TEST_F(InterpTest, FieldsAndThis) {
  Load({R"(
    class Counter {
      int n = 10;
      int bump() {
        this.n += 5;
        return this.n;
      }
      int twice() {
        this.bump();
        return this.bump();
      }
    }
  )"});
  EXPECT_EQ(std::get<int64_t>(Run("Counter.twice")), 20);
}

TEST_F(InterpTest, SingletonStatePersistsAcrossInvokes) {
  Load({"class S { int n = 0; int bump() { this.n += 1; return this.n; } }"});
  EXPECT_EQ(std::get<int64_t>(Run("S.bump")), 1);
  EXPECT_EQ(std::get<int64_t>(Run("S.bump")), 2);
}

TEST_F(InterpTest, InheritanceAndOverride) {
  Load({R"(
    class Base {
      int shared() { return 1; }
      int viaOverride() { return this.hook(); }
      int hook() { return 10; }
    }
    class Leaf extends Base {
      int hook() { return 20; }
    }
    class Driver {
      int run() {
        var leaf = new Leaf();
        return leaf.shared() + leaf.viaOverride();
      }
    }
  )"});
  // Dynamic dispatch: viaOverride calls the Leaf hook.
  EXPECT_EQ(std::get<int64_t>(Run("Driver.run")), 21);
}

TEST_F(InterpTest, WhileForBreakContinue) {
  Load({R"(
    class C {
      int f() {
        var sum = 0;
        for (var i = 0; i < 10; i++) {
          if (i % 2 == 0) {
            continue;
          }
          if (i > 7) {
            break;
          }
          sum += i;
        }
        var j = 0;
        while (true) {
          j++;
          if (j == 4) {
            break;
          }
        }
        return sum * 100 + j;
      }
    }
  )"});
  // sum = 1+3+5+7 = 16; j = 4.
  EXPECT_EQ(std::get<int64_t>(Run("C.f")), 1604);
}

TEST_F(InterpTest, SwitchFallthroughSemantics) {
  Load({R"(
    class C {
      int f(x) {
        var r = 0;
        switch (x) {
          case 1:
            r += 1;
          case 2:
            r += 10;
            break;
          case 3:
            r += 100;
            break;
          default:
            r += 1000;
        }
        return r;
      }
    }
  )"});
  EXPECT_EQ(std::get<int64_t>(Run("C.f", {Value{int64_t{1}}})), 11);   // Falls 1 -> 2.
  EXPECT_EQ(std::get<int64_t>(Run("C.f", {Value{int64_t{2}}})), 10);
  EXPECT_EQ(std::get<int64_t>(Run("C.f", {Value{int64_t{3}}})), 100);
  EXPECT_EQ(std::get<int64_t>(Run("C.f", {Value{int64_t{9}}})), 1000);  // Default.
}

TEST_F(InterpTest, TryCatchBySubtype) {
  Load({R"(
    class C {
      String f() {
        try {
          this.boom();
          return "no-throw";
        } catch (IOException e) {
          return "io:" + e.getMessage();
        } catch (Exception e) {
          return "generic";
        }
      }
      void boom() {
        throw new ConnectException("refused");
      }
    }
  )"});
  // ConnectException <: IOException: first clause wins.
  EXPECT_EQ(std::get<std::string>(Run("C.f")), "io:refused");
}

TEST_F(InterpTest, FinallyAlwaysRunsAndCanOverride) {
  Load({R"(
    class C {
      int normal() {
        var r = 0;
        try {
          r = 1;
        } finally {
          r += 10;
        }
        return r;
      }
      int overridden() {
        try {
          return 1;
        } finally {
          return 2;
        }
      }
      int afterCatch() {
        var r = 0;
        try {
          throw new IOException("x");
        } catch (IOException e) {
          r = 5;
        } finally {
          r += 100;
        }
        return r;
      }
    }
  )"});
  EXPECT_EQ(std::get<int64_t>(Run("C.normal")), 11);
  EXPECT_EQ(std::get<int64_t>(Run("C.overridden")), 2);
  EXPECT_EQ(std::get<int64_t>(Run("C.afterCatch")), 105);
}

TEST_F(InterpTest, UncaughtExceptionEscapesInvoke) {
  Load({"class C { void f() { throw new TimeoutException(\"slow\"); } }"});
  ObjectRef exception = RunExpectThrow("C.f", "TimeoutException");
  EXPECT_EQ(exception->message(), "slow");
}

TEST_F(InterpTest, ExceptionWrappingAndCause) {
  Load({R"(
    class C {
      String f() {
        try {
          try {
            throw new AccessControlException("denied");
          } catch (AccessControlException inner) {
            throw new HadoopException("wrapped", inner);
          }
        } catch (HadoopException outer) {
          var cause = outer.getCause();
          if (cause instanceof AccessControlException) {
            return "found:" + cause.getMessage();
          }
          return "wrong-cause";
        }
      }
    }
  )"});
  EXPECT_EQ(std::get<std::string>(Run("C.f")), "found:denied");
}

TEST_F(InterpTest, UserExceptionClassesWork) {
  Load({R"(
    class RegionServerStoppedException extends IOException { }
    class C {
      String f() {
        try {
          throw new RegionServerStoppedException("rs down");
        } catch (IOException e) {
          return "caught:" + e.getMessage();
        }
      }
    }
  )"});
  EXPECT_EQ(std::get<std::string>(Run("C.f")), "caught:rs down");
}

TEST_F(InterpTest, NullPointerOnNullCallAndFieldAccess) {
  Load({R"(
    class C {
      void callOnNull() {
        var x = null;
        x.anything();
      }
      void fieldOnNull() {
        var x = null;
        var y = x.field;
        Log.info(y);
      }
    }
  )"});
  RunExpectThrow("C.callOnNull", "NullPointerException");
  RunExpectThrow("C.fieldOnNull", "NullPointerException");
}

TEST_F(InterpTest, DivisionByZeroThrowsArithmetic) {
  Load({"class C { int f() { var zero = 0; return 1 / zero; } }"});
  RunExpectThrow("C.f", "ArithmeticException");
}

TEST_F(InterpTest, QueueBuiltin) {
  Load({R"(
    class C {
      int f() {
        var q = new Queue();
        q.put(1);
        q.add(2);
        q.offer(3);
        var a = q.take();
        var b = q.poll();
        var n = q.size();
        var peeked = q.peek();
        return a * 1000 + b * 100 + n * 10 + peeked;
      }
      void takeEmpty() {
        var q = new Queue();
        q.take();
      }
      bool pollEmpty() {
        var q = new Queue();
        return q.poll() == null && q.isEmpty();
      }
    }
  )"});
  EXPECT_EQ(std::get<int64_t>(Run("C.f")), 1213);
  RunExpectThrow("C.takeEmpty", "IllegalStateException");
  EXPECT_TRUE(std::get<bool>(Run("C.pollEmpty")));
}

TEST_F(InterpTest, ListBuiltin) {
  Load({R"(
    class C {
      int f() {
        var l = new List();
        l.add(5);
        l.add(7);
        l.set(0, 6);
        var has = l.contains(7);
        if (has && l.size() == 2) {
          return l.get(0) + l.get(1);
        }
        return -1;
      }
      void outOfBounds() {
        var l = new List();
        l.get(0);
      }
    }
  )"});
  EXPECT_EQ(std::get<int64_t>(Run("C.f")), 13);
  RunExpectThrow("C.outOfBounds", "IllegalArgumentException");
}

TEST_F(InterpTest, MapBuiltin) {
  Load({R"(
    class C {
      int f() {
        var m = new Map();
        m.put("stage1", 10);
        m.put("stage1", 20);
        m.put(7, 30);
        var missing = m.get("nope");
        if (missing == null && m.containsKey(7) && m.size() == 2) {
          m.remove(7);
          return m.get("stage1") + m.size();
        }
        return -1;
      }
    }
  )"});
  EXPECT_EQ(std::get<int64_t>(Run("C.f")), 21);  // 20 + remaining size 1.
}

TEST_F(InterpTest, SleepAdvancesVirtualClockAndLogs) {
  Load({R"(
    class C {
      void f() {
        Thread.sleep(1000);
        TimeUnit.sleep(500);
        Timer.schedule(250);
      }
    }
  )"});
  Run("C.f");
  EXPECT_EQ(interp_->now_ms(), 1750);
  int sleep_entries = 0;
  for (const LogEntry& entry : interp_->log().entries()) {
    if (entry.kind == LogEntryKind::kSleep) {
      ++sleep_entries;
      EXPECT_FALSE(entry.call_stack.empty());
      EXPECT_EQ(entry.call_stack.back(), "C.f");
    }
  }
  EXPECT_EQ(sleep_entries, 3);
}

TEST_F(InterpTest, ClockNowMillisReadsVirtualTime) {
  Load({R"(
    class C {
      int f() {
        var start = Clock.nowMillis();
        Thread.sleep(123);
        return Clock.nowMillis() - start;
      }
    }
  )"});
  EXPECT_EQ(std::get<int64_t>(Run("C.f")), 123);
}

TEST_F(InterpTest, VirtualTimeBudgetAborts) {
  options_.virtual_time_budget_ms = 10'000;
  Load({R"(
    class C {
      void f() {
        while (true) {
          Thread.sleep(1000);
        }
      }
    }
  )"});
  try {
    Run("C.f");
    FAIL() << "expected ExecutionAborted";
  } catch (const ExecutionAborted& aborted) {
    EXPECT_EQ(aborted.reason, AbortReason::kVirtualTimeBudget);
  }
}

TEST_F(InterpTest, StepBudgetAbortsTightLoop) {
  options_.step_budget = 10'000;
  Load({"class C { void f() { while (true) { var x = 1; } } }"});
  try {
    Run("C.f");
    FAIL() << "expected ExecutionAborted";
  } catch (const ExecutionAborted& aborted) {
    EXPECT_EQ(aborted.reason, AbortReason::kStepBudget);
  }
}

TEST_F(InterpTest, RunawayRecursionAborts) {
  Load({"class C { void f() { this.f(); } }"});
  try {
    Run("C.f");
    FAIL() << "expected ExecutionAborted";
  } catch (const ExecutionAborted& aborted) {
    EXPECT_EQ(aborted.reason, AbortReason::kStackOverflow);
  }
}

TEST_F(InterpTest, ConfigDefaultsAndOverrides) {
  Load({R"(
    class C {
      int f() {
        return Config.getInt("retry.max", 7);
      }
      void set() {
        Config.set("retry.max", 99);
      }
    }
  )"});
  EXPECT_EQ(std::get<int64_t>(Run("C.f")), 7);  // Default.
  interp_->SetConfig("retry.max", Value{int64_t{3}});
  EXPECT_EQ(std::get<int64_t>(Run("C.f")), 3);  // Host override.
  Run("C.set");
  EXPECT_EQ(std::get<int64_t>(Run("C.f")), 99);  // mj-level set.
}

TEST_F(InterpTest, FrozenConfigIgnoresMjSets) {
  Load({R"(
    class C {
      int f() {
        return Config.getInt("retry.max", 7);
      }
      void restrict() {
        Config.set("retry.max", 0);
      }
    }
  )"});
  interp_->SetConfig("retry.max", Value{int64_t{10}});
  interp_->FreezeConfig("retry.max");
  Run("C.restrict");
  // The test's attempt to disable retry was neutralized (§3.1.4 restoration).
  EXPECT_EQ(std::get<int64_t>(Run("C.f")), 10);
}

TEST_F(InterpTest, AssertBuiltinsThrowAssertionError) {
  Load({R"(
    class C {
      void ok() {
        Assert.assertTrue(1 < 2);
        Assert.assertEquals(4, 2 + 2);
        Assert.assertNotNull("x");
        Assert.assertNull(null);
        Assert.assertFalse(false);
      }
      void bad() {
        Assert.assertEquals(5, 2 + 2);
      }
      void explicitFail() {
        Assert.fail("nope");
      }
    }
  )"});
  Run("C.ok");
  RunExpectThrow("C.bad", "AssertionError");
  ObjectRef failure = RunExpectThrow("C.explicitFail", "AssertionError");
  EXPECT_EQ(failure->message(), "nope");
}

TEST_F(InterpTest, MathBuiltins) {
  Load({R"(
    class C {
      int f() {
        return Math.pow(2, 10) + Math.min(3, 1) + Math.max(3, 1) + Math.abs(-5);
      }
    }
  )"});
  EXPECT_EQ(std::get<int64_t>(Run("C.f")), 1024 + 1 + 3 + 5);
}

TEST_F(InterpTest, ExponentialBackoffPattern) {
  // The HBASE-20492 fix pattern: backoff = 1000 * 2^attempts.
  Load({R"(
    class C {
      int f() {
        var total = 0;
        for (var attempt = 0; attempt < 4; attempt++) {
          var backoff = 1000 * Math.pow(2, attempt);
          Thread.sleep(backoff);
          total += backoff;
        }
        return total;
      }
    }
  )"});
  EXPECT_EQ(std::get<int64_t>(Run("C.f")), 1000 + 2000 + 4000 + 8000);
  EXPECT_EQ(interp_->now_ms(), 15000);
}

TEST_F(InterpTest, StringMethods) {
  Load({R"(
    class C {
      bool f() {
        var s = "ConnectException: connection refused";
        return s.contains("refused") && s.startsWith("Connect") && s.endsWith("refused")
            && s.length() == 36 && !s.isEmpty() && s.equals(s);
      }
    }
  )"});
  EXPECT_TRUE(std::get<bool>(Run("C.f")));
}

TEST_F(InterpTest, LogBuiltinAppendsToExecutionLog) {
  Load({"class C { void f() { Log.info(\"hello\", 42); Log.warn(\"bad\"); } }"});
  Run("C.f");
  const auto& entries = interp_->log().entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].text, "hello 42");
  EXPECT_EQ(entries[1].text, "bad");
}

TEST_F(InterpTest, InstanceOfSemantics) {
  Load({R"(
    class MyError extends KeeperException { }
    class C {
      int f() {
        var e = new MyError("x");
        var n = 0;
        if (e instanceof MyError) { n += 1; }
        if (e instanceof KeeperException) { n += 10; }
        if (e instanceof Exception) { n += 100; }
        if (e instanceof IOException) { n += 1000; }
        if (null instanceof Exception) { n += 10000; }
        return n;
      }
    }
  )"});
  EXPECT_EQ(std::get<int64_t>(Run("C.f")), 111);
}

TEST_F(InterpTest, InitConventionConstructor) {
  Load({R"(
    class Task {
      int id = 0;
      String name = "";
      void init(theId, theName) {
        this.id = theId;
        this.name = theName;
      }
    }
    class C {
      String f() {
        var t = new Task(42, "compaction");
        return t.name + ":" + t.id;
      }
    }
  )"});
  EXPECT_EQ(std::get<std::string>(Run("C.f")), "compaction:42");
}

TEST_F(InterpTest, CrossUnitCalls) {
  Load({"class A { int f() { var b = new B(); return b.g() + 1; } }",
        "class B { int g() { return 41; } }"});
  EXPECT_EQ(std::get<int64_t>(Run("A.f")), 42);
}

// --- Interceptors -----------------------------------------------------------

class CountingInterceptor : public CallInterceptor {
 public:
  void OnCall(const CallEvent& event, Interpreter&) override {
    ++calls;
    last_caller = event.caller;
    last_callee = event.callee;
  }
  int calls = 0;
  std::string last_caller;
  std::string last_callee;
};

TEST_F(InterpTest, InterceptorSeesCallerAndCallee) {
  Load({"class C { void outer() { this.inner(); } void inner() { } }"});
  CountingInterceptor interceptor;
  interp_->AddInterceptor(&interceptor);
  Run("C.outer");
  EXPECT_EQ(interceptor.calls, 2);  // outer (from top level) + inner.
  EXPECT_EQ(interceptor.last_caller, "C.outer");
  EXPECT_EQ(interceptor.last_callee, "C.inner");
}

class ThrowOnceInterceptor : public CallInterceptor {
 public:
  ThrowOnceInterceptor(std::string callee, std::string exception)
      : callee_(std::move(callee)), exception_(std::move(exception)) {}
  void OnCall(const CallEvent& event, Interpreter& interp) override {
    if (event.callee == callee_ && !fired_) {
      fired_ = true;
      throw ThrownException{interp.MakeException(exception_, "injected")};
    }
  }

 private:
  std::string callee_;
  std::string exception_;
  bool fired_ = false;
};

TEST_F(InterpTest, InterceptorInjectedExceptionIsCatchable) {
  Load({R"(
    class C {
      int withRetry() {
        for (var retry = 0; retry < 3; retry++) {
          try {
            this.op();
            return retry;
          } catch (SocketException e) {
            Log.warn("retrying after " + e.getMessage());
          }
        }
        return -1;
      }
      void op() { }
    }
  )"});
  ThrowOnceInterceptor interceptor("C.op", "SocketException");
  interp_->AddInterceptor(&interceptor);
  // First call fails (injected), second succeeds: returns retry == 1.
  EXPECT_EQ(std::get<int64_t>(Run("C.withRetry")), 1);
}

}  // namespace
}  // namespace wasabi
