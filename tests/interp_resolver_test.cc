// Edge-case tests for the resolution pass (src/lang/resolve.cc) and the
// slot-frame interpreter it feeds (docs/PERFORMANCE.md). Each scoping shape
// here is one the flat-frame rewrite could plausibly get wrong: the dynamic
// scope-map interpreter defined names at execution time, so the resolver must
// reproduce "declared yet?" with slot indices and defined-flags alone.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/interp/interpreter.h"
#include "src/lang/diagnostics.h"
#include "src/lang/parser.h"
#include "src/lang/resolve.h"
#include "src/lang/sema.h"

namespace wasabi {
namespace {

class ResolverTest : public ::testing::Test {
 protected:
  void Load(std::initializer_list<std::string> sources) {
    mj::DiagnosticEngine diag;
    int i = 0;
    for (const std::string& text : sources) {
      program_.AddUnit(mj::ParseSource("unit" + std::to_string(i++) + ".mj", text, diag));
    }
    ASSERT_FALSE(diag.has_errors()) << diag.FormatAll(nullptr);
    index_ = std::make_unique<mj::ProgramIndex>(program_);
    interp_ = std::make_unique<Interpreter>(program_, *index_);
  }

  Value Run(const std::string& qualified) { return interp_->Invoke(qualified); }

  int64_t RunInt(const std::string& qualified) {
    Value result = Run(qualified);
    EXPECT_TRUE(IsInt(result));
    return IsInt(result) ? std::get<int64_t>(result) : -1;
  }

  std::string RunString(const std::string& qualified) {
    Value result = Run(qualified);
    EXPECT_TRUE(IsString(result));
    return IsString(result) ? std::get<std::string>(result) : "<not a string>";
  }

  // Expects the run to die with IllegalStateException and returns the message.
  std::string RunExpectUndefined(const std::string& qualified) {
    try {
      interp_->Invoke(qualified);
    } catch (ThrownException& thrown) {
      EXPECT_EQ(thrown.exception->class_name(), "IllegalStateException");
      return thrown.exception->message();
    }
    ADD_FAILURE() << "expected IllegalStateException from " << qualified;
    return "";
  }

  const mj::MethodDecl* Method(const std::string& qualified) {
    const mj::MethodDecl* method = index_->FindQualified(qualified);
    EXPECT_NE(method, nullptr) << qualified;
    return method;
  }

  mj::Program program_;
  std::unique_ptr<mj::ProgramIndex> index_;
  std::unique_ptr<Interpreter> interp_;
};

// --- Shadowing -------------------------------------------------------------

TEST_F(ResolverTest, BlockShadowingRestoresOuterAfterBlock) {
  Load({R"(
    class C {
      int f() {
        var x = 1;
        {
          var x = 10;
          x = x + 5;   // Inner x: 15.
        }
        return x;      // Outer x untouched.
      }
    }
  )"});
  EXPECT_EQ(RunInt("C.f"), 1);
}

TEST_F(ResolverTest, UseBeforeInnerDeclBindsOuter) {
  // Before the inner declaration executes, `x` must resolve to the OUTER
  // binding — the dynamic interpreter found it by walking scope maps; the
  // slot interpreter must find it through the fallback chain.
  Load({R"(
    class C {
      int f() {
        var x = 7;
        var seen = 0;
        {
          seen = x;     // Outer x: the inner one is not declared yet.
          var x = 100;
          seen = seen + x;
        }
        return seen * 10 + x;
      }
    }
  )"});
  EXPECT_EQ(RunInt("C.f"), 1077);  // seen = 7+100, outer x still 7.
}

TEST_F(ResolverTest, InitializerOfShadowingDeclSeesOuter) {
  // `var x = x + 1` inside a block: the initializer evaluates before the new
  // x is defined, so it reads the outer x.
  Load({R"(
    class C {
      int f() {
        var x = 5;
        var inner = 0;
        {
          var x = x + 1;
          inner = x;
        }
        return inner * 100 + x;
      }
    }
  )"});
  EXPECT_EQ(RunInt("C.f"), 605);
}

// --- Sibling scopes and stale slots ----------------------------------------

TEST_F(ResolverTest, SiblingBlockDoesNotResurrectDeadVariable) {
  // The regression the per-method-unique slot design prevents: if sibling
  // blocks shared slot storage, the second block could read the first block's
  // dead `t` through a stale defined-flag. It must instead be undefined.
  Load({R"(
    class C {
      int f(bool first) {
        if (first) {
          var t = 41;
          return t;
        }
        return t;   // t is dead here: its block never ran in this path.
      }
      int g() { return this.f(false); }
    }
  )"});
  std::string message = RunExpectUndefined("C.g");
  EXPECT_NE(message.find("undefined variable 't'"), std::string::npos) << message;
}

TEST_F(ResolverTest, ReenteredBlockForgetsPreviousIterationSiblings) {
  // Entering a block clears its subtree's defined-flags, so a name declared
  // on a previous visit of a SIBLING branch is not visible in this branch.
  Load({R"(
    class C {
      int f() {
        var i = 0;
        var sum = 0;
        while (i < 2) {
          if (i == 0) {
            var a = 100;
            sum = sum + a;
          } else {
            sum = sum + a;   // a is the sibling branch's variable: undefined.
          }
          i = i + 1;
        }
        return sum;
      }
    }
  )"});
  std::string message = RunExpectUndefined("C.f");
  EXPECT_NE(message.find("undefined variable 'a'"), std::string::npos) << message;
}

// --- Same-scope redeclaration ----------------------------------------------

TEST_F(ResolverTest, SameScopeRedeclarationOverwrites) {
  Load({R"(
    class C {
      int f() {
        var x = 1;
        var x = x + 10;   // Same scope: same slot, initializer sees old value.
        return x;
      }
    }
  )"});
  EXPECT_EQ(RunInt("C.f"), 11);
}

// --- Loops ------------------------------------------------------------------

TEST_F(ResolverTest, NonBlockLoopBodyDeclarationSurvivesIterations) {
  // A declaration in a NON-block loop body (here: a bare if-branch) lands in
  // the for statement's own scope, which persists across iterations. Later
  // iterations then read it at a use that is textually EARLIER than the
  // declaration — the case the resolver's loop predeclaration exists for.
  Load({R"(
    class C {
      int f() {
        var sum = 0;
        for (var i = 0; i < 3; i = i + 1)
          if (i > 0)
            sum = sum + v;   // v declared on iteration 1, below.
          else
            var v = 40;
        return sum;
      }
    }
  )"});
  EXPECT_EQ(RunInt("C.f"), 80);  // Iterations 2 and 3 each add 40.
}

TEST_F(ResolverTest, BlockLoopBodyDeclarationDiesEachIteration) {
  // In contrast, a declaration inside the loop body's BLOCK belongs to that
  // block's per-iteration scope: the next iteration re-enters the block and
  // must not see the previous iteration's value.
  Load({R"(
    class C {
      int f() {
        var i = 0;
        var sum = 0;
        while (i < 2) {
          if (i > 0) {
            sum = sum + v;   // Previous iteration's v is dead.
          }
          var v = i * 10;
          i = i + 1;
        }
        return sum;
      }
    }
  )"});
  std::string message = RunExpectUndefined("C.f");
  EXPECT_NE(message.find("undefined variable 'v'"), std::string::npos) << message;
}

TEST_F(ResolverTest, ForInitVariableInvisibleAfterLoop) {
  Load({R"(
    class C {
      int f() {
        for (var i = 0; i < 3; i = i + 1) { }
        return i;
      }
    }
  )"});
  std::string message = RunExpectUndefined("C.f");
  EXPECT_NE(message.find("undefined variable 'i'"), std::string::npos) << message;
}

TEST_F(ResolverTest, ForUpdateSeesNonBlockBodyDeclaration) {
  // The update clause runs after the body, so a declaration in a non-block
  // body (for scope, survives the iteration) must be resolvable there.
  Load({R"(
    class C {
      int f() {
        for (var i = 0; i < 3; i = i + step)
          var step = 1;
        return 5;
      }
    }
  )"});
  EXPECT_EQ(RunInt("C.f"), 5);
  EXPECT_EQ(interp_->loop_iterations(), 3);
}

// --- Catch-parameter scoping -----------------------------------------------

TEST_F(ResolverTest, CatchParameterScopedToHandler) {
  Load({R"(
    class C {
      String f() {
        var seen = "none";
        try {
          throw new IOException("boom");
        } catch (IOException e) {
          seen = e.getMessage();
        }
        return seen;
      }
    }
  )"});
  EXPECT_EQ(RunString("C.f"), "boom");
}

TEST_F(ResolverTest, CatchParameterInvisibleAfterHandler) {
  Load({R"(
    class C {
      String f() {
        try {
          throw new IOException("boom");
        } catch (IOException e) {
        }
        return e;
      }
    }
  )"});
  std::string message = RunExpectUndefined("C.f");
  EXPECT_NE(message.find("undefined variable 'e'"), std::string::npos) << message;
}

TEST_F(ResolverTest, UndefinedCallReceiverKeepsReceiverError) {
  // A dangling name in RECEIVER position reports through the receiver path
  // ("undefined receiver"), not the plain variable path — frozen wording the
  // log-based oracles and goldens depend on.
  Load({R"(
    class C {
      String f() {
        try {
          throw new IOException("boom");
        } catch (IOException e) {
        }
        return e.getMessage();
      }
    }
  )"});
  std::string message = RunExpectUndefined("C.f");
  EXPECT_NE(message.find("undefined receiver 'e'"), std::string::npos) << message;
}

TEST_F(ResolverTest, CatchParameterShadowsOuterVariable) {
  Load({R"(
    class C {
      String f() {
        var e = "outer";
        try {
          throw new IOException("inner");
        } catch (IOException e) {
          var got = e.getMessage();
          if (got != "inner") { return "wrong: " + got; }
        }
        return e;   // Outer string restored after the handler.
      }
    }
  )"});
  EXPECT_EQ(RunString("C.f"), "outer");
}

// --- Switch fallthrough -----------------------------------------------------

TEST_F(ResolverTest, SwitchCaseDeclarationVisibleAcrossFallthrough) {
  // Case bodies share the enclosing scope; fallthrough from case 1 into case
  // 2 keeps `v` defined.
  Load({R"(
    class C {
      int f() {
        var r = 0;
        switch (1) {
          case 1:
            var v = 40;
          case 2:
            r = v + 2;
            break;
        }
        return r;
      }
    }
  )"});
  EXPECT_EQ(RunInt("C.f"), 42);
}

TEST_F(ResolverTest, SwitchCaseDeclarationUndefinedWhenCaseSkipped) {
  // Jumping straight to case 2 skips case 1's declaration: `v` has a slot but
  // its defined-flag never set, exactly the dynamic "undefined variable".
  Load({R"(
    class C {
      int f() {
        var r = 0;
        switch (2) {
          case 1:
            var v = 40;
          case 2:
            r = v + 2;
            break;
        }
        return r;
      }
    }
  )"});
  std::string message = RunExpectUndefined("C.f");
  EXPECT_NE(message.find("undefined variable 'v'"), std::string::npos) << message;
}

// --- Fields and singletons --------------------------------------------------

TEST_F(ResolverTest, SingletonFieldsPersistAcrossCalls) {
  Load({R"(
    class Counter {
      var count = 0;
      int bump() {
        this.count = this.count + 1;
        return this.count;
      }
    }
    class CounterTest {
      int drive() {
        Counter.bump();
        Counter.bump();
        return Counter.bump();
      }
    }
  )"});
  EXPECT_EQ(RunInt("CounterTest.drive"), 3);
}

TEST_F(ResolverTest, InheritedFieldsShareBaseLayoutSlots) {
  Load({R"(
    class Base {
      var a = 1;
      var b = 2;
    }
    class Derived extends Base {
      var c = 3;
      int sum() { return this.a + this.b + this.c; }
    }
    class D {
      int f() {
        var d = new Derived();
        d.a = 10;
        return d.sum();
      }
    }
  )"});
  EXPECT_EQ(RunInt("D.f"), 15);

  // The layout pre-sizes storage for the whole base chain.
  const mj::ClassDecl* derived = index_->FindClass("Derived");
  ASSERT_NE(derived, nullptr);
  EXPECT_EQ(index_->field_layout(*derived).field_count, 3u);
}

TEST_F(ResolverTest, FieldInitializerSeesEarlierFields) {
  Load({R"(
    class P {
      var base = 10;
      var derived = this.base * 4 + 2;
      int get() { return this.derived; }
    }
    class Q {
      int f() { return new P().get(); }
    }
  )"});
  EXPECT_EQ(RunInt("Q.f"), 42);
}

TEST_F(ResolverTest, AdHocFieldWritesUseOverflowStorage) {
  // Writing a field that no declaration mentions must still work (the extra-
  // fields overflow), and reading an unknown field still errors exactly.
  Load({R"(
    class Bag { }
    class B {
      int f() {
        var bag = new Bag();
        bag.stashed = 99;
        return bag.stashed;
      }
      int g() {
        var bag = new Bag();
        return bag.missing;
      }
    }
  )"});
  EXPECT_EQ(RunInt("B.f"), 99);
  std::string message = RunExpectUndefined("B.g");
  EXPECT_NE(message.find("no such field 'missing'"), std::string::npos) << message;
}

// --- Annotation shape -------------------------------------------------------

TEST_F(ResolverTest, MethodSlotAnnotations) {
  Load({R"(
    class C {
      int f(int a, int b) {
        var x = a + b;
        {
          var y = x;
          x = y;
        }
        return x;
      }
    }
  )"});
  const mj::MethodDecl* method = Method("C.f");
  ASSERT_NE(method, nullptr);
  // Slots are unique per declaration: a, b, x, y.
  EXPECT_EQ(method->max_slots, 4u);
  ASSERT_EQ(method->params.size(), 2u);
  EXPECT_EQ(method->params[0]->slot, 0);
  EXPECT_EQ(method->params[1]->slot, 1);
}

TEST_F(ResolverTest, SymbolTableInternsEachNameOnce) {
  Load({R"(
    class C {
      int f() {
        var alpha = 1;
        var beta = alpha + alpha;
        return beta + alpha;
      }
    }
  )"});
  const mj::SymbolTable& symbols = index_->symbols();
  mj::SymbolId alpha = symbols.Lookup("alpha");
  ASSERT_NE(alpha, mj::kInvalidSymbol);
  EXPECT_EQ(symbols.Name(alpha), "alpha");
  EXPECT_EQ(symbols.Lookup("no_such_name_anywhere"), mj::kInvalidSymbol);
}

TEST_F(ResolverTest, ResolutionIsDeterministicAcrossIndexRebuilds) {
  // Building a second index over the same program must produce identical slot
  // assignments — the property the golden suite leans on.
  Load({R"(
    class C {
      int f(int a) {
        var x = a;
        { var y = x; x = y + 1; }
        return x;
      }
    }
  )"});
  const mj::MethodDecl* method = Method("C.f");
  uint32_t first_max = method->max_slots;
  mj::SlotIndex first_param = method->params[0]->slot;
  mj::ProgramIndex rebuilt(program_);
  EXPECT_EQ(method->max_slots, first_max);
  EXPECT_EQ(method->params[0]->slot, first_param);
  EXPECT_EQ(rebuilt.call_site_count(), index_->call_site_count());
}

}  // namespace
}  // namespace wasabi
