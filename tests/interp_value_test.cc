// Unit tests for the runtime value model.

#include "src/interp/value.h"

#include <gtest/gtest.h>

namespace wasabi {
namespace {

TEST(ValueTest, TypePredicates) {
  EXPECT_TRUE(IsNull(Value{}));
  EXPECT_TRUE(IsInt(Value{int64_t{3}}));
  EXPECT_TRUE(IsBool(Value{true}));
  EXPECT_TRUE(IsString(Value{std::string("x")}));
  auto object = std::make_shared<Object>(ObjectKind::kInstance, "C");
  EXPECT_TRUE(IsObject(Value{object}));
  EXPECT_FALSE(IsInt(Value{}));
  EXPECT_FALSE(IsBool(Value{int64_t{0}}));
}

TEST(ValueTest, EqualsBySemanticType) {
  EXPECT_TRUE(ValueEquals(Value{}, Value{}));
  EXPECT_TRUE(ValueEquals(Value{int64_t{5}}, Value{int64_t{5}}));
  EXPECT_FALSE(ValueEquals(Value{int64_t{5}}, Value{int64_t{6}}));
  EXPECT_TRUE(ValueEquals(Value{std::string("a")}, Value{std::string("a")}));
  EXPECT_FALSE(ValueEquals(Value{std::string("a")}, Value{std::string("b")}));
  EXPECT_TRUE(ValueEquals(Value{true}, Value{true}));
  EXPECT_FALSE(ValueEquals(Value{true}, Value{false}));
  // Cross-type is never equal (no coercion).
  EXPECT_FALSE(ValueEquals(Value{int64_t{1}}, Value{true}));
  EXPECT_FALSE(ValueEquals(Value{int64_t{0}}, Value{}));
  EXPECT_FALSE(ValueEquals(Value{std::string("1")}, Value{int64_t{1}}));
}

TEST(ValueTest, ObjectEqualityIsReferenceBased) {
  auto a = std::make_shared<Object>(ObjectKind::kInstance, "C");
  auto b = std::make_shared<Object>(ObjectKind::kInstance, "C");
  EXPECT_TRUE(ValueEquals(Value{a}, Value{a}));
  EXPECT_FALSE(ValueEquals(Value{a}, Value{b}));
}

TEST(ValueTest, ToStringRendering) {
  // Named values (not temporaries) to sidestep a GCC-12 -Wmaybe-uninitialized
  // false positive on variant temporaries.
  Value null_value;
  Value int_value{int64_t{42}};
  Value bool_value{false};
  Value string_value{std::string("hi")};
  EXPECT_EQ(ValueToString(null_value), "null");
  EXPECT_EQ(ValueToString(int_value), "42");
  EXPECT_EQ(ValueToString(bool_value), "false");
  EXPECT_EQ(ValueToString(string_value), "hi");

  auto queue = std::make_shared<Object>(ObjectKind::kQueue, "Queue");
  Value element{int64_t{1}};
  queue->elements().push_back(element);
  Value queue_value{queue};
  EXPECT_EQ(ValueToString(queue_value), "Queue(size=1)");

  auto exc = std::make_shared<Object>(ObjectKind::kException, "IOException");
  exc->set_message("disk gone");
  Value exc_value{exc};
  EXPECT_EQ(ValueToString(exc_value), "IOException(\"disk gone\")");
}

TEST(ValueTest, MapKeysCoverIntStringBool) {
  bool ok = false;
  EXPECT_EQ(MapKeyFor(Value{int64_t{7}}, &ok), "i:7");
  EXPECT_TRUE(ok);
  EXPECT_EQ(MapKeyFor(Value{std::string("k")}, &ok), "s:k");
  EXPECT_TRUE(ok);
  EXPECT_EQ(MapKeyFor(Value{true}, &ok), "b:true");
  EXPECT_TRUE(ok);
  // Int and string keys never collide even with crafted content.
  EXPECT_NE(MapKeyFor(Value{int64_t{7}}, &ok), MapKeyFor(Value{std::string("7")}, &ok));
  MapKeyFor(Value{}, &ok);
  EXPECT_FALSE(ok);
}

TEST(ValueTest, ExceptionPayloads) {
  auto cause = std::make_shared<Object>(ObjectKind::kException, "SocketException");
  auto wrapper = std::make_shared<Object>(ObjectKind::kException, "HadoopException");
  wrapper->set_message("wrapped");
  wrapper->set_cause(cause);
  wrapper->set_origin_stack({"A.f", "A.g"});
  EXPECT_EQ(wrapper->cause()->class_name(), "SocketException");
  EXPECT_EQ(wrapper->origin_stack().size(), 2u);
  EXPECT_EQ(wrapper->message(), "wrapped");
}

}  // namespace
}  // namespace wasabi
