// Minimal JSON well-formedness checker shared by the JSON-emitting tests:
// values, objects, arrays, strings with escapes, numbers (including fractions
// and exponents — the metrics exporter's %.6g can emit e.g. 1e+06),
// true/false/null. No third-party dependency.

#ifndef WASABI_TESTS_JSON_VALIDATOR_H_
#define WASABI_TESTS_JSON_VALIDATOR_H_

#include <cctype>
#include <string_view>

namespace wasabi {

// Returns true from Validate() iff the whole input is one valid JSON value
// (plus trailing whitespace).
class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : text_(text) {}

  bool Validate() {
    SkipSpace();
    if (!Value()) {
      return false;
    }
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }
  bool String() {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // Raw control character: invalid.
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) {
          return false;
        }
        char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (std::string_view("\"\\/bfnrt").find(esc) == std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }
  bool Digits() {
    size_t start = pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }
  // Full RFC 8259 number grammar: int [frac] [exp], where int forbids
  // leading zeros ("01" is two values, hence invalid at top level).
  bool Number() {
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '0') {
      ++pos_;
    } else if (!Digits()) {
      return false;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!Digits()) {
        return false;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!Digits()) {
        return false;
      }
    }
    return true;
  }
  bool Value() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return false;
    }
    char c = text_[pos_];
    if (c == '{') {
      return Object();
    }
    if (c == '[') {
      return Array();
    }
    if (c == '"') {
      return String();
    }
    if (c == 't') {
      return Literal("true");
    }
    if (c == 'f') {
      return Literal("false");
    }
    if (c == 'n') {
      return Literal("null");
    }
    return Number();
  }
  bool Object() {
    ++pos_;  // '{'
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      if (!String()) {
        return false;
      }
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return false;
      }
      ++pos_;
      if (!Value()) {
        return false;
      }
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      if (!Value()) {
        return false;
      }
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace wasabi

#endif  // WASABI_TESTS_JSON_VALIDATOR_H_
