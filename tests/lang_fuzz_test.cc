// Seeded grammar fuzzer for the mj front end and the slot-frame interpreter
// (ctest label "fuzz"). Each seed generates one random program from a
// restricted integer-only grammar — nested blocks, shadowing declarations,
// if/else, bounded while loops, compound assignment, and occasional reads of
// names that have gone out of scope — and checks two properties:
//
//   1. Printer fixpoint: Print(Parse(text)) == Print(Parse(Print(Parse(text)))).
//      One reprint reaches the canonical form; a second must not move it.
//   2. Interpreter equivalence: the resolver-driven slot-frame interpreter
//      agrees with an in-test reference walker that executes the same AST with
//      literal dynamic scope maps (the semantics the resolution pass must
//      reproduce with slots and defined-flags; see interp_resolver_test.cc).
//      Agreement covers both the returned value and, for programs that read an
//      undefined name, the exact IllegalStateException variable name.
//
// The generator tracks a conservative magnitude bound per variable so no
// expression can overflow int64 (loops run <= 3 iterations, leaf operands are
// capped, products always have one small-literal side).

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/interp/interpreter.h"
#include "src/lang/ast.h"
#include "src/lang/diagnostics.h"
#include "src/lang/parser.h"
#include "src/lang/printer.h"
#include "src/lang/rewrite.h"
#include "src/lang/sema.h"
#include "src/repair/templates.h"

namespace wasabi {
namespace {

// --- Program generator -------------------------------------------------------

constexpr long long kLeafBound = 1 << 20;  // Vars above this stop being leaves.
constexpr int kMaxDepth = 3;               // Block/if/while nesting depth.
constexpr int kMaxExprDepth = 3;

class Fuzzer {
 public:
  explicit Fuzzer(uint64_t seed) : rng_(seed) {}

  std::string Generate() {
    out_.str("");
    scopes_.clear();
    retired_.clear();
    loop_counter_ = 0;
    // Budget keeps the worst-case program (deep nesting, three-way loops)
    // small enough that 500 seeds stay well under a second.
    stmt_budget_ = 24 + Rand(32);
    plant_undefined_ = Rand(4) == 0;  // ~25% of programs carry one bad read.

    out_ << "class F {\n  int f() {\n";
    scopes_.push_back({});
    Emit(2, "var sink = 0;");
    scopes_.back()["sink"] = 0;
    while (stmt_budget_ > 0) {
      EmitStmt(/*depth=*/0, /*indent=*/2);
    }
    Emit(2, "return sink;");
    scopes_.pop_back();
    out_ << "  }\n}\n";
    return out_.str();
  }

 private:
  struct GenExpr {
    std::string text;
    long long bound = 0;
  };

  int Rand(int n) { return std::uniform_int_distribution<int>(0, n - 1)(rng_); }

  void Emit(int indent, const std::string& line) {
    out_ << std::string(static_cast<size_t>(indent), ' ') << line << "\n";
  }

  // In-scope variables usable as expression leaves (bound small enough that
  // any depth-limited expression over them stays far from int64 overflow).
  std::vector<std::string> LeafVars() const {
    std::vector<std::string> names;
    for (const auto& scope : scopes_) {
      for (const auto& [name, bound] : scope) {
        if (name != "sink" && bound <= kLeafBound) {
          names.push_back(name);
        }
      }
    }
    return names;
  }

  // Assignment targets: leaf variables minus loop counters — writing to an
  // enclosing loop's counter could reset it every iteration and hang both
  // interpreters identically, which proves nothing.
  std::vector<std::string> AssignableVars() const {
    std::vector<std::string> names;
    for (const std::string& name : LeafVars()) {
      if (name[0] != 'l') {
        names.push_back(name);
      }
    }
    return names;
  }

  bool InScope(const std::string& name) const {
    for (const auto& scope : scopes_) {
      if (scope.count(name) != 0) {
        return true;
      }
    }
    return false;
  }

  // A name guaranteed to be undefined at this point: preferably one retired
  // with a closed block (and not shadow-resurrected by an outer declaration),
  // otherwise a name no program ever declares.
  std::string UndefinedName() {
    std::vector<std::string> dead;
    for (const std::string& name : retired_) {
      if (!InScope(name)) {
        dead.push_back(name);
      }
    }
    if (!dead.empty()) {
      return dead[static_cast<size_t>(Rand(static_cast<int>(dead.size())))];
    }
    return "zz" + std::to_string(Rand(3));
  }

  GenExpr Expr(int depth) {
    const std::vector<std::string> leaves = LeafVars();
    // Leaf: literal, variable, or (rarely, once per flagged program) a read of
    // an out-of-scope name — the divergence-hunting case.
    if (depth >= kMaxExprDepth || Rand(3) == 0 || leaves.empty()) {
      if (plant_undefined_ && Rand(12) == 0) {
        plant_undefined_ = false;
        return {UndefinedName(), 0};
      }
      if (leaves.empty() || Rand(2) == 0) {
        int literal = Rand(10);
        return {std::to_string(literal), literal};
      }
      const std::string& name = leaves[static_cast<size_t>(Rand(static_cast<int>(leaves.size())))];
      long long bound = 0;
      for (const auto& scope : scopes_) {
        auto found = scope.find(name);
        if (found != scope.end()) {
          bound = found->second;  // Innermost wins, like the interpreter.
        }
      }
      return {name, bound};
    }
    GenExpr lhs = Expr(depth + 1);
    switch (Rand(4)) {
      case 0: {
        GenExpr rhs = Expr(depth + 1);
        return {"(" + lhs.text + " + " + rhs.text + ")", lhs.bound + rhs.bound};
      }
      case 1: {
        GenExpr rhs = Expr(depth + 1);
        return {"(" + lhs.text + " - " + rhs.text + ")", lhs.bound + rhs.bound};
      }
      default: {
        // Products keep one side a tiny literal so bounds grow geometrically
        // at worst by 3x per level.
        int literal = Rand(4);
        return {"(" + lhs.text + " * " + std::to_string(literal) + ")", lhs.bound * literal};
      }
    }
  }

  std::string Cond() {
    GenExpr lhs = Expr(kMaxExprDepth - 1);
    GenExpr rhs = Expr(kMaxExprDepth - 1);
    static const char* kOps[] = {"<", "<=", ">", ">=", "==", "!="};
    return lhs.text + " " + kOps[Rand(6)] + " " + rhs.text;
  }

  std::string FreshVarName() {
    static const char* kPool[] = {"a", "b", "c", "d", "p", "q", "r", "s"};
    return kPool[Rand(8)];
  }

  void EmitBlockBody(int depth, int indent) {
    scopes_.push_back({});
    int statements = 1 + Rand(3);
    for (int i = 0; i < statements && stmt_budget_ > 0; ++i) {
      EmitStmt(depth, indent);
    }
    for (const auto& [name, bound] : scopes_.back()) {
      (void)bound;
      retired_.push_back(name);
    }
    scopes_.pop_back();
  }

  void EmitStmt(int depth, int indent) {
    --stmt_budget_;
    int choice = Rand(12);
    if (depth >= kMaxDepth && choice >= 6) {
      choice = Rand(6);  // At max depth only flat statements remain.
    }
    switch (choice) {
      case 0:
      case 1: {  // Declaration, possibly shadowing an outer (or same-scope) name.
        std::string name = FreshVarName();
        GenExpr init = Expr(0);
        Emit(indent, "var " + name + " = " + init.text + ";");
        scopes_.back()[name] = init.bound;
        break;
      }
      case 2:
      case 3: {  // Plain assignment to an in-scope variable.
        std::vector<std::string> leaves = AssignableVars();
        if (leaves.empty()) {
          Emit(indent, "sink = sink + 1;");
          break;
        }
        std::string name = leaves[static_cast<size_t>(Rand(static_cast<int>(leaves.size())))];
        GenExpr value = Expr(0);
        Emit(indent, name + " = " + value.text + ";");
        for (auto scope = scopes_.rbegin(); scope != scopes_.rend(); ++scope) {
          auto found = scope->find(name);
          if (found != scope->end()) {
            found->second = value.bound;
            break;
          }
        }
        break;
      }
      case 4: {  // Compound assignment (+= / -=) to an in-scope variable.
        std::vector<std::string> leaves = AssignableVars();
        if (leaves.empty()) {
          Emit(indent, "sink = sink + 1;");
          break;
        }
        std::string name = leaves[static_cast<size_t>(Rand(static_cast<int>(leaves.size())))];
        GenExpr value = Expr(1);
        Emit(indent, name + (Rand(2) == 0 ? " += " : " -= ") + value.text + ";");
        for (auto scope = scopes_.rbegin(); scope != scopes_.rend(); ++scope) {
          auto found = scope->find(name);
          if (found != scope->end()) {
            found->second += value.bound;
            break;
          }
        }
        break;
      }
      case 5: {  // Fold an expression into the accumulator.
        GenExpr value = Expr(0);
        Emit(indent, "sink = sink + " + value.text + ";");
        break;
      }
      case 6:
      case 7: {  // Bare block: shadowing playground, names die at '}'.
        Emit(indent, "{");
        EmitBlockBody(depth + 1, indent + 2);
        Emit(indent, "}");
        break;
      }
      case 8:
      case 9: {  // if (with optional else); both branches are blocks.
        Emit(indent, "if (" + Cond() + ") {");
        EmitBlockBody(depth + 1, indent + 2);
        if (Rand(2) == 0) {
          Emit(indent, "} else {");
          EmitBlockBody(depth + 1, indent + 2);
        }
        Emit(indent, "}");
        break;
      }
      default: {  // Bounded while over a dedicated counter (<= 3 iterations).
        std::string counter = "l" + std::to_string(loop_counter_++);
        int limit = 1 + Rand(3);
        Emit(indent, "var " + counter + " = 0;");
        scopes_.back()[counter] = limit;
        Emit(indent, "while (" + counter + " < " + std::to_string(limit) + ") {");
        EmitBlockBody(depth + 1, indent + 2);
        Emit(indent + 2, counter + " = " + counter + " + 1;");
        Emit(indent, "}");
        break;
      }
    }
  }

  std::mt19937_64 rng_;
  std::ostringstream out_;
  std::vector<std::map<std::string, long long>> scopes_;  // name -> |value| bound
  std::vector<std::string> retired_;
  int loop_counter_ = 0;
  int stmt_budget_ = 0;
  bool plant_undefined_ = false;
};

// --- Reference interpreter ---------------------------------------------------
// Executes the generated subset with literal dynamic scope maps: entering a
// block pushes a fresh map (so re-entered loop bodies forget their names),
// declarations evaluate their initializer BEFORE defining the name (shadowing
// initializers see the outer binding), and lookups walk innermost to
// outermost. This is exactly the semantics the resolver encodes into slots.

struct RefUndefined {
  std::string name;
};

class RefWalker {
 public:
  std::optional<int64_t> RunMethod(const mj::MethodDecl& method) {
    scopes_.clear();
    result_.reset();
    Exec(method.body);
    return result_;
  }

 private:
  int64_t Lookup(const std::string& name) {
    for (auto scope = scopes_.rbegin(); scope != scopes_.rend(); ++scope) {
      auto found = scope->find(name);
      if (found != scope->end()) {
        return found->second;
      }
    }
    throw RefUndefined{name};
  }

  void Store(const std::string& name, int64_t value) {
    for (auto scope = scopes_.rbegin(); scope != scopes_.rend(); ++scope) {
      auto found = scope->find(name);
      if (found != scope->end()) {
        found->second = value;
        return;
      }
    }
    throw RefUndefined{name};
  }

  int64_t Eval(const mj::Expr* expr) {
    switch (expr->kind) {
      case mj::AstKind::kIntLiteral:
        return static_cast<const mj::IntLiteralExpr*>(expr)->value;
      case mj::AstKind::kName:
        return Lookup(static_cast<const mj::NameExpr*>(expr)->name);
      case mj::AstKind::kBinary: {
        const auto* binary = static_cast<const mj::BinaryExpr*>(expr);
        int64_t lhs = Eval(binary->lhs);
        int64_t rhs = Eval(binary->rhs);
        switch (binary->op) {
          case mj::BinaryOp::kAdd:
            return lhs + rhs;
          case mj::BinaryOp::kSub:
            return lhs - rhs;
          case mj::BinaryOp::kMul:
            return lhs * rhs;
          default:
            ADD_FAILURE() << "unexpected arithmetic operator in fuzz subset";
            return 0;
        }
      }
      default:
        ADD_FAILURE() << "unexpected expression kind in fuzz subset";
        return 0;
    }
  }

  bool EvalCond(const mj::Expr* expr) {
    const auto* binary = static_cast<const mj::BinaryExpr*>(expr);
    if (expr->kind != mj::AstKind::kBinary) {
      ADD_FAILURE() << "fuzz conditions are single comparisons";
      return false;
    }
    int64_t lhs = Eval(binary->lhs);
    int64_t rhs = Eval(binary->rhs);
    switch (binary->op) {
      case mj::BinaryOp::kLt:
        return lhs < rhs;
      case mj::BinaryOp::kLe:
        return lhs <= rhs;
      case mj::BinaryOp::kGt:
        return lhs > rhs;
      case mj::BinaryOp::kGe:
        return lhs >= rhs;
      case mj::BinaryOp::kEq:
        return lhs == rhs;
      case mj::BinaryOp::kNe:
        return lhs != rhs;
      default:
        ADD_FAILURE() << "unexpected comparison operator in fuzz subset";
        return false;
    }
  }

  void Exec(const mj::Stmt* stmt) {
    if (stmt == nullptr || result_.has_value()) {
      return;
    }
    switch (stmt->kind) {
      case mj::AstKind::kBlock: {
        scopes_.push_back({});
        for (const mj::Stmt* child : static_cast<const mj::BlockStmt*>(stmt)->statements) {
          Exec(child);
          if (result_.has_value()) {
            break;
          }
        }
        scopes_.pop_back();
        break;
      }
      case mj::AstKind::kVarDecl: {
        const auto* decl = static_cast<const mj::VarDeclStmt*>(stmt);
        int64_t value = Eval(decl->init);
        scopes_.back()[decl->name] = value;
        break;
      }
      case mj::AstKind::kAssign: {
        const auto* assign = static_cast<const mj::AssignStmt*>(stmt);
        ASSERT_EQ(assign->target->kind, mj::AstKind::kName);
        const std::string& name = static_cast<const mj::NameExpr*>(assign->target)->name;
        int64_t value = Eval(assign->value);
        switch (assign->op) {
          case mj::AssignOp::kAssign:
            Store(name, value);
            break;
          case mj::AssignOp::kAddAssign:
            Store(name, Lookup(name) + value);
            break;
          case mj::AssignOp::kSubAssign:
            Store(name, Lookup(name) - value);
            break;
        }
        break;
      }
      case mj::AstKind::kIf: {
        const auto* branch = static_cast<const mj::IfStmt*>(stmt);
        if (EvalCond(branch->condition)) {
          Exec(branch->then_branch);
        } else {
          Exec(branch->else_branch);
        }
        break;
      }
      case mj::AstKind::kWhile: {
        const auto* loop = static_cast<const mj::WhileStmt*>(stmt);
        while (!result_.has_value() && EvalCond(loop->condition)) {
          Exec(loop->body);
        }
        break;
      }
      case mj::AstKind::kReturn:
        result_ = Eval(static_cast<const mj::ReturnStmt*>(stmt)->value);
        break;
      default:
        ADD_FAILURE() << "unexpected statement kind in fuzz subset";
        break;
    }
  }

  std::vector<std::map<std::string, int64_t>> scopes_;
  std::optional<int64_t> result_;
};

// --- The fuzz loop -----------------------------------------------------------

struct RefOutcome {
  bool undefined = false;
  std::string undefined_name;
  int64_t value = 0;
};

RefOutcome RunReference(const mj::MethodDecl& method) {
  RefOutcome outcome;
  try {
    RefWalker walker;
    std::optional<int64_t> value = walker.RunMethod(method);
    EXPECT_TRUE(value.has_value()) << "generated programs always return";
    outcome.value = value.value_or(0);
  } catch (const RefUndefined& undefined) {
    outcome.undefined = true;
    outcome.undefined_name = undefined.name;
  }
  return outcome;
}

TEST(LangFuzzTest, PrinterFixpointAndInterpreterEquivalence) {
  constexpr int kPrograms = 500;
  int undefined_programs = 0;
  for (uint64_t seed = 1; seed <= kPrograms; ++seed) {
    Fuzzer fuzzer(seed * 0x9E3779B97F4A7C15ull);
    const std::string source = fuzzer.Generate();
    SCOPED_TRACE("seed=" + std::to_string(seed) + "\n" + source);

    // Property 1: parse -> print reaches a fixpoint after one round trip.
    mj::Program program;
    mj::DiagnosticEngine diag;
    program.AddUnit(mj::ParseSource("fuzz.mj", source, diag));
    ASSERT_FALSE(diag.has_errors()) << diag.FormatAll(nullptr);
    const std::string printed = mj::PrintUnit(*program.units()[0]);

    mj::Program reparsed;
    mj::DiagnosticEngine rediag;
    reparsed.AddUnit(mj::ParseSource("fuzz.mj", printed, rediag));
    ASSERT_FALSE(rediag.has_errors()) << rediag.FormatAll(nullptr);
    ASSERT_EQ(printed, mj::PrintUnit(*reparsed.units()[0]))
        << "printer canonical form is not a fixpoint";

    // Property 2: slot-frame interpretation == dynamic scope-map reference.
    mj::ProgramIndex index(program);
    const mj::MethodDecl* method = index.FindQualified("F.f");
    ASSERT_NE(method, nullptr);
    RefOutcome expected = RunReference(*method);
    undefined_programs += expected.undefined ? 1 : 0;

    Interpreter interp(program, index);
    if (expected.undefined) {
      try {
        interp.Invoke("F.f");
        ADD_FAILURE() << "reference walker read undefined '" << expected.undefined_name
                      << "' but the interpreter completed";
      } catch (ThrownException& thrown) {
        EXPECT_EQ(thrown.exception->class_name(), "IllegalStateException");
        EXPECT_NE(thrown.exception->message().find("undefined variable '" +
                                                   expected.undefined_name + "'"),
                  std::string::npos)
            << "interpreter message: " << thrown.exception->message();
      }
    } else {
      Value result = interp.Invoke("F.f");
      ASSERT_TRUE(IsInt(result));
      EXPECT_EQ(std::get<int64_t>(result), expected.value);
    }
  }
  // The planted-bad-read arm must actually fire across the corpus, or the
  // undefined-name agreement above tests nothing.
  EXPECT_GT(undefined_programs, 10);
  EXPECT_LT(undefined_programs, kPrograms / 2);
}

// --- VM-vs-tree differential -------------------------------------------------
// The bytecode VM (docs/PERFORMANCE.md) must be observationally identical to
// the tree-walker on every generated program: same returned value or same
// diagnostic (class and message, including the planted undefined-read name),
// same step/loop/virtual-clock accounting, and the same execution log dump.

struct EngineOutcome {
  bool threw = false;
  std::string exception_class;
  std::string exception_message;
  int64_t value = 0;
  int64_t steps = 0;
  int64_t loop_iterations = 0;
  int64_t now_ms = 0;
  std::string log_dump;
};

EngineOutcome RunEngine(const mj::Program& program, const mj::ProgramIndex& index,
                        EngineKind engine) {
  InterpOptions options;
  options.engine = engine;
  Interpreter interp(program, index, options);
  EngineOutcome outcome;
  try {
    Value result = interp.Invoke("F.f");
    EXPECT_TRUE(IsInt(result));
    outcome.value = IsInt(result) ? std::get<int64_t>(result) : 0;
  } catch (ThrownException& thrown) {
    outcome.threw = true;
    outcome.exception_class = thrown.exception->class_name();
    outcome.exception_message = thrown.exception->message();
  }
  outcome.steps = interp.steps();
  outcome.loop_iterations = interp.loop_iterations();
  outcome.now_ms = interp.now_ms();
  outcome.log_dump = interp.log().Dump();
  return outcome;
}

TEST(LangFuzzTest, VmAndTreeEnginesAreObservationallyIdentical) {
  constexpr int kPrograms = 500;
  int undefined_programs = 0;
  for (uint64_t seed = 1; seed <= kPrograms; ++seed) {
    Fuzzer fuzzer(seed * 0x9E3779B97F4A7C15ull);
    const std::string source = fuzzer.Generate();
    SCOPED_TRACE("seed=" + std::to_string(seed) + "\n" + source);

    mj::Program program;
    mj::DiagnosticEngine diag;
    program.AddUnit(mj::ParseSource("fuzz.mj", source, diag));
    ASSERT_FALSE(diag.has_errors()) << diag.FormatAll(nullptr);
    mj::ProgramIndex index(program);

    EngineOutcome vm = RunEngine(program, index, EngineKind::kVm);
    EngineOutcome tree = RunEngine(program, index, EngineKind::kTree);

    ASSERT_EQ(vm.threw, tree.threw);
    if (vm.threw) {
      ++undefined_programs;
      EXPECT_EQ(vm.exception_class, tree.exception_class);
      EXPECT_EQ(vm.exception_message, tree.exception_message);
    } else {
      EXPECT_EQ(vm.value, tree.value);
    }
    // Step-for-step accounting parity: budgets, loop observers, and the
    // virtual clock fire at the same instants under either engine.
    EXPECT_EQ(vm.steps, tree.steps);
    EXPECT_EQ(vm.loop_iterations, tree.loop_iterations);
    EXPECT_EQ(vm.now_ms, tree.now_ms);
    EXPECT_EQ(vm.log_dump, tree.log_dump);
  }
  // The planted-undefined-read arm must exercise both engines' error paths.
  EXPECT_GT(undefined_programs, 10);
}

// --- Patch-idempotence differential (docs/REPAIR.md) -------------------------
//
// Every repair template, applied across 200 seeded programs, must (a) reject
// a method with no retry loop cleanly — no crash, no bogus patch — and (b)
// when a retry harness IS present, produce a patch that is a printer fixpoint
// and leaves every unpatched method byte-identical to its pristine print.
TEST(LangFuzzTest, RepairTemplatesRoundTripAndNeverLeakAcrossMethods) {
  struct NamedTemplate {
    const char* name;
    mj::MethodMutator mutator;
  };
  const std::vector<NamedTemplate> kTemplates = {
      {"bound-retry", MakeBoundRetryMutator(5)},
      {"add-backoff", MakeAddBackoffMutator()},
      {"add-jitter", MakeAddJitterMutator(false)},
      {"shed-on-overload", MakeShedOnOverloadMutator("SocketException")},
  };
  // A fuzzed method has integer arithmetic but no retry loop: every template
  // splices one around this.f() so all four shapes are exercised per seed.
  const char kRetryHarness[] =
      "  int retryWithHarness() {\n"
      "    while (true) {\n"
      "      try {\n"
      "        return this.f();\n"
      "      } catch (SocketException e) {\n"
      "        Log.warn(\"retrying\");\n"
      "        Thread.sleep(50);\n"
      "      }\n"
      "    }\n"
      "  }\n"
      "}\n";

  int patched_programs = 0;
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Fuzzer fuzzer(seed);
    const std::string bare = fuzzer.Generate();

    // (a) The bare fuzz program has no retry loop: every template must bail
    // out with a diagnostic instead of fabricating a patch.
    for (const NamedTemplate& tmpl : kTemplates) {
      mj::RewriteResult rejected =
          mj::RewriteMethod("Fuzz.mj", bare, "F", "f", tmpl.mutator);
      ASSERT_FALSE(rejected.ok) << tmpl.name;
      ASSERT_FALSE(rejected.error.empty()) << tmpl.name;
    }

    // (b) Composite program: the fuzzed method plus a canonical retry loop.
    ASSERT_EQ(bare.substr(bare.size() - 2), "}\n");
    const std::string composite = bare.substr(0, bare.size() - 2) + kRetryHarness;
    mj::DiagnosticEngine pristine_diag;
    auto pristine = mj::ParseSource("Fuzz.mj", composite, pristine_diag);
    ASSERT_FALSE(pristine_diag.has_errors()) << composite;
    ASSERT_EQ(pristine->classes().size(), 1u);
    const mj::MethodDecl* pristine_f = nullptr;
    for (mj::MethodDecl* method : pristine->classes()[0]->methods) {
      if (method->name == "f") {
        pristine_f = method;
      }
    }
    ASSERT_NE(pristine_f, nullptr);
    const std::string pristine_f_print = mj::PrintMethod(*pristine_f, 1);

    for (const NamedTemplate& tmpl : kTemplates) {
      SCOPED_TRACE(tmpl.name);
      mj::RewriteResult patch =
          mj::RewriteMethod("Fuzz.mj", composite, "F", "retryWithHarness", tmpl.mutator);
      ASSERT_TRUE(patch.ok) << patch.error;
      ++patched_programs;

      // Printer fixpoint: parse(print(parse)) reproduces the patch bytes.
      mj::DiagnosticEngine diag;
      auto reparse = mj::ParseSource("Fuzz.mj", patch.patched_source, diag);
      ASSERT_FALSE(diag.has_errors()) << patch.patched_source;
      ASSERT_EQ(mj::PrintUnit(*reparse), patch.patched_source);

      // The fuzzed method's print is byte-identical: the patch stayed inside
      // its declared target.
      const mj::MethodDecl* patched_f = nullptr;
      for (mj::MethodDecl* method : reparse->classes()[0]->methods) {
        if (method->name == "f") {
          patched_f = method;
        }
      }
      ASSERT_NE(patched_f, nullptr);
      ASSERT_EQ(mj::PrintMethod(*patched_f, 1), pristine_f_print);
    }
  }
  EXPECT_EQ(patched_programs, 200 * 4);
}

// The interpreter runs each generated program again through a second,
// independently seeded generation to guard the generator itself against
// accidental seed coupling: distinct seeds must produce distinct programs
// often enough to be a real corpus.
TEST(LangFuzzTest, SeedsProduceDistinctPrograms) {
  Fuzzer first(1);
  Fuzzer second(2);
  EXPECT_NE(first.Generate(), second.Generate());
  Fuzzer replay(1);
  Fuzzer replay_again(1);
  EXPECT_EQ(replay.Generate(), replay_again.Generate());
}

}  // namespace
}  // namespace wasabi
