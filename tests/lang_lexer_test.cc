// Unit tests for the mj lexer.

#include "src/lang/lexer.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/lang/diagnostics.h"
#include "src/lang/source.h"
#include "src/lang/token.h"

namespace mj {
namespace {

// Token::text views into the SourceFile, so the fixture keeps the file alive
// for the duration of each test.
class LexFixture {
 public:
  std::vector<Token> Lex(const std::string& text, DiagnosticEngine& diag,
                         std::vector<Comment>* comments = nullptr) {
    file_ = std::make_unique<SourceFile>("test.mj", text);
    Lexer lexer(*file_, diag);
    std::vector<Token> tokens = lexer.LexAll();
    if (comments != nullptr) {
      *comments = lexer.comments();
    }
    return tokens;
  }

 private:
  std::unique_ptr<SourceFile> file_;
};

std::vector<Token> Lex(const std::string& text, DiagnosticEngine& diag,
                       std::vector<Comment>* comments = nullptr) {
  static LexFixture* fixture = new LexFixture();
  return fixture->Lex(text, diag, comments);
}

std::vector<TokenKind> Kinds(const std::vector<Token>& tokens) {
  std::vector<TokenKind> kinds;
  for (const Token& token : tokens) {
    kinds.push_back(token.kind);
  }
  return kinds;
}

TEST(LexerTest, EmptyInputYieldsEof) {
  DiagnosticEngine diag;
  auto tokens = Lex("", diag);
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kEndOfFile);
  EXPECT_FALSE(diag.has_errors());
}

TEST(LexerTest, Keywords) {
  DiagnosticEngine diag;
  auto tokens = Lex("class extends var if else while for try catch finally throw throws", diag);
  std::vector<TokenKind> expected = {
      TokenKind::kKwClass,   TokenKind::kKwExtends, TokenKind::kKwVar,
      TokenKind::kKwIf,      TokenKind::kKwElse,    TokenKind::kKwWhile,
      TokenKind::kKwFor,     TokenKind::kKwTry,     TokenKind::kKwCatch,
      TokenKind::kKwFinally, TokenKind::kKwThrow,   TokenKind::kKwThrows,
      TokenKind::kEndOfFile,
  };
  EXPECT_EQ(Kinds(tokens), expected);
}

TEST(LexerTest, IdentifiersAreNotKeywords) {
  DiagnosticEngine diag;
  auto tokens = Lex("retry retries classify whileTrue", diag);
  ASSERT_EQ(tokens.size(), 5u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(tokens[i].kind, TokenKind::kIdentifier) << "token " << i;
  }
  EXPECT_EQ(tokens[0].text, "retry");
  EXPECT_EQ(tokens[3].text, "whileTrue");
}

TEST(LexerTest, IntLiterals) {
  DiagnosticEngine diag;
  auto tokens = Lex("0 42 1000L", diag);
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].int_value, 0);
  EXPECT_EQ(tokens[1].int_value, 42);
  EXPECT_EQ(tokens[2].int_value, 1000);
  EXPECT_FALSE(diag.has_errors());
}

TEST(LexerTest, StringLiteralsWithEscapes) {
  DiagnosticEngine diag;
  auto tokens = Lex(R"("hello" "a\nb" "q\"q" "tab\there")", diag);
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].string_value, "hello");
  EXPECT_EQ(tokens[1].string_value, "a\nb");
  EXPECT_EQ(tokens[2].string_value, "q\"q");
  EXPECT_EQ(tokens[3].string_value, "tab\there");
  EXPECT_FALSE(diag.has_errors());
}

TEST(LexerTest, UnterminatedStringReportsError) {
  DiagnosticEngine diag;
  Lex("\"oops", diag);
  EXPECT_TRUE(diag.has_errors());
}

TEST(LexerTest, OperatorsSingleAndDouble) {
  DiagnosticEngine diag;
  auto tokens = Lex("= == != < <= > >= && || ! + ++ += - -- -=", diag);
  std::vector<TokenKind> expected = {
      TokenKind::kAssign, TokenKind::kEq,        TokenKind::kNe,
      TokenKind::kLt,     TokenKind::kLe,        TokenKind::kGt,
      TokenKind::kGe,     TokenKind::kAndAnd,    TokenKind::kOrOr,
      TokenKind::kNot,    TokenKind::kPlus,      TokenKind::kPlusPlus,
      TokenKind::kPlusAssign, TokenKind::kMinus, TokenKind::kMinusMinus,
      TokenKind::kMinusAssign, TokenKind::kEndOfFile,
  };
  EXPECT_EQ(Kinds(tokens), expected);
}

TEST(LexerTest, LineCommentsAreRetained) {
  DiagnosticEngine diag;
  std::vector<Comment> comments;
  Lex("var x = 1; // retry until the broker responds\nvar y = 2;", diag, &comments);
  ASSERT_EQ(comments.size(), 1u);
  EXPECT_EQ(comments[0].text, "retry until the broker responds");
  EXPECT_FALSE(comments[0].is_block);
  EXPECT_EQ(comments[0].location.line, 1u);
}

TEST(LexerTest, BlockCommentsAreRetained) {
  DiagnosticEngine diag;
  std::vector<Comment> comments;
  Lex("/* resubmit the task\n   on transient failure */ var x = 1;", diag, &comments);
  ASSERT_EQ(comments.size(), 1u);
  EXPECT_TRUE(comments[0].is_block);
  EXPECT_NE(comments[0].text.find("resubmit"), std::string::npos);
}

TEST(LexerTest, UnterminatedBlockCommentReportsError) {
  DiagnosticEngine diag;
  Lex("/* never closed", diag);
  EXPECT_TRUE(diag.has_errors());
}

TEST(LexerTest, UnexpectedCharacterRecovers) {
  DiagnosticEngine diag;
  auto tokens = Lex("a @ b", diag);
  EXPECT_TRUE(diag.has_errors());
  // '@' is skipped; both identifiers still lexed.
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
}

TEST(LexerTest, LocationsAreOneBased) {
  DiagnosticEngine diag;
  auto tokens = Lex("a\n  b", diag);
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].location.line, 1u);
  EXPECT_EQ(tokens[0].location.column, 1u);
  EXPECT_EQ(tokens[1].location.line, 2u);
  EXPECT_EQ(tokens[1].location.column, 3u);
}

TEST(SourceFileTest, LineTextAndLineCount) {
  SourceFile file("f.mj", "line one\nline two\nline three");
  EXPECT_EQ(file.line_count(), 3u);
  EXPECT_EQ(file.LineText(2), "line two");
  EXPECT_EQ(file.LineText(3), "line three");
  EXPECT_EQ(file.LineText(0), "");
  EXPECT_EQ(file.LineText(4), "");
}

TEST(SourceFileTest, LocationForClampsPastEnd) {
  SourceFile file("f.mj", "ab\ncd");
  SourceLocation loc = file.LocationFor(100);
  EXPECT_EQ(loc.line, 2u);
}

}  // namespace
}  // namespace mj
