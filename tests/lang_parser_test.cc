// Unit tests for the mj parser.

#include "src/lang/parser.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/lang/ast.h"
#include "src/lang/diagnostics.h"

namespace mj {
namespace {

std::unique_ptr<CompilationUnit> Parse(const std::string& text, DiagnosticEngine& diag) {
  return ParseSource("test.mj", text, diag);
}

std::unique_ptr<CompilationUnit> ParseOk(const std::string& text) {
  DiagnosticEngine diag;
  auto unit = Parse(text, diag);
  EXPECT_FALSE(diag.has_errors()) << diag.FormatAll(nullptr);
  return unit;
}

TEST(ParserTest, EmptyUnit) {
  auto unit = ParseOk("");
  EXPECT_TRUE(unit->classes().empty());
}

TEST(ParserTest, SimpleClassWithFieldAndMethod) {
  auto unit = ParseOk(R"(
    class Worker {
      int attempts = 0;
      void run() {
        this.attempts = this.attempts + 1;
      }
    }
  )");
  ASSERT_EQ(unit->classes().size(), 1u);
  const ClassDecl* cls = unit->classes()[0];
  EXPECT_EQ(cls->name, "Worker");
  ASSERT_EQ(cls->fields.size(), 1u);
  EXPECT_EQ(cls->fields[0]->name, "attempts");
  EXPECT_EQ(cls->fields[0]->type_name, "int");
  ASSERT_EQ(cls->methods.size(), 1u);
  EXPECT_EQ(cls->methods[0]->name, "run");
  EXPECT_EQ(cls->methods[0]->QualifiedName(), "Worker.run");
}

TEST(ParserTest, ExtendsClause) {
  auto unit = ParseOk("class Sub extends Base { }");
  ASSERT_EQ(unit->classes().size(), 1u);
  EXPECT_EQ(unit->classes()[0]->base_name, "Base");
}

TEST(ParserTest, MethodThrowsClause) {
  auto unit = ParseOk(R"(
    class Client {
      HttpResponse connect(String url) throws ConnectException, SocketException;
    }
  )");
  const MethodDecl* method = unit->classes()[0]->methods[0];
  EXPECT_EQ(method->return_type, "HttpResponse");
  ASSERT_EQ(method->throws.size(), 2u);
  EXPECT_EQ(method->throws[0], "ConnectException");
  EXPECT_EQ(method->throws[1], "SocketException");
  EXPECT_EQ(method->body, nullptr);
  ASSERT_EQ(method->params.size(), 1u);
  EXPECT_EQ(method->params[0]->type_name, "String");
  EXPECT_EQ(method->params[0]->name, "url");
}

TEST(ParserTest, StaticMethod) {
  auto unit = ParseOk("class Util { static int max(int a, int b) { return a; } }");
  EXPECT_TRUE(unit->classes()[0]->methods[0]->is_static);
}

TEST(ParserTest, SingleIdentifierParamDefaultsToVarType) {
  auto unit = ParseOk("class C { void f(x, y) { } }");
  const MethodDecl* method = unit->classes()[0]->methods[0];
  ASSERT_EQ(method->params.size(), 2u);
  EXPECT_EQ(method->params[0]->type_name, "var");
  EXPECT_EQ(method->params[0]->name, "x");
  EXPECT_EQ(method->params[1]->name, "y");
}

TEST(ParserTest, RetryLoopShape) {
  // The canonical loop-retry shape from the paper's Listing 2.
  auto unit = ParseOk(R"(
    class WebHdfsFileSystem {
      int maxAttempts = 3;
      HttpResponse run() throws IOException {
        for (var retry = 0; retry < this.maxAttempts; retry++) {
          try {
            var conn = this.connect("url");
            var response = this.getResponse(conn);
            return response;
          } catch (AccessControlException e) {
            break;
          } catch (ConnectException ce) {
            Log.warn("connect failed, retrying");
          }
          Thread.sleep(1000);
        }
        return null;
      }
      HttpUrlConnection connect(String url) throws AccessControlException, ConnectException;
      HttpResponse getResponse(HttpUrlConnection conn) throws IOException;
    }
  )");
  const ClassDecl* cls = unit->classes()[0];
  ASSERT_EQ(cls->methods.size(), 3u);
  const MethodDecl* run = cls->methods[0];
  ASSERT_NE(run->body, nullptr);
  ASSERT_EQ(run->body->statements.size(), 2u);
  ASSERT_EQ(run->body->statements[0]->kind, AstKind::kFor);
  const auto* loop = static_cast<const ForStmt*>(run->body->statements[0]);
  ASSERT_NE(loop->init, nullptr);
  EXPECT_EQ(loop->init->kind, AstKind::kVarDecl);
  ASSERT_NE(loop->update, nullptr);
  EXPECT_EQ(loop->update->kind, AstKind::kAssign);
  const auto* body = static_cast<const BlockStmt*>(loop->body);
  ASSERT_EQ(body->statements.size(), 2u);
  ASSERT_EQ(body->statements[0]->kind, AstKind::kTry);
  const auto* try_stmt = static_cast<const TryStmt*>(body->statements[0]);
  ASSERT_EQ(try_stmt->catches.size(), 2u);
  EXPECT_EQ(try_stmt->catches[0].exception_type, "AccessControlException");
  EXPECT_EQ(try_stmt->catches[1].exception_type, "ConnectException");
}

TEST(ParserTest, SwitchStateMachineShape) {
  // The state-machine retry shape from the paper's Listing 4.
  auto unit = ParseOk(R"(
    class UnassignProcedure {
      int state = 0;
      void execute(int currentState) {
        switch (currentState) {
          case 1:
            try {
              this.markRegionAsClosing();
              this.state = 2;
            } catch (Exception e) {
              return;
            }
            break;
          case 2:
          default:
            return;
        }
      }
      void markRegionAsClosing() throws IOException;
    }
  )");
  const MethodDecl* execute = unit->classes()[0]->methods[0];
  ASSERT_EQ(execute->body->statements.size(), 1u);
  ASSERT_EQ(execute->body->statements[0]->kind, AstKind::kSwitch);
  const auto* switch_stmt = static_cast<const SwitchStmt*>(execute->body->statements[0]);
  ASSERT_EQ(switch_stmt->cases.size(), 2u);
  ASSERT_EQ(switch_stmt->cases[0].labels.size(), 1u);
  // `case 2: default:` parses as one group with one label + default flag folded
  // into empty labels... mj keeps them as a single case with one label list
  // containing the case-2 label; default contributes no label.
  ASSERT_EQ(switch_stmt->cases[1].labels.size(), 1u);
}

TEST(ParserTest, TryFinallyWithoutCatch) {
  auto unit = ParseOk("class C { void f() { try { this.g(); } finally { this.h(); } } }");
  const auto* try_stmt =
      static_cast<const TryStmt*>(unit->classes()[0]->methods[0]->body->statements[0]);
  EXPECT_TRUE(try_stmt->catches.empty());
  ASSERT_NE(try_stmt->finally, nullptr);
}

TEST(ParserTest, TryWithoutCatchOrFinallyIsError) {
  DiagnosticEngine diag;
  Parse("class C { void f() { try { this.g(); } } }", diag);
  EXPECT_TRUE(diag.has_errors());
}

TEST(ParserTest, OperatorPrecedence) {
  auto unit = ParseOk("class C { int f() { return 1 + 2 * 3; } }");
  const auto* ret =
      static_cast<const ReturnStmt*>(unit->classes()[0]->methods[0]->body->statements[0]);
  ASSERT_EQ(ret->value->kind, AstKind::kBinary);
  const auto* add = static_cast<const BinaryExpr*>(ret->value);
  EXPECT_EQ(add->op, BinaryOp::kAdd);
  ASSERT_EQ(add->rhs->kind, AstKind::kBinary);
  EXPECT_EQ(static_cast<const BinaryExpr*>(add->rhs)->op, BinaryOp::kMul);
}

TEST(ParserTest, LogicalPrecedenceAndInstanceof) {
  auto unit = ParseOk(
      "class C { bool f(e) { return e instanceof IOException && this.x == 1 || false; } }");
  const auto* ret =
      static_cast<const ReturnStmt*>(unit->classes()[0]->methods[0]->body->statements[0]);
  const auto* or_expr = static_cast<const BinaryExpr*>(ret->value);
  EXPECT_EQ(or_expr->op, BinaryOp::kOr);
  const auto* and_expr = static_cast<const BinaryExpr*>(or_expr->lhs);
  EXPECT_EQ(and_expr->op, BinaryOp::kAnd);
  EXPECT_EQ(and_expr->lhs->kind, AstKind::kInstanceOf);
}

TEST(ParserTest, ChainedCallsAndFieldAccess) {
  auto unit = ParseOk("class C { void f() { this.queue.take().execute(); } }");
  const auto* stmt =
      static_cast<const ExprStmt*>(unit->classes()[0]->methods[0]->body->statements[0]);
  ASSERT_EQ(stmt->expr->kind, AstKind::kCall);
  const auto* execute = static_cast<const CallExpr*>(stmt->expr);
  EXPECT_EQ(execute->callee, "execute");
  ASSERT_NE(execute->base, nullptr);
  ASSERT_EQ(execute->base->kind, AstKind::kCall);
  const auto* take = static_cast<const CallExpr*>(execute->base);
  EXPECT_EQ(take->callee, "take");
  ASSERT_EQ(take->base->kind, AstKind::kFieldAccess);
}

TEST(ParserTest, PostIncrementBecomesAddAssign) {
  auto unit = ParseOk("class C { void f() { var i = 0; i++; } }");
  const auto* stmt =
      static_cast<const AssignStmt*>(unit->classes()[0]->methods[0]->body->statements[1]);
  EXPECT_EQ(stmt->op, AssignOp::kAddAssign);
  ASSERT_EQ(stmt->value->kind, AstKind::kIntLiteral);
  EXPECT_EQ(static_cast<const IntLiteralExpr*>(stmt->value)->value, 1);
}

TEST(ParserTest, CompoundAssignOnField) {
  auto unit = ParseOk("class C { int n = 0; void f() { this.n += 2; } }");
  const auto* stmt =
      static_cast<const AssignStmt*>(unit->classes()[0]->methods[0]->body->statements[0]);
  EXPECT_EQ(stmt->op, AssignOp::kAddAssign);
  EXPECT_EQ(stmt->target->kind, AstKind::kFieldAccess);
}

TEST(ParserTest, AssignToCallIsError) {
  DiagnosticEngine diag;
  Parse("class C { void f() { this.g() = 1; } }", diag);
  EXPECT_TRUE(diag.has_errors());
}

TEST(ParserTest, WhileTrueLoop) {
  auto unit = ParseOk("class C { void f() { while (true) { this.g(); } } }");
  const auto* loop =
      static_cast<const WhileStmt*>(unit->classes()[0]->methods[0]->body->statements[0]);
  EXPECT_EQ(loop->condition->kind, AstKind::kBoolLiteral);
}

TEST(ParserTest, ForWithEmptyClauses) {
  auto unit = ParseOk("class C { void f() { for (;;) { break; } } }");
  const auto* loop =
      static_cast<const ForStmt*>(unit->classes()[0]->methods[0]->body->statements[0]);
  EXPECT_EQ(loop->init, nullptr);
  EXPECT_EQ(loop->condition, nullptr);
  EXPECT_EQ(loop->update, nullptr);
}

TEST(ParserTest, NewWithArgs) {
  auto unit = ParseOk("class C { void f() { throw new SocketException(\"reset\"); } }");
  const auto* throw_stmt =
      static_cast<const ThrowStmt*>(unit->classes()[0]->methods[0]->body->statements[0]);
  ASSERT_EQ(throw_stmt->value->kind, AstKind::kNew);
  const auto* new_expr = static_cast<const NewExpr*>(throw_stmt->value);
  EXPECT_EQ(new_expr->class_name, "SocketException");
  ASSERT_EQ(new_expr->args.size(), 1u);
}

TEST(ParserTest, CommentsAttachedToUnit) {
  auto unit = ParseOk("// Retries the RPC with backoff.\nclass C { }");
  ASSERT_EQ(unit->comments().size(), 1u);
  EXPECT_EQ(unit->comments()[0].text, "Retries the RPC with backoff.");
}

TEST(ParserTest, ErrorRecoverySkipsBadMemberAndContinues) {
  DiagnosticEngine diag;
  auto unit = Parse(R"(
    class C {
      void good1() { }
      ???
      void good2() { }
    }
  )", diag);
  EXPECT_TRUE(diag.has_errors());
  ASSERT_EQ(unit->classes().size(), 1u);
  // good1 parsed; recovery may or may not reach good2, but must not crash.
  EXPECT_GE(unit->classes()[0]->methods.size(), 1u);
}

TEST(ParserTest, MissingSemicolonIsReported) {
  DiagnosticEngine diag;
  Parse("class C { void f() { var x = 1 } }", diag);
  EXPECT_TRUE(diag.has_errors());
}

TEST(ParserTest, TopLevelGarbageIsReported) {
  DiagnosticEngine diag;
  Parse("banana", diag);
  EXPECT_TRUE(diag.has_errors());
}

TEST(ParserTest, NodeIdsAreUniqueAndDense) {
  auto unit = ParseOk("class C { void f() { var x = 1 + 2; } }");
  EXPECT_GT(unit->node_count(), 4u);
  for (NodeId i = 0; i < unit->node_count(); ++i) {
    EXPECT_EQ(unit->node(i)->id, i);
  }
}

TEST(ParserTest, QueueRetryShape) {
  // The queue-based retry shape from the paper's Listing 3.
  auto unit = ParseOk(R"(
    class TaskProcessor {
      Queue taskQueue = new Queue();
      void run() {
        var task = this.taskQueue.take();
        try {
          task.execute();
        } catch (Exception e) {
          if (task.isShutdown() == false) {
            this.taskQueue.put(task);
          }
        }
      }
    }
  )");
  const MethodDecl* run = unit->classes()[0]->methods[0];
  ASSERT_EQ(run->body->statements.size(), 2u);
  EXPECT_EQ(run->body->statements[1]->kind, AstKind::kTry);
}

}  // namespace
}  // namespace mj
