// Printer tests, including the parse→print→parse round-trip property.

#include "src/lang/printer.h"

#include <gtest/gtest.h>

#include <string>

#include "src/lang/ast.h"
#include "src/lang/diagnostics.h"
#include "src/lang/parser.h"

namespace mj {
namespace {

std::unique_ptr<CompilationUnit> ParseOk(const std::string& text) {
  DiagnosticEngine diag;
  auto unit = ParseSource("test.mj", text, diag);
  EXPECT_FALSE(diag.has_errors()) << diag.FormatAll(nullptr);
  return unit;
}

TEST(PrinterTest, PrintsSimpleClass) {
  auto unit = ParseOk("class C { int x = 1; void f() { return; } }");
  std::string printed = PrintUnit(*unit);
  EXPECT_NE(printed.find("class C {"), std::string::npos);
  EXPECT_NE(printed.find("int x = 1;"), std::string::npos);
  EXPECT_NE(printed.find("void f()"), std::string::npos);
}

TEST(PrinterTest, PrintsThrowsClause) {
  auto unit = ParseOk("class C { void f() throws IOException, TimeoutException; }");
  std::string printed = PrintUnit(*unit);
  EXPECT_NE(printed.find("throws IOException, TimeoutException;"), std::string::npos);
}

TEST(PrinterTest, EscapesStrings) {
  auto unit = ParseOk(R"(class C { void f() { Log.info("a\nb\"c"); } })");
  std::string printed = PrintUnit(*unit);
  EXPECT_NE(printed.find(R"("a\nb\"c")"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Round-trip property: print(parse(s)) parses to an identical printed form.
// Parameterized over a corpus of representative snippets (P: property tests).
// ---------------------------------------------------------------------------

class PrinterRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(PrinterRoundTripTest, PrintParsePrintIsStable) {
  auto unit1 = ParseOk(GetParam());
  std::string printed1 = PrintUnit(*unit1);
  DiagnosticEngine diag;
  auto unit2 = ParseSource("roundtrip.mj", printed1, diag);
  ASSERT_FALSE(diag.has_errors()) << "printed form failed to re-parse:\n"
                                  << printed1 << "\n"
                                  << diag.FormatAll(nullptr);
  std::string printed2 = PrintUnit(*unit2);
  EXPECT_EQ(printed1, printed2) << "printing is not a fixed point for:\n" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Snippets, PrinterRoundTripTest,
    ::testing::Values(
        "class A { }",
        "class A extends B { int x = 0; }",
        "class C { void f() { var x = 1; x = x + 1; } }",
        "class C { void f() { if (true) { this.g(); } else { this.h(); } } }",
        "class C { void f() { if (this.a == 1) { return; } else if (this.a == 2) { return; } } }",
        "class C { void f() { while (this.more()) { this.step(); } } }",
        "class C { void f() { for (var i = 0; i < 10; i++) { this.g(i); } } }",
        "class C { void f() { for (;;) { break; } } }",
        R"(class C {
          void f() {
            try { this.g(); } catch (IOException e) { Log.warn("x"); } finally { this.h(); }
          }
        })",
        R"(class C {
          void f(s) {
            switch (s) {
              case 1:
                this.g();
                break;
              case 2:
              default:
                return;
            }
          }
        })",
        "class C { void f() { throw new SocketException(\"reset\"); } }",
        "class C { bool f(e) { return e instanceof IOException && !(this.done); } }",
        "class C { void f() { var q = new Queue(); q.put(this.make(1, 2)); } }",
        "class C { int f() { return 1 + 2 * 3 - 4 / 2 % 3; } }",
        "class C { void f() { this.n += 2; this.n -= 1; } }",
        R"(class WebHdfs {
          int maxAttempts = 3;
          HttpResponse run() throws IOException {
            for (var retry = 0; retry < this.maxAttempts; retry++) {
              try {
                var conn = this.connect("url");
                return this.getResponse(conn);
              } catch (ConnectException ce) {
                Thread.sleep(1000);
              }
            }
            return null;
          }
          Conn connect(String url) throws ConnectException;
          HttpResponse getResponse(Conn conn) throws IOException;
        })"));

}  // namespace
}  // namespace mj
