// Robustness property tests: the front end must survive arbitrarily corrupted
// input — report diagnostics, never crash, never hang. Corruptions are derived
// deterministically from corpus sources.

#include <gtest/gtest.h>

#include <string>

#include "src/corpus/corpus.h"
#include "src/lang/diagnostics.h"
#include "src/lang/parser.h"

namespace wasabi {
namespace {

// Deterministic corruption: deletes, duplicates, or swaps characters at
// hash-derived positions.
std::string Corrupt(const std::string& source, uint64_t seed, int edits) {
  std::string text = source;
  uint64_t state = seed * 1099511628211ULL + 7;
  for (int i = 0; i < edits && !text.empty(); ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    size_t pos = static_cast<size_t>((state >> 17) % text.size());
    switch ((state >> 7) % 4) {
      case 0:
        text.erase(pos, 1);
        break;
      case 1:
        text.insert(pos, 1, "{}();\"@#"[(state >> 23) % 8]);
        break;
      case 2:
        text[pos] = static_cast<char>('!' + ((state >> 31) % 90));
        break;
      default:
        if (pos + 1 < text.size()) {
          std::swap(text[pos], text[pos + 1]);
        }
        break;
    }
  }
  return text;
}

TEST(RobustnessTest, ParserSurvivesCorruptedCorpusSources) {
  CorpusApp app = BuildCorpusApp("mapred");
  int parsed = 0;
  for (const auto& unit : app.program.units()) {
    std::string original(unit->file().text());
    for (uint64_t seed = 1; seed <= 4; ++seed) {
      std::string corrupted = Corrupt(original, seed, 12);
      mj::DiagnosticEngine diag;
      auto result = mj::ParseSource(unit->file().name(), corrupted, diag);
      ASSERT_NE(result, nullptr);
      // The unit is structurally sound even if error-ridden: all node ids are
      // dense and classes are non-null.
      for (mj::NodeId id = 0; id < result->node_count(); ++id) {
        ASSERT_EQ(result->node(id)->id, id);
      }
      ++parsed;
    }
  }
  EXPECT_GT(parsed, 80);
}

TEST(RobustnessTest, ParserSurvivesPathologicalInputs) {
  const char* kInputs[] = {
      "",
      "}}}}}}}}",
      "((((((((",
      "class",
      "class {",
      "class A extends extends B { }",
      "class A { void f( { } }",
      "class A { void f() { if } }",
      "class A { void f() { for (;;;;) { } } }",
      "class A { void f() { switch { } } }",
      "class A { void f() { try { } } }",
      "\"unterminated",
      "/* unterminated",
      "class A { int x = ; }",
      "class A { void f() { x = = 1; } }",
      "class A { void f() { throw; } }",
      "class \xff\xfe { }",
  };
  for (const char* input : kInputs) {
    mj::DiagnosticEngine diag;
    auto unit = mj::ParseSource("bad.mj", input, diag);
    ASSERT_NE(unit, nullptr) << input;
  }
}

TEST(RobustnessTest, DeeplyNestedInputParsesWithoutStackIssues) {
  // 200 levels of nested blocks.
  std::string body;
  for (int i = 0; i < 200; ++i) {
    body += "{ ";
  }
  body += "var x = 1;";
  for (int i = 0; i < 200; ++i) {
    body += " }";
  }
  std::string source = "class Deep { void f() { " + body + " } }";
  mj::DiagnosticEngine diag;
  auto unit = mj::ParseSource("deep.mj", source, diag);
  EXPECT_FALSE(diag.has_errors());
  ASSERT_EQ(unit->classes().size(), 1u);
}

TEST(RobustnessTest, LongExpressionChainsParse) {
  std::string expr = "1";
  for (int i = 0; i < 500; ++i) {
    expr += " + 1";
  }
  std::string source = "class C { int f() { return " + expr + "; } }";
  mj::DiagnosticEngine diag;
  auto unit = mj::ParseSource("long.mj", source, diag);
  EXPECT_FALSE(diag.has_errors());
}

// The recursion-depth guard: nesting far past the limit must produce a
// diagnostic, not a host stack overflow. 50k levels would need tens of
// megabytes of stack without the guard.

TEST(RobustnessTest, PathologicallyNestedParensDiagnoseInsteadOfOverflowing) {
  std::string expr(50000, '(');
  expr += "1";
  expr += std::string(50000, ')');
  std::string source = "class C { int f() { return " + expr + "; } }";
  mj::DiagnosticEngine diag;
  auto unit = mj::ParseSource("parens.mj", source, diag);
  ASSERT_NE(unit, nullptr);
  EXPECT_TRUE(diag.has_errors());
}

TEST(RobustnessTest, PathologicallyNestedUnaryDiagnosesInsteadOfOverflowing) {
  std::string expr(50000, '!');
  expr += "true";
  std::string source = "class C { bool f() { return " + expr + "; } }";
  mj::DiagnosticEngine diag;
  auto unit = mj::ParseSource("unary.mj", source, diag);
  ASSERT_NE(unit, nullptr);
  EXPECT_TRUE(diag.has_errors());
}

TEST(RobustnessTest, PathologicallyNestedBlocksDiagnoseInsteadOfOverflowing) {
  std::string body;
  for (int i = 0; i < 50000; ++i) {
    body += "{";
  }
  body += "var x = 1;";
  for (int i = 0; i < 50000; ++i) {
    body += "}";
  }
  std::string source = "class Deep { void f() { " + body + " } }";
  mj::DiagnosticEngine diag;
  auto unit = mj::ParseSource("deep.mj", source, diag);
  ASSERT_NE(unit, nullptr);
  EXPECT_TRUE(diag.has_errors());
}

TEST(RobustnessTest, DepthGuardReportsExactlyOneDiagnosticKind) {
  // A deep-but-valid-shape input past the limit: the guard fires once, not
  // once per level.
  std::string expr(2000, '!');
  expr += "true";
  std::string source = "class C { bool f() { return " + expr + "; } }";
  mj::DiagnosticEngine diag;
  mj::ParseSource("unary.mj", source, diag);
  size_t depth_messages = 0;
  for (const mj::Diagnostic& diagnostic : diag.diagnostics()) {
    if (diagnostic.message.find("nesting is too deep") != std::string::npos) {
      ++depth_messages;
    }
  }
  EXPECT_EQ(depth_messages, 1u);
}

}  // namespace
}  // namespace wasabi
