// Unit tests for the mj program index (sema).

#include "src/lang/sema.h"

#include <gtest/gtest.h>

#include <string>

#include "src/lang/diagnostics.h"
#include "src/lang/parser.h"

namespace mj {
namespace {

Program MakeProgram(std::initializer_list<std::string> sources) {
  Program program;
  DiagnosticEngine diag;
  int i = 0;
  for (const std::string& text : sources) {
    program.AddUnit(ParseSource("unit" + std::to_string(i++) + ".mj", text, diag));
  }
  EXPECT_FALSE(diag.has_errors()) << diag.FormatAll(nullptr);
  return program;
}

TEST(SemaTest, FindClassAndUnit) {
  Program program = MakeProgram({"class A { }", "class B extends A { }"});
  ProgramIndex index(program);
  const ClassDecl* a = index.FindClass("A");
  const ClassDecl* b = index.FindClass("B");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(index.FindClass("Missing"), nullptr);
  EXPECT_EQ(index.UnitOf(*a), program.units()[0].get());
  EXPECT_EQ(index.UnitOf(*b), program.units()[1].get());
}

TEST(SemaTest, ResolveMethodWalksBaseChain) {
  Program program = MakeProgram({
      "class Base { void shared() { } }",
      "class Mid extends Base { void midOnly() { } }",
      "class Leaf extends Mid { void leafOnly() { } }",
  });
  ProgramIndex index(program);
  const ClassDecl* leaf = index.FindClass("Leaf");
  ASSERT_NE(leaf, nullptr);
  EXPECT_NE(index.ResolveMethod(*leaf, "leafOnly"), nullptr);
  EXPECT_NE(index.ResolveMethod(*leaf, "midOnly"), nullptr);
  EXPECT_NE(index.ResolveMethod(*leaf, "shared"), nullptr);
  EXPECT_EQ(index.ResolveMethod(*leaf, "absent"), nullptr);
}

TEST(SemaTest, OverrideResolvesToMostDerived) {
  Program program = MakeProgram({
      "class Base { int f() { return 1; } }",
      "class Leaf extends Base { int f() { return 2; } }",
  });
  ProgramIndex index(program);
  const MethodDecl* resolved = index.ResolveMethod(*index.FindClass("Leaf"), "f");
  ASSERT_NE(resolved, nullptr);
  EXPECT_EQ(resolved->owner->name, "Leaf");
}

TEST(SemaTest, BaseCycleDoesNotHang) {
  Program program = MakeProgram({"class A extends B { }", "class B extends A { }"});
  ProgramIndex index(program);
  EXPECT_EQ(index.ResolveMethod(*index.FindClass("A"), "nothing"), nullptr);
  EXPECT_FALSE(index.IsSubtype("A", "Exception"));
}

TEST(SemaTest, DuplicateClassReported) {
  Program program;
  DiagnosticEngine parse_diag;
  program.AddUnit(ParseSource("a.mj", "class A { }", parse_diag));
  program.AddUnit(ParseSource("b.mj", "class A { }", parse_diag));
  DiagnosticEngine index_diag;
  ProgramIndex index(program, &index_diag);
  EXPECT_TRUE(index_diag.has_errors());
}

TEST(SemaTest, MethodsNamedAcrossClasses) {
  Program program = MakeProgram({
      "class A { void execute() { } }",
      "class B { void execute() { } void other() { } }",
  });
  ProgramIndex index(program);
  EXPECT_EQ(index.MethodsNamed("execute").size(), 2u);
  EXPECT_EQ(index.MethodsNamed("other").size(), 1u);
  EXPECT_TRUE(index.MethodsNamed("absent").empty());
}

TEST(SemaTest, FindQualified) {
  Program program = MakeProgram({"class A { void f() { } }"});
  ProgramIndex index(program);
  EXPECT_NE(index.FindQualified("A.f"), nullptr);
  EXPECT_EQ(index.FindQualified("A.g"), nullptr);
  EXPECT_EQ(index.FindQualified("B.f"), nullptr);
}

// --- Exception hierarchy -------------------------------------------------

TEST(SemaTest, BuiltinExceptionHierarchy) {
  Program program = MakeProgram({"class A { }"});
  ProgramIndex index(program);
  EXPECT_TRUE(index.IsExceptionType("IOException"));
  EXPECT_TRUE(index.IsExceptionType("ConnectException"));
  EXPECT_FALSE(index.IsExceptionType("A"));
  EXPECT_FALSE(index.IsExceptionType("NotAThing"));

  EXPECT_TRUE(index.IsSubtype("ConnectException", "IOException"));
  EXPECT_TRUE(index.IsSubtype("ConnectException", "Exception"));
  EXPECT_TRUE(index.IsSubtype("IOException", "IOException"));
  EXPECT_FALSE(index.IsSubtype("IOException", "ConnectException"));
  EXPECT_FALSE(index.IsSubtype("TimeoutException", "IOException"));
  // The paper's HADOOP-16580: AccessControlException is under IOException.
  EXPECT_TRUE(index.IsSubtype("AccessControlException", "IOException"));
}

TEST(SemaTest, UserExceptionExtendsBuiltin) {
  Program program = MakeProgram({
      "class RegionServerStoppedException extends IOException { }",
      "class DeepException extends RegionServerStoppedException { }",
  });
  ProgramIndex index(program);
  EXPECT_TRUE(index.IsExceptionType("RegionServerStoppedException"));
  EXPECT_TRUE(index.IsExceptionType("DeepException"));
  EXPECT_TRUE(index.IsSubtype("DeepException", "IOException"));
  EXPECT_TRUE(index.IsSubtype("DeepException", "Exception"));
  EXPECT_FALSE(index.IsSubtype("IOException", "DeepException"));
}

TEST(SemaTest, DeclaredThrows) {
  Program program = MakeProgram({
      "class C { void f() throws IOException, TimeoutException; void g() { } }",
  });
  ProgramIndex index(program);
  const MethodDecl* f = index.FindQualified("C.f");
  const MethodDecl* g = index.FindQualified("C.g");
  EXPECT_EQ(index.DeclaredThrows(*f).size(), 2u);
  EXPECT_TRUE(index.DeclaredThrows(*g).empty());
}

TEST(SemaTest, PotentialThrowsIncludesBodyThrows) {
  Program program = MakeProgram({R"(
    class C {
      void f() throws IOException {
        if (this.bad()) {
          throw new IllegalStateException("bad");
        }
        throw new IOException("dup declared");
      }
      bool bad() { return false; }
    }
  )"});
  ProgramIndex index(program);
  const MethodDecl* f = index.FindQualified("C.f");
  std::vector<std::string> throws = index.PotentialThrows(*f);
  // IOException (declared, deduped with body) + IllegalStateException.
  ASSERT_EQ(throws.size(), 2u);
  EXPECT_EQ(throws[0], "IOException");
  EXPECT_EQ(throws[1], "IllegalStateException");
}

TEST(SemaTest, BuiltinExceptionTableIsWellFormed) {
  // Property: every non-root parent must itself be a builtin exception, and
  // every chain terminates at the root "Exception".
  Program program = MakeProgram({"class A { }"});
  ProgramIndex index(program);
  for (const BuiltinException& exc : BuiltinExceptions()) {
    if (exc.name == "Exception") {
      EXPECT_TRUE(exc.parent.empty());
      continue;
    }
    EXPECT_TRUE(IsBuiltinException(exc.parent)) << std::string(exc.name);
    EXPECT_TRUE(index.IsSubtype(exc.name, "Exception")) << std::string(exc.name);
  }
}

}  // namespace
}  // namespace mj
