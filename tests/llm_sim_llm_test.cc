// Unit tests for SimLLM, the deterministic GPT-4 stand-in.

#include "src/llm/sim_llm.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/lang/diagnostics.h"
#include "src/lang/parser.h"

namespace wasabi {
namespace {

std::unique_ptr<mj::CompilationUnit> ParseOk(const std::string& text,
                                             const std::string& name = "test.mj") {
  mj::DiagnosticEngine diag;
  auto unit = mj::ParseSource(name, text, diag);
  EXPECT_FALSE(diag.has_errors()) << diag.FormatAll(nullptr);
  return unit;
}

SimLlmConfig NoNoise() {
  SimLlmConfig config;
  config.comprehension_noise_percent = 0;
  return config;
}

// --- Q1: retry identification ---------------------------------------------

TEST(SimLlmTest, DetectsLoopRetry) {
  auto unit = ParseOk(R"(
    class Client {
      // Retries the fetch on transient connection errors.
      void fetchWithRetry() {
        for (var retry = 0; retry < 3; retry++) {
          try {
            this.fetch();
            return;
          } catch (ConnectException e) {
            Thread.sleep(100);
          }
        }
      }
      void fetch() throws ConnectException;
    }
  )");
  SimLlm llm(NoNoise());
  LlmFileFindings findings = llm.AnalyzeFile(*unit);
  EXPECT_TRUE(findings.performs_retry);
  ASSERT_EQ(findings.coordinators.size(), 1u);
  EXPECT_EQ(findings.coordinators[0].qualified_name, "Client.fetchWithRetry");
  EXPECT_EQ(findings.coordinators[0].mechanism, RetryMechanism::kLoop);
}

TEST(SimLlmTest, DetectsQueueRetry) {
  // Listing-3 analog: catch re-enqueues the task. No loop at all — the case
  // control-flow analysis cannot see.
  auto unit = ParseOk(R"(
    class TaskProcessor {
      Queue taskQueue = new Queue();
      void runOne() {
        var task = this.taskQueue.take();
        try {
          task.execute();
        } catch (Exception e) {
          // Resubmit the failed task so it is retried later.
          this.taskQueue.put(task);
        }
      }
    }
  )");
  SimLlm llm(NoNoise());
  LlmFileFindings findings = llm.AnalyzeFile(*unit);
  ASSERT_EQ(findings.coordinators.size(), 1u);
  EXPECT_EQ(findings.coordinators[0].mechanism, RetryMechanism::kQueue);
}

TEST(SimLlmTest, DetectsStateMachineRetry) {
  // Listing-4 analog: switch-based procedure; the catch leaves the state
  // unchanged so the executor re-runs the same step.
  auto unit = ParseOk(R"(
    class UnassignProcedure {
      int state = 1;
      void execute(currentState) {
        switch (currentState) {
          case 1:
            try {
              this.markRegionAsClosing();
              this.state = 2;
            } catch (IOException e) {
              // State deliberately unchanged: the executor will retry this step.
              return;
            }
            break;
          default:
            return;
        }
      }
      void markRegionAsClosing() throws IOException;
    }
  )");
  SimLlm llm(NoNoise());
  LlmFileFindings findings = llm.AnalyzeFile(*unit);
  ASSERT_EQ(findings.coordinators.size(), 1u);
  EXPECT_EQ(findings.coordinators[0].mechanism, RetryMechanism::kStateMachine);
}

TEST(SimLlmTest, PlainIterationLoopIsAProbabilisticFalsePositive) {
  // The loop-with-catch shape without ANY retry wording is the ambiguous
  // class: GPT-4 usually rejects it but sometimes labels it retry (§4.2/§4.3).
  // The model gates it on a deterministic hash with configurable rate.
  constexpr const char* kSource = R"(
    class Batch {
      void processAll(items) {
        for (var i = 0; i < items.size(); i++) {
          try {
            this.processOne(items.get(i));
          } catch (IOException e) {
            Log.warn("item failed");
          }
        }
      }
      void processOne(item) throws IOException;
    }
  )";
  auto unit = ParseOk(kSource);

  SimLlmConfig never = NoNoise();
  never.q1_iteration_fp_percent = 0;
  SimLlm strict(never);
  EXPECT_FALSE(strict.AnalyzeFile(*unit).performs_retry);

  SimLlmConfig always = NoNoise();
  always.q1_iteration_fp_percent = 100;
  SimLlm gullible(always);
  EXPECT_TRUE(gullible.AnalyzeFile(*unit).performs_retry);

  // Determinism: the default-rate answer is stable across instances.
  SimLlm a(NoNoise());
  SimLlm b(NoNoise());
  EXPECT_EQ(a.AnalyzeFile(*unit).performs_retry, b.AnalyzeFile(*unit).performs_retry);
}

TEST(SimLlmTest, SaysNoForPolicyDefinitionOnlyFiles) {
  // Q1 prompt: say NO when the file only defines/creates retry policies.
  auto unit = ParseOk(R"(
    class RetryPolicyBuilder {
      int maxRetries = 3;
      int getMaxRetries() {
        return this.maxRetries;
      }
      void setMaxRetries(n) {
        this.maxRetries = n;
      }
    }
  )");
  SimLlm llm(NoNoise());
  LlmFileFindings findings = llm.AnalyzeFile(*unit);
  EXPECT_FALSE(findings.performs_retry);
}

TEST(SimLlmTest, KeywordDensePolicyFileBecomesFalsePositive) {
  // The paper's FP mode 1: enough retry wording fools the model even without
  // a retry shape.
  auto unit = ParseOk(R"(
    class RetryUtils {
      // Builds the retry schedule for retrying retriable requests.
      // Retry count and retry backoff come from the retry configuration.
      RetrySchedule buildRetrySchedule(retryConfig) {
        var retrySchedule = this.newRetrySchedule(retryConfig);
        retrySchedule.setRetryBackoff(retryConfig.retryBackoffMs);
        retrySchedule.setMaxRetries(retryConfig.maxRetries);
        return retrySchedule;
      }
      RetrySchedule newRetrySchedule(c) { return null; }
    }
  )");
  SimLlm llm(NoNoise());
  LlmFileFindings findings = llm.AnalyzeFile(*unit);
  EXPECT_TRUE(findings.performs_retry);  // Documented false positive mode.
}

TEST(SimLlmTest, DetectsErrorCodeRetryWithoutExceptions) {
  // Error-code driven retry has no try/catch at all: only fuzzy comprehension
  // (loop + explicit retry naming) can identify it. The control-flow query
  // never sees it — the source of Hive/ElasticSearch's identified-but-
  // untestable gap in Table 5.
  auto unit = ParseOk(R"(
    class Replicator {
      int maxRetries = 5;
      int replicateWithRetries(payload) {
        var code = this.replicate(payload);
        var retries = 0;
        while (code != 0 && retries < this.maxRetries) {
          retries += 1;
          Log.warn("replicate returned error code " + code + "; retry " + retries);
          code = this.replicate(payload);
        }
        return code;
      }
      int replicate(payload) { return 0; }
    }
  )");
  SimLlm llm(NoNoise());
  LlmFileFindings findings = llm.AnalyzeFile(*unit);
  ASSERT_TRUE(findings.performs_retry);
  EXPECT_EQ(findings.coordinators[0].qualified_name, "Replicator.replicateWithRetries");

  // The WHEN prompts work on it too: cap present, delay absent.
  LlmWhenJudgment judgment = llm.JudgeWhen(*unit, findings.coordinators[0]);
  EXPECT_TRUE(judgment.has_cap);
  EXPECT_FALSE(judgment.sleeps_before_retry);
}

TEST(SimLlmTest, LoopWithoutWordingOrCatchIsNotRetry) {
  // A plain computation loop: no catch, no retry wording — never identified.
  auto unit = ParseOk(R"(
    class Summer {
      int total(items) {
        var sum = 0;
        for (var i = 0; i < items.size(); i++) {
          sum += items.get(i);
        }
        return sum;
      }
    }
  )");
  SimLlmConfig config = NoNoise();
  config.q1_iteration_fp_percent = 100;  // Even the FP lottery needs a catch.
  SimLlm llm(config);
  EXPECT_FALSE(llm.AnalyzeFile(*unit).performs_retry);
}

TEST(SimLlmTest, Q4ExcludesSpinLockCode) {
  auto unit = ParseOk(R"(
    class SpinLock {
      void acquire() {
        while (true) {
          try {
            if (this.flag.compareAndSet(0, 1)) {
              return;
            }
          } catch (IllegalStateException e) {
            Log.warn("contention");
          }
        }
      }
    }
  )");
  SimLlm llm(NoNoise());
  EXPECT_FALSE(llm.AnalyzeFile(*unit).performs_retry);
}

TEST(SimLlmTest, Q4ExclusionCanBeOverriddenByStrongWording) {
  auto unit = ParseOk(R"(
    class Poller {
      // Retry the poll; retries are capped by the retry configuration.
      void pollWithRetry() {
        for (var retry = 0; retry < this.maxRetries; retry++) {
          try {
            this.poll();
            return;
          } catch (TimeoutException e) {
            Log.warn("will retry polling");
          }
        }
      }
      void poll() throws TimeoutException;
      int maxRetries = 5;
    }
  )");
  SimLlm llm(NoNoise());
  // Retry wording is overwhelming: Q4 fails to exclude (paper §4.3).
  EXPECT_TRUE(llm.AnalyzeFile(*unit).performs_retry);
}

TEST(SimLlmTest, LargeFileMissesLateRetry) {
  // Build a file whose retry method sits beyond the attention window.
  std::string padding;
  for (int i = 0; i < 200; ++i) {
    padding += "  void filler" + std::to_string(i) + "() { var x = " + std::to_string(i) +
               "; this.use(x); }\n";
  }
  std::string source = "class Big {\n" + padding + R"(
      void sendWithRetry() {
        for (var retry = 0; retry < 3; retry++) {
          try {
            this.send();
            return;
          } catch (IOException e) {
            Thread.sleep(50);
          }
        }
      }
      void send() throws IOException;
      void use(x) { }
    }
  )";
  auto unit = ParseOk(source, "big.mj");
  SimLlmConfig config = NoNoise();
  config.attention_window_tokens = 500;  // ~2 KB window, file is much larger.
  SimLlm llm(config);
  LlmFileFindings findings = llm.AnalyzeFile(*unit);
  EXPECT_FALSE(findings.performs_retry);
  EXPECT_TRUE(findings.truncated_by_attention);

  // With an unlimited window the same file is detected.
  SimLlmConfig unlimited = NoNoise();
  unlimited.attention_window_tokens = 0;
  SimLlm llm2(unlimited);
  EXPECT_TRUE(llm2.AnalyzeFile(*unit).performs_retry);
}

// --- Q2/Q3 judgments --------------------------------------------------------

struct JudgeResult {
  LlmFileFindings findings;
  LlmWhenJudgment judgment;
};

JudgeResult Judge(const std::string& source, SimLlmConfig config = NoNoise()) {
  static std::unique_ptr<mj::CompilationUnit> unit;  // Keep alive for pointers.
  unit = ParseOk(source);
  SimLlm llm(config);
  JudgeResult result;
  result.findings = llm.AnalyzeFile(*unit);
  EXPECT_TRUE(result.findings.performs_retry) << "expected retry to be identified";
  if (!result.findings.coordinators.empty()) {
    result.judgment = llm.JudgeWhen(*unit, result.findings.coordinators[0]);
  }
  return result;
}

TEST(SimLlmTest, Q2SeesDirectSleep) {
  JudgeResult result = Judge(R"(
    class C {
      void sendWithRetry() {
        for (var retry = 0; retry < 3; retry++) {
          try {
            this.send();
            return;
          } catch (IOException e) {
            Thread.sleep(100);
          }
        }
      }
      void send() throws IOException;
    }
  )");
  EXPECT_TRUE(result.judgment.sleeps_before_retry);
  EXPECT_TRUE(result.judgment.has_cap);
}

TEST(SimLlmTest, Q2SeesSameFileHelperSleep) {
  JudgeResult result = Judge(R"(
    class C {
      void sendWithRetry() {
        for (var retry = 0; retry < 3; retry++) {
          try {
            this.send();
            return;
          } catch (IOException e) {
            this.waitQuietly();
          }
        }
      }
      void waitQuietly() {
        Thread.sleep(250);
      }
      void send() throws IOException;
    }
  )");
  EXPECT_TRUE(result.judgment.sleeps_before_retry);
}

TEST(SimLlmTest, Q2MissesCrossFileHelperSleep) {
  // The helper lives in another file: the model cannot see it sleeps, and its
  // name gives nothing away — missing-delay FP mode (§4.3).
  JudgeResult result = Judge(R"(
    class C {
      BackpressureGate gate = new BackpressureGate();
      void sendWithRetry() {
        for (var retry = 0; retry < 3; retry++) {
          try {
            this.send();
            return;
          } catch (IOException e) {
            this.gate.awaitQuietPeriod();
          }
        }
      }
      void send() throws IOException;
    }
  )");
  EXPECT_FALSE(result.judgment.sleeps_before_retry);
}

TEST(SimLlmTest, Q2TrustsSleepyNamesForUnknownHelpers) {
  JudgeResult result = Judge(R"(
    class C {
      Backoff backoff = new Backoff();
      void sendWithRetry() {
        for (var retry = 0; retry < 3; retry++) {
          try {
            this.send();
            return;
          } catch (IOException e) {
            this.backoff.sleepBackoff();
          }
        }
      }
      void send() throws IOException;
    }
  )");
  EXPECT_TRUE(result.judgment.sleeps_before_retry);
}

TEST(SimLlmTest, Q3DetectsMissingCapInWhileTrue) {
  JudgeResult result = Judge(R"(
    class C {
      void sendWithRetry() {
        while (true) {
          try {
            this.send();
            return;
          } catch (IOException e) {
            Thread.sleep(100);
          }
        }
      }
      void send() throws IOException;
    }
  )");
  EXPECT_FALSE(result.judgment.has_cap);
  EXPECT_TRUE(result.judgment.sleeps_before_retry);
}

TEST(SimLlmTest, Q3SeesGuardInsideInfiniteLoop) {
  JudgeResult result = Judge(R"(
    class C {
      void sendWithRetry() {
        var attempts = 0;
        while (true) {
          try {
            this.send();
            return;
          } catch (IOException e) {
            attempts++;
            if (attempts > this.maxAttempts) {
              throw new RuntimeException("giving up retrying");
            }
          }
        }
      }
      int maxAttempts = 10;
      void send() throws IOException;
    }
  )");
  EXPECT_TRUE(result.judgment.has_cap);
}

TEST(SimLlmTest, NoiseFlipsAreDeterministic) {
  std::string source = R"(
    class C {
      void sendWithRetry() {
        for (var retry = 0; retry < 3; retry++) {
          try {
            this.send();
            return;
          } catch (IOException e) {
            Thread.sleep(100);
          }
        }
      }
      void send() throws IOException;
    }
  )";
  SimLlmConfig noisy;
  noisy.comprehension_noise_percent = 100;  // Every judgment flips.
  JudgeResult flipped = Judge(source, noisy);
  EXPECT_FALSE(flipped.judgment.sleeps_before_retry);
  EXPECT_TRUE(flipped.judgment.q2_noise_flipped);
  EXPECT_FALSE(flipped.judgment.has_cap);

  // Same config twice: identical results.
  JudgeResult again = Judge(source, noisy);
  EXPECT_EQ(again.judgment.sleeps_before_retry, flipped.judgment.sleeps_before_retry);
  EXPECT_EQ(again.judgment.has_cap, flipped.judgment.has_cap);
}

TEST(SimLlmTest, UsageAccountingCountsCallsAndTokens) {
  auto unit = ParseOk(R"(
    class C {
      void sendWithRetry() {
        for (var retry = 0; retry < 3; retry++) {
          try {
            this.send();
            return;
          } catch (IOException e) {
            Thread.sleep(100);
          }
        }
      }
      void send() throws IOException;
    }
  )");
  SimLlm llm(NoNoise());
  LlmFileFindings findings = llm.AnalyzeFile(*unit);
  // Q1 + follow-up.
  EXPECT_EQ(llm.usage().calls, 2);
  ASSERT_FALSE(findings.coordinators.empty());
  llm.JudgeWhen(*unit, findings.coordinators[0]);
  // + Q2, Q3, Q4.
  EXPECT_EQ(llm.usage().calls, 5);
  EXPECT_GT(llm.usage().prompt_tokens, 0);
  EXPECT_GT(llm.usage().bytes_sent, 5 * static_cast<int64_t>(unit->file().text().size()) - 1);
  llm.ResetUsage();
  EXPECT_EQ(llm.usage().calls, 0);
}

TEST(SimLlmTest, NonRetryFileMakesOneCall) {
  auto unit = ParseOk("class C { void f() { var x = 1; } }");
  SimLlm llm(NoNoise());
  llm.AnalyzeFile(*unit);
  EXPECT_EQ(llm.usage().calls, 1);  // Q1 only; no follow-up.
}

}  // namespace
}  // namespace wasabi
