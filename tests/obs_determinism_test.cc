// Instrumentation must be a pure observer: attaching a Tracer, a
// MetricsRegistry, and a ProgressMeter to the dynamic workflow may not change
// a byte of its report output, at any worker count. In the other direction
// the observations themselves must be trustworthy — the trace's run spans and
// the registry's campaign counters have to agree with the planner's numbers.

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/report_json.h"
#include "src/core/wasabi.h"
#include "src/corpus/corpus.h"
#include "src/obs/metrics.h"
#include "src/obs/progress.h"
#include "src/obs/trace.h"

namespace wasabi {
namespace {

TEST(ObsDeterminismTest, InstrumentedCampaignOutputIsByteIdentical) {
  CorpusApp app = BuildCorpusApp("mapred");
  WasabiOptions options;
  options.app_name = app.name;
  options.default_configs = app.default_configs;
  options.jobs = 4;
  Wasabi tool(app.program, *app.index, options);

  DynamicResult plain = tool.RunDynamicWorkflow();
  std::string plain_json = BugReportsToJson(plain.bugs);
  ASSERT_GT(plain.planned_runs, 0u);

  Tracer tracer;
  MetricsRegistry metrics;
  std::ostringstream progress_sink;
  ProgressMeter progress(&progress_sink);
  tool.set_observability(&tracer, &metrics, &progress);
  DynamicResult instrumented = tool.RunDynamicWorkflow();
  tool.set_observability(nullptr, nullptr, nullptr);

  EXPECT_EQ(BugReportsToJson(instrumented.bugs), plain_json);
  EXPECT_EQ(instrumented.planned_runs, plain.planned_runs);

  // One "run" span per planned campaign run, each a complete ('X') event.
  size_t run_spans = 0;
  for (const TraceEvent& event : tracer.Collect()) {
    if (event.name == "run" && event.phase == 'X') {
      ++run_spans;
    }
  }
  EXPECT_EQ(run_spans, plain.planned_runs);

  // The registry's view of the same campaign.
  EXPECT_EQ(metrics.CounterValue("campaign.runs_total"),
            static_cast<int64_t>(plain.planned_runs));
  EXPECT_GT(metrics.CounterValue("injector.injections_total"), 0);
  // The pool executes at least one task per campaign run (plus the coverage
  // pass's per-test tasks).
  EXPECT_GE(metrics.CounterValue("pool.tasks_total"),
            static_cast<int64_t>(plain.planned_runs));
  EXPECT_EQ(metrics.HistogramFor("runner.steps").count, plain.planned_runs);
  // The progress meter saw the campaign finish.
  EXPECT_FALSE(progress_sink.str().empty());
}

TEST(ObsDeterminismTest, MetricsAreIdenticalAcrossWorkerCounts) {
  CorpusApp app = BuildCorpusApp("mapred");
  WasabiOptions options;
  options.app_name = app.name;
  options.default_configs = app.default_configs;
  Wasabi tool(app.program, *app.index, options);

  auto run_with_jobs = [&](int jobs) {
    tool.set_jobs(jobs);
    MetricsRegistry metrics;
    tool.set_observability(nullptr, &metrics, nullptr);
    tool.RunDynamicWorkflow();
    tool.set_observability(nullptr, nullptr, nullptr);
    // Everything except the pool.* and oracle timing section is workload
    // telemetry and must not depend on scheduling; compare those entries.
    std::ostringstream out;
    out << "runs=" << metrics.CounterValue("campaign.runs_total")
        << " injections=" << metrics.CounterValue("injector.injections_total")
        << " coverage_runs=" << metrics.CounterValue("coverage.runs_total")
        << " covered=" << metrics.GaugeValue("coverage.locations_covered")
        << " steps_sum=" << metrics.HistogramFor("runner.steps").sum
        << " loops_sum=" << metrics.HistogramFor("runner.loop_iterations").sum << " series=";
    for (double v : metrics.SeriesFor("coverage.cumulative_locations")) {
      out << v << ",";
    }
    return out.str();
  };

  std::string serial = run_with_jobs(1);
  EXPECT_EQ(run_with_jobs(2), serial);
  EXPECT_EQ(run_with_jobs(4), serial);
}

}  // namespace
}  // namespace wasabi
