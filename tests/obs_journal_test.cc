// Retry-journal contract tests (ctest label "obsjournal",
// docs/OBSERVABILITY.md "Retry journal"). The contracts: the collected
// journal is byte-identical at any worker count (with and without host
// chaos), journaling is output-neutral (bug reports byte-identical journal on
// vs off, including against a warm result cache, which journaling forces
// cold), the JSON export round-trips through the strict parser, and every
// campaign location surfaces in the derived retry analytics.

#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/cache/store.h"
#include "src/core/report_json.h"
#include "src/core/wasabi.h"
#include "src/corpus/corpus.h"
#include "src/obs/journal.h"
#include "src/obs/retry_stats.h"

namespace wasabi {
namespace {

namespace fs = std::filesystem;

WasabiOptions JournalOptionsFor(const CorpusApp& app) {
  WasabiOptions options;
  options.app_name = app.name;
  options.default_configs = app.default_configs;
  options.prober.repetitions = 2;
  // Degraded environment on every run, no host-level fault interference: the
  // chaos-cap seed fires deterministically (same setup as the prober tests).
  options.robust.chaos.enabled = true;
  options.robust.chaos.seed = 42;
  options.robust.chaos.rate = 0.0;
  options.robust.chaos.env_rate = 1.0;
  return options;
}

std::string JournalJsonAt(const CorpusApp& app, WasabiOptions options, int jobs,
                          DynamicResult* result_out = nullptr) {
  options.jobs = jobs;
  RetryJournal journal;
  Wasabi wasabi(app.program, *app.index, options);
  wasabi.set_observability(nullptr, nullptr, nullptr, &journal);
  DynamicResult result = wasabi.RunDynamicWorkflow();
  if (result_out != nullptr) {
    *result_out = std::move(result);
  }
  return journal.ToJson(app.name);
}

TEST(JournalDeterminismTest, ByteIdenticalAtEveryWorkerCount) {
  CorpusApp app = BuildCorpusApp("flakylab");
  const std::string baseline = JournalJsonAt(app, JournalOptionsFor(app), /*jobs=*/1);
  EXPECT_NE(baseline.find("\"wasabi-journal-v1\""), std::string::npos);
  EXPECT_NE(baseline.find("\"attempt_end\""), std::string::npos);
  EXPECT_NE(baseline.find("\"inject_fire\""), std::string::npos);
  EXPECT_NE(baseline.find("\"probe_rep\""), std::string::npos);
  for (int jobs : {2, 4, 8}) {
    EXPECT_EQ(JournalJsonAt(app, JournalOptionsFor(app), jobs), baseline)
        << "jobs=" << jobs;
  }
}

TEST(JournalDeterminismTest, ByteIdenticalUnderHostChaos) {
  // Nonzero host-fault rate exercises the retry/backoff/quarantine half of
  // the journal (host_failure, backoff_wait events) — still deterministic,
  // because chaos decisions are seeded per run id, not per worker.
  CorpusApp app = BuildCorpusApp("flakylab");
  WasabiOptions options = JournalOptionsFor(app);
  options.robust.chaos.rate = 0.2;
  const std::string one = JournalJsonAt(app, options, /*jobs=*/1);
  const std::string four = JournalJsonAt(app, options, /*jobs=*/4);
  EXPECT_EQ(one, four);
  EXPECT_NE(one.find("\"host_failure\""), std::string::npos);
  EXPECT_NE(one.find("\"backoff_wait\""), std::string::npos);
}

TEST(JournalNeutralityTest, JournalingDoesNotChangeResults) {
  CorpusApp app = BuildCorpusApp("flakylab");

  Wasabi plain(app.program, *app.index, JournalOptionsFor(app));
  DynamicResult without = plain.RunDynamicWorkflow();

  DynamicResult with;
  JournalJsonAt(app, JournalOptionsFor(app), /*jobs=*/2, &with);

  EXPECT_EQ(BugReportsToJson(with.bugs), BugReportsToJson(without.bugs));
  EXPECT_EQ(with.raw_reports.size(), without.raw_reports.size());
  EXPECT_EQ(with.probed_runs, without.probed_runs);
  EXPECT_EQ(with.planned_runs, without.planned_runs);
}

TEST(JournalNeutralityTest, WarmCacheIsForcedColdAndStaysNeutral) {
  // A warm campaign cache skips execution, which would leave the journal
  // empty; journaling therefore forces a cold campaign. The results must
  // still match the warm ones, and the journal must match an uncached run's.
  CorpusApp app = BuildCorpusApp("flakylab");
  WasabiOptions options = JournalOptionsFor(app);

  fs::path dir = fs::path(::testing::TempDir()) / "wasabi_journal_cache_test";
  fs::remove_all(dir);
  std::string error;
  std::unique_ptr<CacheStore> store = CacheStore::Open(dir.string(), &error);
  ASSERT_NE(store, nullptr) << error;

  Wasabi cold(app.program, *app.index, options);
  cold.set_cache(store.get());
  DynamicResult cold_result = cold.RunDynamicWorkflow();

  RetryJournal journal;
  Wasabi journaled(app.program, *app.index, options);
  journaled.set_cache(store.get());
  journaled.set_observability(nullptr, nullptr, nullptr, &journal);
  DynamicResult journaled_result = journaled.RunDynamicWorkflow();

  EXPECT_EQ(BugReportsToJson(journaled_result.bugs), BugReportsToJson(cold_result.bugs));

  // The cache stream legitimately differs (it records the lookups that only
  // happen when a cache is attached); every other stream must match an
  // uncached run byte for byte — the forced-cold campaign really executed.
  auto without_cache_stream = [&](const std::string& json) {
    std::vector<JournalEvent> events;
    std::string parsed_app;
    std::string parse_error;
    EXPECT_TRUE(RetryJournal::ParseJson(json, &events, &parsed_app, &parse_error))
        << parse_error;
    RetryJournal filtered;
    for (const JournalEvent& event : events) {
      if (event.stream != JournalStream::kCache) {
        filtered.Append(event);
      }
    }
    return filtered.ToJson(parsed_app);
  };
  const std::string with_cache = journal.ToJson(app.name);
  EXPECT_NE(with_cache.find("\"attempt_end\""), std::string::npos);
  EXPECT_NE(with_cache.find("\"cache_hit\""), std::string::npos);
  EXPECT_EQ(without_cache_stream(with_cache),
            without_cache_stream(JournalJsonAt(app, options, /*jobs=*/1)));

  fs::remove_all(dir);
}

TEST(JournalJsonTest, ExportRoundTripsThroughStrictParser) {
  CorpusApp app = BuildCorpusApp("flakylab");
  const std::string exported = JournalJsonAt(app, JournalOptionsFor(app), /*jobs=*/1);

  std::vector<JournalEvent> events;
  std::string parsed_app;
  std::string error;
  ASSERT_TRUE(RetryJournal::ParseJson(exported, &events, &parsed_app, &error)) << error;
  EXPECT_EQ(parsed_app, app.name);
  EXPECT_FALSE(events.empty());

  // Re-appending the parsed events reproduces the exact bytes.
  RetryJournal rebuilt;
  for (const JournalEvent& event : events) {
    rebuilt.Append(event);
  }
  EXPECT_EQ(rebuilt.ToJson(parsed_app), exported);

  std::string bad_error;
  EXPECT_FALSE(RetryJournal::ParseJson("{\"version\":\"nope\"}", &events, &parsed_app,
                                       &bad_error));
  EXPECT_FALSE(bad_error.empty());
  EXPECT_FALSE(RetryJournal::ParseJson("not json", &events, &parsed_app, &bad_error));
}

TEST(JournalAnalyticsTest, EveryCampaignLocationHasRetryStats) {
  // Acceptance check from the issue: amplification/goodput/TTR/latency
  // quantiles exist for every seeded retry bug the campaign exercised.
  CorpusApp app = BuildCorpusApp("flakylab");
  RetryJournal journal;
  Wasabi wasabi(app.program, *app.index, JournalOptionsFor(app));
  wasabi.set_observability(nullptr, nullptr, nullptr, &journal);
  DynamicResult result = wasabi.RunDynamicWorkflow();
  ASSERT_FALSE(result.raw_reports.empty());

  RetryStatsReport stats = ComputeRetryStats(journal.Collect());
  EXPECT_FALSE(stats.runs.empty());
  std::set<std::string> covered;
  for (const LocationRetryStats& loc : stats.locations) {
    EXPECT_GT(loc.runs, 0u);
    EXPECT_GE(loc.amplification, 0.0);
    EXPECT_GE(loc.latency_p99_ms, loc.latency_p50_ms);
    covered.insert(loc.location);
  }
  for (const OracleReport& report : result.raw_reports) {
    EXPECT_TRUE(covered.count(report.location.Key())) << report.location.Key();
  }
  EXPECT_GT(stats.amplification, 0.0);
}

}  // namespace
}  // namespace wasabi
