// MetricsRegistry semantics — counter/gauge/histogram/series behavior and the
// JSON snapshot's well-formedness (shared validator).

#include "src/obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "tests/json_validator.h"

namespace wasabi {
namespace {

TEST(MetricsTest, CountersAccumulateAndMissingNamesReadZero) {
  MetricsRegistry metrics;
  EXPECT_EQ(metrics.CounterValue("absent"), 0);
  metrics.Increment("runs");
  metrics.Increment("runs", 4);
  EXPECT_EQ(metrics.CounterValue("runs"), 5);
  metrics.Increment("runs", -2);
  EXPECT_EQ(metrics.CounterValue("runs"), 3);
}

TEST(MetricsTest, GaugesKeepTheLastValue) {
  MetricsRegistry metrics;
  EXPECT_EQ(metrics.GaugeValue("absent"), 0.0);
  metrics.SetGauge("utilization", 0.25);
  metrics.SetGauge("utilization", 0.75);
  EXPECT_DOUBLE_EQ(metrics.GaugeValue("utilization"), 0.75);
}

TEST(MetricsTest, HistogramTracksCountSumMinMax) {
  MetricsRegistry metrics;
  metrics.Observe("latency", 3.0);
  metrics.Observe("latency", 10.0);
  metrics.Observe("latency", 1.0);
  HistogramSnapshot snap = metrics.HistogramFor("latency");
  EXPECT_EQ(snap.count, 3u);
  EXPECT_DOUBLE_EQ(snap.sum, 14.0);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 10.0);
  EXPECT_DOUBLE_EQ(snap.mean(), 14.0 / 3.0);
}

TEST(MetricsTest, HistogramBucketsArePowerOfTwoUpperBounds) {
  MetricsRegistry metrics;
  metrics.Observe("h", 0.0);  // Zero bucket.
  metrics.Observe("h", 3.0);  // <= 4 bucket.
  metrics.Observe("h", 3.5);  // Same bucket.
  metrics.Observe("h", 4.0);  // Inclusive bound: still the 4 bucket.
  metrics.Observe("h", 5.0);  // <= 8 bucket.
  HistogramSnapshot snap = metrics.HistogramFor("h");
  EXPECT_EQ(snap.count, 5u);
  uint64_t in_zero = 0, in_four = 0, in_eight = 0;
  for (const auto& [bound, count] : snap.buckets) {
    if (bound == 0.0) {
      in_zero = count;
    } else if (bound == 4.0) {
      in_four = count;
    } else if (bound == 8.0) {
      in_eight = count;
    }
  }
  EXPECT_EQ(in_zero, 1u);
  EXPECT_EQ(in_four, 3u);
  EXPECT_EQ(in_eight, 1u);
}

TEST(MetricsTest, EmptyHistogramSnapshotIsAllZeros) {
  MetricsRegistry metrics;
  HistogramSnapshot snap = metrics.HistogramFor("absent");
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.mean(), 0.0);
  EXPECT_TRUE(snap.buckets.empty());
}

TEST(MetricsTest, SeriesPreserveAppendOrder) {
  MetricsRegistry metrics;
  metrics.AppendSeries("coverage", 1.0);
  metrics.AppendSeries("coverage", 3.0);
  metrics.AppendSeries("coverage", 3.0);
  EXPECT_EQ(metrics.SeriesFor("coverage"), (std::vector<double>{1.0, 3.0, 3.0}));
  EXPECT_TRUE(metrics.SeriesFor("absent").empty());
}

TEST(MetricsTest, JsonSnapshotIsValidAndCompletePopulated) {
  MetricsRegistry metrics;
  metrics.Increment("a.count", 2);
  metrics.SetGauge("b.gauge", 1.5);
  metrics.Observe("c.hist", 7.0);
  metrics.AppendSeries("d.series", 9.0);
  // Values that stress the number formatter: large (%.6g may print an
  // exponent) and adversarial key characters.
  metrics.SetGauge("big", 12345678901234.0);
  metrics.Increment("key\"with\\hostiles\n", 1);
  std::string json = metrics.ToJson();
  EXPECT_TRUE(JsonValidator(json).Validate()) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"series\""), std::string::npos);
  EXPECT_NE(json.find("\"a.count\": 2"), std::string::npos);
}

TEST(MetricsTest, EmptyRegistryJsonIsValid) {
  MetricsRegistry metrics;
  std::string json = metrics.ToJson();
  EXPECT_TRUE(JsonValidator(json).Validate()) << json;
}

}  // namespace
}  // namespace wasabi
