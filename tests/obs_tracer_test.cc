// Tracer semantics: span nesting, multi-thread buffer merge ordering, and the
// Chrome trace-event JSON export (validated with the shared JSON checker).

#include "src/obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "tests/json_validator.h"

namespace wasabi {
namespace {

TEST(TracerTest, NestedSpansLandInsideParentTimeRange) {
  Tracer tracer;
  {
    ScopedSpan parent(&tracer, "parent");
    {
      ScopedSpan child(&tracer, "child");
      child.AddArg("k", int64_t{3});
    }
  }
  std::vector<TraceEvent> events = tracer.Collect();
  ASSERT_EQ(events.size(), 2u);
  // Both spans can open within the same steady-clock microsecond, so look
  // them up by name rather than assuming the sort separated them.
  const TraceEvent& parent = events[0].name == "parent" ? events[0] : events[1];
  const TraceEvent& child = events[0].name == "child" ? events[0] : events[1];
  ASSERT_EQ(parent.name, "parent");
  ASSERT_EQ(child.name, "child");
  EXPECT_GE(child.start_us, parent.start_us);
  EXPECT_LE(child.start_us + child.duration_us, parent.start_us + parent.duration_us);
  ASSERT_EQ(child.int_args.size(), 1u);
  EXPECT_EQ(child.int_args[0].first, "k");
  EXPECT_EQ(child.int_args[0].second, 3);
}

TEST(TracerTest, MultiThreadEventsMergeSortedWithDistinctTids) {
  Tracer tracer;
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        ScopedSpan span(&tracer, "work");
        span.AddArg("thread", static_cast<int64_t>(t));
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  std::vector<TraceEvent> events = tracer.Collect();
  ASSERT_EQ(events.size(), static_cast<size_t>(kThreads * kSpansPerThread));
  EXPECT_TRUE(std::is_sorted(events.begin(), events.end(),
                             [](const TraceEvent& a, const TraceEvent& b) {
                               return a.start_us < b.start_us;
                             }));
  std::set<int> tids;
  for (const TraceEvent& event : events) {
    tids.insert(event.tid);
  }
  EXPECT_EQ(tids.size(), static_cast<size_t>(kThreads));
}

TEST(TracerTest, EmptyFlushIsStillAValidChromeTrace) {
  Tracer tracer;
  EXPECT_EQ(tracer.event_count(), 0u);
  std::string json = tracer.ToChromeJson();
  EXPECT_TRUE(JsonValidator(json).Validate()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(TracerTest, NullTracerSpanIsANoOp) {
  ScopedSpan span(nullptr, "ignored");
  span.AddArg("s", std::string("v"));
  span.AddArg("i", int64_t{1});
  // Destruction must not crash; nothing to assert beyond reaching here.
}

TEST(TracerTest, InstantAndCounterEventsExportWithTheirPhases) {
  Tracer tracer;
  tracer.Instant("marker", {{"why", "because"}}, {{"n", 7}});
  tracer.Counter("coverage", "locations", 42);
  std::vector<TraceEvent> events = tracer.Collect();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].phase, 'i');
  EXPECT_EQ(events[1].phase, 'C');
  std::string json = tracer.ToChromeJson();
  EXPECT_TRUE(JsonValidator(json).Validate()) << json;
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);  // Instant scope.
}

TEST(TracerTest, ArgValuesAreEscapedIntoValidJson) {
  Tracer tracer;
  {
    ScopedSpan span(&tracer, "na\"me\\with\nhostiles");
    span.AddArg("quote\"key", std::string("va\\lue\twith\x01stuff"));
  }
  std::string json = tracer.ToChromeJson();
  EXPECT_TRUE(JsonValidator(json).Validate()) << json;
}

TEST(TracerTest, CompleteSpansCarryDurations) {
  Tracer tracer;
  { ScopedSpan span(&tracer, "timed"); }
  std::vector<TraceEvent> events = tracer.Collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].phase, 'X');
  EXPECT_GE(events[0].duration_us, 0);
  std::string json = tracer.ToChromeJson();
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
}

}  // namespace
}  // namespace wasabi
