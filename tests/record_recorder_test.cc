// Unit tests for the single-run decision-stream recorder (docs/FLAKINESS.md):
// serialize/parse round trips, per-run dispatch dedup, injector-skip
// coalescing, the record-directory store, and — the contract corruption tests
// ride on — clean rejection of truncated, bit-flipped, and version-skewed
// record files.

#include "src/record/recorder.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace wasabi {
namespace {

namespace fs = std::filesystem;

// A representative run touching every event kind.
RecordedRun MakeRun() {
  RunRecorder recorder;
  recorder.BeginRun(7, "FetcherTest.testFetch", "Fetcher.mj:3 Fetcher.fetch ConnectException",
                    100, /*degraded_env=*/true, /*epoch_ms=*/2000);
  recorder.Chaos(1, true);
  recorder.HostFailure(1, "host-exception", "chaos fault (identity 7, attempt 1)");
  recorder.Backoff(2, 40);
  recorder.Chaos(2, false);
  recorder.AttemptBegin(2);
  recorder.Dispatch(12, "Fetcher", "Fetcher.fetch");
  recorder.Inject("Fetcher.pull", "Fetcher.fetch", "ConnectException", 1);
  recorder.Inject("Fetcher.pull", "Fetcher.fetch", "ConnectException", 2);
  recorder.AttemptEnd(2, "passed");
  recorder.Verdict("clean");
  return recorder.Finish();
}

TEST(RecordRoundTripTest, SerializeParseIsLossless) {
  RecordedRun run = MakeRun();
  std::string text = SerializeRecordedRun(run);

  RecordedRun parsed;
  std::string error;
  ASSERT_TRUE(ParseRecordedRun(text, &parsed, &error)) << error;
  EXPECT_EQ(parsed.run_id, 7);
  EXPECT_EQ(parsed.test, "FetcherTest.testFetch");
  EXPECT_EQ(parsed.location_key, "Fetcher.mj:3 Fetcher.fetch ConnectException");
  EXPECT_EQ(parsed.k, 100);
  EXPECT_TRUE(parsed.degraded_env);
  EXPECT_EQ(parsed.epoch_ms, 2000);
  EXPECT_EQ(parsed.events, run.events);
  // Re-serializing the parse reproduces the exact bytes: the format is
  // canonical, so byte comparison of streams is meaningful.
  EXPECT_EQ(SerializeRecordedRun(parsed), text);
}

TEST(RecordRoundTripTest, DispatchIsDedupedPerRun) {
  RunRecorder recorder;
  recorder.BeginRun(1, "T.t", "loc", 1, false, 0);
  recorder.Dispatch(5, "A", "A.m");
  recorder.Dispatch(5, "A", "A.m");  // Same site/receiver: dropped.
  recorder.Dispatch(5, "B", "B.m");  // Same site, new receiver: kept.
  recorder.Verdict("clean");
  RecordedRun run = recorder.Finish();
  int dispatches = 0;
  for (const std::string& event : run.events) {
    if (event.rfind("dispatch\t", 0) == 0) {
      ++dispatches;
    }
  }
  EXPECT_EQ(dispatches, 2);
}

TEST(RecordRoundTripTest, ConsecutiveInjectSkipsCoalesce) {
  RunRecorder recorder;
  recorder.BeginRun(1, "T.t", "loc", 100, false, 0);
  for (int i = 0; i < 250; ++i) {
    recorder.InjectSkip("A.m", "A.coord", "IOException");
  }
  recorder.Verdict("clean");
  RecordedRun run = recorder.Finish();
  int skip_events = 0;
  std::string skip_line;
  for (const std::string& event : run.events) {
    if (event.rfind("inject-skip\t", 0) == 0) {
      ++skip_events;
      skip_line = event;
    }
  }
  EXPECT_EQ(skip_events, 1);
  EXPECT_NE(skip_line.find("x250"), std::string::npos) << skip_line;
}

TEST(RecordCorruptionTest, TruncatedRecordRejected) {
  std::string text = SerializeRecordedRun(MakeRun());
  // Drop the checksum line (and the trailing newline before it).
  std::string truncated = text.substr(0, text.rfind("checksum"));
  RecordedRun parsed;
  std::string error;
  EXPECT_FALSE(ParseRecordedRun(truncated, &parsed, &error));
  EXPECT_FALSE(error.empty());
}

TEST(RecordCorruptionTest, BitFlipRejected) {
  std::string text = SerializeRecordedRun(MakeRun());
  // Flip one character in an event payload (not in the checksum line).
  size_t pos = text.find("ConnectException");
  ASSERT_NE(pos, std::string::npos);
  std::string flipped = text;
  flipped[pos] ^= 0x1;
  RecordedRun parsed;
  std::string error;
  EXPECT_FALSE(ParseRecordedRun(flipped, &parsed, &error));
  EXPECT_NE(error.find("checksum"), std::string::npos) << error;
}

TEST(RecordCorruptionTest, VersionSkewRejected) {
  std::string text = SerializeRecordedRun(MakeRun());
  std::string skewed = "wasabi-record-v999" + text.substr(text.find('\n'));
  RecordedRun parsed;
  std::string error;
  EXPECT_FALSE(ParseRecordedRun(skewed, &parsed, &error));
  EXPECT_FALSE(error.empty());
}

TEST(RecordCorruptionTest, ManifestRoundTripAndVersionSkew) {
  RecordManifest manifest;
  manifest.program_digest = "abc123";
  manifest.config_digest = "def456";
  manifest.runs.push_back(RecordManifest::Entry{0, "T.a", "loc-a", 1});
  manifest.runs.push_back(RecordManifest::Entry{1, "T.b", "loc-b", 100});
  std::string text = SerializeRecordManifest(manifest);

  RecordManifest parsed;
  std::string error;
  ASSERT_TRUE(ParseRecordManifest(text, &parsed, &error)) << error;
  EXPECT_EQ(parsed.program_digest, "abc123");
  EXPECT_EQ(parsed.config_digest, "def456");
  ASSERT_EQ(parsed.runs.size(), 2u);
  EXPECT_EQ(parsed.runs[1].test, "T.b");
  EXPECT_EQ(parsed.runs[1].k, 100);

  std::string skewed = "wasabi-record-manifest-v999" + text.substr(text.find('\n'));
  EXPECT_FALSE(ParseRecordManifest(skewed, &parsed, &error));
}

TEST(RecordDirTest, WriteThenLoadRoundTripsAndRejectsDamage) {
  fs::path dir = fs::path(::testing::TempDir()) / "wasabi_record_dir_test";
  fs::remove_all(dir);

  RecordManifest manifest;
  manifest.program_digest = "p";
  manifest.config_digest = "c";
  manifest.runs.push_back(RecordManifest::Entry{7, "FetcherTest.testFetch",
                                                "Fetcher.mj:3 Fetcher.fetch ConnectException",
                                                100});
  std::vector<RecordedRun> runs{MakeRun()};
  std::string error;
  ASSERT_TRUE(WriteRecordDir(dir.string(), manifest, runs, &error)) << error;

  RecordManifest loaded_manifest;
  ASSERT_TRUE(LoadRecordManifest(dir.string(), &loaded_manifest, &error)) << error;
  EXPECT_EQ(loaded_manifest.runs.size(), 1u);

  RecordedRun loaded_run;
  ASSERT_TRUE(LoadRecordedRun(dir.string(), 7, &loaded_run, &error)) << error;
  EXPECT_EQ(loaded_run.events, runs[0].events);

  // A missing run id fails with a diagnostic, not a crash.
  EXPECT_FALSE(LoadRecordedRun(dir.string(), 99, &loaded_run, &error));

  // Damage the run file on disk: the loader must reject it.
  fs::path run_file = dir / RecordFileName(7);
  std::string bytes;
  {
    std::ifstream in(run_file);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes = buffer.str();
  }
  ASSERT_FALSE(bytes.empty());
  bytes[bytes.size() / 2] ^= 0x2;
  {
    std::ofstream out(run_file, std::ios::trunc);
    out << bytes;
  }
  EXPECT_FALSE(LoadRecordedRun(dir.string(), 7, &loaded_run, &error));
  EXPECT_FALSE(error.empty());

  fs::remove_all(dir);
}

}  // namespace
}  // namespace wasabi
