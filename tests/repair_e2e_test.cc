// End-to-end repair pipeline over the repairlab ground-truth app: run the
// full detect -> synthesize -> validate loop, score the outcomes exactly
// against the seeded manifest (every template-fixable bug fixed, zero false
// fixes), prove the report is byte-identical at every worker count / cache
// state / engine, prove the validator catches every SimRepair-injected bad
// patch, and prove validation re-campaigns really are cache-sliced.

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "src/cache/store.h"
#include "src/corpus/corpus.h"
#include "src/repair/repair.h"

namespace wasabi {
namespace {

namespace fs = std::filesystem;

RepairOptions OptionsFor(const CorpusApp& app) {
  RepairOptions options;
  options.wasabi.app_name = app.name;
  options.wasabi.default_configs = app.default_configs;
  return options;
}

RepairReport RunOnce(const CorpusApp& app, RepairOptions options) {
  return RunRepair(app.program, *app.index, options);
}

std::string UniqueTempDir(const char* tag) {
  static int counter = 0;
  return ::testing::TempDir() + "wasabi_repair_e2e_" + tag + "_" +
         std::to_string(++counter) + "_" + std::to_string(::getpid());
}

TEST(RepairE2eTest, RepairlabOutcomesMatchTheSeededManifestExactly) {
  CorpusApp app = BuildCorpusApp("repairlab");
  RepairReport report = RunOnce(app, OptionsFor(app));

  std::vector<RepairExpectation> expected = ExpectedRepairs(app.bugs);
  ASSERT_EQ(report.rows.size(), expected.size())
      << RepairReportToText(report);
  for (size_t i = 0; i < expected.size(); ++i) {
    SCOPED_TRACE(expected[i].file + " / " + expected[i].coordinator);
    EXPECT_EQ(report.rows[i].type, expected[i].type);
    EXPECT_EQ(report.rows[i].file, expected[i].file);
    EXPECT_EQ(report.rows[i].coordinator, expected[i].coordinator);
    EXPECT_EQ(report.rows[i].tmpl, expected[i].tmpl);
    EXPECT_EQ(report.rows[i].outcome, expected[i].outcome);
    EXPECT_EQ(report.rows[i].error_mode, RepairErrorMode::kNone);
  }

  // TP = every template-fixable bug fixed; FP = zero bogus "fixed" rows.
  int expected_fixed = 0;
  for (const RepairExpectation& e : expected) {
    expected_fixed += e.outcome == RepairOutcome::kFixed ? 1 : 0;
  }
  EXPECT_EQ(report.totals.fixed, expected_fixed);
  EXPECT_EQ(report.totals.not_fixed, 0);
  EXPECT_EQ(report.totals.regressed, 0);
  EXPECT_EQ(report.totals.no_template, 1) << "only the unbounded fan-out has no template";
  EXPECT_EQ(report.totals.confirmed,
            report.totals.fixed + report.totals.not_fixed + report.totals.regressed +
                report.totals.no_template);
}

TEST(RepairE2eTest, ReportIsByteIdenticalAtAnyWorkerCountAndBothEngines) {
  CorpusApp app = BuildCorpusApp("repairlab");
  RepairOptions baseline_options = OptionsFor(app);
  baseline_options.wasabi.jobs = 1;
  std::string baseline = RepairReportToJson(RunOnce(app, baseline_options));
  ASSERT_FALSE(baseline.empty());

  for (int jobs : {2, 4, 8}) {
    RepairOptions options = OptionsFor(app);
    options.wasabi.jobs = jobs;
    EXPECT_EQ(RepairReportToJson(RunOnce(app, options)), baseline) << "jobs=" << jobs;
  }
  RepairOptions tree = OptionsFor(app);
  tree.wasabi.interp.engine = EngineKind::kTree;
  EXPECT_EQ(RepairReportToJson(RunOnce(app, tree)), baseline)
      << "the tree-walker must reproduce the VM's repair report byte for byte";
}

TEST(RepairE2eTest, ReportIsByteIdenticalWithCacheOffColdAndWarm) {
  CorpusApp app = BuildCorpusApp("repairlab");
  std::string off = RepairReportToJson(RunOnce(app, OptionsFor(app)));

  std::string dir = UniqueTempDir("cache");
  std::string error;
  std::unique_ptr<CacheStore> store = CacheStore::Open(dir, &error);
  ASSERT_NE(store, nullptr) << error;

  RepairOptions cold_options = OptionsFor(app);
  cold_options.wasabi.cache = store.get();
  RepairReport cold = RunOnce(app, cold_options);
  EXPECT_EQ(RepairReportToJson(cold), off) << "cold cache must not change the report";
  ASSERT_TRUE(store->Flush(&error)) << error;

  std::unique_ptr<CacheStore> warm_store = CacheStore::Open(dir, &error);
  ASSERT_NE(warm_store, nullptr) << error;
  RepairOptions warm_options = OptionsFor(app);
  warm_options.wasabi.cache = warm_store.get();
  RepairReport warm = RunOnce(app, warm_options);
  EXPECT_EQ(RepairReportToJson(warm), off) << "warm cache must not change the report";

  fs::remove_all(dir);
}

TEST(RepairE2eTest, ValidationReusesTheUnpatchedSliceOfTheCache) {
  CorpusApp app = BuildCorpusApp("repairlab");
  std::string dir = UniqueTempDir("slice");
  std::string error;
  std::unique_ptr<CacheStore> store = CacheStore::Open(dir, &error);
  ASSERT_NE(store, nullptr) << error;

  RepairOptions options = OptionsFor(app);
  options.wasabi.cache = store.get();
  RepairReport report = RunOnce(app, options);

  // Starting COLD, the baseline populates per-file entries; each validation
  // re-campaign then hits the q1/when entries of every UNPATCHED file (their
  // digests are unchanged) and misses for the patched file plus the
  // program-digest-keyed namespaces. Both sides non-zero is the slicing
  // signature: neither a full recompute nor an (impossible) full hit.
  const CacheStats& delta = report.validation_cache_delta;
  EXPECT_GT(delta.hits, 0u) << "validation must reuse the unpatched slice";
  EXPECT_GT(delta.misses, 0u) << "a patched file must invalidate its own entries";
  EXPECT_GT(delta.hits_by_namespace.count("q1"), 0u);
  EXPECT_GT(delta.hits_by_namespace.count("when"), 0u);

  fs::remove_all(dir);
}

TEST(RepairE2eTest, EverySimRepairBadPatchIsCaughtNeverReportedFixed) {
  CorpusApp app = BuildCorpusApp("repairlab");

  struct ModeCase {
    const char* name;
    void (*arm)(SimRepairConfig*);
    RepairErrorMode mode;
  };
  const ModeCase kCases[] = {
      {"wrong-location", [](SimRepairConfig* c) { c->wrong_location_percent = 100; },
       RepairErrorMode::kWrongLocation},
      {"cap-too-low", [](SimRepairConfig* c) { c->cap_too_low_percent = 100; },
       RepairErrorMode::kCapTooLow},
      {"drop-jitter", [](SimRepairConfig* c) { c->drop_jitter_percent = 100; },
       RepairErrorMode::kDropJitter},
  };
  for (const ModeCase& mode_case : kCases) {
    SCOPED_TRACE(mode_case.name);
    RepairOptions options = OptionsFor(app);
    mode_case.arm(&options.sim);
    RepairReport report = RunOnce(app, options);
    int corrupted = 0;
    for (const RepairRow& row : report.rows) {
      if (row.error_mode != mode_case.mode) {
        continue;
      }
      ++corrupted;
      EXPECT_NE(row.outcome, RepairOutcome::kFixed)
          << row.file << " / " << row.coordinator
          << ": an injected bad patch must never be reported fixed\n"
          << RepairReportToText(report);
    }
    EXPECT_GT(corrupted, 0) << "the 100% knob must corrupt at least one patch";
  }
}

TEST(RepairE2eTest, CapTooLowIsCaughtBySingleFaultResilienceNotTheVerdictDiff) {
  // Cap 1 clears the missing-cap oracle (no more unbounded retry), so the
  // verdict diff alone would celebrate it. Only the K=1 replay — the patched
  // coordinator no longer survives a single transient fault — exposes it.
  CorpusApp app = BuildCorpusApp("repairlab");
  RepairOptions options = OptionsFor(app);
  options.sim.cap_too_low_percent = 100;
  RepairReport report = RunOnce(app, options);
  int regressed_caps = 0;
  for (const RepairRow& row : report.rows) {
    if (row.error_mode != RepairErrorMode::kCapTooLow) {
      continue;
    }
    EXPECT_EQ(row.outcome, RepairOutcome::kRegressed)
        << row.coordinator << ": " << row.note;
    EXPECT_NE(row.note.find("single-fault replay"), std::string::npos) << row.note;
    ++regressed_caps;
  }
  EXPECT_GT(regressed_caps, 0);
}

TEST(RepairE2eTest, SimRepairReportsAreDeterministicToo) {
  CorpusApp app = BuildCorpusApp("repairlab");
  RepairOptions options = OptionsFor(app);
  options.sim.wrong_location_percent = 40;
  options.sim.cap_too_low_percent = 40;
  options.sim.drop_jitter_percent = 40;
  std::string first = RepairReportToJson(RunOnce(app, options));
  options.wasabi.jobs = 4;
  EXPECT_EQ(RepairReportToJson(RunOnce(app, options)), first)
      << "error-mode draws are keyed on (seed, bug), not execution order";
}

TEST(RepairE2eTest, RepairJsonIsVersionedAndCacheFree) {
  CorpusApp app = BuildCorpusApp("repairlab");
  std::string json = RepairReportToJson(RunOnce(app, OptionsFor(app)));
  EXPECT_NE(json.find("\"version\": \"wasabi-repair-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"app\": \"repairlab\""), std::string::npos);
  // The slicing evidence is in-memory only: serialized bytes must not depend
  // on cache state.
  EXPECT_EQ(json.find("cache"), std::string::npos);
}

}  // namespace
}  // namespace wasabi
