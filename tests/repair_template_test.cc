// Unit tests for the repair template library (src/repair/templates.h) and
// the SimRepair error-mode model: each template applied to a hand-written
// retry method produces a patch that round-trips through the rewriter, edits
// only its target method, and contains the structural fix it promises;
// structurally unfixable methods are rejected with a diagnostic instead of a
// bogus patch.

#include <gtest/gtest.h>

#include <string>

#include "src/lang/rewrite.h"
#include "src/llm/sim_repair.h"
#include "src/repair/repair.h"
#include "src/repair/templates.h"

namespace wasabi {
namespace {

// A while(true) retry loop plus an untouched sibling — the canonical shape
// every template starts from.
const char kWhileTrueRetry[] = R"(class Syncer {
  String syncWithRetry(snapshot) {
    while (true) {
      try {
        return this.push(snapshot);
      } catch (SocketException e) {
        Log.warn("push failed; will retry");
        Thread.sleep(100);
      }
    }
  }

  String push(snapshot) throws SocketException {
    return "synced:" + snapshot;
  }
}
)";

std::string Canonical(const std::string& source) {
  // The printer drops comments, so compare against the canonical print of the
  // pristine unit: rewrite with a no-op mutator.
  mj::RewriteResult result = mj::RewriteMethod(
      "Canon.mj", source, "Syncer", "syncWithRetry",
      [](mj::CompilationUnit&, mj::ClassDecl&, mj::MethodDecl&, std::string*) {
        return true;
      });
  EXPECT_TRUE(result.ok) << result.error;
  return result.patched_source;
}

TEST(RepairTemplateTest, TemplateForBugCoversTheRepairableUniverse) {
  EXPECT_EQ(TemplateForBug(BugType::kWhenMissingCap), RepairTemplate::kBoundRetry);
  EXPECT_EQ(TemplateForBug(BugType::kWhenMissingDelay), RepairTemplate::kAddBackoff);
  EXPECT_EQ(TemplateForBug(BugType::kStormMissingJitter), RepairTemplate::kAddJitter);
  EXPECT_EQ(TemplateForBug(BugType::kStormRetryOnOverload), RepairTemplate::kShedOnOverload);
  // Unbounded fan-out needs a topology change, not a local patch.
  EXPECT_EQ(TemplateForBug(BugType::kStormUnboundedFanout), RepairTemplate::kNone);
  EXPECT_EQ(TemplateForBug(BugType::kHow), RepairTemplate::kNone);
  EXPECT_EQ(TemplateForBug(BugType::kIfOutlier), RepairTemplate::kNone);

  EXPECT_STREQ(RepairTemplateName(RepairTemplate::kBoundRetry), "bound-retry");
  EXPECT_STREQ(RepairTemplateName(RepairTemplate::kAddBackoff), "add-backoff");
  EXPECT_STREQ(RepairTemplateName(RepairTemplate::kAddJitter), "add-jitter");
  EXPECT_STREQ(RepairTemplateName(RepairTemplate::kShedOnOverload), "shed-on-overload");
}

TEST(RepairTemplateTest, BoundRetryCapsAWhileTrueLoopAndRethrowsTheLastError) {
  mj::RewriteResult result = mj::RewriteMethod("Syncer.mj", kWhileTrueRetry, "Syncer",
                                               "syncWithRetry", MakeBoundRetryMutator(5));
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_NE(result.patched_source.find("repairAttempt < 5"), std::string::npos)
      << result.patched_source;
  EXPECT_NE(result.patched_source.find("throw repairLastError;"), std::string::npos)
      << "an exhausted cap must surface the last failure, not swallow it";
  // The sibling method is untouched (the rewriter enforces it; pin it here
  // against the actual bytes too).
  EXPECT_NE(result.patched_source.find("return (\"synced:\" + snapshot);"),
            std::string::npos);
}

TEST(RepairTemplateTest, BoundRetryRewritesAForLoopConditionInPlace) {
  const char kNegativeCapFor[] = R"(class Syncer {
  String syncWithRetry(block) throws ServiceUnavailableException {
    for (var retry = 0; retry != this.maxAttempts; retry++) {
      try {
        return this.push(block);
      } catch (ServiceUnavailableException e) {
        Thread.sleep(40);
      }
    }
    throw new ServiceUnavailableException("exhausted");
  }

  String push(block) throws ServiceUnavailableException {
    return "moved:" + block;
  }
}
)";
  mj::RewriteResult result = mj::RewriteMethod("Syncer.mj", kNegativeCapFor, "Syncer",
                                               "syncWithRetry", MakeBoundRetryMutator(5));
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_NE(result.patched_source.find("retry < 5"), std::string::npos)
      << "the != cap check (HDFS-15439 analog) must become a real bound:\n"
      << result.patched_source;
  EXPECT_EQ(result.patched_source.find("retry != this.maxAttempts"), std::string::npos);
}

TEST(RepairTemplateTest, AddBackoffSleepsAndDoublesInEveryCatch) {
  const char kTightLoop[] = R"(class Syncer {
  String syncWithRetry(cursor) {
    var attempts = 0;
    while (attempts < 10) {
      try {
        return this.push(cursor);
      } catch (TimeoutException e) {
        attempts = attempts + 1;
      }
    }
    return "gave-up";
  }

  String push(cursor) throws TimeoutException {
    return "page:" + cursor;
  }
}
)";
  mj::RewriteResult result = mj::RewriteMethod("Syncer.mj", kTightLoop, "Syncer",
                                               "syncWithRetry", MakeAddBackoffMutator());
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_NE(result.patched_source.find("Thread.sleep(repairBackoff);"), std::string::npos);
  EXPECT_NE(result.patched_source.find("repairBackoff = (repairBackoff * 2);"),
            std::string::npos)
      << "backoff must be exponential, not fixed:\n"
      << result.patched_source;
}

TEST(RepairTemplateTest, AddJitterSpreadsAFixedSleep) {
  mj::RewriteResult result = mj::RewriteMethod("Syncer.mj", kWhileTrueRetry, "Syncer",
                                               "syncWithRetry", MakeAddJitterMutator(false));
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_NE(result.patched_source.find("repairJitter"), std::string::npos);
  EXPECT_NE(result.patched_source.find("Thread.sleep(((repairBase / 2) + (repairJitter / 2)));"),
            std::string::npos)
      << result.patched_source;
  EXPECT_EQ(result.patched_source.find("Thread.sleep(100);"), std::string::npos)
      << "the fixed synchronized sleep must be gone";
}

TEST(RepairTemplateTest, DropJitterModeKeepsTheFixedSleep) {
  // The modeled backoff-without-jitter error: scaffolding appears but the
  // sleep stays fixed, so the storm oracle must still fire.
  mj::RewriteResult result = mj::RewriteMethod("Syncer.mj", kWhileTrueRetry, "Syncer",
                                               "syncWithRetry", MakeAddJitterMutator(true));
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_NE(result.patched_source.find("Thread.sleep(100);"), std::string::npos)
      << "drop-jitter must leave the synchronized sleep in place:\n"
      << result.patched_source;
}

TEST(RepairTemplateTest, ShedOnOverloadReplacesTheOverloadCatchWithABailOut) {
  const char kOverloadRetry[] = R"(class Syncer {
  String syncWithRetry() throws ServiceUnavailableException {
    while (true) {
      try {
        return this.push("req");
      } catch (ServiceUnavailableException e) {
        Thread.sleep(20);
      } catch (ResourceExhaustedException e) {
        Log.warn("overloaded; retrying anyway");
        Thread.sleep(10);
      }
    }
  }

  String push(String payload)
      throws ServiceUnavailableException, ResourceExhaustedException {
    return "ok:" + payload;
  }
}
)";
  mj::RewriteResult result =
      mj::RewriteMethod("Syncer.mj", kOverloadRetry, "Syncer", "syncWithRetry",
                        MakeShedOnOverloadMutator("ResourceExhaustedException"));
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_NE(result.patched_source.find("shedding this request"), std::string::npos);
  EXPECT_EQ(result.patched_source.find("overloaded; retrying anyway"), std::string::npos)
      << "the retry-on-overload arm must be replaced, not kept:\n"
      << result.patched_source;
  // The transient-error arm keeps retrying: shedding is overload-specific.
  EXPECT_NE(result.patched_source.find("Thread.sleep(20);"), std::string::npos);
}

TEST(RepairTemplateTest, MethodsWithoutARetryLoopAreRejectedNotPatched) {
  const char kNoLoop[] = R"(class Syncer {
  String syncWithRetry(x) {
    return this.push(x);
  }

  String push(x) {
    return "ok:" + x;
  }
}
)";
  for (const mj::MethodMutator& mutator :
       {MakeBoundRetryMutator(5), MakeAddBackoffMutator(), MakeAddJitterMutator(false),
        MakeShedOnOverloadMutator("ResourceExhaustedException")}) {
    mj::RewriteResult result =
        mj::RewriteMethod("Syncer.mj", kNoLoop, "Syncer", "syncWithRetry", mutator);
    EXPECT_FALSE(result.ok);
    EXPECT_FALSE(result.error.empty());
  }
}

TEST(RepairTemplateTest, AddJitterRequiresAFixedSleepToSpread) {
  const char kNoSleep[] = R"(class Syncer {
  String syncWithRetry(x) {
    while (true) {
      try {
        return this.push(x);
      } catch (SocketException e) {
        Log.warn("retrying");
      }
    }
  }

  String push(x) throws SocketException {
    return "ok:" + x;
  }
}
)";
  mj::RewriteResult result = mj::RewriteMethod("Syncer.mj", kNoSleep, "Syncer",
                                               "syncWithRetry", MakeAddJitterMutator(false));
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("no fixed Thread.sleep"), std::string::npos) << result.error;
}

TEST(RepairTemplateTest, PatchedSourceIsAPrinterFixpointAndLeavesSiblingsAlone) {
  const std::string canonical = Canonical(kWhileTrueRetry);
  for (const mj::MethodMutator& mutator :
       {MakeBoundRetryMutator(5), MakeAddBackoffMutator(), MakeAddJitterMutator(false)}) {
    mj::RewriteResult result =
        mj::RewriteMethod("Syncer.mj", kWhileTrueRetry, "Syncer", "syncWithRetry", mutator);
    ASSERT_TRUE(result.ok) << result.error;
    // Applying a no-op rewrite to the patched source must reproduce it byte
    // for byte: the patch is inside the printer's fixpoint set.
    mj::RewriteResult again = mj::RewriteMethod(
        "Syncer.mj", result.patched_source, "Syncer", "syncWithRetry",
        [](mj::CompilationUnit&, mj::ClassDecl&, mj::MethodDecl&, std::string*) {
          return true;
        });
    ASSERT_TRUE(again.ok) << again.error;
    EXPECT_EQ(again.patched_source, result.patched_source);
    // The sibling's canonical print survives verbatim.
    EXPECT_NE(result.patched_source.find("String push(var snapshot) throws SocketException"),
              std::string::npos);
    EXPECT_NE(canonical.find("String push(var snapshot) throws SocketException"),
              std::string::npos);
  }
}

TEST(RepairTemplateTest, WrongLocationMutatorPatchesWhateverMethodItIsGiven) {
  // The modeled wrong-location error targets a sibling; the patch itself is
  // well-formed, which is exactly why only validation can catch it.
  mj::RewriteResult result = mj::RewriteMethod("Syncer.mj", kWhileTrueRetry, "Syncer",
                                               "push", MakeWrongLocationMutator());
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_NE(result.patched_source.find("var repairAttempt = 0;"), std::string::npos);
  // The real retry loop is untouched.
  EXPECT_NE(result.patched_source.find("while (true)"), std::string::npos);
}

// --- SimRepair ---------------------------------------------------------------

TEST(RepairTemplateTest, SimRepairIsDeterministicAndDefaultsToFaithful) {
  SimRepair off{SimRepairConfig{}};
  EXPECT_EQ(off.ModeFor("A.mj", "A.m", "bound-retry"), RepairErrorMode::kNone);

  SimRepairConfig config;
  config.wrong_location_percent = 50;
  SimRepair sim(config);
  RepairErrorMode first = sim.ModeFor("A.mj", "A.m", "bound-retry");
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(sim.ModeFor("A.mj", "A.m", "bound-retry"), first)
        << "the same bug must draw the same mode in every run";
  }
}

TEST(RepairTemplateTest, SimRepairModesGateOnTheTemplateTheyCorrupt) {
  SimRepairConfig config;
  config.cap_too_low_percent = 100;
  config.drop_jitter_percent = 100;
  SimRepair sim(config);
  EXPECT_EQ(sim.ModeFor("A.mj", "A.m", "bound-retry"), RepairErrorMode::kCapTooLow);
  EXPECT_EQ(sim.ModeFor("A.mj", "A.m", "add-jitter"), RepairErrorMode::kDropJitter);
  // Neither mode makes sense for a backoff patch: it stays faithful.
  EXPECT_EQ(sim.ModeFor("A.mj", "A.m", "add-backoff"), RepairErrorMode::kNone);

  SimRepairConfig wrong;
  wrong.wrong_location_percent = 100;
  SimRepair always_wrong(wrong);
  for (const char* tmpl : {"bound-retry", "add-backoff", "add-jitter", "shed-on-overload"}) {
    EXPECT_EQ(always_wrong.ModeFor("A.mj", "A.m", tmpl), RepairErrorMode::kWrongLocation);
  }
}

}  // namespace
}  // namespace wasabi
