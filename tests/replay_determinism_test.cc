// Replay-determinism property tests (ctest label "replay", docs/FLAKINESS.md).
//
// The record/replay contract: a campaign recorded at ANY worker count writes
// the same per-run decision streams byte for byte; replaying any recorded run
// in isolation — repeatedly — reproduces its stream and verdict exactly; and
// damaged records (truncation, bit flips, version skew) or a mismatched
// program/config are rejected with a diagnostic, never replayed.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/wasabi.h"
#include "src/corpus/corpus.h"
#include "src/record/recorder.h"

namespace wasabi {
namespace {

namespace fs = std::filesystem;

WasabiOptions RecordOptionsFor(const CorpusApp& app, const fs::path& record_dir) {
  WasabiOptions options;
  options.app_name = app.name;
  options.default_configs = app.default_configs;
  options.record_dir = record_dir.string();
  // Chaos on with a nonzero fault rate so the record carries host-failure,
  // backoff, and degraded-environment events, not just clean dispatches.
  options.robust.chaos.enabled = true;
  options.robust.chaos.seed = 7;
  options.robust.chaos.rate = 0.2;
  options.robust.chaos.env_rate = 0.5;
  return options;
}

std::string ReadFileBytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Records one flakylab campaign into `dir` at the given worker count and
// returns the bytes of every file in the record directory, keyed by name.
std::map<std::string, std::string> RecordCampaign(const CorpusApp& app, const fs::path& dir,
                                                  int jobs) {
  fs::remove_all(dir);
  WasabiOptions options = RecordOptionsFor(app, dir);
  options.jobs = jobs;
  Wasabi wasabi(app.program, *app.index, options);
  DynamicResult result = wasabi.RunDynamicWorkflow();
  EXPECT_TRUE(result.record_error.empty()) << result.record_error;
  std::map<std::string, std::string> files;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    files[entry.path().filename().string()] = ReadFileBytes(entry.path());
  }
  EXPECT_FALSE(files.empty());
  return files;
}

TEST(ReplayDeterminismTest, RecordDirIdenticalAtEveryWorkerCount) {
  CorpusApp app = BuildCorpusApp("flakylab");
  fs::path base = fs::path(::testing::TempDir()) / "wasabi_replay_det_test";
  std::map<std::string, std::string> baseline =
      RecordCampaign(app, base / "jobs1", 1);
  for (int jobs : {2, 4, 8}) {
    std::map<std::string, std::string> files =
        RecordCampaign(app, base / ("jobs" + std::to_string(jobs)), jobs);
    EXPECT_EQ(files, baseline) << "jobs=" << jobs;
  }
  fs::remove_all(base);
}

TEST(ReplayDeterminismTest, EveryRecordedRunReplaysByteIdentically) {
  CorpusApp app = BuildCorpusApp("flakylab");
  fs::path dir = fs::path(::testing::TempDir()) / "wasabi_replay_exact_test";
  RecordCampaign(app, dir, 4);

  RecordManifest manifest;
  std::string error;
  ASSERT_TRUE(LoadRecordManifest(dir.string(), &manifest, &error)) << error;
  ASSERT_FALSE(manifest.runs.empty());

  // Replaying needs a Wasabi with the same program/config (minus record_dir,
  // which is not part of the config digest).
  WasabiOptions options = RecordOptionsFor(app, dir);
  options.record_dir.clear();
  Wasabi wasabi(app.program, *app.index, options);

  for (const RecordManifest::Entry& entry : manifest.runs) {
    // Twice per run: replay itself must be deterministic.
    for (int pass = 0; pass < 2; ++pass) {
      ReplayOutcome outcome = wasabi.ReplayRun(dir.string(), entry.run_id);
      ASSERT_TRUE(outcome.ok) << "run " << entry.run_id << ": " << outcome.error;
      EXPECT_TRUE(outcome.stream_identical)
          << "run " << entry.run_id << " pass " << pass << ": " << outcome.divergence;
      EXPECT_TRUE(outcome.verdict_identical)
          << "run " << entry.run_id << ": recorded \"" << outcome.recorded_verdict
          << "\" replayed \"" << outcome.replayed_verdict << "\"";
    }
  }
  fs::remove_all(dir);
}

TEST(ReplayDeterminismTest, DamagedRecordsAreRejected) {
  CorpusApp app = BuildCorpusApp("flakylab");
  fs::path dir = fs::path(::testing::TempDir()) / "wasabi_replay_damage_test";
  RecordCampaign(app, dir, 2);

  RecordManifest manifest;
  std::string error;
  ASSERT_TRUE(LoadRecordManifest(dir.string(), &manifest, &error)) << error;
  ASSERT_FALSE(manifest.runs.empty());
  const uint64_t run_id = manifest.runs.front().run_id;
  fs::path run_file = dir / RecordFileName(run_id);
  const std::string original = ReadFileBytes(run_file);
  ASSERT_FALSE(original.empty());

  WasabiOptions options = RecordOptionsFor(app, dir);
  options.record_dir.clear();
  Wasabi wasabi(app.program, *app.index, options);

  // Truncated.
  {
    std::ofstream out(run_file, std::ios::binary | std::ios::trunc);
    out << original.substr(0, original.size() / 2);
  }
  ReplayOutcome truncated = wasabi.ReplayRun(dir.string(), run_id);
  EXPECT_FALSE(truncated.ok);
  EXPECT_FALSE(truncated.error.empty());

  // Bit-flipped.
  {
    std::string flipped = original;
    flipped[flipped.size() / 3] ^= 0x4;
    std::ofstream out(run_file, std::ios::binary | std::ios::trunc);
    out << flipped;
  }
  ReplayOutcome flipped = wasabi.ReplayRun(dir.string(), run_id);
  EXPECT_FALSE(flipped.ok);
  EXPECT_FALSE(flipped.error.empty());

  // Version-skewed.
  {
    std::string skewed = "wasabi-record-v999" + original.substr(original.find('\n'));
    std::ofstream out(run_file, std::ios::binary | std::ios::trunc);
    out << skewed;
  }
  ReplayOutcome skewed = wasabi.ReplayRun(dir.string(), run_id);
  EXPECT_FALSE(skewed.ok);
  EXPECT_FALSE(skewed.error.empty());

  // Restore the run file but skew the manifest: also rejected.
  {
    std::ofstream out(run_file, std::ios::binary | std::ios::trunc);
    out << original;
  }
  fs::path manifest_file = dir / "MANIFEST.tsv";
  const std::string manifest_bytes = ReadFileBytes(manifest_file);
  {
    std::ofstream out(manifest_file, std::ios::binary | std::ios::trunc);
    out << "wasabi-record-manifest-v999" << manifest_bytes.substr(manifest_bytes.find('\n'));
  }
  ReplayOutcome bad_manifest = wasabi.ReplayRun(dir.string(), run_id);
  EXPECT_FALSE(bad_manifest.ok);
  EXPECT_FALSE(bad_manifest.error.empty());

  fs::remove_all(dir);
}

TEST(ReplayDeterminismTest, DigestMismatchIsRejectedCleanly) {
  CorpusApp app = BuildCorpusApp("flakylab");
  fs::path dir = fs::path(::testing::TempDir()) / "wasabi_replay_digest_test";
  RecordCampaign(app, dir, 1);

  RecordManifest manifest;
  std::string error;
  ASSERT_TRUE(LoadRecordManifest(dir.string(), &manifest, &error)) << error;
  ASSERT_FALSE(manifest.runs.empty());

  // Same program, different campaign configuration (chaos off): the config
  // digest no longer matches and replay must refuse rather than produce a
  // stream that silently diverges.
  WasabiOptions options;
  options.app_name = app.name;
  options.default_configs = app.default_configs;
  Wasabi mismatched(app.program, *app.index, options);
  ReplayOutcome outcome = mismatched.ReplayRun(dir.string(), manifest.runs.front().run_id);
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(outcome.error.find("digest"), std::string::npos) << outcome.error;

  fs::remove_all(dir);
}

}  // namespace
}  // namespace wasabi
