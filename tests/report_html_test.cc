// Golden test for the `wasabi report` HTML renderer (ctest label
// "obsjournal", docs/OBSERVABILITY.md "HTML report"). The dashboard bytes are
// a pure function of the journal — no wall clock, no randomness, announced
// truncation only — so a fixed flakylab journal must render the exact same
// file on every platform and at any worker count. Goldens store an FNV-1a-64
// digest (same idiom as golden_equivalence_test.cc); regenerate with
// WASABI_UPDATE_GOLDENS=1 from a build whose rendering is already trusted.

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/wasabi.h"
#include "src/corpus/corpus.h"
#include "src/obs/journal.h"
#include "src/obs/report_html.h"
#include "src/obs/retry_stats.h"
#include "src/storm/profile.h"
#include "src/storm/storm.h"

#ifndef WASABI_GOLDENS_DIR
#define WASABI_GOLDENS_DIR "tests/goldens"
#endif

namespace wasabi {
namespace {

uint64_t Fnv1a64(std::string_view text) {
  uint64_t hash = 1469598103934665603ull;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string Digest(std::string_view text) {
  std::ostringstream out;
  out << "fnv=" << std::hex << Fnv1a64(text) << std::dec << " bytes=" << text.size();
  return out.str();
}

// The fixed input: a flakylab run with the prober and deterministic chaos
// environment on, journaled at one worker (the journal is identical at any
// worker count — obs_journal_test pins that — so one is enough here).
std::string RenderFlakylabReport() {
  CorpusApp app = BuildCorpusApp("flakylab");
  WasabiOptions options;
  options.app_name = app.name;
  options.default_configs = app.default_configs;
  options.prober.repetitions = 2;
  options.robust.chaos.enabled = true;
  options.robust.chaos.seed = 42;
  options.robust.chaos.rate = 0.0;
  options.robust.chaos.env_rate = 1.0;
  options.jobs = 1;

  RetryJournal journal;
  Wasabi wasabi(app.program, *app.index, options);
  wasabi.set_observability(nullptr, nullptr, nullptr, &journal);
  wasabi.RunDynamicWorkflow();

  std::vector<JournalEvent> events = journal.Collect();
  RetryStatsReport stats = ComputeRetryStats(events);
  return RenderHtmlReport(app.name, events, stats, /*metrics_json=*/"", /*trace_json=*/"");
}

TEST(ReportHtmlTest, FlakylabDashboardMatchesGolden) {
  const std::string html = RenderFlakylabReport();
  const std::string golden_path = std::string(WASABI_GOLDENS_DIR) + "/report_flakylab.golden";

  if (std::getenv("WASABI_UPDATE_GOLDENS") != nullptr) {
    std::ofstream out(golden_path);
    out << "# HTML report golden for the fixed flakylab journal "
        << "(see report_html_test.cc).\n";
    out << "report " << Digest(html) << "\n";
    GTEST_SKIP() << "golden regenerated at " << golden_path;
  }

  std::ifstream in(golden_path);
  std::string line;
  std::string expected;
  while (std::getline(in, line)) {
    if (line.rfind("report ", 0) == 0) {
      expected = line.substr(7);
    }
  }
  ASSERT_FALSE(expected.empty()) << "no golden at " << golden_path
                                 << "; regenerate with WASABI_UPDATE_GOLDENS=1";
  EXPECT_EQ(Digest(html), expected)
      << "report bytes diverged; inspect a fresh render and regenerate only if intended";
}

TEST(ReportHtmlTest, RenderIsDeterministic) {
  EXPECT_EQ(RenderFlakylabReport(), RenderFlakylabReport());
}

TEST(ReportHtmlTest, StructureAndEscaping) {
  const std::string html = RenderFlakylabReport();
  EXPECT_EQ(html.rfind("<!DOCTYPE html>", 0), 0u);
  EXPECT_NE(html.find("flakylab"), std::string::npos);
  EXPECT_NE(html.find("Retry timelines"), std::string::npos);
  EXPECT_NE(html.find("prefers-color-scheme: dark"), std::string::npos);
  // Self-contained: no external fetches of any kind.
  EXPECT_EQ(html.find("http://"), std::string::npos);
  EXPECT_EQ(html.find("https://"), std::string::npos);
  EXPECT_EQ(html.find("<link"), std::string::npos);
  EXPECT_EQ(html.find("src="), std::string::npos);

  // Hostile journal content is escaped, never interpreted as markup. The
  // location key and app name are the rendered identities, so plant the
  // markup there (test names only ever reach tooltips through the same
  // EscapeHtml path).
  JournalEvent hostile;
  hostile.stream = JournalStream::kCampaign;
  hostile.kind = JournalEventKind::kRunBegin;
  hostile.test = "T.t";
  hostile.location = "<script>alert(1)</script>&\"";
  JournalEvent end = hostile;
  end.seq = 1;
  end.kind = JournalEventKind::kAttemptEnd;
  end.attempt = 1;
  end.value = 5;
  end.detail = "passed";
  std::vector<JournalEvent> events = {hostile, end};
  RetryStatsReport stats = ComputeRetryStats(events);
  const std::string page = RenderHtmlReport("x<y", events, stats, "", "");
  EXPECT_EQ(page.find("<script>alert"), std::string::npos);
  EXPECT_NE(page.find("&lt;script&gt;alert(1)&lt;/script&gt;&amp;&quot;"), std::string::npos);
  EXPECT_NE(page.find("x&lt;y"), std::string::npos);
}

TEST(ReportHtmlTest, StormJournalRendersTheStormTimelines) {
  // The storm section is gated on the kStorm stream: absent from campaign
  // dashboards (the flakylab golden pins that), present — with the fault
  // window, backend queue track, and per-edge breaker markers — after a
  // `wasabi storm` run.
  CorpusApp app = BuildCorpusApp("stormlab");
  std::vector<EdgeRetryProfile> profiles =
      ExtractRetryProfiles(app.program, *app.index, /*jobs=*/1);
  RetryJournal journal;
  StormOptions options;
  RunStormSim(app.name, profiles, options, &journal);
  std::vector<JournalEvent> events = journal.Collect();
  RetryStatsReport stats = ComputeRetryStats(events);
  const std::string html = RenderHtmlReport(app.name, events, stats, "", "");
  EXPECT_NE(html.find("Retry storm simulation"), std::string::npos);
  EXPECT_NE(html.find("Backend queue depth"), std::string::npos);
  EXPECT_NE(html.find("in-flight retries"), std::string::npos);
  EXPECT_NE(html.find("backend fault window"), std::string::npos);
  EXPECT_NE(html.find("breaker_half_open"), std::string::npos)
      << "a healthy edge's half-open probe must be marked on its track";

  const std::string campaign_html = RenderFlakylabReport();
  EXPECT_EQ(campaign_html.find("Retry storm simulation"), std::string::npos);
}

}  // namespace
}  // namespace wasabi
