// Retry-analytics derivation tests (ctest label "obsjournal",
// docs/OBSERVABILITY.md "Retry analytics"): amplification, goodput vs wasted
// work, time-to-recover, and latency quantiles computed from hand-built
// journals with known ground truth, plus the histogram quantile estimator and
// the OpenMetrics exposition the analytics feed.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/journal.h"
#include "src/obs/metrics.h"
#include "src/obs/retry_stats.h"

namespace wasabi {
namespace {

JournalEvent Event(uint64_t run_id, uint32_t seq, JournalEventKind kind, int attempt,
                   int64_t t_ms, int64_t value, const std::string& detail = "",
                   const std::string& location = "loc") {
  JournalEvent event;
  event.stream = JournalStream::kCampaign;
  event.run_id = run_id;
  event.seq = seq;
  event.kind = kind;
  event.test = "T.test";
  event.location = location;
  event.k = 1;
  event.attempt = attempt;
  event.t_ms = t_ms;
  event.value = value;
  event.detail = detail;
  return event;
}

// A passing run whose retry loop executed `fires` injected failures before
// succeeding, burning `steps` interpreter steps in `virtual_ms` virtual time.
void AppendPassingRun(std::vector<JournalEvent>* events, uint64_t run_id, int64_t fires,
                      int64_t steps, int64_t virtual_ms, const std::string& location = "loc") {
  uint32_t seq = 0;
  events->push_back(Event(run_id, seq++, JournalEventKind::kRunBegin, 0, 0, 1, "", location));
  events->push_back(Event(run_id, seq++, JournalEventKind::kAttemptBegin, 1, 0, 0, "", location));
  for (int64_t f = 0; f < fires; ++f) {
    events->push_back(
        Event(run_id, seq++, JournalEventKind::kInjectFire, 1, f * 10, f, "", location));
  }
  events->push_back(Event(run_id, seq++, JournalEventKind::kWork, 1, 0, steps, "", location));
  events->push_back(Event(run_id, seq++, JournalEventKind::kAttemptEnd, 1, 0, virtual_ms,
                          "passed", location));
}

TEST(RetryStatsTest, AmplificationChargesAttemptsBeyondTheCorrectPolicy) {
  // 9 fires + the passing attempt = 10 application attempts; a correct
  // bounded policy (cap 4) stops at 4. Amplification 9/4, goodput scaled by
  // needed/observed.
  std::vector<JournalEvent> events;
  AppendPassingRun(&events, /*run_id=*/0, /*fires=*/9, /*steps=*/900, /*virtual_ms=*/450);
  RetryStatsReport report = ComputeRetryStats(events);

  ASSERT_EQ(report.runs.size(), 1u);
  const RunRetryTimeline& run = report.runs[0];
  EXPECT_TRUE(run.completed);
  EXPECT_TRUE(run.passed);
  EXPECT_EQ(run.attempts_observed, 9);
  EXPECT_EQ(run.attempts_needed, 4);
  EXPECT_DOUBLE_EQ(run.amplification, 9.0 / 4.0);
  EXPECT_EQ(run.goodput_steps, 900 * 4 / 9);
  EXPECT_EQ(run.wasted_steps, 900 - 900 * 4 / 9);
  EXPECT_EQ(run.points.size(), 9u);  // One timeline point per fire.
}

TEST(RetryStatsTest, WellBehavedRunHasNoWaste) {
  // 2 fires then success is exactly what a correct policy would do: observed
  // 2 < needed 3, amplification < 1 reads as "under the allowance", and no
  // step is charged as waste (goodput == steps via integer scaling is only
  // exact when observed <= needed, so assert the aggregate ratio instead).
  std::vector<JournalEvent> events;
  AppendPassingRun(&events, 0, /*fires=*/2, /*steps=*/300, /*virtual_ms=*/100);
  RetryStatsReport report = ComputeRetryStats(events);
  ASSERT_EQ(report.runs.size(), 1u);
  EXPECT_EQ(report.runs[0].attempts_needed, 3);
  EXPECT_LE(report.runs[0].amplification, 1.0);
  EXPECT_EQ(report.runs[0].wasted_steps, 0);
  EXPECT_DOUBLE_EQ(report.goodput_ratio, 1.0);
}

TEST(RetryStatsTest, FailedRunIsAllWaste) {
  std::vector<JournalEvent> events;
  uint32_t seq = 0;
  events.push_back(Event(0, seq++, JournalEventKind::kRunBegin, 0, 0, 1));
  events.push_back(Event(0, seq++, JournalEventKind::kAttemptBegin, 1, 0, 0));
  events.push_back(Event(0, seq++, JournalEventKind::kInjectFire, 1, 0, 0));
  events.push_back(Event(0, seq++, JournalEventKind::kInjectFire, 1, 10, 1));
  events.push_back(Event(0, seq++, JournalEventKind::kInjectSkip, 1, 0, 5));
  events.push_back(Event(0, seq++, JournalEventKind::kWork, 1, 0, 640));
  events.push_back(Event(0, seq++, JournalEventKind::kAttemptEnd, 1, 0, 80, "failed"));
  RetryStatsReport report = ComputeRetryStats(events);

  ASSERT_EQ(report.runs.size(), 1u);
  const RunRetryTimeline& run = report.runs[0];
  EXPECT_FALSE(run.passed);
  EXPECT_EQ(run.attempts_observed, 7);  // 2 fires + 5 budget skips.
  EXPECT_EQ(run.attempts_needed, 4);
  EXPECT_DOUBLE_EQ(run.amplification, 7.0 / 4.0);
  EXPECT_EQ(run.goodput_steps, 0);
  EXPECT_EQ(run.wasted_steps, 640);
  EXPECT_DOUBLE_EQ(report.goodput_ratio, 0.0);
}

TEST(RetryStatsTest, RunWithoutFiresIsNeutral) {
  std::vector<JournalEvent> events;
  AppendPassingRun(&events, 0, /*fires=*/0, /*steps=*/100, /*virtual_ms=*/10);
  RetryStatsReport report = ComputeRetryStats(events);
  ASSERT_EQ(report.runs.size(), 1u);
  EXPECT_EQ(report.runs[0].attempts_observed, 0);
  EXPECT_EQ(report.runs[0].attempts_needed, 0);
  EXPECT_DOUBLE_EQ(report.runs[0].amplification, 1.0);
  EXPECT_EQ(report.runs[0].goodput_steps, 100);
  EXPECT_EQ(report.runs[0].wasted_steps, 0);
}

TEST(RetryStatsTest, TimeToRecoverChargesBackoffAfterChaos) {
  std::vector<JournalEvent> events;
  // Run 0: chaos host failure, 40ms backoff, then completes — recovered.
  uint32_t seq = 0;
  events.push_back(Event(0, seq++, JournalEventKind::kRunBegin, 0, 0, 1));
  events.push_back(Event(0, seq++, JournalEventKind::kHostFailure, 1, 0, 1, "chaos"));
  events.push_back(Event(0, seq++, JournalEventKind::kBackoffWait, 2, 0, 40));
  events.push_back(Event(0, seq++, JournalEventKind::kAttemptBegin, 2, 0, 0));
  events.push_back(Event(0, seq++, JournalEventKind::kWork, 2, 0, 50));
  events.push_back(Event(0, seq++, JournalEventKind::kAttemptEnd, 2, 0, 20, "passed"));
  // Run 1: chaos failures, never completes — quarantined, no recovery.
  seq = 0;
  events.push_back(Event(1, seq++, JournalEventKind::kRunBegin, 0, 0, 1));
  events.push_back(Event(1, seq++, JournalEventKind::kHostFailure, 1, 0, 1, "chaos"));
  events.push_back(Event(1, seq++, JournalEventKind::kBackoffWait, 2, 0, 40));
  events.push_back(Event(1, seq++, JournalEventKind::kHostFailure, 2, 0, 1, "chaos"));
  events.push_back(Event(1, seq++, JournalEventKind::kQuarantine, 0, 0, 0, "host: gave up"));
  RetryStatsReport report = ComputeRetryStats(events);

  ASSERT_EQ(report.runs.size(), 2u);
  EXPECT_EQ(report.runs[0].time_to_recover_ms, 40);
  EXPECT_EQ(report.runs[0].chaos_failures, 1);
  EXPECT_EQ(report.runs[1].time_to_recover_ms, -1);
  EXPECT_TRUE(report.runs[1].quarantined);
  EXPECT_EQ(report.time_to_recover_ms_total, 40);
  EXPECT_EQ(report.time_to_recover_ms_max, 40);
  ASSERT_EQ(report.locations.size(), 1u);
  EXPECT_EQ(report.locations[0].recovered_runs, 1u);
  EXPECT_EQ(report.locations[0].quarantined_runs, 1u);
}

TEST(RetryStatsTest, LatencyQuantilesAreExactOverCompletedRuns) {
  std::vector<JournalEvent> events;
  const int64_t latencies[] = {10, 20, 30, 40, 50};
  for (uint64_t r = 0; r < 5; ++r) {
    AppendPassingRun(&events, r, /*fires=*/1, /*steps=*/10, latencies[r]);
  }
  RetryStatsReport report = ComputeRetryStats(events);
  EXPECT_DOUBLE_EQ(report.latency_p50_ms, 30.0);
  EXPECT_DOUBLE_EQ(report.latency_p90_ms, 46.0);  // rank 3.6 between 40 and 50.
  EXPECT_DOUBLE_EQ(report.latency_p99_ms, 49.6);  // rank 3.96.
}

TEST(RetryStatsTest, EventOrderDoesNotMatter) {
  std::vector<JournalEvent> events;
  AppendPassingRun(&events, 0, 3, 400, 200);
  AppendPassingRun(&events, 1, 0, 100, 50);
  std::vector<JournalEvent> reversed(events.rbegin(), events.rend());

  RetryStatsReport a = ComputeRetryStats(events);
  RetryStatsReport b = ComputeRetryStats(reversed);
  ASSERT_EQ(a.runs.size(), b.runs.size());
  EXPECT_DOUBLE_EQ(a.amplification, b.amplification);
  EXPECT_EQ(a.wasted_steps, b.wasted_steps);
  EXPECT_DOUBLE_EQ(a.latency_p99_ms, b.latency_p99_ms);
}

TEST(RetryStatsTest, LocationsAggregateAndSortByKey) {
  std::vector<JournalEvent> events;
  AppendPassingRun(&events, 0, 9, 900, 450, "zeta");
  AppendPassingRun(&events, 1, 9, 900, 450, "alpha");
  AppendPassingRun(&events, 2, 0, 100, 10, "alpha");
  RetryStatsReport report = ComputeRetryStats(events);
  ASSERT_EQ(report.locations.size(), 2u);
  EXPECT_EQ(report.locations[0].location, "alpha");
  EXPECT_EQ(report.locations[1].location, "zeta");
  EXPECT_EQ(report.locations[0].runs, 2u);
  EXPECT_DOUBLE_EQ(report.locations[0].amplification, 9.0 / 4.0);  // 9 observed / 4 needed.
  EXPECT_DOUBLE_EQ(report.locations[1].amplification, 9.0 / 4.0);
}

TEST(RetryStatsTest, NonCampaignStreamsNeverPerturbTheReport) {
  // A journal is multi-stream: coverage, probe, cache, and (new) storm events
  // ride alongside the campaign runs. The analytics must replay the campaign
  // stream only, so interleaving every other stream is byte-neutral.
  std::vector<JournalEvent> campaign_only;
  AppendPassingRun(&campaign_only, 0, 3, 400, 200);
  AppendPassingRun(&campaign_only, 1, 9, 900, 450);

  std::vector<JournalEvent> mixed = campaign_only;
  auto foreign = [](JournalStream stream, JournalEventKind kind, int64_t t_ms,
                    int64_t value) {
    JournalEvent event;
    event.stream = stream;
    event.run_id = 0;  // Same run id as a campaign run: stream keys identity.
    event.kind = kind;
    event.t_ms = t_ms;
    event.value = value;
    return event;
  };
  mixed.insert(mixed.begin() + 1,
               foreign(JournalStream::kStorm, JournalEventKind::kQueueDepth, 250, 64));
  mixed.push_back(foreign(JournalStream::kStorm, JournalEventKind::kInflightRetries, 500, 7));
  mixed.push_back(foreign(JournalStream::kStorm, JournalEventKind::kFaultBegin, 5000, 0));
  mixed.push_back(foreign(JournalStream::kStorm, JournalEventKind::kFaultEnd, 10000, 0));
  mixed.push_back(
      foreign(JournalStream::kStorm, JournalEventKind::kBreakerHalfOpen, 12000, 1));
  mixed.push_back(foreign(JournalStream::kStorm, JournalEventKind::kBreakerClose, 12010, 1));
  mixed.push_back(foreign(JournalStream::kProbe, JournalEventKind::kProbeRepetition, 0, 1));
  mixed.push_back(foreign(JournalStream::kCache, JournalEventKind::kCacheHit, 0, 3));
  mixed.push_back(foreign(JournalStream::kCoverage, JournalEventKind::kWork, 0, 100));

  RetryStatsReport a = ComputeRetryStats(campaign_only);
  RetryStatsReport b = ComputeRetryStats(mixed);
  ASSERT_EQ(a.runs.size(), b.runs.size());
  EXPECT_EQ(a.campaign_runs, b.campaign_runs);
  EXPECT_DOUBLE_EQ(a.amplification, b.amplification);
  EXPECT_EQ(a.wasted_steps, b.wasted_steps);
  EXPECT_EQ(a.time_to_recover_ms_total, b.time_to_recover_ms_total);
  EXPECT_DOUBLE_EQ(a.latency_p99_ms, b.latency_p99_ms);
}

TEST(RetryStatsTest, OverlappingChaosFaultsAccumulateRecoveryBackoff) {
  // Two chaos host failures inside one run (overlapping fault windows): the
  // recovery charge is the SUM of the backoff the host paid, not the last leg.
  std::vector<JournalEvent> events;
  uint32_t seq = 0;
  events.push_back(Event(0, seq++, JournalEventKind::kRunBegin, 0, 0, 1));
  events.push_back(Event(0, seq++, JournalEventKind::kHostFailure, 1, 0, 1, "chaos"));
  events.push_back(Event(0, seq++, JournalEventKind::kBackoffWait, 2, 0, 40));
  events.push_back(Event(0, seq++, JournalEventKind::kHostFailure, 2, 0, 1, "chaos"));
  events.push_back(Event(0, seq++, JournalEventKind::kBackoffWait, 3, 0, 80));
  events.push_back(Event(0, seq++, JournalEventKind::kAttemptBegin, 3, 0, 0));
  events.push_back(Event(0, seq++, JournalEventKind::kWork, 3, 0, 50));
  events.push_back(Event(0, seq++, JournalEventKind::kAttemptEnd, 3, 0, 20, "passed"));
  RetryStatsReport report = ComputeRetryStats(events);

  ASSERT_EQ(report.runs.size(), 1u);
  EXPECT_EQ(report.runs[0].chaos_failures, 2);
  EXPECT_EQ(report.runs[0].time_to_recover_ms, 120);
  EXPECT_EQ(report.time_to_recover_ms_total, 120);
  EXPECT_EQ(report.time_to_recover_ms_max, 120);
  ASSERT_EQ(report.locations.size(), 1u);
  EXPECT_EQ(report.locations[0].recovered_runs, 1u);
}

TEST(RetryStatsTest, FaultClearingWithInFlightApplicationBackoffIsNotRecovery) {
  // The fault clears while the application's own retry loop is mid-backoff:
  // in-run sleeps are latency, not time-to-recover — only host backoff after
  // a chaos failure counts, and a run with no chaos failure recovers nothing.
  std::vector<JournalEvent> events;
  uint32_t seq = 0;
  events.push_back(Event(0, seq++, JournalEventKind::kRunBegin, 0, 0, 1));
  events.push_back(Event(0, seq++, JournalEventKind::kAttemptBegin, 1, 0, 0));
  events.push_back(Event(0, seq++, JournalEventKind::kInjectFire, 1, 0, 0));
  events.push_back(Event(0, seq++, JournalEventKind::kSleep, 1, 100, 100));
  events.push_back(Event(0, seq++, JournalEventKind::kInjectFire, 1, 100, 1));
  events.push_back(Event(0, seq++, JournalEventKind::kSleep, 1, 300, 200));
  events.push_back(Event(0, seq++, JournalEventKind::kWork, 1, 0, 90));
  events.push_back(Event(0, seq++, JournalEventKind::kAttemptEnd, 1, 0, 320, "passed"));
  RetryStatsReport report = ComputeRetryStats(events);

  ASSERT_EQ(report.runs.size(), 1u);
  EXPECT_EQ(report.runs[0].sleep_ms, 300);
  EXPECT_EQ(report.runs[0].chaos_failures, 0);
  EXPECT_EQ(report.runs[0].time_to_recover_ms, -1);
  EXPECT_EQ(report.time_to_recover_ms_total, 0);
}

TEST(RetryStatsTest, ZeroGoodputRunsStillYieldExactQuantiles) {
  // Every run fails: goodput is exactly zero, yet the failed attempts DID
  // complete with a verdict, so their virtual durations still feed the
  // latency quantiles (a zero-goodput storm is precisely when you read them).
  std::vector<JournalEvent> events;
  const int64_t latencies[] = {10, 30, 50};
  for (uint64_t r = 0; r < 3; ++r) {
    uint32_t seq = 0;
    events.push_back(Event(r, seq++, JournalEventKind::kRunBegin, 0, 0, 1));
    events.push_back(Event(r, seq++, JournalEventKind::kAttemptBegin, 1, 0, 0));
    events.push_back(Event(r, seq++, JournalEventKind::kInjectFire, 1, 0, 0));
    events.push_back(Event(r, seq++, JournalEventKind::kWork, 1, 0, 200));
    events.push_back(
        Event(r, seq++, JournalEventKind::kAttemptEnd, 1, 0, latencies[r], "failed"));
  }
  RetryStatsReport report = ComputeRetryStats(events);
  EXPECT_EQ(report.goodput_steps, 0);
  EXPECT_DOUBLE_EQ(report.goodput_ratio, 0.0);
  EXPECT_DOUBLE_EQ(report.latency_p50_ms, 30.0);
  EXPECT_DOUBLE_EQ(report.latency_p90_ms, 46.0);  // rank 1.8 between 30 and 50.

  // A journal with NO completed run yields defined (zero) quantiles, not UB.
  std::vector<JournalEvent> never;
  uint32_t seq = 0;
  never.push_back(Event(0, seq++, JournalEventKind::kRunBegin, 0, 0, 1));
  never.push_back(Event(0, seq++, JournalEventKind::kQuarantine, 0, 0, 0, "host: gave up"));
  RetryStatsReport empty = ComputeRetryStats(never);
  EXPECT_DOUBLE_EQ(empty.latency_p50_ms, 0.0);
  EXPECT_DOUBLE_EQ(empty.latency_p99_ms, 0.0);
}

TEST(ExactQuantileTest, BoundsAndEdgeCases) {
  EXPECT_DOUBLE_EQ(ExactQuantile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(ExactQuantile({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(ExactQuantile({7.0}, 1.0), 7.0);
  EXPECT_DOUBLE_EQ(ExactQuantile({1.0, 2.0}, 0.5), 1.5);
  // Out-of-range q clamps instead of reading out of bounds.
  EXPECT_DOUBLE_EQ(ExactQuantile({1.0, 2.0}, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(ExactQuantile({1.0, 2.0}, 2.0), 2.0);
}

TEST(HistogramQuantileTest, EstimateStaysInsideObservedRange) {
  MetricsRegistry metrics;
  const double values[] = {1, 3, 5, 9, 17, 33, 120, 700, 2500, 10000};
  for (double v : values) {
    metrics.Observe("h", v);
  }
  HistogramSnapshot snapshot = metrics.HistogramFor("h");
  double last = 0;
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    const double estimate = snapshot.Quantile(q);
    EXPECT_GE(estimate, snapshot.min) << q;
    EXPECT_LE(estimate, snapshot.max) << q;
    EXPECT_GE(estimate, last) << q;  // Monotone in q.
    last = estimate;
  }
  EXPECT_DOUBLE_EQ(snapshot.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(snapshot.Quantile(1.0), 10000.0);
}

TEST(HistogramQuantileTest, UniformValueIsExact) {
  MetricsRegistry metrics;
  for (int i = 0; i < 8; ++i) {
    metrics.Observe("u", 42.0);
  }
  HistogramSnapshot snapshot = metrics.HistogramFor("u");
  EXPECT_DOUBLE_EQ(snapshot.Quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(snapshot.Quantile(0.99), 42.0);
  EXPECT_DOUBLE_EQ(MetricsRegistry().HistogramFor("missing").Quantile(0.5), 0.0);
}

TEST(OpenMetricsTest, ExposesCountersGaugesAndCumulativeHistograms) {
  MetricsRegistry metrics;
  metrics.Increment("campaign.runs", 7);
  metrics.SetGauge("retry.amplification", 1.5);
  metrics.Observe("retry.run_virtual_ms", 3.0);
  metrics.Observe("retry.run_virtual_ms", 100.0);
  metrics.AppendSeries("coverage.cumulative", 1.0);  // Series are omitted.
  const std::string text = metrics.ToOpenMetrics();

  EXPECT_NE(text.find("# TYPE campaign_runs counter\n"), std::string::npos);
  EXPECT_NE(text.find("campaign_runs_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE retry_amplification gauge\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE retry_run_virtual_ms histogram\n"), std::string::npos);
  EXPECT_NE(text.find("retry_run_virtual_ms_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("retry_run_virtual_ms_count 2"), std::string::npos);
  EXPECT_EQ(text.find("coverage"), std::string::npos);
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
  // Cumulative bucket counts never decrease.
  uint64_t previous = 0;
  size_t pos = 0;
  while ((pos = text.find("retry_run_virtual_ms_bucket", pos)) != std::string::npos) {
    const size_t space = text.find(' ', pos);
    const size_t eol = text.find('\n', space);
    const uint64_t count = std::stoull(text.substr(space + 1, eol - space - 1));
    EXPECT_GE(count, previous);
    previous = count;
    pos = eol;
  }
}

TEST(ExportRetryStatsTest, PublishesGaugesAndCounterTracks) {
  std::vector<JournalEvent> events;
  AppendPassingRun(&events, 0, 9, 900, 450);
  RetryStatsReport report = ComputeRetryStats(events);
  MetricsRegistry metrics;
  ExportRetryStats(report, &metrics, nullptr);
  EXPECT_DOUBLE_EQ(metrics.GaugeValue("retry.amplification"), 9.0 / 4.0);
  EXPECT_DOUBLE_EQ(metrics.GaugeValue("retry.wasted_steps"),
                   static_cast<double>(report.wasted_steps));
  EXPECT_EQ(metrics.HistogramFor("retry.run_virtual_ms").count, 1u);
  // Null sinks are a no-op, not a crash.
  ExportRetryStats(report, nullptr, nullptr);
}

}  // namespace
}  // namespace wasabi
