// Fault-containment tests for the robust campaign executor: parity with the
// legacy executor when nothing fails, recovery of transient chaos faults,
// exact quarantine of persistent ones, circuit-breaker short-circuiting,
// fail-fast / quarantine-quota admission control, and — the core contract —
// byte-identical outcomes for any worker count even while the chaos harness
// is killing runs.

#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/exec/campaign.h"
#include "src/exec/task_pool.h"
#include "src/lang/diagnostics.h"
#include "src/lang/parser.h"
#include "src/testing/runner.h"

namespace wasabi {
namespace {

// Two well-behaved retry structures (capped, slept) so every run completes
// when the infrastructure doesn't fail; host failures come only from chaos.
constexpr const char* kSource = R"(
class Fetcher {
  String fetch() {
    for (var retry = 0; retry < 4; retry++) {
      try {
        return this.pull();
      } catch (IOException e) {
        Log.warn("fetch retry");
        Thread.sleep(5);
      }
    }
    return "fetch-gave-up";
  }
  String pull() throws IOException { return "data"; }
}
class Sender {
  String send() {
    for (var retry = 0; retry < 6; retry++) {
      try {
        return this.push();
      } catch (TimeoutException e) {
        Log.warn("send retry");
        Thread.sleep(9);
      }
    }
    return "send-gave-up";
  }
  String push() throws TimeoutException { return "ok"; }
}
class RobustTest {
  void testFetch() {
    var f = new Fetcher();
    f.fetch();
  }
  void testSend() {
    var s = new Sender();
    s.send();
  }
  void testBoth() {
    var f = new Fetcher();
    var s = new Sender();
    f.fetch();
    s.send();
  }
}
)";

class RobustCampaignTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mj::DiagnosticEngine diag;
    program_.AddUnit(mj::ParseSource("robust.mj", kSource, diag));
    ASSERT_FALSE(diag.has_errors());
    index_ = std::make_unique<mj::ProgramIndex>(program_);
    runner_ = std::make_unique<TestRunner>(program_, *index_);

    RetryLocation fetch;
    fetch.coordinator = "Fetcher.fetch";
    fetch.retried_method = "Fetcher.pull";
    fetch.exception_name = "IOException";
    fetch.file = "robust.mj";
    RetryLocation send;
    send.coordinator = "Sender.send";
    send.retried_method = "Sender.push";
    send.exception_name = "TimeoutException";
    send.file = "robust.mj";
    locations_ = {fetch, send};

    std::vector<PlanEntry> plan;
    for (const char* test :
         {"RobustTest.testFetch", "RobustTest.testSend", "RobustTest.testBoth"}) {
      plan.push_back(PlanEntry{test, 0});
      plan.push_back(PlanEntry{test, 1});
    }
    specs_ = ExpandPlan(plan, locations_, {kInjectOnce, kInjectRepeatedly});
    ASSERT_EQ(specs_.size(), 12u);
  }

  // Five runs hammering ONE location: the shape the breaker / fail-fast /
  // quota admission tests need (serial id-ordered reduce makes the exact
  // decision sequence predictable).
  std::vector<CampaignRunSpec> SingleLocationSpecs(size_t count) const {
    std::vector<CampaignRunSpec> specs;
    for (size_t i = 0; i < count; ++i) {
      CampaignRunSpec spec;
      spec.id = i;
      spec.test = TestCase{"RobustTest.testFetch"};
      spec.location_index = 0;
      spec.k = kInjectOnce;
      specs.push_back(std::move(spec));
    }
    return specs;
  }

  // Everything the robust executor decides, flattened for byte comparison.
  static std::string Fingerprint(const CampaignOutcome& outcome) {
    std::ostringstream out;
    out << "results=" << outcome.results.size() << "\n";
    for (const CampaignRunResult& run : outcome.results) {
      out << run.id << "|" << run.location_index << "|" << run.k << "|"
          << run.record.log.Dump() << "\n";
    }
    out << "quarantined=" << outcome.quarantined.size() << "\n";
    for (const RunFailure& failure : outcome.quarantined) {
      out << failure.run_id << "|" << failure.test << "|" << failure.location << "|"
          << RunFailureKindName(failure.kind) << "|" << failure.detail << "|"
          << failure.attempts << "|" << failure.chaos << "\n";
    }
    const RobustnessStats& stats = outcome.robustness;
    out << "stats=" << stats.retries << "," << stats.recovered << "," << stats.quarantined
        << "," << stats.chaos_faults << "," << stats.breaker_open << ","
        << stats.fail_fast_skipped << "," << stats.backoff_virtual_ms << ","
        << stats.aborted << "\n";
    for (const std::string& key : stats.open_locations) {
      out << "open=" << key << "\n";
    }
    return out.str();
  }

  mj::Program program_;
  std::unique_ptr<mj::ProgramIndex> index_;
  std::unique_ptr<TestRunner> runner_;
  std::vector<RetryLocation> locations_;
  std::vector<CampaignRunSpec> specs_;
};

TEST_F(RobustCampaignTest, ParityWithLegacyExecutorWhenNothingFails) {
  TaskPool reference_pool(1);
  std::vector<CampaignRunResult> reference =
      ExecuteCampaign(*runner_, locations_, specs_, reference_pool);

  for (int workers : {1, 4}) {
    TaskPool pool(workers);
    CampaignOutcome outcome =
        ExecuteCampaignRobust(*runner_, locations_, specs_, pool, RobustnessOptions{});
    EXPECT_TRUE(outcome.quarantined.empty());
    ASSERT_EQ(outcome.results.size(), reference.size()) << workers << " workers";
    for (size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(outcome.results[i].id, reference[i].id);
      EXPECT_EQ(outcome.results[i].record.log.Dump(), reference[i].record.log.Dump())
          << "run " << reference[i].id << " with " << workers << " workers";
    }
    const RobustnessStats& stats = outcome.robustness;
    EXPECT_EQ(stats.retries, 0);
    EXPECT_EQ(stats.recovered, 0);
    EXPECT_EQ(stats.quarantined, 0);
    EXPECT_EQ(stats.chaos_faults, 0);
    EXPECT_EQ(stats.backoff_virtual_ms, 0);
    EXPECT_FALSE(stats.aborted);
  }
}

TEST_F(RobustCampaignTest, TransientChaosIsRecoveredOrQuarantinedExactlyAsDrawn) {
  RobustnessOptions options;
  options.breaker_threshold = 0;  // Isolate the retry path from the breaker.
  options.retry.max_attempts = 4;
  options.chaos.enabled = true;
  options.chaos.seed = 7;
  options.chaos.rate = 0.5;
  options.chaos.transient = true;

  // The chaos draw is a pure function, so the test can compute the exact
  // expected outcome per run id: the first non-faulting attempt, or
  // quarantine when all attempts fault.
  std::set<uint64_t> expect_quarantined;
  int64_t expect_faults = 0;
  int64_t expect_recovered = 0;
  for (const CampaignRunSpec& spec : specs_) {
    int first_success = 0;
    for (int attempt = 1; attempt <= options.retry.max_attempts; ++attempt) {
      if (!ChaosShouldFault(options.chaos, spec.id, attempt)) {
        first_success = attempt;
        break;
      }
      ++expect_faults;
    }
    if (first_success == 0) {
      expect_quarantined.insert(spec.id);
    } else if (first_success > 1) {
      ++expect_recovered;
    }
  }
  ASSERT_GT(expect_faults, 0) << "seed must actually fault something";

  TaskPool reference_pool(1);
  std::vector<CampaignRunResult> reference =
      ExecuteCampaign(*runner_, locations_, specs_, reference_pool);

  TaskPool pool(4);
  CampaignOutcome outcome = ExecuteCampaignRobust(*runner_, locations_, specs_, pool, options);

  std::set<uint64_t> quarantined_ids;
  for (const RunFailure& failure : outcome.quarantined) {
    quarantined_ids.insert(failure.run_id);
    EXPECT_EQ(failure.kind, RunFailureKind::kChaos);
    EXPECT_TRUE(failure.chaos);
    EXPECT_EQ(failure.attempts, options.retry.max_attempts);
  }
  EXPECT_EQ(quarantined_ids, expect_quarantined);
  EXPECT_EQ(outcome.robustness.chaos_faults, expect_faults);
  EXPECT_EQ(outcome.robustness.recovered, expect_recovered);
  // Every fault either schedules a retry or quarantines the run.
  EXPECT_EQ(outcome.robustness.retries,
            expect_faults - static_cast<int64_t>(expect_quarantined.size()));

  // Containment: the surviving runs are byte-identical to the fault-free
  // campaign — chaos may delay a run, never change its execution.
  ASSERT_EQ(outcome.results.size(), specs_.size() - expect_quarantined.size());
  for (const CampaignRunResult& run : outcome.results) {
    EXPECT_EQ(run.record.log.Dump(), reference[run.id].record.log.Dump()) << "run " << run.id;
  }
}

TEST_F(RobustCampaignTest, OutcomeIsByteIdenticalAcrossWorkerCounts) {
  RobustnessOptions options;
  options.breaker_threshold = 0;
  options.retry.max_attempts = 3;
  options.chaos.enabled = true;
  options.chaos.seed = 5;
  options.chaos.rate = 0.5;
  options.chaos.transient = true;
  options.chaos.budget_fraction = 0.4;  // Mix host faults and budget aborts.

  TaskPool serial(1);
  const std::string reference =
      Fingerprint(ExecuteCampaignRobust(*runner_, locations_, specs_, serial, options));
  for (int workers : {2, 4, 8}) {
    TaskPool pool(workers);
    EXPECT_EQ(Fingerprint(ExecuteCampaignRobust(*runner_, locations_, specs_, pool, options)),
              reference)
        << workers << " workers";
  }
}

TEST_F(RobustCampaignTest, PersistentChaosQuarantinesExactlyTheFaultedIdentities) {
  RobustnessOptions options;
  options.breaker_threshold = 0;
  options.retry.max_attempts = 3;
  options.chaos.enabled = true;
  options.chaos.seed = 3;
  options.chaos.rate = 0.5;
  options.chaos.transient = false;  // Retry cannot save a faulted identity.

  std::set<uint64_t> expect_quarantined;
  for (const CampaignRunSpec& spec : specs_) {
    if (ChaosShouldFault(options.chaos, spec.id, 1)) {
      expect_quarantined.insert(spec.id);
    }
  }
  ASSERT_FALSE(expect_quarantined.empty()) << "seed must fault some identity";
  ASSERT_LT(expect_quarantined.size(), specs_.size()) << "seed must spare some identity";

  TaskPool pool(4);
  CampaignOutcome outcome = ExecuteCampaignRobust(*runner_, locations_, specs_, pool, options);

  std::set<uint64_t> quarantined_ids;
  for (const RunFailure& failure : outcome.quarantined) {
    quarantined_ids.insert(failure.run_id);
    // A persistent fault burns the full attempt budget before quarantine.
    EXPECT_EQ(failure.attempts, options.retry.max_attempts);
  }
  EXPECT_EQ(quarantined_ids, expect_quarantined);
  EXPECT_EQ(outcome.results.size(), specs_.size() - expect_quarantined.size());
  EXPECT_EQ(outcome.robustness.recovered, 0);
}

TEST_F(RobustCampaignTest, BreakerOpensAndShortCircuitsRetries) {
  std::vector<CampaignRunSpec> specs = SingleLocationSpecs(5);
  RobustnessOptions options;
  options.breaker_threshold = 3;
  options.retry.max_attempts = 3;
  options.chaos.enabled = true;
  options.chaos.rate = 1.0;  // Every attempt faults.

  TaskPool pool(4);
  CampaignOutcome outcome = ExecuteCampaignRobust(*runner_, locations_, specs, pool, options);

  // Wave 1 reduce, id order: runs 0 and 1 are scheduled for retry before the
  // third consecutive failure (run 2) opens the circuit; runs 2-4 quarantine
  // with their own chaos failure; wave 2 then skips runs 0 and 1 at admission.
  EXPECT_TRUE(outcome.results.empty());
  ASSERT_EQ(outcome.quarantined.size(), 5u);
  const std::string key = locations_[0].Key();
  for (const RunFailure& failure : outcome.quarantined) {
    if (failure.run_id <= 1) {
      EXPECT_EQ(failure.detail, "skipped: circuit open for " + key) << failure.run_id;
      EXPECT_FALSE(failure.chaos);
    } else {
      EXPECT_EQ(failure.kind, RunFailureKind::kChaos) << failure.run_id;
      EXPECT_TRUE(failure.chaos);
    }
  }
  EXPECT_EQ(outcome.robustness.retries, 2);
  EXPECT_EQ(outcome.robustness.chaos_faults, 5);
  EXPECT_EQ(outcome.robustness.breaker_open, 2);
  EXPECT_EQ(outcome.robustness.open_locations, (std::vector<std::string>{key}));
}

TEST_F(RobustCampaignTest, FailFastSkipsPendingRunsAfterFirstQuarantine) {
  std::vector<CampaignRunSpec> specs = SingleLocationSpecs(5);
  RobustnessOptions options;
  options.breaker_threshold = 3;
  options.retry.max_attempts = 3;
  options.fail_fast = true;
  options.chaos.enabled = true;
  options.chaos.rate = 1.0;

  TaskPool pool(2);
  CampaignOutcome outcome = ExecuteCampaignRobust(*runner_, locations_, specs, pool, options);

  ASSERT_EQ(outcome.quarantined.size(), 5u);
  // Runs 0 and 1 survive wave 1 as retries; with quarantines on the books,
  // fail-fast skips them at wave-2 admission (before the breaker check).
  for (const RunFailure& failure : outcome.quarantined) {
    if (failure.run_id <= 1) {
      EXPECT_EQ(failure.detail, "skipped: fail-fast after earlier quarantine")
          << failure.run_id;
    }
  }
  EXPECT_EQ(outcome.robustness.fail_fast_skipped, 2);
  EXPECT_EQ(outcome.robustness.breaker_open, 0);
  EXPECT_FALSE(outcome.robustness.aborted);
}

TEST_F(RobustCampaignTest, QuarantineQuotaAbortsTheCampaign) {
  std::vector<CampaignRunSpec> specs = SingleLocationSpecs(5);
  RobustnessOptions options;
  options.breaker_threshold = 3;
  options.retry.max_attempts = 3;
  options.max_quarantined = 1;
  options.chaos.enabled = true;
  options.chaos.rate = 1.0;

  TaskPool pool(2);
  CampaignOutcome outcome = ExecuteCampaignRobust(*runner_, locations_, specs, pool, options);

  ASSERT_EQ(outcome.quarantined.size(), 5u);
  for (const RunFailure& failure : outcome.quarantined) {
    if (failure.run_id <= 1) {
      EXPECT_EQ(failure.detail, "skipped: quarantine limit reached") << failure.run_id;
    }
  }
  EXPECT_TRUE(outcome.robustness.aborted);
}

TEST_F(RobustCampaignTest, CoverageParityAndFullRateQuarantine) {
  std::vector<TestCase> tests = runner_->DiscoverTests();
  ASSERT_EQ(tests.size(), 3u);

  TaskPool pool(4);
  CoverageMap reference = MapCoverageParallel(*runner_, tests, locations_, pool);

  // Fault-free robust pass: exactly the legacy map, nothing quarantined.
  CoverageOutcome clean =
      MapCoverageRobust(*runner_, tests, locations_, pool, RobustnessOptions{});
  EXPECT_EQ(clean.coverage, reference);
  EXPECT_TRUE(clean.quarantined.empty());

  // Full-rate chaos: every test quarantined under its own index, coverage
  // empty — the pass degrades instead of dying.
  RobustnessOptions chaotic;
  chaotic.retry.max_attempts = 2;
  chaotic.chaos.enabled = true;
  chaotic.chaos.rate = 1.0;
  for (int workers : {1, 4}) {
    TaskPool chaos_pool(workers);
    CoverageOutcome outcome =
        MapCoverageRobust(*runner_, tests, locations_, chaos_pool, chaotic);
    EXPECT_TRUE(outcome.coverage.empty()) << workers << " workers";
    ASSERT_EQ(outcome.quarantined.size(), tests.size()) << workers << " workers";
    for (size_t i = 0; i < outcome.quarantined.size(); ++i) {
      EXPECT_EQ(outcome.quarantined[i].run_id, i);
      EXPECT_EQ(outcome.quarantined[i].test, tests[i].qualified_name);
      EXPECT_EQ(outcome.quarantined[i].location, "<coverage>");
      EXPECT_EQ(outcome.quarantined[i].attempts, chaotic.retry.max_attempts);
    }
    EXPECT_EQ(outcome.robustness.recovered, 0);
  }
}

}  // namespace
}  // namespace wasabi
