// Corpus-wide chaos-containment proof (docs/ROBUSTNESS.md): the dynamic
// workflow of every corpus application is run with the self-chaos harness
// killing ~10% of run attempts, at 1/2/4/8 workers. The contract under test:
//
//   1. the full outcome — bug reports, quarantine list, resilience counters —
//      is byte-identical for every worker count (chaos draws are a pure
//      function of run identity, never of scheduling);
//   2. the campaign never dies: chaos or not, the workflow returns;
//   3. containment modulo quarantine: when the retry policy recovers every
//      transient fault (the common case at 10%), the report is byte-identical
//      to the fault-free run — chaos may delay runs, never change them.

#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/core/report_json.h"
#include "src/core/wasabi.h"
#include "src/corpus/corpus.h"

namespace wasabi {
namespace {

std::string Fingerprint(const DynamicResult& result) {
  std::ostringstream out;
  out << "degraded=" << result.degraded << "\n";
  out << "bugs=" << BugReportsToJson(result.bugs);
  out << "quarantined=" << result.quarantined.size() << "\n";
  for (const RunFailure& failure : result.quarantined) {
    out << failure.run_id << "|" << failure.test << "|" << failure.location << "|"
        << RunFailureKindName(failure.kind) << "|" << failure.detail << "|"
        << failure.attempts << "|" << failure.chaos << "\n";
  }
  const RobustnessStats& stats = result.robustness;
  out << "stats=" << stats.retries << "," << stats.recovered << "," << stats.quarantined
      << "," << stats.chaos_faults << "," << stats.breaker_open << ","
      << stats.fail_fast_skipped << "," << stats.backoff_virtual_ms << "," << stats.aborted
      << "\n";
  out << "coverage=\n";
  for (const auto& [test, hits] : result.coverage) {
    out << test << ":" << hits.size() << "\n";
  }
  return out.str();
}

class ChaosContainmentTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ChaosContainmentTest, ChaoticCampaignIsDeterministicAndContained) {
  CorpusApp app = BuildCorpusApp(GetParam());

  WasabiOptions clean_options;
  clean_options.app_name = app.name;
  clean_options.default_configs = app.default_configs;
  clean_options.jobs = 1;
  Wasabi clean_tool(app.program, *app.index, clean_options);
  DynamicResult clean = clean_tool.RunDynamicWorkflow();
  ASSERT_FALSE(clean.degraded);
  ASSERT_TRUE(clean.quarantined.empty());

  WasabiOptions chaos_options = clean_options;
  chaos_options.robust.chaos.enabled = true;
  chaos_options.robust.chaos.seed = 42;
  chaos_options.robust.chaos.rate = 0.1;
  chaos_options.robust.chaos.transient = true;
  Wasabi chaotic_tool(app.program, *app.index, chaos_options);

  DynamicResult serial = chaotic_tool.RunDynamicWorkflow();
  const std::string reference = Fingerprint(serial);
  EXPECT_GT(serial.robustness.chaos_faults, 0)
      << "10% chaos over a whole campaign must fault something";

  for (int jobs : {2, 4, 8}) {
    chaotic_tool.set_jobs(jobs);
    DynamicResult parallel = chaotic_tool.RunDynamicWorkflow();
    EXPECT_EQ(parallel.jobs_used, jobs);
    EXPECT_EQ(Fingerprint(parallel), reference) << "jobs=" << jobs;
  }

  // Containment modulo quarantine: every recovered run must be identical to
  // its fault-free twin, so with nothing quarantined the whole report matches
  // byte for byte. (Whether anything IS quarantined at 10% transient chaos is
  // a deterministic property of the seed, pinned by the fingerprint above.)
  if (serial.quarantined.empty()) {
    EXPECT_FALSE(serial.degraded);
    EXPECT_EQ(BugReportsToJson(serial.bugs), BugReportsToJson(clean.bugs));
  } else {
    EXPECT_TRUE(serial.degraded);
    // Degraded, not dead: a quarantined run can only remove evidence, so no
    // bug outside the fault-free set may appear.
    std::set<std::string> clean_keys;
    for (const BugReport& bug : clean.bugs) {
      clean_keys.insert(bug.MatchKey());
    }
    for (const BugReport& bug : serial.bugs) {
      EXPECT_TRUE(clean_keys.count(bug.MatchKey())) << bug.MatchKey();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllCorpusApps, ChaosContainmentTest,
                         ::testing::ValuesIn(CorpusAppNames()),
                         [](const ::testing::TestParamInfo<std::string>& param_info) {
                           return param_info.param;
                         });

}  // namespace
}  // namespace wasabi
