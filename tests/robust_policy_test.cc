// Unit tests for the robustness primitives (docs/ROBUSTNESS.md): the failure
// taxonomy and classifier, the reference retry policy, the per-location
// circuit breaker, and the deterministic chaos harness. Everything here must
// be a pure function of its inputs — no wall clock, no live RNG — because the
// campaign executor's worker-count-independence proof rests on it.

#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/interp/interpreter.h"
#include "src/robust/robust.h"
#include "src/storm/storm.h"

namespace wasabi {
namespace {

// --- Failure taxonomy --------------------------------------------------------

TEST(RunFailureTest, KindNamesAreStable) {
  EXPECT_STREQ(RunFailureKindName(RunFailureKind::kHostException), "host-exception");
  EXPECT_STREQ(RunFailureKindName(RunFailureKind::kStepBudget), "step-budget");
  EXPECT_STREQ(RunFailureKindName(RunFailureKind::kVirtualTime), "virtual-time");
  EXPECT_STREQ(RunFailureKindName(RunFailureKind::kStackOverflow), "stack-overflow");
  EXPECT_STREQ(RunFailureKindName(RunFailureKind::kChaos), "chaos");
}

std::exception_ptr Capture(const std::function<void()>& thrower) {
  try {
    thrower();
  } catch (...) {
    return std::current_exception();
  }
  return nullptr;
}

TEST(ClassifyFailureTest, StandardExceptionKeepsItsMessage) {
  RunFailure failure =
      ClassifyFailure(Capture([] { throw std::runtime_error("disk on fire"); }));
  EXPECT_EQ(failure.kind, RunFailureKind::kHostException);
  EXPECT_EQ(failure.detail, "disk on fire");
  EXPECT_FALSE(failure.chaos);
}

TEST(ClassifyFailureTest, ChaosHostFaultIsTaggedChaos) {
  RunFailure failure = ClassifyFailure(Capture([] { throw ChaosHostFault{7, 2}; }));
  EXPECT_EQ(failure.kind, RunFailureKind::kChaos);
  EXPECT_TRUE(failure.chaos);
  EXPECT_NE(failure.detail.find("identity 7"), std::string::npos);
  EXPECT_NE(failure.detail.find("attempt 2"), std::string::npos);
}

TEST(ClassifyFailureTest, ChaosBudgetFaultMapsToAbortKindAndStaysChaos) {
  RunFailure step = ClassifyFailure(
      Capture([] { throw ChaosBudgetFault{AbortReason::kStepBudget, 1}; }));
  EXPECT_EQ(step.kind, RunFailureKind::kStepBudget);
  EXPECT_TRUE(step.chaos);

  RunFailure stack = ClassifyFailure(
      Capture([] { throw ChaosBudgetFault{AbortReason::kStackOverflow, 1}; }));
  EXPECT_EQ(stack.kind, RunFailureKind::kStackOverflow);
  EXPECT_TRUE(stack.chaos);
}

TEST(ClassifyFailureTest, LeakedExecutionAbortIsNotChaos) {
  RunFailure failure = ClassifyFailure(
      Capture([] { throw ExecutionAborted{AbortReason::kVirtualTimeBudget}; }));
  EXPECT_EQ(failure.kind, RunFailureKind::kVirtualTime);
  EXPECT_FALSE(failure.chaos);
  EXPECT_NE(failure.detail.find("execution aborted"), std::string::npos);
}

TEST(ClassifyFailureTest, ForeignExceptionTypesAreContained) {
  // Not derived from std::exception: only catch (...) sees it.
  RunFailure failure = ClassifyFailure(Capture([] { throw 42; }));
  EXPECT_EQ(failure.kind, RunFailureKind::kHostException);
  EXPECT_EQ(failure.detail, "unknown non-standard exception");
}

TEST(ClassifyFailureTest, NullPointerYieldsPlaceholderDetail) {
  RunFailure failure = ClassifyFailure(nullptr);
  EXPECT_EQ(failure.detail, "no exception captured");
}

// --- Retry policy ------------------------------------------------------------

TEST(RetryPolicyTest, ShouldRetryHonorsMaxAttempts) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  EXPECT_TRUE(policy.ShouldRetry(2));
  EXPECT_TRUE(policy.ShouldRetry(3));
  EXPECT_FALSE(policy.ShouldRetry(4));

  policy.max_attempts = 1;  // No retry at all.
  EXPECT_FALSE(policy.ShouldRetry(2));
}

TEST(RetryPolicyTest, BackoffGrowsExponentiallyWithoutJitter) {
  RetryPolicy policy;
  policy.base_backoff_ms = 10;
  policy.multiplier = 2.0;
  policy.max_backoff_ms = 1000;
  policy.jitter = 0.0;
  EXPECT_EQ(policy.BackoffMs(0, 1), 0);  // The first attempt never waits.
  EXPECT_EQ(policy.BackoffMs(0, 2), 10);
  EXPECT_EQ(policy.BackoffMs(0, 3), 20);
  EXPECT_EQ(policy.BackoffMs(0, 4), 40);
}

TEST(RetryPolicyTest, BackoffIsCapped) {
  RetryPolicy policy;
  policy.base_backoff_ms = 10;
  policy.multiplier = 10.0;
  policy.max_backoff_ms = 50;
  policy.jitter = 0.0;
  EXPECT_EQ(policy.BackoffMs(0, 2), 10);
  EXPECT_EQ(policy.BackoffMs(0, 3), 50);
  EXPECT_EQ(policy.BackoffMs(0, 4), 50);
}

TEST(RetryPolicyTest, JitterIsDeterministicAndBounded) {
  RetryPolicy policy;
  policy.base_backoff_ms = 100;
  policy.multiplier = 1.0;
  policy.max_backoff_ms = 1000;
  policy.jitter = 0.5;
  policy.jitter_seed = 99;
  for (uint64_t identity = 0; identity < 50; ++identity) {
    int64_t first = policy.BackoffMs(identity, 2);
    // Pure hash: replaying the same (seed, identity, attempt) is bit-exact.
    EXPECT_EQ(first, policy.BackoffMs(identity, 2)) << identity;
    // Equal-jitter bounds: [backoff * (1 - jitter), backoff].
    EXPECT_GE(first, 50) << identity;
    EXPECT_LE(first, 100) << identity;
  }
}

// --- Circuit breaker ---------------------------------------------------------

TEST(CircuitBreakerTest, OpensAtThresholdConsecutiveFailures) {
  CircuitBreaker breaker(3);
  breaker.RecordFailure("loc");
  breaker.RecordFailure("loc");
  EXPECT_FALSE(breaker.IsOpen("loc"));
  breaker.RecordFailure("loc");
  EXPECT_TRUE(breaker.IsOpen("loc"));
  EXPECT_FALSE(breaker.IsOpen("other"));
}

TEST(CircuitBreakerTest, SuccessResetsTheConsecutiveCount) {
  CircuitBreaker breaker(2);
  breaker.RecordFailure("loc");
  breaker.RecordSuccess("loc");
  breaker.RecordFailure("loc");
  EXPECT_FALSE(breaker.IsOpen("loc"));  // Never two in a row.
  breaker.RecordFailure("loc");
  EXPECT_TRUE(breaker.IsOpen("loc"));
}

TEST(CircuitBreakerTest, OpenCircuitStaysOpen) {
  // A campaign has no half-open probe: once condemned, always condemned.
  CircuitBreaker breaker(1);
  breaker.RecordFailure("loc");
  ASSERT_TRUE(breaker.IsOpen("loc"));
  breaker.RecordSuccess("loc");
  EXPECT_TRUE(breaker.IsOpen("loc"));
}

TEST(CircuitBreakerTest, NonPositiveThresholdDisablesTheBreaker) {
  CircuitBreaker breaker(0);
  for (int i = 0; i < 100; ++i) {
    breaker.RecordFailure("loc");
  }
  EXPECT_FALSE(breaker.IsOpen("loc"));
  EXPECT_TRUE(breaker.OpenKeys().empty());
}

TEST(CircuitBreakerTest, OpenKeysAreSorted) {
  CircuitBreaker breaker(1);
  breaker.RecordFailure("zeta");
  breaker.RecordFailure("alpha");
  breaker.RecordFailure("mid");
  EXPECT_EQ(breaker.OpenKeys(), (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

// --- Circuit breaker half-open recovery (storm admission control) ------------

TEST(CircuitBreakerTest, CooldownAdmitsAHalfOpenProbeDeterministically) {
  CircuitBreaker breaker(1, /*cooldown=*/2);
  EXPECT_EQ(breaker.Admit("loc"), BreakerDecision::kAllow);
  breaker.RecordFailure("loc");
  ASSERT_EQ(breaker.StateOf("loc"), BreakerState::kOpen);
  // Exactly `cooldown` admissions shed, then the next one is the probe.
  EXPECT_EQ(breaker.Admit("loc"), BreakerDecision::kShed);
  EXPECT_EQ(breaker.Admit("loc"), BreakerDecision::kShed);
  EXPECT_EQ(breaker.Admit("loc"), BreakerDecision::kProbe);
  EXPECT_EQ(breaker.StateOf("loc"), BreakerState::kHalfOpen);
  // While the probe is outstanding, everything else sheds.
  EXPECT_EQ(breaker.Admit("loc"), BreakerDecision::kShed);
}

TEST(CircuitBreakerTest, ProbeSuccessClosesTheBreaker) {
  CircuitBreaker breaker(2, /*cooldown=*/1);
  breaker.RecordFailure("loc");
  breaker.RecordFailure("loc");
  EXPECT_EQ(breaker.Admit("loc"), BreakerDecision::kShed);
  ASSERT_EQ(breaker.Admit("loc"), BreakerDecision::kProbe);
  breaker.RecordSuccess("loc");
  EXPECT_EQ(breaker.StateOf("loc"), BreakerState::kClosed);
  EXPECT_FALSE(breaker.IsOpen("loc"));
  EXPECT_EQ(breaker.Admit("loc"), BreakerDecision::kAllow);
  // The failure streak restarts from zero after recovery.
  breaker.RecordFailure("loc");
  EXPECT_EQ(breaker.StateOf("loc"), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, ProbeFailureReopensAndRestartsTheCooldown) {
  CircuitBreaker breaker(1, /*cooldown=*/2);
  breaker.RecordFailure("loc");
  EXPECT_EQ(breaker.Admit("loc"), BreakerDecision::kShed);
  EXPECT_EQ(breaker.Admit("loc"), BreakerDecision::kShed);
  ASSERT_EQ(breaker.Admit("loc"), BreakerDecision::kProbe);
  breaker.RecordFailure("loc");
  EXPECT_EQ(breaker.StateOf("loc"), BreakerState::kOpen);
  // A failed probe buys a full new cooldown, not an immediate retry.
  EXPECT_EQ(breaker.Admit("loc"), BreakerDecision::kShed);
  EXPECT_EQ(breaker.Admit("loc"), BreakerDecision::kShed);
  EXPECT_EQ(breaker.Admit("loc"), BreakerDecision::kProbe);
}

TEST(CircuitBreakerTest, ZeroCooldownKeepsCampaignNeverCloseSemantics) {
  CircuitBreaker breaker(1);  // Default cooldown 0: the campaign's breaker.
  breaker.RecordFailure("loc");
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(breaker.Admit("loc"), BreakerDecision::kShed);
  }
  EXPECT_EQ(breaker.StateOf("loc"), BreakerState::kOpen);
}

TEST(CircuitBreakerTest, CampaignAndStormDefaultsStayPinnedApart) {
  // The two consumers of CircuitBreaker deliberately disagree about
  // half-opening and must never drift together (docs/ROBUSTNESS.md): the
  // campaign's quarantine is final (cooldown 0 — a condemned injection
  // location would re-crash every probe), while the storm simulator models a
  // production admission breaker that probes after a cooldown.
  const RobustnessOptions campaign_defaults;
  const StormOptions storm_defaults;
  ASSERT_EQ(campaign_defaults.breaker_cooldown, 0);
  ASSERT_EQ(storm_defaults.breaker_cooldown, 25);

  CircuitBreaker campaign(/*threshold=*/1, campaign_defaults.breaker_cooldown);
  campaign.RecordFailure("loc");
  int campaign_probes = 0;
  for (int i = 0; i < 200; ++i) {
    campaign_probes += campaign.Admit("loc") == BreakerDecision::kProbe ? 1 : 0;
  }
  EXPECT_EQ(campaign_probes, 0) << "the campaign breaker must never half-open";
  EXPECT_EQ(campaign.StateOf("loc"), BreakerState::kOpen);

  CircuitBreaker storm(/*threshold=*/1, storm_defaults.breaker_cooldown);
  storm.RecordFailure("loc");
  for (int i = 0; i < storm_defaults.breaker_cooldown; ++i) {
    ASSERT_EQ(storm.Admit("loc"), BreakerDecision::kShed) << "shed #" << i;
  }
  EXPECT_EQ(storm.Admit("loc"), BreakerDecision::kProbe)
      << "the storm breaker must half-open after exactly `cooldown` sheds";
}

TEST(CircuitBreakerTest, HalfOpenCountsAsOpenForOpenKeysButNotIsOpen) {
  CircuitBreaker breaker(1, /*cooldown=*/1);
  breaker.RecordFailure("loc");
  breaker.Admit("loc");
  ASSERT_EQ(breaker.Admit("loc"), BreakerDecision::kProbe);
  // Half-open is not "open" for the campaign's skip check (the probe must
  // run), but the key still shows up in the end-of-run condemned listing.
  EXPECT_FALSE(breaker.IsOpen("loc"));
  EXPECT_EQ(breaker.OpenKeys(), (std::vector<std::string>{"loc"}));
}

// --- Chaos harness -----------------------------------------------------------

TEST(ChaosTest, DisabledOrZeroRateNeverFaults) {
  ChaosConfig off;  // enabled = false.
  ChaosConfig zero;
  zero.enabled = true;
  zero.rate = 0.0;
  for (uint64_t identity = 0; identity < 200; ++identity) {
    EXPECT_FALSE(ChaosShouldFault(off, identity, 1));
    EXPECT_FALSE(ChaosShouldFault(zero, identity, 1));
  }
}

TEST(ChaosTest, FullRateAlwaysFaults) {
  ChaosConfig config;
  config.enabled = true;
  config.rate = 1.0;
  for (uint64_t identity = 0; identity < 200; ++identity) {
    EXPECT_TRUE(ChaosShouldFault(config, identity, 1));
    EXPECT_TRUE(ChaosShouldFault(config, identity, 3));
  }
}

TEST(ChaosTest, DrawIsAPureFunctionOfSeedIdentityAttempt) {
  ChaosConfig config;
  config.enabled = true;
  config.seed = 42;
  config.rate = 0.3;
  for (uint64_t identity = 0; identity < 500; ++identity) {
    for (int attempt = 1; attempt <= 3; ++attempt) {
      EXPECT_EQ(ChaosShouldFault(config, identity, attempt),
                ChaosShouldFault(config, identity, attempt))
          << identity << "/" << attempt;
    }
  }
}

TEST(ChaosTest, TransientFaultsVaryByAttemptPersistentDoNot) {
  ChaosConfig transient;
  transient.enabled = true;
  transient.seed = 7;
  transient.rate = 0.5;
  transient.transient = true;
  bool some_draw_differs = false;
  for (uint64_t identity = 0; identity < 100 && !some_draw_differs; ++identity) {
    some_draw_differs = ChaosShouldFault(transient, identity, 1) !=
                        ChaosShouldFault(transient, identity, 2);
  }
  EXPECT_TRUE(some_draw_differs) << "transient draws must depend on the attempt";

  ChaosConfig persistent = transient;
  persistent.transient = false;
  for (uint64_t identity = 0; identity < 100; ++identity) {
    EXPECT_EQ(ChaosShouldFault(persistent, identity, 1),
              ChaosShouldFault(persistent, identity, 5))
        << identity;
  }
}

TEST(ChaosTest, RateIsApproximatelyHonored) {
  ChaosConfig config;
  config.enabled = true;
  config.seed = 11;
  config.rate = 0.1;
  int faulted = 0;
  const int kDraws = 10000;
  for (uint64_t identity = 0; identity < kDraws; ++identity) {
    faulted += ChaosShouldFault(config, identity, 1) ? 1 : 0;
  }
  EXPECT_GT(faulted, kDraws / 20);      // > 5%
  EXPECT_LT(faulted, kDraws * 3 / 20);  // < 15%
}

TEST(ChaosTest, MaybeFaultThrowsTheHostFaultWithItsIdentity) {
  ChaosConfig config;
  config.enabled = true;
  config.rate = 1.0;
  try {
    ChaosMaybeFault(config, 17, 2);
    FAIL() << "expected a chaos fault";
  } catch (const ChaosHostFault& fault) {
    EXPECT_EQ(fault.identity, 17u);
    EXPECT_EQ(fault.attempt, 2);
  }
}

TEST(ChaosTest, FullBudgetFractionPresentsAsBudgetAborts) {
  ChaosConfig config;
  config.enabled = true;
  config.rate = 1.0;
  config.budget_fraction = 1.0;
  for (uint64_t identity = 0; identity < 20; ++identity) {
    try {
      ChaosMaybeFault(config, identity, 1);
      FAIL() << "expected a chaos fault at identity " << identity;
    } catch (const ChaosBudgetFault& fault) {
      EXPECT_EQ(fault.identity, identity);
    }
  }
}

TEST(ChaosSpecTest, ParsesValidSeedRatePairs) {
  ChaosConfig config;
  std::string error;
  ASSERT_TRUE(ParseChaosSpec("42:0.1", &config, &error)) << error;
  EXPECT_TRUE(config.enabled);
  EXPECT_EQ(config.seed, 42u);
  EXPECT_DOUBLE_EQ(config.rate, 0.1);

  ASSERT_TRUE(ParseChaosSpec("0:1", &config, &error)) << error;
  EXPECT_EQ(config.seed, 0u);
  EXPECT_DOUBLE_EQ(config.rate, 1.0);
}

TEST(ChaosSpecTest, RejectsMalformedSpecs) {
  for (const char* bad : {"banana", "42", ":0.5", "42:", "x:0.5", "42:y",
                          "42:1.5", "42:-0.1", "4 2:0.5"}) {
    ChaosConfig config;
    std::string error;
    EXPECT_FALSE(ParseChaosSpec(bad, &config, &error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

// --- Stats merge -------------------------------------------------------------

TEST(RobustnessStatsTest, MergeSumsCountersAndDedupesLocations) {
  RobustnessStats a;
  a.retries = 2;
  a.quarantined = 1;
  a.backoff_virtual_ms = 30;
  a.open_locations = {"beta", "alpha"};

  RobustnessStats b;
  b.retries = 3;
  b.recovered = 1;
  b.chaos_faults = 4;
  b.open_locations = {"alpha", "gamma"};
  b.aborted = true;

  a.MergeFrom(b);
  EXPECT_EQ(a.retries, 5);
  EXPECT_EQ(a.recovered, 1);
  EXPECT_EQ(a.quarantined, 1);
  EXPECT_EQ(a.chaos_faults, 4);
  EXPECT_EQ(a.backoff_virtual_ms, 30);
  EXPECT_EQ(a.open_locations, (std::vector<std::string>{"alpha", "beta", "gamma"}));
  EXPECT_TRUE(a.aborted);
}

}  // namespace
}  // namespace wasabi
