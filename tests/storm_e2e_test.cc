// End-to-end storm pipeline over the stormlab ground-truth app: extract
// profiles from the generated sources, run the simulation, score the oracle
// output against the seeded manifest (exact TP/FP/FN), and prove the report
// and journal are byte-identical at every worker count and across reruns.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/scoring.h"
#include "src/corpus/corpus.h"
#include "src/obs/journal.h"
#include "src/storm/profile.h"
#include "src/storm/storm.h"

namespace wasabi {
namespace {

struct StormRun {
  std::string report_json;
  std::string journal_json;
  StormReport report;
};

StormRun RunOnce(const CorpusApp& app, int jobs) {
  std::vector<EdgeRetryProfile> profiles =
      ExtractRetryProfiles(app.program, *app.index, jobs);
  RetryJournal journal;
  StormOptions options;
  StormRun run;
  run.report = RunStormSim(app.name, profiles, options, &journal);
  run.report_json = StormReportToJson(run.report);
  run.journal_json = journal.ToJson(app.name);
  return run;
}

TEST(StormE2eTest, StormlabScoresExactAgainstTheSeededManifest) {
  CorpusApp app = BuildCorpusApp("stormlab");
  StormRun run = RunOnce(app, /*jobs=*/4);

  // One report per storm bug class, nothing on the healthy gateway.
  ASSERT_EQ(run.report.bugs.size(), 3u);
  for (const BugReport& bug : run.report.bugs) {
    EXPECT_EQ(bug.technique, DetectionTechnique::kStormSim);
    EXPECT_EQ(bug.app, "stormlab");
  }

  std::vector<SeededBug> truth = DetectableBugs(app.bugs, DetectionTechnique::kStormSim);
  ASSERT_EQ(truth.size(), 3u) << "stormlab seeds exactly one bug per storm class";
  Scorecard scorecard = ScoreReports(run.report.bugs, truth);
  ScoreCell total = scorecard.TotalAll();
  EXPECT_EQ(total.true_positives, 3);
  EXPECT_EQ(total.false_positives, 0);
  EXPECT_EQ(total.false_negatives, 0);
  EXPECT_EQ(scorecard.Total(BugType::kStormMissingJitter).true_positives, 1);
  EXPECT_EQ(scorecard.Total(BugType::kStormUnboundedFanout).true_positives, 1);
  EXPECT_EQ(scorecard.Total(BugType::kStormRetryOnOverload).true_positives, 1);
}

TEST(StormE2eTest, ReportAndJournalAreByteIdenticalAtAnyWorkerCount) {
  CorpusApp app = BuildCorpusApp("stormlab");
  StormRun baseline = RunOnce(app, /*jobs=*/1);
  EXPECT_FALSE(baseline.report_json.empty());
  EXPECT_FALSE(baseline.journal_json.empty());
  for (int jobs : {2, 4, 8}) {
    StormRun run = RunOnce(app, jobs);
    EXPECT_EQ(run.report_json, baseline.report_json) << "jobs=" << jobs;
    EXPECT_EQ(run.journal_json, baseline.journal_json) << "jobs=" << jobs;
  }
  // Same seed, same app, fresh everything: still byte-identical.
  StormRun rerun = RunOnce(app, /*jobs=*/1);
  EXPECT_EQ(rerun.report_json, baseline.report_json);
  EXPECT_EQ(rerun.journal_json, baseline.journal_json);
}

TEST(StormE2eTest, StormJournalRoundTripsThroughTheStrictParser) {
  CorpusApp app = BuildCorpusApp("stormlab");
  StormRun run = RunOnce(app, /*jobs=*/2);
  std::vector<JournalEvent> events;
  std::string parsed_app;
  std::string error;
  ASSERT_TRUE(RetryJournal::ParseJson(run.journal_json, &events, &parsed_app, &error)) << error;
  EXPECT_EQ(parsed_app, "stormlab");
  ASSERT_FALSE(events.empty());
  size_t storm_events = 0;
  for (const JournalEvent& event : events) {
    if (event.stream == JournalStream::kStorm) {
      storm_events++;
    }
  }
  EXPECT_EQ(storm_events, events.size()) << "a storm run only writes the kStorm stream";
}

TEST(StormE2eTest, SeedChangesJitterButNotTheVerdicts) {
  CorpusApp app = BuildCorpusApp("stormlab");
  std::vector<EdgeRetryProfile> profiles =
      ExtractRetryProfiles(app.program, *app.index, /*jobs=*/2);
  StormOptions options;
  options.seed = 2026;
  StormReport report = RunStormSim(app.name, profiles, options, nullptr);
  ASSERT_EQ(report.bugs.size(), 3u) << "oracle verdicts must be robust to the jitter seed";
  EXPECT_TRUE(report.metastable);
}

}  // namespace
}  // namespace wasabi
