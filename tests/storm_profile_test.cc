// Tests for retry-policy extraction (src/storm/profile.h): probing the
// stormlab corpus app must recover each seeded frontend's actual policy —
// bound, schedule, jitter, overload behavior, fan-out — and the result must
// be byte-identical at any worker count.

#include "src/storm/profile.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/corpus/corpus.h"

namespace wasabi {
namespace {

const EdgeRetryProfile* FindBySuffix(const std::vector<EdgeRetryProfile>& profiles,
                                     const std::string& suffix) {
  for (const EdgeRetryProfile& p : profiles) {
    if (p.service.size() >= suffix.size() &&
        p.service.compare(p.service.size() - suffix.size(), suffix.size(), suffix) == 0) {
      return &p;
    }
  }
  return nullptr;
}

class StormProfileTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    app_ = new CorpusApp(BuildCorpusApp("stormlab"));
    profiles_ = new std::vector<EdgeRetryProfile>(
        ExtractRetryProfiles(app_->program, *app_->index, /*jobs=*/1));
  }
  static void TearDownTestSuite() {
    delete profiles_;
    profiles_ = nullptr;
    delete app_;
    app_ = nullptr;
  }

  static CorpusApp* app_;
  static std::vector<EdgeRetryProfile>* profiles_;
};

CorpusApp* StormProfileTest::app_ = nullptr;
std::vector<EdgeRetryProfile>* StormProfileTest::profiles_ = nullptr;

TEST_F(StormProfileTest, FindsExactlyTheFourServiceFrontends) {
  ASSERT_EQ(profiles_->size(), 4u);
  for (size_t i = 1; i < profiles_->size(); ++i) {
    EXPECT_LT((*profiles_)[i - 1].service, (*profiles_)[i].service)
        << "profiles must be sorted by class name";
  }
  for (const EdgeRetryProfile& p : *profiles_) {
    EXPECT_EQ(p.coordinator, p.service + ".handle");
    EXPECT_FALSE(p.file.empty());
    EXPECT_GE(p.fanout, 1);
  }
}

TEST_F(StormProfileTest, HealthyGatewayIsBoundedJitteredAndSheds) {
  const EdgeRetryProfile* p = FindBySuffix(*profiles_, "Gateway");
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(p->bounded);
  EXPECT_EQ(p->attempts, 3);
  // The template sleeps in every catch arm, including the final attempt's.
  EXPECT_EQ(p->backoff_ms.size(), 3u);
  EXPECT_TRUE(p->jittered);
  EXPECT_FALSE(p->retries_on_overload);
  EXPECT_EQ(p->fanout, 1);
}

TEST_F(StormProfileTest, RelayHasAFixedUnjitteredSchedule) {
  const EdgeRetryProfile* p = FindBySuffix(*profiles_, "Relay");
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(p->bounded);
  EXPECT_EQ(p->attempts, 5);
  ASSERT_EQ(p->backoff_ms.size(), 5u);
  for (int64_t sleep_ms : p->backoff_ms) {
    EXPECT_EQ(sleep_ms, 100) << "the seeded bug is a byte-identical fixed schedule";
  }
  EXPECT_FALSE(p->jittered);
  EXPECT_FALSE(p->retries_on_overload);
  EXPECT_EQ(p->fanout, 1);
}

TEST_F(StormProfileTest, MirrorIsUnboundedWithFanoutThree) {
  const EdgeRetryProfile* p = FindBySuffix(*profiles_, "Mirror");
  ASSERT_NE(p, nullptr);
  EXPECT_FALSE(p->bounded);
  EXPECT_TRUE(p->jittered);
  EXPECT_FALSE(p->retries_on_overload);
  EXPECT_EQ(p->fanout, 3) << "each attempt re-broadcasts to all three replicas";
}

TEST_F(StormProfileTest, PumpRetriesOnOverloadWithAShortFixedDelay) {
  const EdgeRetryProfile* p = FindBySuffix(*profiles_, "Pump");
  ASSERT_NE(p, nullptr);
  EXPECT_FALSE(p->bounded);
  EXPECT_TRUE(p->jittered);
  EXPECT_TRUE(p->retries_on_overload);
  EXPECT_EQ(p->overload_backoff_ms, 10);
  EXPECT_EQ(p->fanout, 1);
}

TEST_F(StormProfileTest, ExtractionIsIdenticalAtAnyWorkerCount) {
  for (int jobs : {2, 4}) {
    std::vector<EdgeRetryProfile> parallel =
        ExtractRetryProfiles(app_->program, *app_->index, jobs);
    EXPECT_EQ(parallel, *profiles_) << "jobs=" << jobs;
  }
}

}  // namespace
}  // namespace wasabi
