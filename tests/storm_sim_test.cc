// Unit tests for the storm simulator (src/storm): the determinism kit
// (SimClock / SimRng / EventQueue) and the discrete-event engine driven by
// synthetic retry profiles, so every oracle fires (and stays quiet) on inputs
// whose ground truth is known by construction.

#include "src/storm/sim.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/obs/journal.h"
#include "src/storm/storm.h"

namespace wasabi {
namespace {

TEST(SimClockTest, AdvancesMonotonicallyAndClampsBackwardMoves) {
  SimClock clock;
  EXPECT_EQ(clock.now_ms(), 0);
  clock.AdvanceTo(42);
  EXPECT_EQ(clock.now_ms(), 42);
  clock.AdvanceTo(7);  // Backwards: clamped, never rewinds.
  EXPECT_EQ(clock.now_ms(), 42);
  clock.AdvanceTo(42);
  EXPECT_EQ(clock.now_ms(), 42);
}

TEST(SimRngTest, SameSeedSameStream) {
  SimRng a(123);
  SimRng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(SimRngTest, SplitStreamsAreIndependentOfDrawOrder) {
  // Splitting is a pure function of (parent state, salt): drawing from one
  // child must not perturb a sibling split with a different salt.
  SimRng root(7);
  SimRng left = root.Split(1);
  SimRng right = root.Split(2);
  std::vector<uint64_t> right_alone;
  {
    SimRng root2(7);
    SimRng right2 = root2.Split(2);
    for (int i = 0; i < 16; ++i) {
      right_alone.push_back(right2.Next());
    }
  }
  for (int i = 0; i < 16; ++i) {
    (void)left.Next();  // Interleave draws from the sibling.
    EXPECT_EQ(right.Next(), right_alone[i]);
  }
  // And the two salts actually diverge.
  SimRng l2 = SimRng(7).Split(1);
  SimRng r2 = SimRng(7).Split(2);
  EXPECT_NE(l2.Next(), r2.Next());
}

TEST(SimRngTest, NextIntIsInclusiveAndHandlesDegenerateRanges) {
  SimRng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.NextInt(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u) << "inclusive range [3,5] should hit all values";
  EXPECT_EQ(rng.NextInt(8, 8), 8);
  EXPECT_EQ(rng.NextInt(10, 2), 10) << "hi < lo yields lo";
}

TEST(EventQueueTest, PopsInTimeOrderWithPushOrderTiebreak) {
  EventQueue<int> q;
  q.Push(30, 1);
  q.Push(10, 2);
  q.Push(10, 3);  // Same instant as payload 2: must pop after it.
  q.Push(20, 4);
  q.Push(10, 5);
  std::vector<int> order;
  while (!q.empty()) {
    order.push_back(q.PopMin().payload);
  }
  EXPECT_EQ(order, (std::vector<int>{2, 3, 5, 4, 1}));
}

TEST(EventQueueTest, InterleavedPushPopKeepsHeapInvariant) {
  EventQueue<int> q;
  for (int i = 100; i > 0; --i) {
    q.Push(i, i);
  }
  int64_t last = -1;
  for (int i = 0; i < 50; ++i) {
    auto e = q.PopMin();
    EXPECT_GT(e.at_ms, last);
    last = e.at_ms;
    q.Push(e.at_ms + 200, e.payload);  // Reschedule past the original tail.
  }
  while (!q.empty()) {
    auto e = q.PopMin();
    EXPECT_GE(e.at_ms, last);
    last = e.at_ms;
  }
}

// --- Engine tests over synthetic profiles --------------------------------

EdgeRetryProfile HealthyProfile(const std::string& name) {
  EdgeRetryProfile p;
  p.service = name;
  p.coordinator = name + ".handle";
  p.file = "src/" + name + ".mj";
  p.bounded = true;
  p.attempts = 3;
  p.backoff_ms = {40, 80};
  p.jittered = true;
  p.retries_on_overload = false;
  p.fanout = 1;
  return p;
}

EdgeRetryProfile NoJitterProfile(const std::string& name) {
  EdgeRetryProfile p = HealthyProfile(name);
  p.attempts = 5;
  p.backoff_ms = {100, 100, 100, 100};
  p.jittered = false;
  return p;
}

EdgeRetryProfile FanoutProfile(const std::string& name) {
  EdgeRetryProfile p = HealthyProfile(name);
  p.bounded = false;
  p.attempts = 64;
  p.backoff_ms = {30};
  p.fanout = 3;
  return p;
}

EdgeRetryProfile OverloadProfile(const std::string& name) {
  EdgeRetryProfile p = HealthyProfile(name);
  p.bounded = false;
  p.attempts = 64;
  p.backoff_ms = {20};
  p.retries_on_overload = true;
  p.overload_backoff_ms = 10;
  return p;
}

TEST(StormSimTest, HealthyEdgeRecoversWithNoBugsAndAClosedBreaker) {
  RetryJournal journal;
  StormOptions options;
  StormReport report = RunStormSim("synthetic", {HealthyProfile("Gateway")}, options, &journal);

  EXPECT_TRUE(report.bugs.empty());
  EXPECT_FALSE(report.metastable);
  ASSERT_EQ(report.edges.size(), 1u);
  const StormEdgeStats& edge = report.edges[0];
  EXPECT_FALSE(edge.metastable);
  EXPECT_GT(edge.succeeded, 0);
  EXPECT_GT(edge.gave_up, 0) << "bounded policy gives up during the fault";
  EXPECT_GT(edge.shed_by_breaker, 0) << "breaker opens under persistent failure";
  // The system drains and the edge succeeds again once the fault clears.
  EXPECT_GE(report.time_to_recover_ms, 0);
  EXPECT_GE(edge.time_to_recover_ms, 0);

  // The breaker's whole arc is journaled on the edge stream: open under the
  // fault, half-open probe after cooldown, closed once a probe succeeds.
  std::set<JournalEventKind> edge_kinds;
  for (const JournalEvent& event : journal.Collect()) {
    if (event.stream == JournalStream::kStorm && event.run_id == 1) {
      edge_kinds.insert(event.kind);
    }
  }
  EXPECT_TRUE(edge_kinds.count(JournalEventKind::kBreakerOpen));
  EXPECT_TRUE(edge_kinds.count(JournalEventKind::kBreakerHalfOpen));
  EXPECT_TRUE(edge_kinds.count(JournalEventKind::kBreakerClose));
}

TEST(StormSimTest, FixedBackoffEdgeTripsTheMissingJitterOracle) {
  StormOptions options;
  StormReport report = RunStormSim("synthetic", {NoJitterProfile("Relay")}, options, nullptr);
  ASSERT_EQ(report.bugs.size(), 1u);
  EXPECT_EQ(report.bugs[0].type, BugType::kStormMissingJitter);
  EXPECT_EQ(report.bugs[0].coordinator, "Relay.handle");
  EXPECT_GE(report.edges[0].wave_peak, 3)
      << "a whole burst failing at once must retry as one wave";
}

TEST(StormSimTest, UnboundedFanoutEdgeTripsTheAmplificationOracle) {
  StormOptions options;
  StormReport report = RunStormSim("synthetic", {FanoutProfile("Mirror")}, options, nullptr);
  ASSERT_EQ(report.bugs.size(), 1u);
  EXPECT_EQ(report.bugs[0].type, BugType::kStormUnboundedFanout);
  EXPECT_EQ(report.bugs[0].coordinator, "Mirror.handle");
  EXPECT_GE(report.edges[0].amplification_x1000, 3000);
}

TEST(StormSimTest, RetryOnOverloadEdgeGoesMetastable) {
  StormOptions options;
  StormReport report = RunStormSim("synthetic", {OverloadProfile("Pump")}, options, nullptr);
  ASSERT_EQ(report.bugs.size(), 1u);
  EXPECT_EQ(report.bugs[0].type, BugType::kStormRetryOnOverload);
  EXPECT_EQ(report.bugs[0].coordinator, "Pump.handle");
  EXPECT_TRUE(report.metastable) << "offered load must still exceed capacity at the end";
  EXPECT_TRUE(report.edges[0].metastable);
  EXPECT_GT(report.backend_overload_rejections, 0);
  EXPECT_GT(report.backend_reject_work_ms, 0)
      << "rejections must burn server time or the storm would drain";
}

TEST(StormSimTest, ReportAndJournalAreDeterministicAcrossRepeatedRuns) {
  std::vector<EdgeRetryProfile> profiles = {
      HealthyProfile("Gateway"), NoJitterProfile("Relay"), FanoutProfile("Mirror"),
      OverloadProfile("Pump")};
  StormOptions options;
  options.seed = 77;
  RetryJournal journal_a;
  RetryJournal journal_b;
  StormReport a = RunStormSim("synthetic", profiles, options, &journal_a);
  StormReport b = RunStormSim("synthetic", profiles, options, &journal_b);
  EXPECT_EQ(StormReportToJson(a), StormReportToJson(b));
  EXPECT_EQ(journal_a.ToJson("synthetic"), journal_b.ToJson("synthetic"));
}

TEST(StormSimTest, SamplesCoverTheTimelineForEveryEdge) {
  RetryJournal journal;
  StormOptions options;
  StormReport report =
      RunStormSim("synthetic", {HealthyProfile("A"), NoJitterProfile("B")}, options, &journal);
  ASSERT_FALSE(report.samples.empty());
  EXPECT_EQ(report.samples.front().t_ms, 0);
  EXPECT_GE(report.samples.back().t_ms,
            report.options.duration_ms - report.options.sample_interval_ms);
  for (const StormSample& sample : report.samples) {
    EXPECT_EQ(sample.edge_inflight.size(), 2u);
  }
  // The backend timeline (run 0) carries the fault markers and depth samples.
  int64_t fault_begin = -1;
  int64_t fault_end = -1;
  size_t depth_samples = 0;
  for (const JournalEvent& event : journal.Collect()) {
    if (event.stream != JournalStream::kStorm || event.run_id != 0) {
      continue;
    }
    if (event.kind == JournalEventKind::kFaultBegin) {
      fault_begin = event.t_ms;
    } else if (event.kind == JournalEventKind::kFaultEnd) {
      fault_end = event.t_ms;
    } else if (event.kind == JournalEventKind::kQueueDepth) {
      depth_samples++;
    }
  }
  EXPECT_EQ(fault_begin, report.options.fault_start_ms);
  EXPECT_EQ(fault_end, report.options.fault_end_ms);
  EXPECT_EQ(depth_samples, report.samples.size());
}

TEST(StormSimTest, DegenerateOptionsAreNormalizedAndTerminate) {
  StormOptions options;
  options.duration_ms = -5;
  options.arrival_interval_ms = 0;
  options.burst = -3;
  options.service_ms = 0;
  options.latency_ms = -1;
  options.queue_limit = 0;
  options.reject_cost_ms = -10;
  options.request_timeout_ms = 0;
  options.fault_start_ms = 900;   // Past the (clamped) duration.
  options.fault_end_ms = 100;     // Inverted window.
  options.sample_interval_ms = 0;
  options.recovery_window_ms = -1;
  StormReport report = RunStormSim("synthetic", {HealthyProfile("G")}, options, nullptr);
  EXPECT_EQ(report.options.duration_ms, 1);
  EXPECT_EQ(report.options.burst, 1);
  EXPECT_EQ(report.options.reject_cost_ms, 0);
  EXPECT_GE(report.options.fault_end_ms, report.options.fault_start_ms);
  EXPECT_LE(report.options.fault_end_ms, report.options.duration_ms);
  EXPECT_TRUE(report.bugs.empty());
}

TEST(StormSimTest, NoProfilesYieldsAnEmptyWellFormedReport) {
  StormOptions options;
  StormReport report = RunStormSim("synthetic", {}, options, nullptr);
  EXPECT_TRUE(report.edges.empty());
  EXPECT_TRUE(report.bugs.empty());
  EXPECT_EQ(report.total_requests, 0);
  EXPECT_FALSE(report.metastable);
  std::string json = StormReportToJson(report);
  EXPECT_NE(json.find("\"wasabi-storm-v1\""), std::string::npos);
}

}  // namespace
}  // namespace wasabi
