// Regression tests distilled from the paper's listings: the buggy variant
// exhibits the defect (WASABI report or behavioral evidence) and the patched
// variant does not.

#include "src/study/listings.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/core/wasabi.h"
#include "src/lang/parser.h"

namespace wasabi {
namespace {

struct LoadedListing {
  mj::Program program;
  std::unique_ptr<mj::ProgramIndex> index;
};

LoadedListing LoadVariant(const PaperListing& listing, bool fixed) {
  LoadedListing loaded;
  mj::DiagnosticEngine diag;
  loaded.program.AddUnit(mj::ParseSource(
      listing.file_name, fixed ? listing.fixed_source : listing.buggy_source, diag));
  loaded.program.AddUnit(
      mj::ParseSource("test/" + listing.file_name, listing.test_source, diag));
  EXPECT_FALSE(diag.has_errors()) << listing.id << ": " << diag.FormatAll(nullptr);
  loaded.index = std::make_unique<mj::ProgramIndex>(loaded.program);
  return loaded;
}

const PaperListing& ListingByIssue(const std::string& issue_id) {
  for (const PaperListing& listing : PaperListings()) {
    if (listing.issue_id == issue_id) {
      return listing;
    }
  }
  ADD_FAILURE() << "missing listing " << issue_id;
  static PaperListing empty;
  return empty;
}

TEST(ListingsTest, FourListingsBothVariantsParse) {
  ASSERT_EQ(PaperListings().size(), 4u);
  for (const PaperListing& listing : PaperListings()) {
    LoadVariant(listing, /*fixed=*/false);
    LoadVariant(listing, /*fixed=*/true);
    EXPECT_NE(listing.buggy_source, listing.fixed_source) << listing.id;
  }
}

TEST(ListingsTest, Kafka6829BuggyLosesCommitFixedRetriesIt) {
  const PaperListing& listing = ListingByIssue("KAFKA-6829");

  LoadedListing buggy = LoadVariant(listing, /*fixed=*/false);
  Interpreter buggy_interp(buggy.program, *buggy.index);
  Value buggy_result = buggy_interp.Invoke("Listing1Scenario.run");
  EXPECT_NE(std::get<std::string>(buggy_result).find("commit LOST"), std::string::npos);

  LoadedListing fixed = LoadVariant(listing, /*fixed=*/true);
  Interpreter fixed_interp(fixed.program, *fixed.index);
  Value fixed_result = fixed_interp.Invoke("Listing1Scenario.run");
  EXPECT_NE(std::get<std::string>(fixed_result).find("succeeded after 3"),
            std::string::npos);
}

TEST(ListingsTest, Hadoop16683BuggyWastesAttemptsFixedStopsImmediately) {
  const PaperListing& listing = ListingByIssue("HADOOP-16683");

  LoadedListing buggy = LoadVariant(listing, /*fixed=*/false);
  Interpreter buggy_interp(buggy.program, *buggy.index);
  std::string buggy_result =
      std::get<std::string>(buggy_interp.Invoke("Listing2Scenario.run"));
  // All 4 attempts burned against a permanent permission error, with backoff.
  EXPECT_NE(buggy_result.find("error: 4"), std::string::npos) << buggy_result;
  EXPECT_GE(buggy_interp.now_ms(), 3000);

  LoadedListing fixed = LoadVariant(listing, /*fixed=*/true);
  Interpreter fixed_interp(fixed.program, *fixed.index);
  std::string fixed_result =
      std::get<std::string>(fixed_interp.Invoke("Listing2Scenario.run"));
  EXPECT_NE(fixed_result.find("error: 1"), std::string::npos) << fixed_result;
  EXPECT_EQ(fixed_interp.now_ms(), 0);
}

TEST(ListingsTest, Hive23894BuggyNeverTerminatesFixedCompletes) {
  const PaperListing& listing = ListingByIssue("HIVE-23894");

  LoadedListing buggy = LoadVariant(listing, /*fixed=*/false);
  Interpreter buggy_interp(buggy.program, *buggy.index);
  EXPECT_THROW(buggy_interp.Invoke("Listing3Scenario.run"), ExecutionAborted);

  LoadedListing fixed = LoadVariant(listing, /*fixed=*/true);
  Interpreter fixed_interp(fixed.program, *fixed.index);
  std::string fixed_result =
      std::get<std::string>(fixed_interp.Invoke("Listing3Scenario.run"));
  EXPECT_NE(fixed_result.find("completed=1"), std::string::npos);
}

TEST(ListingsTest, Hbase20492WasabiFlagsBuggyNotFixed) {
  const PaperListing& listing = ListingByIssue("HBASE-20492");

  auto missing_delay_reports = [&](bool fixed) {
    LoadedListing loaded = LoadVariant(listing, fixed);
    WasabiOptions options;
    options.app_name = "listing4";
    Wasabi wasabi(loaded.program, *loaded.index, options);
    DynamicResult dynamic = wasabi.RunDynamicWorkflow();
    int count = 0;
    for (const BugReport& bug : dynamic.bugs) {
      if (bug.type == BugType::kWhenMissingDelay && bug.coordinator == listing.coordinator) {
        ++count;
      }
    }
    return count;
  };

  EXPECT_GE(missing_delay_reports(/*fixed=*/false), 1);
  EXPECT_EQ(missing_delay_reports(/*fixed=*/true), 0);
}

TEST(ListingsTest, Hbase20492StaticLlmAgrees) {
  const PaperListing& listing = ListingByIssue("HBASE-20492");
  auto llm_delay_reports = [&](bool fixed) {
    LoadedListing loaded = LoadVariant(listing, fixed);
    WasabiOptions options;
    options.app_name = "listing4";
    options.llm.comprehension_noise_percent = 0;
    Wasabi wasabi(loaded.program, *loaded.index, options);
    StaticResult statics = wasabi.RunStaticWorkflow();
    int count = 0;
    for (const BugReport& bug : statics.when_bugs) {
      if (bug.type == BugType::kWhenMissingDelay && bug.coordinator == listing.coordinator) {
        ++count;
      }
    }
    return count;
  };
  EXPECT_GE(llm_delay_reports(/*fixed=*/false), 1);
  EXPECT_EQ(llm_delay_reports(/*fixed=*/true), 0);
}

}  // namespace
}  // namespace wasabi
