// Tests that the §2 study dataset reproduces every aggregate the paper reports.

#include "src/study/study.h"

#include <gtest/gtest.h>

namespace wasabi {
namespace {

TEST(StudyTest, SeventyIssues) {
  EXPECT_EQ(StudyDataset().size(), 70u);
}

TEST(StudyTest, Table1PerApplicationCounts) {
  auto counts = StudyCountByApp();
  EXPECT_EQ(counts["elasticsearch"], 11);
  EXPECT_EQ(counts["hadoop"], 15);
  EXPECT_EQ(counts["hbase"], 15);
  EXPECT_EQ(counts["hive"], 11);
  EXPECT_EQ(counts["kafka"], 9);
  EXPECT_EQ(counts["spark"], 9);
  EXPECT_EQ(counts.size(), 6u);
}

TEST(StudyTest, Table2RootCauseCounts) {
  auto counts = StudyCountByRootCause();
  EXPECT_EQ(counts[StudyRootCause::kWrongPolicy], 17);
  EXPECT_EQ(counts[StudyRootCause::kMissingMechanism], 8);
  EXPECT_EQ(counts[StudyRootCause::kDelay], 10);
  EXPECT_EQ(counts[StudyRootCause::kCap], 13);
  EXPECT_EQ(counts[StudyRootCause::kStateReset], 12);
  EXPECT_EQ(counts[StudyRootCause::kJobTracking], 8);
  EXPECT_EQ(counts[StudyRootCause::kOther], 2);
}

TEST(StudyTest, CategoryShares) {
  // IF 25 (36%), WHEN 23 (33%), HOW 22 (31%).
  auto counts = StudyCountByCategory();
  EXPECT_EQ(counts[StudyCategory::kIf], 25);
  EXPECT_EQ(counts[StudyCategory::kWhen], 23);
  EXPECT_EQ(counts[StudyCategory::kHow], 22);
}

TEST(StudyTest, MechanismSplit) {
  // ~55% loop, 25% queue re-enqueueing, 20% state machine (§2.5).
  auto counts = StudyCountByMechanism();
  EXPECT_EQ(counts[RetryMechanism::kLoop], 39);
  EXPECT_EQ(counts[RetryMechanism::kQueue], 17);
  EXPECT_EQ(counts[RetryMechanism::kStateMachine], 14);
}

TEST(StudyTest, TriggerSplit) {
  // 70% exceptions, 30% error codes (§3.1).
  EXPECT_EQ(StudyExceptionTriggeredCount(), 49);
}

TEST(StudyTest, SeverityDistribution) {
  auto counts = StudyCountBySeverity();
  // Paper: ~5% blocker, 10% critical, 65% major, 5% minor, rest unlabeled.
  EXPECT_EQ(counts[StudySeverity::kBlocker], 4);
  EXPECT_EQ(counts[StudySeverity::kCritical], 7);
  EXPECT_EQ(counts[StudySeverity::kMajor], 45);
  EXPECT_EQ(counts[StudySeverity::kMinor], 4);
  EXPECT_EQ(counts[StudySeverity::kUnlabeled], 10);
}

TEST(StudyTest, RegressionTestShare) {
  // 42 of the 70 issues got regression tests (§2.5).
  EXPECT_EQ(StudyRegressionTestCount(), 42);
}

TEST(StudyTest, PinnedIssuesPresent) {
  int pinned = 0;
  bool has_hbase_20492 = false;
  for (const StudyIssue& issue : StudyDataset()) {
    if (issue.pinned) {
      ++pinned;
      EXPECT_FALSE(issue.summary.empty());
    }
    if (issue.id == "HBASE-20492") {
      has_hbase_20492 = true;
      EXPECT_EQ(issue.root_cause, StudyRootCause::kDelay);
      EXPECT_EQ(issue.mechanism, RetryMechanism::kStateMachine);
      EXPECT_EQ(issue.severity, StudySeverity::kCritical);
    }
  }
  EXPECT_EQ(pinned, 13);
  EXPECT_TRUE(has_hbase_20492);
}

TEST(StudyTest, IdsAreUnique) {
  std::set<std::string> ids;
  for (const StudyIssue& issue : StudyDataset()) {
    EXPECT_TRUE(ids.insert(issue.id).second) << "duplicate id " << issue.id;
  }
}

TEST(StudyTest, DatasetIsStable) {
  const auto& first = StudyDataset();
  const auto& second = StudyDataset();
  EXPECT_EQ(&first, &second);
}

}  // namespace
}  // namespace wasabi
