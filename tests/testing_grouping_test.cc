// The §4.1 report-grouping behaviors: one underlying bug reached from
// multiple retry locations produces ONE deduplicated report (crash-stack
// grouping for HOW bugs; per-structure grouping for cap/delay bugs).

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/inject/injector.h"
#include "src/lang/diagnostics.h"
#include "src/lang/parser.h"
#include "src/testing/oracles.h"
#include "src/testing/runner.h"

namespace wasabi {
namespace {

// The HDFS example: the catch block NPEs regardless of which call in the try
// body failed, so injections at `open` and at `transferHeader` crash with the
// same stack.
constexpr const char* kMultiLocationSource = R"(
class Streamer {
  Map status = null;
  String readWithRetry() {
    for (var retry = 0; retry < 3; retry++) {
      try {
        this.allocateBuffers();
        this.open();
        return this.transferBody();
      } catch (SocketException e) {
        var phase = this.status.get("phase");
        Log.warn("failed in phase " + phase);
      }
    }
    return null;
  }
  void allocateBuffers() throws SocketException {
    Log.debug("buffers ready");
  }
  void open() throws SocketException {
    this.status = new Map();
    this.status.put("phase", "open");
  }
  String transferBody() throws SocketException {
    return "body";
  }
}
class StreamerTest {
  void testRead() {
    var s = new Streamer();
    s.readWithRetry();
  }
}
)";

class GroupingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mj::DiagnosticEngine diag;
    program_.AddUnit(mj::ParseSource("group.mj", kMultiLocationSource, diag));
    ASSERT_FALSE(diag.has_errors()) << diag.FormatAll(nullptr);
    index_ = std::make_unique<mj::ProgramIndex>(program_);
    runner_ = std::make_unique<TestRunner>(program_, *index_);
  }

  RetryLocation LocationFor(const std::string& retried) {
    RetryLocation location;
    location.coordinator = "Streamer.readWithRetry";
    location.retried_method = "Streamer." + retried;
    location.exception_name = "SocketException";
    location.file = "group.mj";
    return location;
  }

  std::vector<OracleReport> RunAndEvaluate(const std::string& retried) {
    FaultInjector injector({InjectionPoint{"Streamer." + retried, "Streamer.readWithRetry",
                                           "SocketException", kInjectOnce}});
    TestRunRecord record = runner_->RunTest(TestCase{"StreamerTest.testRead"}, {&injector});
    return EvaluateOracles(record, LocationFor(retried));
  }

  mj::Program program_;
  std::unique_ptr<mj::ProgramIndex> index_;
  std::unique_ptr<TestRunner> runner_;
};

TEST_F(GroupingTest, SameCrashStackFromTwoLocationsIsOneBug) {
  // Injecting at `allocateBuffers` and at `open` — both BEFORE this.status is
  // constructed — makes the catch handler NPE at the same line with the same
  // stack: one underlying bug, two retry locations (the paper's HDFS case).
  std::vector<OracleReport> from_alloc = RunAndEvaluate("allocateBuffers");
  std::vector<OracleReport> from_open = RunAndEvaluate("open");
  ASSERT_EQ(from_alloc.size(), 1u);
  ASSERT_EQ(from_open.size(), 1u);
  EXPECT_EQ(from_alloc[0].kind, OracleKind::kDifferentException);
  EXPECT_EQ(from_open[0].kind, OracleKind::kDifferentException);
  // Same crash stack => same group key => one bug after deduplication.
  EXPECT_EQ(from_alloc[0].group_key, from_open[0].group_key);

  std::vector<OracleReport> all = from_alloc;
  all.insert(all.end(), from_open.begin(), from_open.end());
  EXPECT_EQ(DeduplicateReports(std::move(all)).size(), 1u);
}

TEST_F(GroupingTest, TransferBodyInjectionDoesNotCrash) {
  // Injecting at transferBody: open() already set status, so the handler logs
  // and retries; attempt 2 succeeds. Nothing to report at K=1.
  std::vector<OracleReport> reports = RunAndEvaluate("transferBody");
  EXPECT_TRUE(reports.empty()) << (reports.empty() ? "" : reports[0].detail);
}

TEST_F(GroupingTest, CapAndDelayGroupPerStructureNotPerExceptionType) {
  // Two different trigger exceptions at the same structure yield cap reports
  // with the same group key (one missing-cap bug per retry loop, §4.1).
  OracleReport cap_a;
  cap_a.kind = OracleKind::kMissingCap;
  cap_a.location = LocationFor("open");
  cap_a.group_key = "cap|group.mj|Streamer.readWithRetry";
  OracleReport cap_b = cap_a;
  cap_b.location = LocationFor("transferHeader");  // Different location...
  // ...but the structure-level group key is identical by construction.
  EXPECT_EQ(DeduplicateReports({cap_a, cap_b}).size(), 1u);
}

}  // namespace
}  // namespace wasabi
