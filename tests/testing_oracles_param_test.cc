// Parameterized property tests for the retry oracles: sweeps over injection
// budgets (K) and oracle thresholds establish the boundary behavior the paper
// relies on (K=1 exposes HOW bugs; K=100 trips the cap threshold; the delay
// oracle needs at least two attempts).

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/inject/injector.h"
#include "src/lang/diagnostics.h"
#include "src/lang/parser.h"
#include "src/testing/oracles.h"
#include "src/testing/runner.h"

namespace wasabi {
namespace {

// An uncapped, undelayed retry loop plus a capped, delayed one.
constexpr const char* kSource = R"(
class Uncapped {
  String go() {
    while (true) {
      try {
        return this.op();
      } catch (TimeoutException e) {
        Log.warn("retrying");
      }
    }
  }
  String op() throws TimeoutException { return "v"; }
}
class Capped {
  String go() {
    var lastError = null;
    for (var retry = 0; retry < 5; retry++) {
      try {
        return this.op();
      } catch (TimeoutException e) {
        lastError = e;
        Thread.sleep(10);
      }
    }
    throw lastError;
  }
  String op() throws TimeoutException { return "v"; }
}
class Subclassing {
  String go() throws SocketTimeoutException {
    for (var retry = 0; retry < 3; retry++) {
      try {
        return this.op();
      } catch (IOException e) {
        throw new SocketTimeoutException("gave up after io failure");
      }
    }
    return "";
  }
  String op() throws IOException { return "v"; }
}
class SweepTest {
  void testUncapped() {
    var u = new Uncapped();
    u.go();
  }
  void testCapped() {
    var c = new Capped();
    c.go();
  }
  void testSubclassing() {
    var s = new Subclassing();
    s.go();
  }
}
)";

class OracleSweepFixture {
 public:
  OracleSweepFixture() {
    mj::DiagnosticEngine diag;
    program_.AddUnit(mj::ParseSource("sweep.mj", kSource, diag));
    EXPECT_FALSE(diag.has_errors());
    index_ = std::make_unique<mj::ProgramIndex>(program_);
    runner_ = std::make_unique<TestRunner>(program_, *index_);
  }

  TestRunRecord Run(const std::string& cls, int k) {
    FaultInjector injector(
        {InjectionPoint{cls + ".op", cls + ".go", TriggerFor(cls), k}});
    return runner_->RunTest(TestCase{"SweepTest.test" + cls}, {&injector});
  }

  static RetryLocation LocationFor(const std::string& cls) {
    RetryLocation location;
    location.coordinator = cls + ".go";
    location.retried_method = cls + ".op";
    location.exception_name = TriggerFor(cls);
    location.file = "sweep.mj";
    return location;
  }

  static std::string TriggerFor(const std::string& cls) {
    return cls == "Subclassing" ? "IOException" : "TimeoutException";
  }

 private:
  mj::Program program_;
  std::unique_ptr<mj::ProgramIndex> index_;
  std::unique_ptr<TestRunner> runner_;
};

OracleSweepFixture& Fixture() {
  static auto* fixture = new OracleSweepFixture();
  return *fixture;
}

// --- Sweep K for the uncapped loop: cap fires iff K >= threshold. -----------

class CapThresholdSweep : public ::testing::TestWithParam<int> {};

TEST_P(CapThresholdSweep, CapOracleFiresExactlyAtThreshold) {
  int k = GetParam();
  TestRunRecord record = Fixture().Run("Uncapped", k);
  OracleOptions options;  // Threshold 100.
  bool cap = false;
  bool delay = false;
  for (const OracleReport& report :
       EvaluateOracles(record, OracleSweepFixture::LocationFor("Uncapped"), options)) {
    cap |= report.kind == OracleKind::kMissingCap;
    delay |= report.kind == OracleKind::kMissingDelay;
  }
  EXPECT_EQ(cap, k >= 100) << "K=" << k;
  // The delay oracle fires from 2 injections onward (no sleeps anywhere).
  EXPECT_EQ(delay, k >= 2) << "K=" << k;
}

INSTANTIATE_TEST_SUITE_P(KValues, CapThresholdSweep,
                         ::testing::Values(1, 2, 5, 50, 99, 100, 150));

// --- Sweep the cap threshold itself against a fixed K. -----------------------

class ThresholdSweep : public ::testing::TestWithParam<int> {};

TEST_P(ThresholdSweep, LowerThresholdsTripOnCappedRetryToo) {
  int threshold = GetParam();
  TestRunRecord record = Fixture().Run("Capped", kInjectRepeatedly);  // 5 injections max.
  OracleOptions options;
  options.cap_injection_threshold = threshold;
  bool cap = false;
  for (const OracleReport& report :
       EvaluateOracles(record, OracleSweepFixture::LocationFor("Capped"), options)) {
    cap |= report.kind == OracleKind::kMissingCap;
  }
  // The capped loop performs exactly 5 attempts: thresholds <= 5 flag it
  // (over-strict policy), thresholds > 5 stay quiet.
  EXPECT_EQ(cap, threshold <= 5) << "threshold=" << threshold;
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ThresholdSweep, ::testing::Values(2, 5, 6, 20, 100));

// --- Delay-oracle minimum-injection boundary. -----------------------------------

class DelayMinSweep : public ::testing::TestWithParam<int> {};

TEST_P(DelayMinSweep, DelayOracleRespectsMinimumInjections) {
  int min_injections = GetParam();
  TestRunRecord record = Fixture().Run("Uncapped", 3);  // Exactly 3 injections.
  OracleOptions options;
  options.delay_min_injections = min_injections;
  bool delay = false;
  for (const OracleReport& report :
       EvaluateOracles(record, OracleSweepFixture::LocationFor("Uncapped"), options)) {
    delay |= report.kind == OracleKind::kMissingDelay;
  }
  EXPECT_EQ(delay, min_injections <= 3) << "min=" << min_injections;
}

INSTANTIATE_TEST_SUITE_P(Minimums, DelayMinSweep, ::testing::Values(2, 3, 4, 10));

// --- The capped loop is clean under every K. --------------------------------------

class CappedCleanSweep : public ::testing::TestWithParam<int> {};

TEST_P(CappedCleanSweep, WellBehavedRetryNeverReported) {
  TestRunRecord record = Fixture().Run("Capped", GetParam());
  std::vector<OracleReport> reports =
      EvaluateOracles(record, OracleSweepFixture::LocationFor("Capped"));
  EXPECT_TRUE(reports.empty()) << "K=" << GetParam() << " first report: "
                               << (reports.empty() ? "" : reports[0].detail);
}

INSTANTIATE_TEST_SUITE_P(KValues, CappedCleanSweep, ::testing::Values(1, 2, 4, 5, 100));

// --- K=0: an armed-but-exhausted injector must be a no-op. -------------------

class ZeroBudgetSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(ZeroBudgetSweep, ZeroInjectionBudgetInjectsNothingAndReportsNothing) {
  TestRunRecord record = Fixture().Run(GetParam(), 0);
  ASSERT_EQ(record.injection_counts.size(), 1u);
  EXPECT_EQ(record.injection_counts[0], 0);
  EXPECT_EQ(record.outcome.status, TestStatus::kPassed);
  EXPECT_TRUE(
      EvaluateOracles(record, OracleSweepFixture::LocationFor(GetParam())).empty());
}

INSTANTIATE_TEST_SUITE_P(Classes, ZeroBudgetSweep,
                         ::testing::Values("Uncapped", "Capped", "Subclassing"));

// --- Retry cap exactly equal to K: correct give-up, not a bug. ---------------

TEST(OracleBoundaries, CapEqualToBudgetIsCorrectGiveUpBehavior) {
  // Capped retries 5 times; a budget of exactly 5 forces every attempt to fail
  // and the loop to give up by rethrowing the last (injected) exception.
  TestRunRecord record = Fixture().Run("Capped", 5);
  ASSERT_EQ(record.injection_counts.size(), 1u);
  EXPECT_EQ(record.injection_counts[0], 5);
  EXPECT_EQ(record.outcome.status, TestStatus::kException);
  EXPECT_EQ(record.outcome.exception_class, "TimeoutException");
  // Rethrowing the trigger itself is correct behavior: no oracle may fire —
  // not different-exception (same class) and not missing-cap (5 < 100).
  EXPECT_TRUE(EvaluateOracles(record, OracleSweepFixture::LocationFor("Capped")).empty());
}

// --- Subclass of the trigger is still a DIFFERENT exception. ----------------

TEST(OracleBoundaries, RethrownSubclassOfTriggerCountsAsDifferentException) {
  // Subclassing.go catches the injected IOException and gives up with a
  // SocketTimeoutException — a SUBCLASS of the trigger. The oracle matches
  // exception classes exactly (the paper's log-based check), so the subclass
  // is evidence of a HOW bug, not absorbed as a rethrow. Pinned here so a
  // future "subsumption-aware" comparison is a deliberate change.
  TestRunRecord record = Fixture().Run("Subclassing", kInjectOnce);
  EXPECT_EQ(record.outcome.status, TestStatus::kException);
  EXPECT_EQ(record.outcome.exception_class, "SocketTimeoutException");

  std::vector<OracleReport> reports =
      EvaluateOracles(record, OracleSweepFixture::LocationFor("Subclassing"));
  bool different = false;
  for (const OracleReport& report : reports) {
    different |= report.kind == OracleKind::kDifferentException;
  }
  EXPECT_TRUE(different)
      << "subclass rethrow must trip the different-exception oracle";
}

// --- Timeout evidence names the specific abort reason. -----------------------

struct AbortDetailCase {
  AbortReason reason;
  const char* expected_phrase;
};

class AbortReasonDetailSweep : public ::testing::TestWithParam<AbortDetailCase> {};

TEST_P(AbortReasonDetailSweep, TimeoutCapEvidenceNamesTheAbortKind) {
  // A step-budget abort (sleepless runaway loop), a virtual-time abort (the
  // paper's 15-minute timeout), and a stack overflow (unbounded retry
  // recursion) are different pathologies; the cap verdict must say which one
  // the run hit instead of a generic "budget exceeded".
  const AbortDetailCase& c = GetParam();
  TestRunRecord record;
  record.test = TestCase{"SweepTest.testUncapped"};
  record.outcome.status = TestStatus::kTimeout;
  record.outcome.abort_reason = AbortReasonName(c.reason);
  record.outcome.abort_kind = c.reason;

  std::vector<OracleReport> reports =
      EvaluateOracles(record, OracleSweepFixture::LocationFor("Uncapped"));
  const OracleReport* cap = nullptr;
  for (const OracleReport& report : reports) {
    if (report.kind == OracleKind::kMissingCap) {
      cap = &report;
    }
  }
  ASSERT_NE(cap, nullptr) << "a timeout must trip the cap oracle";
  EXPECT_NE(cap->detail.find(c.expected_phrase), std::string::npos)
      << "detail was: " << cap->detail;
}

INSTANTIATE_TEST_SUITE_P(
    Reasons, AbortReasonDetailSweep,
    ::testing::Values(
        AbortDetailCase{AbortReason::kStepBudget, "exhausted the step budget"},
        AbortDetailCase{AbortReason::kVirtualTimeBudget,
                        "exceeded the virtual-time budget"},
        AbortDetailCase{AbortReason::kStackOverflow, "overflowed the call stack"}));

// --- Cause chains: deep wraps and cycles (§4.5 wrapped-exception pruning). ---

constexpr const char* kWrapSource = R"(
class DeepWrap {
  String go() {
    for (var retry = 0; retry < 3; retry++) {
      try {
        return this.op();
      } catch (TimeoutException e) {
        throw new IllegalStateException("outer wrapper", new RuntimeException("middle wrapper", e));
      }
    }
    return "";
  }
  String op() throws TimeoutException { return "v"; }
}
class Cyclic {
  String go() { return this.op(); }
  String op() { return "v"; }
}
class ChainTest {
  void testDeepWrap() {
    var d = new DeepWrap();
    d.go();
  }
  void testCyclic() {
    var c = new Cyclic();
    c.go();
  }
}
)";

struct WrapFixture {
  WrapFixture() {
    mj::DiagnosticEngine diag;
    program.AddUnit(mj::ParseSource("wrap.mj", kWrapSource, diag));
    EXPECT_FALSE(diag.has_errors()) << diag.FormatAll(nullptr);
    index = std::make_unique<mj::ProgramIndex>(program);
    runner = std::make_unique<TestRunner>(program, *index);
  }

  static RetryLocation Location(const std::string& cls) {
    RetryLocation location;
    location.coordinator = cls + ".go";
    location.retried_method = cls + ".op";
    location.exception_name = "TimeoutException";
    location.file = "wrap.mj";
    return location;
  }

  mj::Program program;
  std::unique_ptr<mj::ProgramIndex> index;
  std::unique_ptr<TestRunner> runner;
};

TEST(CauseChainOracle, WrapDepthTwoIsPrunedOnlyWithCauseChainScan) {
  // DeepWrap rethrows the injected TimeoutException under TWO layers of
  // wrapping: IllegalStateException -> RuntimeException -> TimeoutException.
  // The §4.5 mitigation must find the injected class anywhere in the cause
  // chain, not just one level down.
  WrapFixture fixture;
  FaultInjector injector(
      {InjectionPoint{"DeepWrap.op", "DeepWrap.go", "TimeoutException", kInjectOnce}});
  TestRunRecord record =
      fixture.runner->RunTest(TestCase{"ChainTest.testDeepWrap"}, {&injector});

  ASSERT_EQ(record.outcome.status, TestStatus::kException);
  EXPECT_EQ(record.outcome.exception_class, "IllegalStateException");
  ASSERT_EQ(record.outcome.cause_chain.size(), 2u);
  EXPECT_EQ(record.outcome.cause_chain[0], "RuntimeException");
  EXPECT_EQ(record.outcome.cause_chain[1], "TimeoutException");

  // Without pruning, the wrapper counts as a different exception (a report).
  OracleOptions no_prune;
  no_prune.prune_wrapped_exceptions = false;
  bool different = false;
  for (const OracleReport& report :
       EvaluateOracles(record, WrapFixture::Location("DeepWrap"), no_prune)) {
    different |= report.kind == OracleKind::kDifferentException;
  }
  EXPECT_TRUE(different);

  // With pruning, the injected class two causes deep absorbs the report.
  OracleOptions prune;
  prune.prune_wrapped_exceptions = true;
  for (const OracleReport& report :
       EvaluateOracles(record, WrapFixture::Location("DeepWrap"), prune)) {
    EXPECT_NE(report.kind, OracleKind::kDifferentException)
        << "depth-2 wrapped injected exception must be pruned: " << report.detail;
  }
}

// Throws an exception whose cause chain is a two-node CYCLE — buildable only
// from the host side (mj constructors set causes at creation, so mj programs
// cannot close the loop). The runner must terminate while extracting it.
class CyclicCauseInterceptor : public CallInterceptor {
 public:
  void OnCall(const CallEvent& event, Interpreter& interp) override {
    if (event.callee != "Cyclic.op" || fired_) {
      return;
    }
    fired_ = true;
    ObjectRef outer = interp.MakeException("RuntimeException", "wrapper in a cause cycle");
    ObjectRef inner = interp.MakeException("IOException", "inner in a cause cycle");
    outer->set_cause(inner);
    inner->set_cause(outer);
    throw ThrownException{outer};
  }

 private:
  bool fired_ = false;
};

TEST(CauseChainOracle, CyclicCauseChainIsCappedAndStillPrunable) {
  WrapFixture fixture;
  CyclicCauseInterceptor interceptor;
  TestRunRecord record =
      fixture.runner->RunTest(TestCase{"ChainTest.testCyclic"}, {&interceptor});

  // The runner walked the cycle without hanging and capped the recorded chain.
  ASSERT_EQ(record.outcome.status, TestStatus::kException);
  EXPECT_EQ(record.outcome.exception_class, "RuntimeException");
  ASSERT_EQ(record.outcome.cause_chain.size(), 8u) << "cause extraction must cap cycles";
  for (size_t i = 0; i < record.outcome.cause_chain.size(); ++i) {
    EXPECT_EQ(record.outcome.cause_chain[i], i % 2 == 0 ? "IOException" : "RuntimeException");
  }

  OracleOptions prune;
  prune.prune_wrapped_exceptions = true;

  // An injected class that appears inside the cycle is treated as the fault
  // propagating (pruned)...
  record.injected_points = {InjectionPoint{"Cyclic.op", "Cyclic.go", "IOException", 1}};
  record.injection_counts = {1};
  for (const OracleReport& report :
       EvaluateOracles(record, WrapFixture::Location("Cyclic"), prune)) {
    EXPECT_NE(report.kind, OracleKind::kDifferentException)
        << "injected class inside the cause cycle must be pruned";
  }

  // ...while an unrelated injected class still yields a report even though
  // the chain is cyclic.
  record.injected_points = {InjectionPoint{"Cyclic.op", "Cyclic.go", "TimeoutException", 1}};
  bool different = false;
  for (const OracleReport& report :
       EvaluateOracles(record, WrapFixture::Location("Cyclic"), prune)) {
    different |= report.kind == OracleKind::kDifferentException;
  }
  EXPECT_TRUE(different);
}

TEST(AbortReasonDetail, RunnerRecordsStructuredAbortKindFromRealExecution) {
  // End-to-end: the uncapped loop driven with an effectively unlimited
  // injection budget (kInjectRepeatedly would exhaust and let the run pass)
  // really does abort, and the runner surfaces the structured kind alongside
  // the name. A small step budget keeps the spin cheap.
  mj::DiagnosticEngine diag;
  mj::Program program;
  program.AddUnit(mj::ParseSource("sweep.mj", kSource, diag));
  ASSERT_FALSE(diag.has_errors());
  mj::ProgramIndex index(program);
  RunnerOptions options;
  options.interp.step_budget = 50'000;
  TestRunner runner(program, index, options);
  FaultInjector injector({InjectionPoint{
      "Uncapped.op", "Uncapped.go", "TimeoutException", 1 << 30}});
  TestRunRecord record =
      runner.RunTest(TestCase{"SweepTest.testUncapped"}, {&injector});
  ASSERT_EQ(record.outcome.status, TestStatus::kTimeout);
  EXPECT_EQ(record.outcome.abort_reason, AbortReasonName(record.outcome.abort_kind));
}

}  // namespace
}  // namespace wasabi
