// Parameterized property tests for the retry oracles: sweeps over injection
// budgets (K) and oracle thresholds establish the boundary behavior the paper
// relies on (K=1 exposes HOW bugs; K=100 trips the cap threshold; the delay
// oracle needs at least two attempts).

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/inject/injector.h"
#include "src/lang/diagnostics.h"
#include "src/lang/parser.h"
#include "src/testing/oracles.h"
#include "src/testing/runner.h"

namespace wasabi {
namespace {

// An uncapped, undelayed retry loop plus a capped, delayed one.
constexpr const char* kSource = R"(
class Uncapped {
  String go() {
    while (true) {
      try {
        return this.op();
      } catch (TimeoutException e) {
        Log.warn("retrying");
      }
    }
  }
  String op() throws TimeoutException { return "v"; }
}
class Capped {
  String go() {
    var lastError = null;
    for (var retry = 0; retry < 5; retry++) {
      try {
        return this.op();
      } catch (TimeoutException e) {
        lastError = e;
        Thread.sleep(10);
      }
    }
    throw lastError;
  }
  String op() throws TimeoutException { return "v"; }
}
class SweepTest {
  void testUncapped() {
    var u = new Uncapped();
    u.go();
  }
  void testCapped() {
    var c = new Capped();
    c.go();
  }
}
)";

class OracleSweepFixture {
 public:
  OracleSweepFixture() {
    mj::DiagnosticEngine diag;
    program_.AddUnit(mj::ParseSource("sweep.mj", kSource, diag));
    EXPECT_FALSE(diag.has_errors());
    index_ = std::make_unique<mj::ProgramIndex>(program_);
    runner_ = std::make_unique<TestRunner>(program_, *index_);
  }

  TestRunRecord Run(const std::string& cls, int k) {
    FaultInjector injector(
        {InjectionPoint{cls + ".op", cls + ".go", "TimeoutException", k}});
    std::string test = cls == "Uncapped" ? "SweepTest.testUncapped" : "SweepTest.testCapped";
    return runner_->RunTest(TestCase{test}, {&injector});
  }

  static RetryLocation LocationFor(const std::string& cls) {
    RetryLocation location;
    location.coordinator = cls + ".go";
    location.retried_method = cls + ".op";
    location.exception_name = "TimeoutException";
    location.file = "sweep.mj";
    return location;
  }

 private:
  mj::Program program_;
  std::unique_ptr<mj::ProgramIndex> index_;
  std::unique_ptr<TestRunner> runner_;
};

OracleSweepFixture& Fixture() {
  static auto* fixture = new OracleSweepFixture();
  return *fixture;
}

// --- Sweep K for the uncapped loop: cap fires iff K >= threshold. -----------

class CapThresholdSweep : public ::testing::TestWithParam<int> {};

TEST_P(CapThresholdSweep, CapOracleFiresExactlyAtThreshold) {
  int k = GetParam();
  TestRunRecord record = Fixture().Run("Uncapped", k);
  OracleOptions options;  // Threshold 100.
  bool cap = false;
  bool delay = false;
  for (const OracleReport& report :
       EvaluateOracles(record, OracleSweepFixture::LocationFor("Uncapped"), options)) {
    cap |= report.kind == OracleKind::kMissingCap;
    delay |= report.kind == OracleKind::kMissingDelay;
  }
  EXPECT_EQ(cap, k >= 100) << "K=" << k;
  // The delay oracle fires from 2 injections onward (no sleeps anywhere).
  EXPECT_EQ(delay, k >= 2) << "K=" << k;
}

INSTANTIATE_TEST_SUITE_P(KValues, CapThresholdSweep,
                         ::testing::Values(1, 2, 5, 50, 99, 100, 150));

// --- Sweep the cap threshold itself against a fixed K. -----------------------

class ThresholdSweep : public ::testing::TestWithParam<int> {};

TEST_P(ThresholdSweep, LowerThresholdsTripOnCappedRetryToo) {
  int threshold = GetParam();
  TestRunRecord record = Fixture().Run("Capped", kInjectRepeatedly);  // 5 injections max.
  OracleOptions options;
  options.cap_injection_threshold = threshold;
  bool cap = false;
  for (const OracleReport& report :
       EvaluateOracles(record, OracleSweepFixture::LocationFor("Capped"), options)) {
    cap |= report.kind == OracleKind::kMissingCap;
  }
  // The capped loop performs exactly 5 attempts: thresholds <= 5 flag it
  // (over-strict policy), thresholds > 5 stay quiet.
  EXPECT_EQ(cap, threshold <= 5) << "threshold=" << threshold;
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ThresholdSweep, ::testing::Values(2, 5, 6, 20, 100));

// --- Delay-oracle minimum-injection boundary. -----------------------------------

class DelayMinSweep : public ::testing::TestWithParam<int> {};

TEST_P(DelayMinSweep, DelayOracleRespectsMinimumInjections) {
  int min_injections = GetParam();
  TestRunRecord record = Fixture().Run("Uncapped", 3);  // Exactly 3 injections.
  OracleOptions options;
  options.delay_min_injections = min_injections;
  bool delay = false;
  for (const OracleReport& report :
       EvaluateOracles(record, OracleSweepFixture::LocationFor("Uncapped"), options)) {
    delay |= report.kind == OracleKind::kMissingDelay;
  }
  EXPECT_EQ(delay, min_injections <= 3) << "min=" << min_injections;
}

INSTANTIATE_TEST_SUITE_P(Minimums, DelayMinSweep, ::testing::Values(2, 3, 4, 10));

// --- The capped loop is clean under every K. --------------------------------------

class CappedCleanSweep : public ::testing::TestWithParam<int> {};

TEST_P(CappedCleanSweep, WellBehavedRetryNeverReported) {
  TestRunRecord record = Fixture().Run("Capped", GetParam());
  std::vector<OracleReport> reports =
      EvaluateOracles(record, OracleSweepFixture::LocationFor("Capped"));
  EXPECT_TRUE(reports.empty()) << "K=" << GetParam() << " first report: "
                               << (reports.empty() ? "" : reports[0].detail);
}

INSTANTIATE_TEST_SUITE_P(KValues, CappedCleanSweep, ::testing::Values(1, 2, 4, 5, 100));

}  // namespace
}  // namespace wasabi
