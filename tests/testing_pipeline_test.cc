// Tests for the dynamic-testing substrate: injector, runner, coverage mapper,
// planner, oracles, and config restoration — on purpose-built buggy programs
// mirroring the paper's bug classes.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/inject/injector.h"
#include "src/lang/diagnostics.h"
#include "src/lang/parser.h"
#include "src/testing/config_restore.h"
#include "src/testing/coverage.h"
#include "src/testing/oracles.h"
#include "src/testing/runner.h"

namespace wasabi {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  void Load(std::initializer_list<std::string> sources) {
    mj::DiagnosticEngine diag;
    int i = 0;
    for (const std::string& text : sources) {
      program_.AddUnit(mj::ParseSource("unit" + std::to_string(i++) + ".mj", text, diag));
    }
    ASSERT_FALSE(diag.has_errors()) << diag.FormatAll(nullptr);
    index_ = std::make_unique<mj::ProgramIndex>(program_);
    runner_ = std::make_unique<TestRunner>(program_, *index_);
  }

  RetryLocation MakeLocation(const std::string& coordinator, const std::string& retried,
                             const std::string& exception) {
    RetryLocation location;
    location.coordinator = coordinator;
    location.retried_method = retried;
    location.exception_name = exception;
    location.file = "unit0.mj";
    return location;
  }

  mj::Program program_;
  std::unique_ptr<mj::ProgramIndex> index_;
  std::unique_ptr<TestRunner> runner_;
};

// A client with a well-behaved retry (cap + delay), plus a unit test.
constexpr const char* kGoodRetrySource = R"(
class GoodClient {
  int attempts = 0;
  String fetchWithRetry() {
    for (var retry = 0; retry < 5; retry++) {
      try {
        return this.fetch();
      } catch (ConnectException e) {
        this.attempts += 1;
        Thread.sleep(100);
      }
    }
    throw new ConnectException("gave up");
  }
  String fetch() throws ConnectException {
    return "data";
  }
}
class GoodClientTest {
  void testFetch() {
    var c = new GoodClient();
    Assert.assertEquals("data", c.fetchWithRetry());
  }
}
)";

// A client whose retry loop has neither a cap nor a delay (WHEN bugs).
constexpr const char* kUncappedSource = R"(
class BadClient {
  String fetchWithRetry() {
    while (true) {
      try {
        return this.fetch();
      } catch (ConnectException e) {
        Log.warn("retrying");
      }
    }
  }
  String fetch() throws ConnectException {
    return "data";
  }
}
class BadClientTest {
  void testFetch() {
    var c = new BadClient();
    Assert.assertEquals("data", c.fetchWithRetry());
  }
}
)";

TEST_F(PipelineTest, DiscoverTestsFindsTestMethods) {
  Load({kGoodRetrySource, kUncappedSource});
  std::vector<TestCase> tests = runner_->DiscoverTests();
  ASSERT_EQ(tests.size(), 2u);
  EXPECT_EQ(tests[0].qualified_name, "GoodClientTest.testFetch");
  EXPECT_EQ(tests[1].qualified_name, "BadClientTest.testFetch");
}

TEST_F(PipelineTest, CleanRunPasses) {
  Load({kGoodRetrySource});
  TestRunRecord record = runner_->RunTest(TestCase{"GoodClientTest.testFetch"});
  EXPECT_EQ(record.outcome.status, TestStatus::kPassed);
  EXPECT_EQ(record.virtual_duration_ms, 0);
}

TEST_F(PipelineTest, InjectorThrowsKTimesThenStops) {
  Load({kGoodRetrySource});
  FaultInjector injector({InjectionPoint{"GoodClient.fetch", "GoodClient.fetchWithRetry",
                                         "ConnectException", 3}});
  TestRunRecord record = runner_->RunTest(TestCase{"GoodClientTest.testFetch"}, {&injector});
  // 3 injections, then the 4th attempt succeeds: test passes.
  EXPECT_EQ(record.outcome.status, TestStatus::kPassed) << record.outcome.exception_class;
  EXPECT_EQ(injector.TotalInjections(), 3);
  // The client slept between attempts.
  EXPECT_EQ(record.virtual_duration_ms, 300);
}

TEST_F(PipelineTest, GoodRetryUnderHeavyInjectionGivesUpWithInjectedException) {
  Load({kGoodRetrySource});
  FaultInjector injector({InjectionPoint{"GoodClient.fetch", "GoodClient.fetchWithRetry",
                                         "ConnectException", kInjectRepeatedly}});
  TestRunRecord record = runner_->RunTest(TestCase{"GoodClientTest.testFetch"}, {&injector});
  // Cap of 5 attempts, then the loop exits and throws ConnectException.
  EXPECT_EQ(record.outcome.status, TestStatus::kException);
  EXPECT_EQ(record.outcome.exception_class, "ConnectException");
  EXPECT_EQ(injector.TotalInjections(), 5);

  // Oracles: nothing to report — capped, delayed, same-exception crash.
  RetryLocation location =
      MakeLocation("GoodClient.fetchWithRetry", "GoodClient.fetch", "ConnectException");
  std::vector<OracleReport> reports = EvaluateOracles(record, location);
  EXPECT_TRUE(reports.empty()) << OracleKindName(reports[0].kind);
}

TEST_F(PipelineTest, MissingCapAndDelayDetected) {
  Load({kUncappedSource});
  FaultInjector injector({InjectionPoint{"BadClient.fetch", "BadClient.fetchWithRetry",
                                         "ConnectException", kInjectRepeatedly}});
  TestRunRecord record = runner_->RunTest(TestCase{"BadClientTest.testFetch"}, {&injector});
  // After 100 injections the injector stops and the loop finally succeeds.
  EXPECT_EQ(record.outcome.status, TestStatus::kPassed);
  EXPECT_EQ(injector.TotalInjections(), 100);

  RetryLocation location =
      MakeLocation("BadClient.fetchWithRetry", "BadClient.fetch", "ConnectException");
  std::vector<OracleReport> reports = EvaluateOracles(record, location);
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].kind, OracleKind::kMissingCap);
  EXPECT_EQ(reports[1].kind, OracleKind::kMissingDelay);
}

TEST_F(PipelineTest, DelayOracleNotFooledBySleepFromOtherMethods) {
  // The sleep happens in an unrelated helper (not the coordinator): the
  // missing-delay oracle must still fire (§3.1.3 call-stack check).
  Load({R"(
    class Sneaky {
      String fetchWithRetry() {
        while (true) {
          try {
            return this.fetch();
          } catch (ConnectException e) {
            this.unrelatedBookkeeping();
          }
        }
      }
      void unrelatedBookkeeping() { }
      String fetch() throws ConnectException { return "x"; }
    }
    class OtherActor {
      void pump() {
        Thread.sleep(50);
      }
    }
    class SneakyTest {
      void testFetch() {
        var s = new Sneaky();
        var o = new OtherActor();
        o.pump();
        Assert.assertEquals("x", s.fetchWithRetry());
      }
    }
  )"});
  FaultInjector injector(
      {InjectionPoint{"Sneaky.fetch", "Sneaky.fetchWithRetry", "ConnectException", 10}});
  TestRunRecord record = runner_->RunTest(TestCase{"SneakyTest.testFetch"}, {&injector});
  RetryLocation location =
      MakeLocation("Sneaky.fetchWithRetry", "Sneaky.fetch", "ConnectException");
  std::vector<OracleReport> reports = EvaluateOracles(record, location);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].kind, OracleKind::kMissingDelay);
}

TEST_F(PipelineTest, DelayViaCalleeHelperCountsBecauseCoordinatorIsOnStack) {
  // Sleep inside a helper CALLED BY the coordinator: the coordinator is on the
  // sleep's call stack, so the delay is credited (no report).
  Load({R"(
    class Helper {
      void pause() {
        Thread.sleep(100);
      }
    }
    class Client {
      Helper helper = new Helper();
      String fetchWithRetry() {
        while (true) {
          try {
            return this.fetch();
          } catch (ConnectException e) {
            this.helper.pause();
          }
        }
      }
      String fetch() throws ConnectException { return "x"; }
    }
    class ClientTest {
      void testFetch() {
        var c = new Client();
        Assert.assertEquals("x", c.fetchWithRetry());
      }
    }
  )"});
  FaultInjector injector(
      {InjectionPoint{"Client.fetch", "Client.fetchWithRetry", "ConnectException", 10}});
  TestRunRecord record = runner_->RunTest(TestCase{"ClientTest.testFetch"}, {&injector});
  RetryLocation location =
      MakeLocation("Client.fetchWithRetry", "Client.fetch", "ConnectException");
  std::vector<OracleReport> reports = EvaluateOracles(record, location);
  EXPECT_TRUE(reports.empty());
}

TEST_F(PipelineTest, TimeoutBecomesMissingCapReport) {
  // Infinite retry WITH delay: the virtual clock blows the 15-minute budget
  // before 100 injections... with 100ms sleeps it takes 9000 attempts, so
  // injections hit 100 first; to force the timeout path, use a big backoff.
  Load({R"(
    class SlowClient {
      String fetchWithRetry() {
        while (true) {
          try {
            return this.fetch();
          } catch (ConnectException e) {
            Thread.sleep(600000);
          }
        }
      }
      String fetch() throws ConnectException { return "x"; }
    }
    class SlowClientTest {
      void testFetch() {
        var c = new SlowClient();
        c.fetchWithRetry();
      }
    }
  )"});
  FaultInjector injector(
      {InjectionPoint{"SlowClient.fetch", "SlowClient.fetchWithRetry", "ConnectException", 5}});
  TestRunRecord record = runner_->RunTest(TestCase{"SlowClientTest.testFetch"}, {&injector});
  EXPECT_EQ(record.outcome.status, TestStatus::kTimeout);
  RetryLocation location =
      MakeLocation("SlowClient.fetchWithRetry", "SlowClient.fetch", "ConnectException");
  std::vector<OracleReport> reports = EvaluateOracles(record, location);
  ASSERT_FALSE(reports.empty());
  EXPECT_EQ(reports[0].kind, OracleKind::kMissingCap);
}

TEST_F(PipelineTest, HowBugSurfacesAsDifferentException) {
  // The HDFS createBlockReader analog: a transient error before full object
  // construction; the catch block dereferences an unconstructed object.
  Load({R"(
    class BlockReader {
      Map status = null;
      String read() {
        try {
          this.setup();
          var data = this.fetchBlock();
          return data;
        } catch (SocketException e) {
          // BUG: this.status may still be null when setup failed early.
          var state = this.status.get("phase");
          Log.warn("read failed in phase " + state);
          return null;
        }
      }
      void setup() {
        this.status = new Map();
        this.status.put("phase", "ready");
      }
      String fetchBlock() throws SocketException {
        return "block";
      }
    }
    class BlockReaderTest {
      void testRead() {
        var r = new BlockReader();
        r.read();
      }
    }
  )"});
  FaultInjector injector({InjectionPoint{"BlockReader.setup", "BlockReader.read",
                                         "SocketException", kInjectOnce}});
  TestRunRecord record = runner_->RunTest(TestCase{"BlockReaderTest.testRead"}, {&injector});
  EXPECT_EQ(record.outcome.status, TestStatus::kException);
  EXPECT_EQ(record.outcome.exception_class, "NullPointerException");

  RetryLocation location =
      MakeLocation("BlockReader.read", "BlockReader.setup", "SocketException");
  std::vector<OracleReport> reports = EvaluateOracles(record, location);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].kind, OracleKind::kDifferentException);
  EXPECT_NE(reports[0].detail.find("NullPointerException"), std::string::npos);
}

TEST_F(PipelineTest, InjectedNonTriggerExceptionIsNotFlagged) {
  // Injecting an exception the code does not retry: the test crashes with the
  // injected exception itself — correct behavior, filtered by the oracle.
  Load({kGoodRetrySource});
  FaultInjector injector({InjectionPoint{"GoodClient.fetch", "GoodClient.fetchWithRetry",
                                         "TimeoutException", kInjectOnce}});
  TestRunRecord record = runner_->RunTest(TestCase{"GoodClientTest.testFetch"}, {&injector});
  EXPECT_EQ(record.outcome.status, TestStatus::kException);
  EXPECT_EQ(record.outcome.exception_class, "TimeoutException");
  RetryLocation location =
      MakeLocation("GoodClient.fetchWithRetry", "GoodClient.fetch", "TimeoutException");
  EXPECT_TRUE(EvaluateOracles(record, location).empty());
}

TEST_F(PipelineTest, WrappedExceptionProducesKnownFalsePositive) {
  // The paper's HOW-oracle FP mode: the injected exception is wrapped in a
  // general exception which then crashes the test. The oracle flags it.
  Load({R"(
    class Wrapper {
      String call() {
        try {
          return this.op();
        } catch (SocketException e) {
          throw new HadoopException("wrapped", e);
        }
      }
      String op() throws SocketException { return "v"; }
    }
    class WrapperTest {
      void testCall() {
        var w = new Wrapper();
        w.call();
      }
    }
  )"});
  FaultInjector injector(
      {InjectionPoint{"Wrapper.op", "Wrapper.call", "SocketException", kInjectOnce}});
  TestRunRecord record = runner_->RunTest(TestCase{"WrapperTest.testCall"}, {&injector});
  EXPECT_EQ(record.outcome.exception_class, "HadoopException");
  RetryLocation location = MakeLocation("Wrapper.call", "Wrapper.op", "SocketException");
  std::vector<OracleReport> reports = EvaluateOracles(record, location);
  ASSERT_EQ(reports.size(), 1u);  // Documented false positive (§4.3).
  EXPECT_EQ(reports[0].kind, OracleKind::kDifferentException);
}

// --- Coverage + planning ----------------------------------------------------

constexpr const char* kTwoLocationSource = R"(
class Svc {
  String a() {
    for (var retry = 0; retry < 3; retry++) {
      try {
        return this.opA();
      } catch (IOException e) {
        Thread.sleep(10);
      }
    }
    return null;
  }
  String b() {
    for (var retry = 0; retry < 3; retry++) {
      try {
        return this.opB();
      } catch (IOException e) {
        Thread.sleep(10);
      }
    }
    return null;
  }
  String opA() throws IOException { return "a"; }
  String opB() throws IOException { return "b"; }
}
class SvcTest {
  void testA() {
    var s = new Svc();
    Assert.assertEquals("a", s.a());
  }
  void testB() {
    var s = new Svc();
    Assert.assertEquals("b", s.b());
  }
  void testBoth() {
    var s = new Svc();
    s.a();
    s.b();
  }
  void testNothing() {
    Assert.assertTrue(true);
  }
}
)";

TEST_F(PipelineTest, CoverageMapsTestsToLocations) {
  Load({kTwoLocationSource});
  std::vector<RetryLocation> locations = {
      MakeLocation("Svc.a", "Svc.opA", "IOException"),
      MakeLocation("Svc.b", "Svc.opB", "IOException"),
  };
  CoverageMap coverage = MapCoverage(*runner_, runner_->DiscoverTests(), locations);
  ASSERT_EQ(coverage.size(), 3u);  // testNothing covers nothing.
  EXPECT_EQ(coverage["SvcTest.testA"], (std::vector<size_t>{0}));
  EXPECT_EQ(coverage["SvcTest.testB"], (std::vector<size_t>{1}));
  EXPECT_EQ(coverage["SvcTest.testBoth"], (std::vector<size_t>{0, 1}));
}

TEST_F(PipelineTest, PlannerCoversEveryLocationExactlyOnce) {
  Load({kTwoLocationSource});
  std::vector<RetryLocation> locations = {
      MakeLocation("Svc.a", "Svc.opA", "IOException"),
      MakeLocation("Svc.b", "Svc.opB", "IOException"),
  };
  CoverageMap coverage = MapCoverage(*runner_, runner_->DiscoverTests(), locations);
  std::vector<PlanEntry> plan = PlanInjections(coverage, locations.size());
  ASSERT_EQ(plan.size(), 2u);
  std::vector<bool> covered(2, false);
  for (const PlanEntry& entry : plan) {
    EXPECT_FALSE(covered[entry.location_index]) << "location planned twice";
    covered[entry.location_index] = true;
  }
  EXPECT_TRUE(covered[0]);
  EXPECT_TRUE(covered[1]);
  // The naive plan is strictly larger (4 pairs: A, B, Both x2).
  EXPECT_EQ(NaivePlan(coverage).size(), 4u);
}

TEST_F(PipelineTest, PlannerPrefersDistinctTests) {
  Load({kTwoLocationSource});
  std::vector<RetryLocation> locations = {
      MakeLocation("Svc.a", "Svc.opA", "IOException"),
      MakeLocation("Svc.b", "Svc.opB", "IOException"),
  };
  CoverageMap coverage = MapCoverage(*runner_, runner_->DiscoverTests(), locations);
  std::vector<PlanEntry> plan = PlanInjections(coverage, locations.size());
  // Two distinct tests should be used (round-robin pass gives each test one).
  EXPECT_NE(plan[0].test, plan[1].test);
}

// --- Config restoration -------------------------------------------------------

TEST_F(PipelineTest, ConfigRestorationFindsAndFreezesRestrictions) {
  Load({R"(
    class Client {
      String go() {
        var max = Config.getInt("client.retry.max", 10);
        for (var retry = 0; retry < max; retry++) {
          try {
            return this.op();
          } catch (IOException e) {
            Thread.sleep(10);
          }
        }
        return null;
      }
      String op() throws IOException { return "v"; }
    }
    class ClientTest {
      void testQuick() {
        Config.set("client.retry.max", 1);
        Config.set("client.timeout.ms", 50);
        var c = new Client();
        c.go();
      }
    }
  )"});
  ConfigRestorationResult restoration = ScanTestsForRetryRestrictions(program_);
  ASSERT_EQ(restoration.restrictions.size(), 1u);
  EXPECT_EQ(restoration.restrictions[0].key, "client.retry.max");
  EXPECT_EQ(restoration.restrictions[0].restricted_value, 1);
  ASSERT_EQ(restoration.keys_to_freeze.size(), 1u);

  // Without restoration: the test caps retry at 1, so under injection the
  // injected exception escapes after a single attempt.
  FaultInjector injector(
      {InjectionPoint{"Client.op", "Client.go", "IOException", kInjectRepeatedly}});
  TestRunRecord unrestored = runner_->RunTest(TestCase{"ClientTest.testQuick"}, {&injector});
  EXPECT_EQ(unrestored.injection_counts[0], 1);

  // With restoration: defaults rule; all 10 attempts happen.
  RunnerOptions options;
  for (const std::string& key : restoration.keys_to_freeze) {
    options.frozen_keys.push_back(key);
  }
  runner_->set_options(options);
  FaultInjector injector2(
      {InjectionPoint{"Client.op", "Client.go", "IOException", kInjectRepeatedly}});
  TestRunRecord restored = runner_->RunTest(TestCase{"ClientTest.testQuick"}, {&injector2});
  EXPECT_EQ(restored.injection_counts[0], 10);
}

// --- Dedup ---------------------------------------------------------------------

TEST_F(PipelineTest, DeduplicateReportsGroupsByKindAndKey) {
  std::vector<OracleReport> reports(4);
  reports[0].kind = OracleKind::kMissingCap;
  reports[0].group_key = "cap|f|m";
  reports[1].kind = OracleKind::kMissingCap;
  reports[1].group_key = "cap|f|m";  // Duplicate.
  reports[2].kind = OracleKind::kMissingDelay;
  reports[2].group_key = "cap|f|m";  // Same key, different kind: kept.
  reports[3].kind = OracleKind::kMissingCap;
  reports[3].group_key = "cap|f|other";
  std::vector<OracleReport> unique = DeduplicateReports(std::move(reports));
  EXPECT_EQ(unique.size(), 3u);
}

}  // namespace
}  // namespace wasabi
