// Edge cases for the injection planner and the config-restoration scanner.

#include <gtest/gtest.h>

#include <string>

#include "src/lang/diagnostics.h"
#include "src/lang/parser.h"
#include "src/testing/config_restore.h"
#include "src/testing/coverage.h"

namespace wasabi {
namespace {

// --- Planner ------------------------------------------------------------------

TEST(PlannerEdgeTest, EmptyCoverageYieldsEmptyPlan) {
  CoverageMap coverage;
  EXPECT_TRUE(PlanInjections(coverage, 10).empty());
  EXPECT_TRUE(NaivePlan(coverage).empty());
}

TEST(PlannerEdgeTest, ZeroLocationsYieldsEmptyPlan) {
  CoverageMap coverage;
  coverage["T.test1"] = {};
  EXPECT_TRUE(PlanInjections(coverage, 0).empty());
}

TEST(PlannerEdgeTest, UncoverableLocationsAreSimplyAbsent) {
  CoverageMap coverage;
  coverage["T.test1"] = {0};  // Location 1 is never covered by anything.
  std::vector<PlanEntry> plan = PlanInjections(coverage, 2);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].location_index, 0u);
}

TEST(PlannerEdgeTest, OneTestCoveringManyLocationsGetsThemAcrossPasses) {
  CoverageMap coverage;
  coverage["T.only"] = {0, 1, 2, 3};
  std::vector<PlanEntry> plan = PlanInjections(coverage, 4);
  ASSERT_EQ(plan.size(), 4u);
  std::vector<bool> covered(4, false);
  for (const PlanEntry& entry : plan) {
    EXPECT_EQ(entry.test, "T.only");
    EXPECT_FALSE(covered[entry.location_index]);
    covered[entry.location_index] = true;
  }
}

TEST(PlannerEdgeTest, RoundRobinSpreadsOverTestsBeforeRepeating) {
  // Two tests each covering both locations: the plan should use both tests.
  CoverageMap coverage;
  coverage["T.a"] = {0, 1};
  coverage["T.b"] = {0, 1};
  std::vector<PlanEntry> plan = PlanInjections(coverage, 2);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_NE(plan[0].test, plan[1].test);
}

TEST(PlannerEdgeTest, OutOfRangeIndicesInCoverageAreIgnored) {
  CoverageMap coverage;
  coverage["T.a"] = {0, 99};  // 99 is out of range for location_count 1.
  std::vector<PlanEntry> plan = PlanInjections(coverage, 1);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].location_index, 0u);
}

// --- Config restoration ---------------------------------------------------------

mj::Program ParseProgram(const std::string& source) {
  mj::Program program;
  mj::DiagnosticEngine diag;
  program.AddUnit(mj::ParseSource("t/test/XTest.mj", source, diag));
  EXPECT_FALSE(diag.has_errors()) << diag.FormatAll(nullptr);
  return program;
}

TEST(ConfigRestoreEdgeTest, IgnoresLargeValuesAndNonRetryKeys) {
  mj::Program program = ParseProgram(R"(
    class XTest {
      void testA() {
        Config.set("x.retry.max", 50);        // Large: a real setting, keep.
        Config.set("x.timeout.ms", 1);        // Not retry-ish.
        Config.set("x.attempt.limit", 2);     // Restricting: restore.
      }
    }
  )");
  ConfigRestorationResult result = ScanTestsForRetryRestrictions(program);
  ASSERT_EQ(result.restrictions.size(), 1u);
  EXPECT_EQ(result.restrictions[0].key, "x.attempt.limit");
}

TEST(ConfigRestoreEdgeTest, IgnoresNonLiteralArguments) {
  mj::Program program = ParseProgram(R"(
    class XTest {
      void testA() {
        var key = "x.retry.max";
        var value = 1;
        Config.set(key, value);     // Dynamic: the static scan cannot see it.
        Config.set("x.retry.max", value);
      }
    }
  )");
  EXPECT_TRUE(ScanTestsForRetryRestrictions(program).restrictions.empty());
}

TEST(ConfigRestoreEdgeTest, OnlyTestClassesAreScanned) {
  mj::Program program;
  mj::DiagnosticEngine diag;
  program.AddUnit(mj::ParseSource("t/App.mj", R"(
    class App {
      void tighten() {
        Config.set("app.retry.max", 0);  // Application code, not a test.
      }
    }
  )", diag));
  ASSERT_FALSE(diag.has_errors());
  EXPECT_TRUE(ScanTestsForRetryRestrictions(program).restrictions.empty());
}

TEST(ConfigRestoreEdgeTest, DuplicateKeysFrozenOnce) {
  mj::Program program = ParseProgram(R"(
    class XTest {
      void testA() {
        Config.set("x.retry.max", 1);
      }
      void testB() {
        Config.set("x.retry.max", 0);
      }
    }
  )");
  ConfigRestorationResult result = ScanTestsForRetryRestrictions(program);
  EXPECT_EQ(result.restrictions.size(), 2u);
  EXPECT_EQ(result.keys_to_freeze.size(), 1u);
}

TEST(ConfigRestoreEdgeTest, NegativeValuesAreNotRestrictions) {
  // A negative cap is a different bug class (HDFS-15439), not a deliberate
  // test restriction; the scanner leaves it alone.
  mj::Program program = ParseProgram(R"(
    class XTest {
      void testA() {
        Config.set("x.retry.max", 0 - 1);
      }
    }
  )");
  EXPECT_TRUE(ScanTestsForRetryRestrictions(program).restrictions.empty());
}

}  // namespace
}  // namespace wasabi
