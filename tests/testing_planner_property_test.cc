// Property tests for the §3.1.4 injection planner over seeded-random coverage
// maps. The planner's contract, regardless of coverage shape:
//
//   1. every coverable location (one some test hits) appears in the plan;
//   2. no location appears twice — the whole point of planning vs. naive;
//   3. every plan entry is backed by the coverage map (the named test really
//      hits the named location, and the index is in range);
//   4. the naive baseline contains every {test, covered location} pair exactly
//      once, so the Table 6 run-count comparison is apples to apples.
//
// Seeds are fixed so runs are reproducible; sizes sweep from empty to maps
// larger than any corpus app produces (~64 locations x ~40 tests).

#include <algorithm>
#include <cstddef>
#include <map>
#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/testing/coverage.h"

namespace wasabi {
namespace {

struct RandomCase {
  uint64_t seed;
  size_t location_count;
  size_t test_count;
};

// Builds a coverage map the way MapCoverage would: per test, a subset of
// location indices in a scrambled first-hit order; tests that hit nothing are
// omitted from the map entirely.
CoverageMap MakeCoverage(const RandomCase& config, std::mt19937_64& rng) {
  CoverageMap coverage;
  std::bernoulli_distribution hit(0.3);
  for (size_t t = 0; t < config.test_count; ++t) {
    std::vector<size_t> hits;
    for (size_t loc = 0; loc < config.location_count; ++loc) {
      if (hit(rng)) {
        hits.push_back(loc);
      }
    }
    std::shuffle(hits.begin(), hits.end(), rng);
    if (!hits.empty()) {
      coverage["Test" + std::to_string(t) + ".testCase"] = hits;
    }
  }
  return coverage;
}

std::set<size_t> CoverableLocations(const CoverageMap& coverage, size_t location_count) {
  std::set<size_t> coverable;
  for (const auto& [test, hits] : coverage) {
    for (size_t index : hits) {
      if (index < location_count) {
        coverable.insert(index);
      }
    }
  }
  return coverable;
}

class PlannerPropertyTest : public ::testing::TestWithParam<RandomCase> {};

TEST_P(PlannerPropertyTest, GreedyPlanCoversEveryCoverableLocationExactlyOnce) {
  const RandomCase& config = GetParam();
  std::mt19937_64 rng(config.seed);
  const CoverageMap coverage = MakeCoverage(config, rng);
  const std::set<size_t> coverable = CoverableLocations(coverage, config.location_count);

  const std::vector<PlanEntry> plan = PlanInjections(coverage, config.location_count);

  // Exactly one entry per coverable location — no misses, no duplicates.
  std::set<size_t> planned;
  for (const PlanEntry& entry : plan) {
    EXPECT_LT(entry.location_index, config.location_count);
    EXPECT_TRUE(planned.insert(entry.location_index).second)
        << "location " << entry.location_index << " planned twice";
  }
  EXPECT_EQ(planned, coverable);
  EXPECT_EQ(plan.size(), coverable.size());

  // Every entry is backed by coverage: the chosen test really hits it.
  for (const PlanEntry& entry : plan) {
    auto it = coverage.find(entry.test);
    ASSERT_NE(it, coverage.end()) << "planned test not in coverage map: " << entry.test;
    EXPECT_NE(std::find(it->second.begin(), it->second.end(), entry.location_index),
              it->second.end())
        << entry.test << " does not cover location " << entry.location_index;
  }
}

TEST_P(PlannerPropertyTest, NaivePlanIsEveryCoveredPairExactlyOnce) {
  const RandomCase& config = GetParam();
  std::mt19937_64 rng(config.seed);
  const CoverageMap coverage = MakeCoverage(config, rng);

  const std::vector<PlanEntry> naive = NaivePlan(coverage);

  std::set<std::pair<std::string, size_t>> expected;
  for (const auto& [test, hits] : coverage) {
    for (size_t index : hits) {
      expected.emplace(test, index);
    }
  }
  std::set<std::pair<std::string, size_t>> actual;
  for (const PlanEntry& entry : naive) {
    EXPECT_TRUE(actual.emplace(entry.test, entry.location_index).second)
        << "naive pair duplicated: " << entry.test << " @ " << entry.location_index;
  }
  EXPECT_EQ(actual, expected);

  // Planning never runs MORE experiments than the naive baseline.
  EXPECT_LE(PlanInjections(coverage, config.location_count).size(), naive.size());
}

INSTANTIATE_TEST_SUITE_P(
    SeededRandomMaps, PlannerPropertyTest,
    ::testing::Values(RandomCase{0x5eed0001, 0, 0}, RandomCase{0x5eed0002, 1, 1},
                      RandomCase{0x5eed0003, 5, 3}, RandomCase{0x5eed0004, 8, 20},
                      RandomCase{0x5eed0005, 16, 10}, RandomCase{0x5eed0006, 32, 25},
                      RandomCase{0x5eed0007, 48, 40}, RandomCase{0x5eed0008, 64, 40},
                      RandomCase{0x5eed0009, 64, 5}, RandomCase{0x5eed000a, 3, 40}),
    [](const ::testing::TestParamInfo<RandomCase>& param_info) {
      return "seed" + std::to_string(param_info.param.seed & 0xff) + "_L" +
             std::to_string(param_info.param.location_count) + "_T" +
             std::to_string(param_info.param.test_count);
    });

}  // namespace
}  // namespace wasabi
