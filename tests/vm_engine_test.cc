// Bytecode VM tests (ctest label "vm", docs/PERFORMANCE.md): every program
// here runs under both engines and must agree on the returned value or the
// thrown diagnostic (class + exact message), on step/loop/virtual-clock
// accounting, and on the execution log — the same observational-identity
// contract the golden suite enforces end-to-end.
//
// This source is compiled twice: once as vm_engine_test against the library
// build (computed-goto dispatch on GCC/Clang), and once as
// vm_engine_switch_test with WASABI_VM_FORCE_SWITCH recompiling the executor
// on the portable switch fallback. Both binaries run the same assertions, so
// the two dispatch strategies are proven behaviorally identical.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/interp/interpreter.h"
#include "src/lang/diagnostics.h"
#include "src/lang/parser.h"
#include "src/vm/bytecode.h"

namespace wasabi {
namespace {

struct Outcome {
  bool threw = false;
  std::string exception_class;
  std::string exception_message;
  Value value;
  int64_t steps = 0;
  int64_t loop_iterations = 0;
  int64_t now_ms = 0;
  std::string log_dump;
};

class VmEngineTest : public ::testing::Test {
 protected:
  void Load(const std::string& source) {
    mj::DiagnosticEngine diag;
    program_.AddUnit(mj::ParseSource("vm.mj", source, diag));
    ASSERT_FALSE(diag.has_errors()) << diag.FormatAll(nullptr);
    index_ = std::make_unique<mj::ProgramIndex>(program_);
  }

  Outcome RunWith(EngineKind engine, const std::string& qualified) {
    InterpOptions options;
    options.engine = engine;
    Interpreter interp(program_, *index_, options);
    Outcome outcome;
    try {
      outcome.value = interp.Invoke(qualified);
    } catch (ThrownException& thrown) {
      outcome.threw = true;
      outcome.exception_class = thrown.exception->class_name();
      outcome.exception_message = thrown.exception->message();
    }
    outcome.steps = interp.steps();
    outcome.loop_iterations = interp.loop_iterations();
    outcome.now_ms = interp.now_ms();
    outcome.log_dump = interp.log().Dump();
    return outcome;
  }

  // Runs qualified under both engines, asserts observational identity, and
  // returns the VM outcome for absolute assertions.
  Outcome RunBoth(const std::string& qualified) {
    Outcome vm = RunWith(EngineKind::kVm, qualified);
    Outcome tree = RunWith(EngineKind::kTree, qualified);
    EXPECT_EQ(vm.threw, tree.threw);
    EXPECT_EQ(vm.exception_class, tree.exception_class);
    EXPECT_EQ(vm.exception_message, tree.exception_message);
    if (!vm.threw && !tree.threw) {
      EXPECT_TRUE(ValueEquals(vm.value, tree.value));
    }
    EXPECT_EQ(vm.steps, tree.steps);
    EXPECT_EQ(vm.loop_iterations, tree.loop_iterations);
    EXPECT_EQ(vm.now_ms, tree.now_ms);
    EXPECT_EQ(vm.log_dump, tree.log_dump);
    return vm;
  }

  int64_t AsIntOrDie(const Outcome& outcome) {
    EXPECT_FALSE(outcome.threw) << outcome.exception_message;
    EXPECT_TRUE(IsInt(outcome.value));
    return IsInt(outcome.value) ? std::get<int64_t>(outcome.value) : 0;
  }

  mj::Program program_;
  std::unique_ptr<mj::ProgramIndex> index_;
};

TEST_F(VmEngineTest, DispatchKindMatchesBuildConfiguration) {
#if defined(WASABI_VM_FORCE_SWITCH)
  EXPECT_STREQ(vm::DispatchKindName(), "switch");
#elif defined(__GNUC__) || defined(__clang__)
  EXPECT_STREQ(vm::DispatchKindName(), "computed-goto");
#else
  EXPECT_STREQ(vm::DispatchKindName(), "switch");
#endif
}

TEST_F(VmEngineTest, SuperinstructionArithmeticLoop) {
  // The hot shapes the compiler fuses: fused compare-and-branch loop heads,
  // x += C, x = y + C, and slot-slot / slot-imm binaries.
  Load(R"(
    class C {
      int f() {
        var total = 0;
        var step = 3;
        for (var i = 0; i < 100; i++) {
          total += step;
          total = total - 1;
          var twice = total + total;
          if (twice > 50) {
            total += 1;
          }
        }
        var copy = total + 1;
        return copy;
      }
    }
  )");
  // Net +2 per iteration until total crosses 25 (iteration 13), then +3 for
  // the remaining 87 iterations: 27 + 261 = 288, plus the trailing copy + 1.
  EXPECT_EQ(AsIntOrDie(RunBoth("C.f")), 289);
}

TEST_F(VmEngineTest, WhileLoopAccountingMatches) {
  Load(R"(
    class C {
      int f() {
        var i = 0;
        var sum = 0;
        while (i < 17) {
          sum = sum + i;
          i += 1;
        }
        return sum;
      }
    }
  )");
  Outcome vm = RunBoth("C.f");
  EXPECT_EQ(AsIntOrDie(vm), 136);
  EXPECT_EQ(vm.loop_iterations, 17);
}

TEST_F(VmEngineTest, DivisionAndModuloByZeroDiagnostics) {
  Load(R"(
    class C {
      int div() { var a = 7; var b = 0; return a / b; }
      int mod() { var a = 7; var b = 0; return a % b; }
    }
  )");
  Outcome division = RunBoth("C.div");
  EXPECT_TRUE(division.threw);
  EXPECT_EQ(division.exception_class, "ArithmeticException");
  EXPECT_EQ(division.exception_message, "division by zero");
  Outcome modulo = RunBoth("C.mod");
  EXPECT_TRUE(modulo.threw);
  EXPECT_EQ(modulo.exception_message, "modulo by zero");
}

TEST_F(VmEngineTest, UndefinedVariableReadAndWriteDiagnostics) {
  // The name resolves to a slot whose defining block has exited; both the
  // kLoadSlot read and the fused-assign write paths must produce the tree
  // walker's exact wording and line number.
  Load(R"(
    class C {
      int read() {
        {
          var ghost = 1;
        }
        return ghost;
      }
      int write() {
        {
          var ghost = 1;
        }
        ghost += 2;
        return 0;
      }
    }
  )");
  Outcome read = RunBoth("C.read");
  EXPECT_TRUE(read.threw);
  EXPECT_EQ(read.exception_class, "IllegalStateException");
  EXPECT_EQ(read.exception_message, "undefined variable 'ghost' at line 7");
  Outcome write = RunBoth("C.write");
  EXPECT_TRUE(write.threw);
  EXPECT_EQ(write.exception_message, "assignment to undefined variable 'ghost' at line 13");
}

TEST_F(VmEngineTest, TypeErrorConditionDiagnostics) {
  Load(R"(
    class C {
      int f() {
        var n = 41;
        if (n + 1) {
          return 1;
        }
        return 0;
      }
    }
  )");
  Outcome outcome = RunBoth("C.f");
  EXPECT_TRUE(outcome.threw);
  EXPECT_EQ(outcome.exception_class, "IllegalStateException");
  EXPECT_EQ(outcome.exception_message, "type error at line 5: expected bool, got 42");
}

TEST_F(VmEngineTest, NativeTryCatchSubtypeMatchingAndBinding) {
  Load(R"(
    class C {
      string f() {
        var log = "";
        try {
          log = log + "t";
          throw new SocketException("boom");
        } catch (IllegalStateException wrong) {
          log = log + "X";
        } catch (IOException e) {
          log = log + "c:" + e.getMessage();
        }
        return log;
      }
    }
  )");
  Outcome outcome = RunBoth("C.f");
  ASSERT_FALSE(outcome.threw) << outcome.exception_message;
  ASSERT_TRUE(IsString(outcome.value));
  EXPECT_EQ(std::get<std::string>(outcome.value), "tc:boom");
}

TEST_F(VmEngineTest, CatchBodyExceptionPropagatesPastSiblings) {
  // An exception thrown from a catch clause body must not be re-offered to
  // later clauses of the same try — the handler is disarmed on entry.
  Load(R"(
    class C {
      int f() {
        try {
          throw new SocketException("inner");
        } catch (SocketException e) {
          throw new TimeoutException("converted");
        } catch (TimeoutException t) {
          return -1;
        }
        return 0;
      }
    }
  )");
  Outcome outcome = RunBoth("C.f");
  EXPECT_TRUE(outcome.threw);
  EXPECT_EQ(outcome.exception_class, "TimeoutException");
  EXPECT_EQ(outcome.exception_message, "converted");
}

TEST_F(VmEngineTest, UnmatchedExceptionRethrowsToCaller) {
  Load(R"(
    class C {
      int f() {
        try {
          throw new IllegalStateException("no handler");
        } catch (IOException e) {
          return 1;
        }
        return 0;
      }
    }
  )");
  Outcome outcome = RunBoth("C.f");
  EXPECT_TRUE(outcome.threw);
  EXPECT_EQ(outcome.exception_class, "IllegalStateException");
  EXPECT_EQ(outcome.exception_message, "no handler");
}

TEST_F(VmEngineTest, BreakAndContinueUnwindTryHandlers) {
  // break/continue from inside a try must pop the armed handler (kPopHandlers)
  // before jumping, or a later throw would resurrect a dead catch clause.
  Load(R"(
    class C {
      int f() {
        var sum = 0;
        for (var i = 0; i < 6; i++) {
          try {
            if (i == 2) {
              continue;
            }
            if (i == 4) {
              break;
            }
            sum += 10;
          } catch (IOException e) {
            sum += 1000;
          }
        }
        try {
          throw new IOException("after");
        } catch (IOException e) {
          sum += 1;
        }
        return sum;
      }
    }
  )");
  EXPECT_EQ(AsIntOrDie(RunBoth("C.f")), 31);  // i in {0,1,3} add 10, plus 1.
}

TEST_F(VmEngineTest, TryFinallyDelegatesWithIdenticalSemantics) {
  // try-with-finally lowers to the delegated tree path (kExecTree); the
  // finally still runs on the exceptional edge and its flow wins.
  Load(R"(
    class C {
      string f() {
        var log = "";
        try {
          try {
            log = log + "t";
            throw new IOException("x");
          } finally {
            log = log + "f";
          }
        } catch (IOException e) {
          log = log + "c";
        }
        return log;
      }
    }
  )");
  Outcome outcome = RunBoth("C.f");
  ASSERT_FALSE(outcome.threw) << outcome.exception_message;
  EXPECT_EQ(std::get<std::string>(outcome.value), "tfc");
}

TEST_F(VmEngineTest, StringConcatenationAndComparisonParity) {
  Load(R"(
    class C {
      string f() {
        var s = "a";
        var n = 0;
        while (n < 3) {
          s = s + n;
          n += 1;
        }
        if (s == "a012") {
          s = s + "!";
        }
        return s;
      }
    }
  )");
  Outcome outcome = RunBoth("C.f");
  ASSERT_FALSE(outcome.threw) << outcome.exception_message;
  EXPECT_EQ(std::get<std::string>(outcome.value), "a012!");
}

TEST_F(VmEngineTest, MethodCallsAndStepBudgetParity) {
  // Calls delegate through EvalCall (the inline-cached dispatch path); the
  // per-call Step must land identically so budgets abort at the same step.
  Load(R"(
    class Helper {
      int twice(int x) { return x + x; }
    }
    class C {
      int f() {
        var h = new Helper();
        var total = 0;
        for (var i = 0; i < 10; i++) {
          total += h.twice(i);
        }
        return total;
      }
    }
  )");
  Outcome outcome = RunBoth("C.f");
  EXPECT_EQ(AsIntOrDie(outcome), 90);
}

TEST_F(VmEngineTest, StepBudgetAbortsAtTheSameStep) {
  Load(R"(
    class C {
      int f() {
        var i = 0;
        while (true) {
          i += 1;
        }
        return i;
      }
    }
  )");
  InterpOptions vm_options;
  vm_options.engine = EngineKind::kVm;
  vm_options.step_budget = 5000;
  InterpOptions tree_options = vm_options;
  tree_options.engine = EngineKind::kTree;

  auto run = [&](const InterpOptions& options) {
    Interpreter interp(program_, *index_, options);
    AbortReason reason = AbortReason::kStepBudget;
    bool aborted = false;
    try {
      interp.Invoke("C.f");
    } catch (const ExecutionAborted& abort) {
      aborted = true;
      reason = abort.reason;
    }
    EXPECT_TRUE(aborted);
    EXPECT_EQ(reason, AbortReason::kStepBudget);
    return interp.steps();
  };
  EXPECT_EQ(run(vm_options), run(tree_options));
}

TEST_F(VmEngineTest, CompiledProgramSurvivesResetForRun) {
  Load(R"(
    class C {
      int f() {
        var acc = 1;
        for (var i = 0; i < 5; i++) {
          acc = acc * 2;
        }
        return acc;
      }
    }
  )");
  InterpOptions options;
  options.engine = EngineKind::kVm;
  Interpreter interp(program_, *index_, options);
  Value first = interp.Invoke("C.f");
  int64_t first_steps = interp.steps();
  interp.ResetForRun();
  Value second = interp.Invoke("C.f");
  ASSERT_TRUE(IsInt(first));
  ASSERT_TRUE(IsInt(second));
  EXPECT_EQ(std::get<int64_t>(first), 32);
  EXPECT_EQ(std::get<int64_t>(second), 32);
  EXPECT_EQ(interp.steps(), first_steps);
}

TEST_F(VmEngineTest, LogicalOperatorsShortCircuitIdentically) {
  Load(R"(
    class C {
      int f() {
        var hits = 0;
        var n = 5;
        if (n > 0 && n < 10) {
          hits += 1;
        }
        if (n < 0 || n == 5) {
          hits += 10;
        }
        if (!(n == 4)) {
          hits += 100;
        }
        return hits;
      }
    }
  )");
  EXPECT_EQ(AsIntOrDie(RunBoth("C.f")), 111);
}

}  // namespace
}  // namespace wasabi
