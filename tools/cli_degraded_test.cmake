# Degraded-mode and robustness smoke test for the CLI (docs/ROBUSTNESS.md):
#   1. a corpus tree with one malformed source analyzes to completion — exit 0,
#      "degraded": true, the skipped file listed, bugs still reported;
#   2. a healthy tree stays byte-identical to the legacy array format;
#   3. --chaos output is deterministic across worker counts;
#   4. option validation: bad --jobs / --max-quarantined / --chaos values are
#      rejected with exit code 2 and the usage line.
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
execute_process(COMMAND "${WASABI_CLI}" dump-corpus "${WORK_DIR}" RESULT_VARIABLE rc
                OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "dump-corpus failed: ${rc}")
endif()

set(app "${WORK_DIR}/mapred")

# Healthy baseline: the analyze alias must emit the plain legacy array.
execute_process(COMMAND "${WASABI_CLI}" analyze "${app}" --json --jobs 2
                OUTPUT_VARIABLE clean_json RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "clean analyze failed: ${rc}")
endif()
string(JSON clean_kind ERROR_VARIABLE err TYPE "${clean_json}")
if(NOT err STREQUAL "NOTFOUND" OR NOT clean_kind STREQUAL "ARRAY")
  message(FATAL_ERROR "clean analyze output is not a JSON array (${clean_kind}, ${err})")
endif()

# Corrupt the tree: one unparseable file must degrade the report, not kill it.
file(WRITE "${app}/broken.mj" "class Broken { void f( { if } }\n")
execute_process(COMMAND "${WASABI_CLI}" analyze "${app}" --json --jobs 2
                OUTPUT_VARIABLE degraded_json ERROR_VARIABLE degraded_err
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "degraded analyze must still exit 0, got: ${rc}")
endif()
string(JSON degraded ERROR_VARIABLE err GET "${degraded_json}" "degraded")
if(NOT err STREQUAL "NOTFOUND" OR NOT degraded STREQUAL "ON")
  message(FATAL_ERROR "missing \"degraded\": true (got '${degraded}', err='${err}')")
endif()
string(JSON skipped_path ERROR_VARIABLE err GET "${degraded_json}" "skipped_files" 0 "path")
if(NOT skipped_path STREQUAL "broken.mj")
  message(FATAL_ERROR "skipped_files does not name broken.mj (got '${skipped_path}')")
endif()
string(JSON bug_count ERROR_VARIABLE err LENGTH "${degraded_json}" "bugs")
if(NOT err STREQUAL "NOTFOUND" OR bug_count EQUAL 0)
  message(FATAL_ERROR "degraded report lost its bugs (count='${bug_count}', err='${err}')")
endif()
if(NOT degraded_err MATCHES "skipping broken.mj")
  message(FATAL_ERROR "stderr does not explain the skipped file: ${degraded_err}")
endif()
file(REMOVE "${app}/broken.mj")

# Chaos containment smoke: same seed, different worker counts, same bytes.
execute_process(COMMAND "${WASABI_CLI}" test "${app}" --json --chaos 42:0.1 --jobs 2
                OUTPUT_VARIABLE chaos_two RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "chaos run (2 jobs) failed: ${rc}")
endif()
execute_process(COMMAND "${WASABI_CLI}" test "${app}" --json --chaos 42:0.1 --jobs 4
                OUTPUT_VARIABLE chaos_four RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "chaos run (4 jobs) failed: ${rc}")
endif()
if(NOT chaos_two STREQUAL chaos_four)
  message(FATAL_ERROR "--chaos output differs between 2 and 4 workers")
endif()

# Option validation: every bad value exits 2 with the usage line.
set(bad_option_sets
    "--jobs;0" "--jobs;-3" "--jobs;abc"
    "--max-quarantined;-1" "--max-quarantined;x"
    "--chaos;banana" "--chaos;42:1.5" "--fail-fast=1")
foreach(bad_args IN LISTS bad_option_sets)
  execute_process(COMMAND "${WASABI_CLI}" test "${app}" ${bad_args}
                  RESULT_VARIABLE rc ERROR_VARIABLE err OUTPUT_QUIET)
  if(NOT rc EQUAL 2)
    message(FATAL_ERROR "CLI must exit 2 for '${bad_args}', got ${rc}")
  endif()
  if(NOT err MATCHES "usage: wasabi")
    message(FATAL_ERROR "no usage line for bad option '${bad_args}': ${err}")
  endif()
endforeach()

# Good values of the new flags must be accepted.
execute_process(COMMAND "${WASABI_CLI}" test "${app}" --json --fail-fast
                        --max-quarantined 5 --chaos 7:0
                RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "CLI rejected valid robustness flags: ${rc}")
endif()
