# Engine selection smoke test (docs/PERFORMANCE.md): the bytecode VM (the
# default) and the reference tree-walker must produce byte-identical reports
# on a real corpus app, the bare flag and both spellings must be accepted,
# and an unknown engine must be rejected with exit code 2 plus the usage line.
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
execute_process(COMMAND "${WASABI_CLI}" dump-corpus "${WORK_DIR}" RESULT_VARIABLE rc
                OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "dump-corpus failed: ${rc}")
endif()

set(app "${WORK_DIR}/mapred")

execute_process(COMMAND "${WASABI_CLI}" test "${app}" --json --jobs 2 --engine=vm
                OUTPUT_VARIABLE vm_out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--engine=vm run failed: ${rc}")
endif()
execute_process(COMMAND "${WASABI_CLI}" test "${app}" --json --jobs 2 --engine=tree
                OUTPUT_VARIABLE tree_out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--engine=tree run failed: ${rc}")
endif()
if(NOT vm_out STREQUAL tree_out)
  message(FATAL_ERROR "--engine=vm and --engine=tree reports differ")
endif()

# Default (no flag) is the VM; its report must match the explicit spellings.
execute_process(COMMAND "${WASABI_CLI}" test "${app}" --json --jobs 2
                OUTPUT_VARIABLE default_out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "default-engine run failed: ${rc}")
endif()
if(NOT default_out STREQUAL vm_out)
  message(FATAL_ERROR "default engine report differs from --engine=vm")
endif()

# The space-separated spelling must parse too.
execute_process(COMMAND "${WASABI_CLI}" test "${app}" --json --jobs 2 --engine tree
                OUTPUT_VARIABLE spaced_out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "'--engine tree' run failed: ${rc}")
endif()
if(NOT spaced_out STREQUAL tree_out)
  message(FATAL_ERROR "'--engine tree' report differs from --engine=tree")
endif()

# Strict parsing: unknown engines and a valueless --engine exit 2 with usage.
foreach(bad_args IN ITEMS "--engine=jit" "--engine=" "--engine")
  execute_process(COMMAND "${WASABI_CLI}" test "${app}" ${bad_args}
                  RESULT_VARIABLE rc ERROR_VARIABLE err OUTPUT_QUIET)
  if(NOT rc EQUAL 2)
    message(FATAL_ERROR "bad option '${bad_args}' exited ${rc}, expected 2")
  endif()
  if(NOT err MATCHES "usage: wasabi")
    message(FATAL_ERROR "no usage line for bad option '${bad_args}': ${err}")
  endif()
endforeach()
