# Repair CLI smoke test (docs/REPAIR.md). Dumps the repairlab ground-truth
# app, runs `wasabi repair` expecting byte-identical JSON at several worker
# counts and with the observability sinks armed (stdout neutrality), checks
# the text summary scores the seeded manifest exactly, and exercises the
# strict flag parser: misplaced or malformed --repair-out/--storm-out values
# must exit 2 with the usage line.
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
execute_process(COMMAND "${WASABI_CLI}" dump-corpus "${WORK_DIR}" --app repairlab
                RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "dump-corpus --app repairlab failed: ${rc}")
endif()
set(app "${WORK_DIR}/repairlab")
if(NOT EXISTS "${app}")
  message(FATAL_ERROR "dump-corpus --app repairlab wrote no ${app} directory")
endif()

# Byte-identity: the JSON report at --jobs 1/2/4/8 plus a same-seed rerun, and
# --repair-out must hold exactly the --json stdout bytes.
execute_process(COMMAND "${WASABI_CLI}" repair "${app}" --jobs 1 --json
                        "--repair-out=${WORK_DIR}/report_j1.json"
                OUTPUT_VARIABLE baseline RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "repair --jobs 1 failed: ${rc}")
endif()
file(READ "${WORK_DIR}/report_j1.json" baseline_file)
if(NOT baseline_file STREQUAL baseline)
  message(FATAL_ERROR "--repair-out file differs from --json stdout")
endif()
foreach(jobs IN ITEMS 2 4 8 1)
  execute_process(COMMAND "${WASABI_CLI}" repair "${app}" --jobs ${jobs} --json
                  OUTPUT_VARIABLE out RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "repair --jobs ${jobs} failed: ${rc}")
  endif()
  if(NOT out STREQUAL baseline)
    message(FATAL_ERROR "repair report differs at --jobs ${jobs}")
  endif()
endforeach()

# Instrumentation sinks must not leak into stdout: the JSON bytes with
# --trace-out/--metrics-out/--journal-out/--progress armed must equal the
# bare run, and the sink files must exist afterwards.
execute_process(COMMAND "${WASABI_CLI}" repair "${app}" --json
                        "--trace-out=${WORK_DIR}/trace.json"
                        "--metrics-out=${WORK_DIR}/metrics.json"
                        "--journal-out=${WORK_DIR}/journal.json"
                        --progress
                OUTPUT_VARIABLE instrumented RESULT_VARIABLE rc
                ERROR_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "instrumented repair run failed: ${rc}")
endif()
if(NOT instrumented STREQUAL baseline)
  message(FATAL_ERROR "observability flags changed the repair JSON on stdout")
endif()
foreach(sink IN ITEMS trace.json metrics.json journal.json)
  if(NOT EXISTS "${WORK_DIR}/${sink}")
    message(FATAL_ERROR "instrumented repair run wrote no ${sink}")
  endif()
endforeach()
file(READ "${WORK_DIR}/metrics.json" metrics)
if(NOT metrics MATCHES "repair\\.fixed")
  message(FATAL_ERROR "metrics snapshot is missing the repair.* gauges:\n${metrics}")
endif()

# The text summary must score the seeded manifest exactly: every
# template-fixable bug fixed, nothing regressed, and only the unbounded
# fan-out (which has no template) left behind.
execute_process(COMMAND "${WASABI_CLI}" repair "${app}" --jobs 4
                OUTPUT_VARIABLE text RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "repair text run failed: ${rc}")
endif()
foreach(expected IN ITEMS
        "WASABI repair: app=repairlab"
        "confirmed=8 eligible=7 patched=7"
        "fixed=7 not-fixed=0 regressed=0 no-template=1"
        "template=bound-retry" "template=add-backoff" "template=add-jitter"
        "template=shed-on-overload")
  if(NOT text MATCHES "${expected}")
    message(FATAL_ERROR "repair summary is missing '${expected}':\n${text}")
  endif()
endforeach()
if(text MATCHES "\\[regressed\\]")
  message(FATAL_ERROR "repair summary reports a regression on the clean lab:\n${text}")
endif()

# Strict flag parsing: a --repair-out without a value or with an empty value,
# the flag on any other command, and storm-only flags on repair all exit 2
# with the usage line.
foreach(bad_args IN ITEMS
        "repair;${app};--repair-out" "repair;${app};--repair-out="
        "test;${app};--repair-out;x.json" "storm;${app};--repair-out;x.json"
        "report;${WORK_DIR}/r.html;--repair-out;x.json"
        "repair;${app};--storm-out;x.json" "repair;${app};extra"
        "repair;${app};--app;repairlab" "repair")
  execute_process(COMMAND "${WASABI_CLI}" ${bad_args}
                  RESULT_VARIABLE rc ERROR_VARIABLE err OUTPUT_QUIET)
  if(NOT rc EQUAL 2)
    message(FATAL_ERROR "CLI did not exit 2 for '${bad_args}' (rc=${rc})")
  endif()
  if(NOT err MATCHES "usage: wasabi")
    message(FATAL_ERROR "no usage line for '${bad_args}': ${err}")
  endif()
endforeach()

# Storm value flags are shared with the repair validator's storm phase, so
# they stay legal here.
execute_process(COMMAND "${WASABI_CLI}" repair "${app}" --storm-seed 7 --json
                RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "repair rejected the shared --storm-seed flag: ${rc}")
endif()
