# Record/replay CLI smoke test (docs/FLAKINESS.md). Records a campaign with
# --record, checks record mode leaves stdout byte-identical, replays one run
# by id expecting a byte-identical decision stream (exit 0), and exercises the
# strict flag parser: malformed --repetitions/--record/--replay values and
# --replay without --record must fail with a non-zero exit and the usage line.
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
execute_process(COMMAND "${WASABI_CLI}" dump-corpus "${WORK_DIR}" RESULT_VARIABLE rc
                OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "dump-corpus failed: ${rc}")
endif()

set(app "${WORK_DIR}/mapred")
set(record_dir "${WORK_DIR}/records")

execute_process(COMMAND "${WASABI_CLI}" test "${app}" --jobs 2
                OUTPUT_VARIABLE plain RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "plain run failed: ${rc}")
endif()
execute_process(COMMAND "${WASABI_CLI}" test "${app}" --jobs 2 --record "${record_dir}"
                OUTPUT_VARIABLE recorded RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "recording run failed: ${rc}")
endif()
if(NOT recorded STREQUAL plain)
  message(FATAL_ERROR "--record changed stdout")
endif()
if(NOT EXISTS "${record_dir}/MANIFEST.tsv")
  message(FATAL_ERROR "record directory has no MANIFEST.tsv")
endif()

# Replay run 0 (the first admitted spec always has id 0) with the same flags:
# exit 0 means the replayed decision stream and verdict are byte-identical.
execute_process(COMMAND "${WASABI_CLI}" test "${app}" --jobs 2
                        --record "${record_dir}" --replay 0
                OUTPUT_VARIABLE replay_out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "replay of run 0 failed (rc=${rc}): ${replay_out}")
endif()
if(NOT replay_out MATCHES "replayed run 0" AND NOT replay_out MATCHES "admission-skipped")
  message(FATAL_ERROR "unexpected replay output: ${replay_out}")
endif()

# A replay of a run id the record does not contain must fail cleanly.
execute_process(COMMAND "${WASABI_CLI}" test "${app}" --jobs 2
                        --record "${record_dir}" --replay 999999
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "replay of a nonexistent run id succeeded")
endif()

# Flag-parser rejection paths: each must exit non-zero and print usage.
# (Entries are CMake lists so multi-token flags pass as separate argv words.)
foreach(bad_args IN ITEMS
        "--repetitions;0" "--repetitions;-3" "--repetitions;x" "--repetitions"
        "--record" "--record=" "--replay;-1" "--replay;x" "--replay;5")
  execute_process(COMMAND "${WASABI_CLI}" test "${app}" ${bad_args}
                  RESULT_VARIABLE rc ERROR_VARIABLE err OUTPUT_QUIET)
  if(rc EQUAL 0)
    message(FATAL_ERROR "CLI accepted bad option '${bad_args}'")
  endif()
  if(NOT err MATCHES "usage: wasabi")
    message(FATAL_ERROR "no usage line for bad option '${bad_args}': ${err}")
  endif()
endforeach()
