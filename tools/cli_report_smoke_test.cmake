# End-to-end smoke for the retry journal and `wasabi report` (the
# "obsjournal" layer, docs/OBSERVABILITY.md): journaling leaves stdout
# byte-identical and the journal file byte-identical across worker counts;
# the OpenMetrics exposition ends with "# EOF"; the rendered dashboard is a
# self-contained HTML file; and the strict flag parsing rejects unknown
# metrics formats, valueless paths, and a report invocation with no journal.
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
execute_process(COMMAND "${WASABI_CLI}" dump-corpus "${WORK_DIR}" RESULT_VARIABLE rc
                OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "dump-corpus failed: ${rc}")
endif()

set(app "${WORK_DIR}/mapred")
set(journal_j2 "${WORK_DIR}/mapred_journal.json")
set(journal_j1 "${WORK_DIR}/mapred_j1_journal.json")
set(report_file "${WORK_DIR}/mapred_report.html")
set(metrics_file "${WORK_DIR}/metrics.txt")

execute_process(COMMAND "${WASABI_CLI}" test "${app}" --json --jobs 2
                        "--journal-out=${journal_j2}" "--report-out=${report_file}"
                        "--metrics-out=${metrics_file}" --metrics-format=openmetrics
                OUTPUT_VARIABLE instrumented RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "journaled run failed: ${rc}")
endif()
execute_process(COMMAND "${WASABI_CLI}" test "${app}" --json --jobs 2
                OUTPUT_VARIABLE plain RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "plain run failed: ${rc}")
endif()
if(NOT instrumented STREQUAL plain)
  message(FATAL_ERROR "--journal-out/--report-out changed stdout")
endif()

# Journal bytes are identical at any worker count.
execute_process(COMMAND "${WASABI_CLI}" test "${app}" --json --jobs 1
                        "--journal-out=${journal_j1}"
                RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "jobs=1 journaled run failed: ${rc}")
endif()
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files "${journal_j1}" "${journal_j2}"
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "journal differs between --jobs 1 and --jobs 2")
endif()

file(READ "${journal_j2}" journal_text)
string(JSON version ERROR_VARIABLE err GET "${journal_text}" "version")
if(NOT err STREQUAL "NOTFOUND" OR NOT version STREQUAL "wasabi-journal-v1")
  message(FATAL_ERROR "bad journal version '${version}' (err='${err}')")
endif()
string(JSON event_count ERROR_VARIABLE err LENGTH "${journal_text}" "events")
if(NOT err STREQUAL "NOTFOUND" OR event_count EQUAL 0)
  message(FATAL_ERROR "journal has no events (count='${event_count}', err='${err}')")
endif()

file(READ "${metrics_file}" metrics_text)
if(NOT metrics_text MATCHES "# TYPE .* counter" OR NOT metrics_text MATCHES "# EOF\n$")
  message(FATAL_ERROR "--metrics-format=openmetrics did not produce OpenMetrics text")
endif()
if(NOT metrics_text MATCHES "retry_amplification")
  message(FATAL_ERROR "OpenMetrics exposition is missing the retry.* gauges")
endif()

file(READ "${report_file}" report_text)
if(NOT report_text MATCHES "^<!DOCTYPE html>")
  message(FATAL_ERROR "report is not an HTML document")
endif()
if(NOT report_text MATCHES "Retry timelines")
  message(FATAL_ERROR "report is missing the retry-timeline section")
endif()

# Offline rendering: `wasabi report` over the saved journal reproduces a
# dashboard for the same app.
set(offline_report "${WORK_DIR}/offline_report.html")
execute_process(COMMAND "${WASABI_CLI}" report "--journal=${journal_j2}"
                        "--out=${offline_report}"
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "wasabi report failed: ${rc}")
endif()
if(NOT out MATCHES "wrote retry report for mapred")
  message(FATAL_ERROR "unexpected report output: ${out}")
endif()
file(READ "${offline_report}" offline_text)
if(NOT offline_text MATCHES "^<!DOCTYPE html>")
  message(FATAL_ERROR "offline report is not an HTML document")
endif()

# Strict flag parsing: each must exit 2 with the usage line.
set(bad_invocations
    "test|${app}|--metrics-out=${metrics_file}|--metrics-format=xml"
    "test|${app}|--metrics-format=openmetrics"
    "test|${app}|--journal-out"
    "test|${app}|--report-out="
    "report|--out=${offline_report}"
    "report|--journal=${journal_j2}"
    "report|--journal=${journal_j2}|--out=${offline_report}|--bogus=1")
foreach(bad IN LISTS bad_invocations)
  string(REPLACE "|" ";" bad_args "${bad}")
  execute_process(COMMAND "${WASABI_CLI}" ${bad_args}
                  RESULT_VARIABLE rc ERROR_VARIABLE err OUTPUT_QUIET)
  if(NOT rc EQUAL 2)
    message(FATAL_ERROR "expected exit 2 for '${bad}', got ${rc}")
  endif()
  if(NOT err MATCHES "usage: wasabi")
    message(FATAL_ERROR "no usage line for '${bad}': ${err}")
  endif()
endforeach()

# A malformed journal is a data error (exit 1), not a usage error.
file(WRITE "${WORK_DIR}/garbage.json" "not a journal")
execute_process(COMMAND "${WASABI_CLI}" report "--journal=${WORK_DIR}/garbage.json"
                        "--out=${offline_report}"
                RESULT_VARIABLE rc ERROR_QUIET OUTPUT_QUIET)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR "expected exit 1 for malformed journal, got ${rc}")
endif()
