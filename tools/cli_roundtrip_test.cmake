# Dumps the corpus to disk, then re-analyzes one application from the files:
# the CLI's file-loading path must reproduce the in-memory pipeline.
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
execute_process(COMMAND "${WASABI_CLI}" dump-corpus "${WORK_DIR}" RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "dump-corpus failed: ${rc}")
endif()
execute_process(COMMAND "${WASABI_CLI}" identify "${WORK_DIR}/cassandra"
                OUTPUT_VARIABLE out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "identify failed: ${rc}")
endif()
if(NOT out MATCHES "retry structures")
  message(FATAL_ERROR "identify output unexpected: ${out}")
endif()
execute_process(COMMAND "${WASABI_CLI}" test "${WORK_DIR}/cassandra" --json
                OUTPUT_VARIABLE out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "test failed: ${rc}")
endif()
if(NOT out MATCHES "missing-cap")
  message(FATAL_ERROR "expected a missing-cap report, got: ${out}")
endif()
