# Storm CLI smoke test (docs/STORM.md). Dumps the stormlab ground-truth app,
# runs `wasabi storm` at several worker counts expecting byte-identical JSON
# reports and journals, checks the text summary names all three seeded storm
# bugs (and only those), and exercises the strict --storm-* flag parser: every
# malformed value must exit 2 with the usage line.
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
execute_process(COMMAND "${WASABI_CLI}" dump-corpus "${WORK_DIR}" --app stormlab
                RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "dump-corpus --app stormlab failed: ${rc}")
endif()
set(app "${WORK_DIR}/stormlab")
if(NOT EXISTS "${app}")
  message(FATAL_ERROR "dump-corpus --app stormlab wrote no ${app} directory")
endif()

# An unknown --app must be rejected up front, before any files are written.
execute_process(COMMAND "${WASABI_CLI}" dump-corpus "${WORK_DIR}" --app nosuchapp
                RESULT_VARIABLE rc ERROR_VARIABLE err OUTPUT_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "dump-corpus accepted an unknown --app")
endif()
if(NOT err MATCHES "usage: wasabi")
  message(FATAL_ERROR "no usage line for unknown --app: ${err}")
endif()

# Byte-identity: JSON report + journal at --jobs 1/2/4/8, plus a same-seed
# rerun. Worker count only parallelizes profile extraction; the simulation
# itself is serial, so every artifact must match the --jobs 1 baseline.
execute_process(COMMAND "${WASABI_CLI}" storm "${app}" --jobs 1 --json
                        "--storm-out=${WORK_DIR}/report_j1.json"
                        "--journal-out=${WORK_DIR}/journal_j1.json"
                OUTPUT_VARIABLE baseline RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "storm --jobs 1 failed: ${rc}")
endif()
file(READ "${WORK_DIR}/report_j1.json" baseline_file)
if(NOT baseline_file STREQUAL baseline)
  message(FATAL_ERROR "--storm-out file differs from --json stdout")
endif()
file(READ "${WORK_DIR}/journal_j1.json" baseline_journal)
foreach(jobs IN ITEMS 2 4 8 1)
  execute_process(COMMAND "${WASABI_CLI}" storm "${app}" --jobs ${jobs} --json
                          "--journal-out=${WORK_DIR}/journal_j${jobs}.json"
                  OUTPUT_VARIABLE out RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "storm --jobs ${jobs} failed: ${rc}")
  endif()
  if(NOT out STREQUAL baseline)
    message(FATAL_ERROR "storm report differs at --jobs ${jobs}")
  endif()
  file(READ "${WORK_DIR}/journal_j${jobs}.json" journal)
  if(NOT journal STREQUAL baseline_journal)
    message(FATAL_ERROR "storm journal differs at --jobs ${jobs}")
  endif()
endforeach()

# The text summary must flag exactly the three seeded storm bug classes; the
# healthy gateway frontend must stay clean.
execute_process(COMMAND "${WASABI_CLI}" storm "${app}" --jobs 4
                OUTPUT_VARIABLE text RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "storm text run failed: ${rc}")
endif()
foreach(expected IN ITEMS
        "STORM/missing-jitter" "STORM/unbounded-fanout" "STORM/retry-on-overload"
        "metastable=yes")
  if(NOT text MATCHES "${expected}")
    message(FATAL_ERROR "storm summary is missing '${expected}':\n${text}")
  endif()
endforeach()
if(text MATCHES "bug [^\n]*Gateway")
  message(FATAL_ERROR "storm summary flags the healthy gateway:\n${text}")
endif()

# A shorter fault window is accepted and still renders a well-formed report.
execute_process(COMMAND "${WASABI_CLI}" storm "${app}" --storm-seed 9
                        --storm-duration 12000 --storm-fault 2000:4000 --json
                OUTPUT_VARIABLE short_run RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "storm with explicit window failed: ${rc}")
endif()
if(NOT short_run MATCHES "\"duration_ms\": 12000")
  message(FATAL_ERROR "explicit --storm-duration not echoed in the report")
endif()

# Strict flag parsing: every malformed --storm-* value, a --storm-* flag
# without a storm context, and --app outside dump-corpus exit 2 with usage.
foreach(bad_args IN ITEMS
        "storm;${app};--storm-seed;x" "storm;${app};--storm-seed;-1"
        "storm;${app};--storm-seed" "storm;${app};--storm-duration;0"
        "storm;${app};--storm-duration;-5" "storm;${app};--storm-duration;x"
        "storm;${app};--storm-fault;5000" "storm;${app};--storm-fault;5000:1000"
        "storm;${app};--storm-fault;-1:2000" "storm;${app};--storm-fault;a:b"
        "storm;${app};--storm-fault;1000:90000" "storm;${app};--storm-out="
        "storm;${app};--storm;extra" "dump-corpus;${WORK_DIR};--app;"
        "dump-corpus;${WORK_DIR};--storm" "test;${app};--storm-seed;7"
        "test;${app};--app;stormlab")
  execute_process(COMMAND "${WASABI_CLI}" ${bad_args}
                  RESULT_VARIABLE rc ERROR_VARIABLE err OUTPUT_QUIET)
  if(NOT rc EQUAL 2)
    message(FATAL_ERROR "CLI did not exit 2 for '${bad_args}' (rc=${rc})")
  endif()
  if(NOT err MATCHES "usage: wasabi")
    message(FATAL_ERROR "no usage line for '${bad_args}': ${err}")
  endif()
endforeach()
