# Runs the dynamic workflow on the smallest corpus app with --trace-out and
# --metrics-out, checks both files parse as JSON (CMake's string(JSON) is a
# strict parser), and checks instrumentation leaves stdout byte-identical.
# Also exercises the strict flag parser: unknown options and a valueless
# --jobs must fail with a non-zero exit and the usage line.
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
execute_process(COMMAND "${WASABI_CLI}" dump-corpus "${WORK_DIR}" RESULT_VARIABLE rc
                OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "dump-corpus failed: ${rc}")
endif()

set(app "${WORK_DIR}/mapred")
set(trace_file "${WORK_DIR}/trace.json")
set(metrics_file "${WORK_DIR}/metrics.json")

execute_process(COMMAND "${WASABI_CLI}" test "${app}" --json --jobs 2
                        "--trace-out=${trace_file}" "--metrics-out=${metrics_file}"
                OUTPUT_VARIABLE instrumented RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "instrumented run failed: ${rc}")
endif()
execute_process(COMMAND "${WASABI_CLI}" test "${app}" --json --jobs 2
                OUTPUT_VARIABLE plain RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "uninstrumented run failed: ${rc}")
endif()
if(NOT instrumented STREQUAL plain)
  message(FATAL_ERROR "--trace-out/--metrics-out changed stdout")
endif()

foreach(output IN ITEMS "${trace_file}" "${metrics_file}")
  if(NOT EXISTS "${output}")
    message(FATAL_ERROR "missing output file ${output}")
  endif()
  file(READ "${output}" text)
  # string(JSON ...) raises a fatal error itself on malformed input; the
  # explicit ERROR_VARIABLE turns that into a readable assertion.
  string(JSON kind ERROR_VARIABLE err TYPE "${text}")
  if(NOT err STREQUAL "NOTFOUND")
    message(FATAL_ERROR "${output} is not valid JSON: ${err}")
  endif()
  if(NOT kind STREQUAL "OBJECT")
    message(FATAL_ERROR "${output} top level is ${kind}, expected OBJECT")
  endif()
endforeach()

file(READ "${trace_file}" trace_text)
string(JSON event_count ERROR_VARIABLE err LENGTH "${trace_text}" "traceEvents")
if(NOT err STREQUAL "NOTFOUND" OR event_count EQUAL 0)
  message(FATAL_ERROR "trace has no traceEvents (count='${event_count}', err='${err}')")
endif()

file(READ "${metrics_file}" metrics_text)
string(JSON runs ERROR_VARIABLE err GET "${metrics_text}" "counters" "campaign.runs_total")
if(NOT err STREQUAL "NOTFOUND" OR runs LESS_EQUAL 0)
  message(FATAL_ERROR "metrics missing campaign.runs_total (got '${runs}', err='${err}')")
endif()

# Flag-parser rejection paths: each must exit non-zero and print usage.
foreach(bad_args IN ITEMS "--trace-ot=x.json" "--jobs" "--json=1")
  execute_process(COMMAND "${WASABI_CLI}" test "${app}" ${bad_args}
                  RESULT_VARIABLE rc ERROR_VARIABLE err OUTPUT_QUIET)
  if(rc EQUAL 0)
    message(FATAL_ERROR "CLI accepted bad option '${bad_args}'")
  endif()
  if(NOT err MATCHES "usage: wasabi")
    message(FATAL_ERROR "no usage line for bad option '${bad_args}': ${err}")
  endif()
endforeach()
