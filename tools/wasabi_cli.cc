// wasabi — command-line driver for the retry-bug detection toolkit.
//
// Usage:
//   wasabi dump-corpus <dir>          write the 8 evaluation applications' mj
//                                     sources (and MANIFEST.txt) under <dir>
//   wasabi identify <dir>             retry-structure inventory for the mj
//                                     sources under <dir> (recursive)
//   wasabi static <dir>               static workflow: LLM WHEN bugs + IF
//                                     retry-ratio outliers
//   wasabi test <dir>                 dynamic workflow: repurposed unit tests
//                                     with fault injection and oracles
//   wasabi analyze <dir>              alias for `test`
//   wasabi storm <dir>                deterministic retry-storm simulation of
//                                     the app's extracted retry policies
//                                     (docs/STORM.md)
//   wasabi repair <dir>               automated repair loop: synthesize a
//                                     template patch for every confirmed
//                                     WHEN/storm verdict and validate it by a
//                                     cache-sliced re-campaign (docs/REPAIR.md)
//   wasabi study                      print the §2 issue-study summary
//   wasabi report --journal=FILE --out=FILE [--metrics=FILE] [--trace=FILE]
//                 [--repair=FILE]     render a journal (plus optional sibling
//                                     artifacts, including a repair report)
//                                     into one self-contained HTML dashboard —
//                                     no analysis is run
//
// Options:
//   --json                            machine-readable bug reports
//   --jobs N                          worker threads for the injection
//                                     campaign (default: all hardware
//                                     threads; output is identical for any N)
//   --trace-out=FILE                  write a Chrome trace-event JSON of the
//                                     run (open in chrome://tracing/Perfetto)
//   --metrics-out=FILE                write the metrics snapshot
//   --metrics-format=json|openmetrics metrics-out encoding (default json);
//                                     openmetrics is Prometheus-scrapeable
//   --engine=vm|tree                  mj execution engine: the bytecode VM
//                                     (default) or the reference tree-walker
//                                     (docs/PERFORMANCE.md); output is
//                                     byte-identical for either, and the
//                                     choice is part of the cache/record
//                                     config digest
//   --journal-out=FILE                write the retry-behavior journal JSON
//                                     (docs/OBSERVABILITY.md); byte-identical
//                                     at any --jobs N
//   --report-out=FILE                 render the HTML retry dashboard for this
//                                     run (implies journaling)
//   --progress                        periodic campaign progress on stderr
//   --fail-fast                       stop scheduling runs after the first
//                                     quarantined one
//   --max-quarantined N               abort the campaign once more than N
//                                     runs are quarantined
//   --chaos SEED:RATE[:ENV_RATE]      self-chaos: deterministically fail RATE
//                                     of runs at the host level (containment
//                                     drill, docs/ROBUSTNESS.md); ENV_RATE of
//                                     runs additionally execute in the seeded
//                                     degraded-environment mode
//   --repetitions N                   flakiness prober: rerun each failing
//                                     campaign verdict N times under clock
//                                     perturbation and classify it {stable,
//                                     flaky, chaos-induced} (docs/FLAKINESS.md)
//   --record DIR                      record every campaign run's decision
//                                     stream (chaos/backoff/injection/dispatch
//                                     events) into DIR; output-neutral
//   --replay ID                       test/analyze only: replay the single
//                                     recorded run ID from --record DIR in
//                                     isolation and compare the decision
//                                     stream and verdict byte-for-byte (pass
//                                     the same flags as the recording run)
//   --cache-dir=DIR                   memoize per-file analysis, coverage, and
//                                     campaign verdicts under DIR keyed by
//                                     content digests (docs/CACHING.md);
//                                     reports are byte-identical with the
//                                     cache on, off, warm, or damaged
//   --scale N                         dump-corpus only: emit N seeded variants
//                                     of each application (default 1)
//   --app NAME                        dump-corpus only: emit a single known
//                                     app (including the on-demand labs
//                                     "flakylab", "stormlab", and "repairlab");
//                                     unknown names are rejected with exit
//                                     code 2
//   --storm                           test/analyze only: also run the storm
//                                     simulation, output-neutral — results go
//                                     to the obs sinks (journal/metrics/trace/
//                                     report) only
//   --storm-seed N                    storm RNG seed (non-negative; default 1)
//   --storm-duration MS               simulated duration (positive; default
//                                     30000)
//   --storm-fault START:END           transient backend fault window in
//                                     simulated ms (0 <= START < END <=
//                                     duration; default 5000:10000)
//   --storm-out=FILE                  write the storm report JSON
//                                     ("wasabi-storm-v1"; byte-identical at
//                                     any --jobs N)
//   --repair-out=FILE                 repair only: write the repair report
//                                     JSON ("wasabi-repair-v1"; byte-identical
//                                     at any --jobs N and any cache state)
//
// Malformed .mj files no longer abort an analysis: they are skipped with a
// diagnostic on stderr and the report is marked degraded (JSON gains
// "degraded": true plus skipped_files/quarantined sections; exit stays 0).
//
// Instrumentation never touches stdout: reports are byte-identical with and
// without --trace-out/--metrics-out/--progress. Unknown options and options
// missing a required value are rejected with exit code 2.
//
// Directory layout convention: every *.mj file is part of the application;
// classes whose names end in "Test" are unit tests. The directory's base name
// is used as the application name in reports.

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/cache/store.h"
#include "src/core/report_json.h"
#include "src/core/wasabi.h"
#include "src/corpus/corpus.h"
#include "src/lang/parser.h"
#include "src/obs/journal.h"
#include "src/obs/metrics.h"
#include "src/obs/progress.h"
#include "src/obs/report_html.h"
#include "src/obs/retry_stats.h"
#include "src/obs/trace.h"
#include "src/repair/repair.h"
#include "src/storm/profile.h"
#include "src/storm/storm.h"
#include "src/study/study.h"

namespace fs = std::filesystem;

namespace {

using namespace wasabi;

int Usage() {
  std::cerr << "usage: wasabi <dump-corpus|identify|static|test|analyze|storm|repair|study>"
               " [dir] [--json]"
               " [--jobs N] [--trace-out=FILE] [--metrics-out=FILE]"
               " [--metrics-format=json|openmetrics] [--journal-out=FILE]"
               " [--report-out=FILE] [--progress]"
               " [--engine=vm|tree]"
               " [--fail-fast] [--max-quarantined N] [--chaos SEED:RATE[:ENV_RATE]]"
               " [--cache-dir=DIR] [--scale N] [--app NAME] [--repetitions N] [--record DIR]"
               " [--replay ID] [--storm] [--storm-seed N] [--storm-duration MS]"
               " [--storm-fault START:END] [--storm-out=FILE] [--repair-out=FILE]\n"
               "       wasabi report --journal=FILE --out=FILE [--metrics=FILE] [--trace=FILE]"
               " [--repair=FILE]\n";
  return 2;
}

// Parsed command-line options shared by the analysis commands.
struct CliOptions {
  bool json = false;
  bool progress = false;
  int jobs = 0;  // 0 = all hardware threads (DefaultJobCount).
  std::string trace_out;
  std::string metrics_out;
  std::string metrics_format = "json";  // "json" | "openmetrics".
  std::string engine = "vm";            // "vm" | "tree" (docs/PERFORMANCE.md).
  bool metrics_format_set = false;      // For "--metrics-format without --metrics-out" errors.
  std::string journal_out;  // Empty = retry journal off.
  std::string report_out;   // Empty = no HTML report; non-empty implies journaling.
  bool fail_fast = false;
  int64_t max_quarantined = -1;  // < 0 = unlimited.
  ChaosConfig chaos;
  std::string cache_dir;  // Empty = cache off (the default code path).
  int scale = 1;          // dump-corpus variant multiplier.
  int repetitions = 0;    // Flakiness-prober repetitions; 0 = prober off.
  std::string record_dir;     // Empty = record mode off.
  int64_t replay_run_id = -1;  // < 0 = no replay requested.
  std::string corpus_app;  // --app: dump-corpus single-app selection.
  bool storm = false;      // --storm: output-neutral storm phase on test/analyze.
  StormOptions storm_options;  // Defaults unless --storm-* flags override.
  std::string storm_out;       // --storm-out: write the storm report JSON.
  std::string storm_flag;      // First --storm-* value flag seen (validation).
  bool storm_fault_set = false;
  std::string repair_out;      // --repair-out: write the repair report JSON.
  bool repair_flag = false;    // A --repair-* flag was seen (command scoping).
};

// Strict flag parsing: every `--name=value` / `--name value` form must match
// a known option, and value-taking options must actually get a value — a
// typo like --trace-ot=t.json fails loudly instead of silently running an
// uninstrumented campaign. Returns false after printing the usage line.
bool ParseOptions(int argc, char** argv, int first, CliOptions* options) {
  auto fail = [](const std::string& message) {
    std::cerr << "error: " << message << "\n";
    Usage();
    return false;
  };
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    std::string name = arg;
    std::string value;
    bool has_value = false;
    if (size_t eq = arg.find('='); arg.rfind("--", 0) == 0 && eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    }
    auto take_value = [&](const char* flag) {
      if (has_value) {
        return true;
      }
      if (i + 1 < argc) {
        value = argv[++i];
        return true;
      }
      std::cerr << "error: option " << flag << " requires a value\n";
      return false;
    };
    if (name == "--json" || name == "--progress" || name == "--fail-fast") {
      if (has_value) {
        return fail("option " + name + " does not take a value");
      }
      if (name == "--json") {
        options->json = true;
      } else if (name == "--progress") {
        options->progress = true;
      } else {
        options->fail_fast = true;
      }
    } else if (name == "--jobs") {
      if (!take_value("--jobs")) {
        Usage();
        return false;
      }
      char* end = nullptr;
      long jobs = std::strtol(value.c_str(), &end, 10);
      if (value.empty() || end == value.c_str() || *end != '\0' || jobs < 1) {
        return fail("option --jobs needs a positive integer, got '" + value + "'");
      }
      options->jobs = static_cast<int>(jobs);
    } else if (name == "--max-quarantined") {
      if (!take_value("--max-quarantined")) {
        Usage();
        return false;
      }
      char* end = nullptr;
      long long limit = std::strtoll(value.c_str(), &end, 10);
      if (value.empty() || end == value.c_str() || *end != '\0' || limit < 0) {
        return fail("option --max-quarantined needs a non-negative integer, got '" + value +
                    "'");
      }
      options->max_quarantined = static_cast<int64_t>(limit);
    } else if (name == "--chaos") {
      if (!take_value("--chaos")) {
        Usage();
        return false;
      }
      std::string error;
      if (!ParseChaosSpec(value, &options->chaos, &error)) {
        return fail("option --chaos needs SEED:RATE, got '" + value + "' (" + error + ")");
      }
    } else if (name == "--trace-out") {
      if (!take_value("--trace-out")) {
        Usage();
        return false;
      }
      options->trace_out = value;
    } else if (name == "--metrics-out") {
      if (!take_value("--metrics-out")) {
        Usage();
        return false;
      }
      options->metrics_out = value;
    } else if (name == "--metrics-format") {
      if (!take_value("--metrics-format")) {
        Usage();
        return false;
      }
      if (value != "json" && value != "openmetrics") {
        return fail("option --metrics-format must be json or openmetrics, got '" + value + "'");
      }
      options->metrics_format = value;
      options->metrics_format_set = true;
    } else if (name == "--engine") {
      if (!take_value("--engine")) {
        Usage();
        return false;
      }
      if (value != "vm" && value != "tree") {
        return fail("option --engine must be vm or tree, got '" + value + "'");
      }
      options->engine = value;
    } else if (name == "--journal-out") {
      if (!take_value("--journal-out")) {
        Usage();
        return false;
      }
      if (value.empty()) {
        return fail("option --journal-out needs a non-empty path");
      }
      options->journal_out = value;
    } else if (name == "--report-out") {
      if (!take_value("--report-out")) {
        Usage();
        return false;
      }
      if (value.empty()) {
        return fail("option --report-out needs a non-empty path");
      }
      options->report_out = value;
    } else if (name == "--cache-dir") {
      if (!take_value("--cache-dir")) {
        Usage();
        return false;
      }
      if (value.empty()) {
        return fail("option --cache-dir needs a non-empty directory");
      }
      options->cache_dir = value;
    } else if (name == "--repetitions") {
      if (!take_value("--repetitions")) {
        Usage();
        return false;
      }
      char* end = nullptr;
      long repetitions = std::strtol(value.c_str(), &end, 10);
      if (value.empty() || end == value.c_str() || *end != '\0' || repetitions < 1) {
        return fail("option --repetitions needs a positive integer, got '" + value + "'");
      }
      options->repetitions = static_cast<int>(repetitions);
    } else if (name == "--record") {
      if (!take_value("--record")) {
        Usage();
        return false;
      }
      if (value.empty()) {
        return fail("option --record needs a non-empty directory");
      }
      options->record_dir = value;
    } else if (name == "--replay") {
      if (!take_value("--replay")) {
        Usage();
        return false;
      }
      char* end = nullptr;
      long long run_id = std::strtoll(value.c_str(), &end, 10);
      if (value.empty() || end == value.c_str() || *end != '\0' || run_id < 0) {
        return fail("option --replay needs a non-negative run id, got '" + value + "'");
      }
      options->replay_run_id = static_cast<int64_t>(run_id);
    } else if (name == "--scale") {
      if (!take_value("--scale")) {
        Usage();
        return false;
      }
      char* end = nullptr;
      long scale = std::strtol(value.c_str(), &end, 10);
      if (value.empty() || end == value.c_str() || *end != '\0' || scale < 1) {
        return fail("option --scale needs a positive integer, got '" + value + "'");
      }
      options->scale = static_cast<int>(scale);
    } else if (name == "--app") {
      if (!take_value("--app")) {
        Usage();
        return false;
      }
      if (value.empty()) {
        return fail("option --app needs a non-empty corpus app name");
      }
      options->corpus_app = value;
    } else if (name == "--storm") {
      if (has_value) {
        return fail("option --storm does not take a value");
      }
      options->storm = true;
    } else if (name == "--storm-seed") {
      if (!take_value("--storm-seed")) {
        Usage();
        return false;
      }
      char* end = nullptr;
      long long seed = std::strtoll(value.c_str(), &end, 10);
      if (value.empty() || end == value.c_str() || *end != '\0' || seed < 0) {
        return fail("option --storm-seed needs a non-negative integer, got '" + value + "'");
      }
      options->storm_options.seed = static_cast<uint64_t>(seed);
      options->storm_flag = "--storm-seed";
    } else if (name == "--storm-duration") {
      if (!take_value("--storm-duration")) {
        Usage();
        return false;
      }
      char* end = nullptr;
      long long duration = std::strtoll(value.c_str(), &end, 10);
      if (value.empty() || end == value.c_str() || *end != '\0' || duration < 1) {
        return fail("option --storm-duration needs a positive integer of simulated ms, got '" +
                    value + "'");
      }
      options->storm_options.duration_ms = static_cast<int64_t>(duration);
      options->storm_flag = "--storm-duration";
    } else if (name == "--storm-fault") {
      if (!take_value("--storm-fault")) {
        Usage();
        return false;
      }
      size_t colon = value.find(':');
      bool ok = colon != std::string::npos && colon > 0 && colon + 1 < value.size();
      long long start = 0;
      long long stop = 0;
      if (ok) {
        char* end = nullptr;
        std::string head = value.substr(0, colon);
        std::string tail = value.substr(colon + 1);
        start = std::strtoll(head.c_str(), &end, 10);
        ok = end != head.c_str() && *end == '\0' && start >= 0;
        if (ok) {
          stop = std::strtoll(tail.c_str(), &end, 10);
          ok = end != tail.c_str() && *end == '\0' && stop > start;
        }
      }
      if (!ok) {
        return fail("option --storm-fault needs START:END with 0 <= START < END, got '" +
                    value + "'");
      }
      options->storm_options.fault_start_ms = static_cast<int64_t>(start);
      options->storm_options.fault_end_ms = static_cast<int64_t>(stop);
      options->storm_fault_set = true;
      options->storm_flag = "--storm-fault";
    } else if (name == "--storm-out") {
      if (!take_value("--storm-out")) {
        Usage();
        return false;
      }
      if (value.empty()) {
        return fail("option --storm-out needs a non-empty path");
      }
      options->storm_out = value;
      options->storm_flag = "--storm-out";
    } else if (name == "--repair-out") {
      if (!take_value("--repair-out")) {
        Usage();
        return false;
      }
      if (value.empty()) {
        return fail("option --repair-out needs a non-empty path");
      }
      options->repair_out = value;
      options->repair_flag = true;
    } else {
      return fail("unknown option '" + arg + "'");
    }
  }
  if (options->metrics_format_set && options->metrics_out.empty()) {
    return fail("option --metrics-format requires --metrics-out=FILE");
  }
  if (options->storm_fault_set &&
      options->storm_options.fault_end_ms > options->storm_options.duration_ms) {
    return fail("option --storm-fault window must end within --storm-duration");
  }
  return true;
}

struct ObsSinks;

bool WriteFileOrComplain(const std::string& path, const std::string& bytes, const char* what) {
  std::ofstream out(path, std::ios::binary);
  out << bytes;
  if (!out) {
    std::cerr << "error: cannot write " << what << " to " << path << "\n";
    return false;
  }
  return true;
}

// Opens the --cache-dir store. A store that cannot be opened (filesystem-level
// failure) only warns on stderr and runs the analysis cold: the cache is an
// accelerator, never a correctness dependency. Returns null when the flag is
// absent, which keeps every cache code path disabled.
std::unique_ptr<CacheStore> OpenCliCache(const CliOptions& cli) {
  if (cli.cache_dir.empty()) {
    return nullptr;
  }
  std::string error;
  std::unique_ptr<CacheStore> store = CacheStore::Open(cli.cache_dir, &error);
  if (store == nullptr) {
    std::cerr << "warning: cache disabled: " << error << "\n";
  }
  return store;
}

// Persists new cache entries and exports the store's health counters into the
// metrics registry (robust.* — corruption can only cost recomputation, and
// these gauges prove when it did). Call before ExportObservability.
void FinishCliCache(CacheStore* store, MetricsRegistry* metrics) {
  if (store == nullptr) {
    return;
  }
  if (metrics != nullptr) {
    CacheStats stats = store->stats();
    metrics->SetGauge("cache.loaded_entries", static_cast<double>(stats.loaded_entries));
    metrics->SetGauge("cache.puts", static_cast<double>(stats.puts));
    metrics->SetGauge("robust.cache_corrupt_entries",
                      static_cast<double>(stats.corrupt_entries));
    metrics->SetGauge("robust.cache_version_mismatches",
                      static_cast<double>(stats.version_mismatches));
  }
  std::string error;
  if (!store->Flush(&error)) {
    std::cerr << "warning: cache flush failed: " << error << "\n";
  }
}

// Loads every .mj file under `root` (recursively) into a program. Paths are
// recorded relative to `root` so reports are readable.
//
// Degraded-mode containment (docs/ROBUSTNESS.md): each file parses against
// its own DiagnosticEngine, so a malformed or unreadable file is reported on
// stderr, recorded in `skipped`, and left out of the program instead of
// aborting the whole analysis. Only "no file loaded at all" is fatal.
bool LoadProgram(const fs::path& root, mj::Program& program,
                 std::vector<SkippedFile>* skipped) {
  std::vector<fs::path> files;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(root, ec), end; it != end && !ec;
       it.increment(ec)) {
    if (it->is_regular_file() && it->path().extension() == ".mj") {
      files.push_back(it->path());
    }
  }
  if (ec) {
    std::cerr << "error: cannot read " << root << ": " << ec.message() << "\n";
    return false;
  }
  if (files.empty()) {
    std::cerr << "error: no .mj files under " << root << "\n";
    return false;
  }
  std::sort(files.begin(), files.end());
  size_t loaded = 0;
  for (const fs::path& file : files) {
    std::string name = fs::relative(file, root, ec).generic_string();
    std::ifstream in(file);
    if (!in) {
      std::cerr << "warning: skipping unreadable file " << name << "\n";
      if (skipped != nullptr) {
        skipped->push_back({name, "unreadable"});
      }
      continue;
    }
    std::ostringstream text;
    text << in.rdbuf();
    mj::DiagnosticEngine diag;
    auto unit = mj::ParseSource(name, text.str(), diag);
    if (diag.has_errors()) {
      std::cerr << diag.FormatAll(nullptr);
      std::cerr << "warning: skipping " << name << " (" << diag.error_count()
                << " parse error(s))\n";
      if (skipped != nullptr) {
        skipped->push_back({name, std::to_string(diag.error_count()) + " parse error(s)"});
      }
      continue;
    }
    program.AddUnit(std::move(unit));
    ++loaded;
  }
  if (loaded == 0) {
    std::cerr << "error: no loadable .mj files under " << root << "\n";
    return false;
  }
  return true;
}

void WriteCorpusApp(const fs::path& root, const CorpusApp& app) {
  std::ostringstream manifest;
  manifest << "# Seeded bugs for " << app.display_name << "\n";
  for (const SeededBug& bug : app.bugs) {
    manifest << bug.id << "\t" << BugTypeName(bug.type) << "\t" << bug.coordinator << "\t"
             << bug.note << "\n";
  }
  for (const auto& unit : app.program.units()) {
    fs::path out_path = root / unit->file().name();
    std::error_code ec;
    fs::create_directories(out_path.parent_path(), ec);
    std::ofstream out(out_path);
    out << unit->file().text();
  }
  fs::path manifest_path = root / app.name / "MANIFEST.txt";
  std::ofstream out(manifest_path);
  out << manifest.str();
  std::cout << "wrote " << app.source_files << " files + manifest under "
            << (root / app.name).generic_string() << "\n";
}

int DumpCorpus(const fs::path& root, const CliOptions& cli) {
  if (!cli.corpus_app.empty()) {
    // Single-app dumps reach the on-demand labs (flakylab, stormlab) that are
    // deliberately outside the eight-app goldens; unknown names are a usage
    // error, not an abort.
    if (!IsKnownCorpusApp(cli.corpus_app)) {
      std::cerr << "error: unknown corpus app '" << cli.corpus_app << "'\n";
      return Usage();
    }
    if (cli.scale != 1) {
      std::cerr << "error: option --scale does not combine with --app\n";
      return Usage();
    }
    WriteCorpusApp(root, BuildCorpusApp(cli.corpus_app));
    return 0;
  }
  for (const std::string& name : ScaledCorpusAppNames(cli.scale)) {
    WriteCorpusApp(root, BuildScaledCorpusApp(name));
  }
  return 0;
}

WasabiOptions OptionsFor(const fs::path& root) {
  WasabiOptions options;
  options.app_name = root.filename().generic_string();
  if (options.app_name.empty()) {
    options.app_name = "app";
  }
  return options;
}

int Identify(const fs::path& root, const CliOptions& cli) {
  mj::Program program;
  std::vector<SkippedFile> skipped;
  if (!LoadProgram(root, program, &skipped)) {
    return 1;
  }
  mj::ProgramIndex index(program);
  Wasabi tool(program, index, OptionsFor(root));
  std::unique_ptr<CacheStore> cache = OpenCliCache(cli);
  tool.set_cache(cache.get());
  IdentificationResult result = tool.IdentifyRetryStructures();
  FinishCliCache(cache.get(), nullptr);
  std::cout << result.structures.size() << " retry structures ("
            << result.candidate_loops_without_keyword_filter
            << " candidate loops before keyword filtering):\n";
  for (const RetryStructure& structure : result.structures) {
    std::cout << "  " << structure.file << ":" << structure.location.line << "\t"
              << structure.coordinator << "\t" << RetryMechanismName(structure.mechanism)
              << "\t"
              << (structure.found_by.both()    ? "codeql+llm"
                  : structure.found_by.codeql ? "codeql"
                                              : "llm")
              << "\t" << structure.locations.size() << " location(s)\n";
  }
  return 0;
}

// Sinks backing the --trace-out/--metrics-out/--journal-out/--report-out/
// --progress flags. The pointers are null unless the matching flag was given,
// so an unflagged run takes the exact uninstrumented code paths. --report-out
// implies journaling: the dashboard is rendered from this run's journal.
struct ObsSinks {
  explicit ObsSinks(const CliOptions& cli)
      : progress_meter(&std::cerr),
        tracer_ptr(cli.trace_out.empty() ? nullptr : &tracer),
        metrics_ptr(cli.metrics_out.empty() ? nullptr : &metrics),
        progress_ptr(cli.progress ? &progress_meter : nullptr),
        journal_ptr(cli.journal_out.empty() && cli.report_out.empty() ? nullptr : &journal) {}

  Tracer tracer;
  MetricsRegistry metrics;
  ProgressMeter progress_meter;
  RetryJournal journal;
  Tracer* tracer_ptr;
  MetricsRegistry* metrics_ptr;
  ProgressMeter* progress_ptr;
  RetryJournal* journal_ptr;
};

// Exports every requested observability artifact after a workflow: trace,
// metrics (JSON or OpenMetrics), journal, and the in-process HTML report
// (rendered from this run's journal, embedding whatever sibling artifacts
// were also requested). Returns false when a file cannot be written.
bool ExportObservability(const CliOptions& cli, const std::string& app, ObsSinks& obs,
                         const std::string& repair_json = std::string()) {
  if (!cli.trace_out.empty() &&
      !WriteFileOrComplain(cli.trace_out, obs.tracer.ToChromeJson(), "trace")) {
    return false;
  }
  if (!cli.metrics_out.empty() &&
      !WriteFileOrComplain(cli.metrics_out,
                           cli.metrics_format == "openmetrics" ? obs.metrics.ToOpenMetrics()
                                                               : obs.metrics.ToJson(),
                           "metrics")) {
    return false;
  }
  if (!cli.journal_out.empty() &&
      !WriteFileOrComplain(cli.journal_out, obs.journal.ToJson(app), "journal")) {
    return false;
  }
  if (!cli.report_out.empty()) {
    std::vector<JournalEvent> events = obs.journal.Collect();
    RetryStatsReport stats = ComputeRetryStats(events);
    std::string html = RenderHtmlReport(
        app, events, stats, obs.metrics_ptr != nullptr ? obs.metrics.ToJson() : std::string(),
        obs.tracer_ptr != nullptr ? obs.tracer.ToChromeJson() : std::string(), repair_json);
    if (!WriteFileOrComplain(cli.report_out, html, "report")) {
      return false;
    }
  }
  return true;
}

int StaticWorkflow(const fs::path& root, const CliOptions& cli) {
  bool json = cli.json;
  mj::Program program;
  std::vector<SkippedFile> skipped;
  if (!LoadProgram(root, program, &skipped)) {
    return 1;
  }
  mj::ProgramIndex index(program);
  Wasabi tool(program, index, OptionsFor(root));
  ObsSinks obs(cli);
  tool.set_observability(obs.tracer_ptr, obs.metrics_ptr, obs.progress_ptr, obs.journal_ptr);
  std::unique_ptr<CacheStore> cache = OpenCliCache(cli);
  tool.set_cache(cache.get());
  StaticResult result = tool.RunStaticWorkflow();
  FinishCliCache(cache.get(), obs.metrics_ptr);
  if (!ExportObservability(cli, tool.options().app_name, obs)) {
    return 1;
  }
  ReportHealth health;
  health.skipped_files = skipped;
  if (json) {
    std::vector<BugReport> all = result.when_bugs;
    all.insert(all.end(), result.if_bugs.begin(), result.if_bugs.end());
    std::cout << AnalysisReportToJson(all, health);
    return 0;
  }
  std::cout << result.when_bugs.size() << " WHEN report(s):\n";
  for (const BugReport& bug : result.when_bugs) {
    std::cout << "  " << bug.file << ":" << bug.location.line << "\t" << BugTypeName(bug.type)
              << "\t" << bug.coordinator << "\n";
  }
  std::cout << result.if_bugs.size() << " IF report(s):\n";
  for (const BugReport& bug : result.if_bugs) {
    std::cout << "  " << bug.file << ":" << bug.location.line << "\t" << bug.exception << "\t"
              << bug.detail << "\n";
  }
  std::cout << "LLM usage: " << result.llm_usage.calls << " calls, ~"
            << result.llm_usage.prompt_tokens << " tokens\n";
  if (health.degraded()) {
    std::cout << "DEGRADED: " << health.skipped_files.size() << " file(s) skipped\n";
  }
  return 0;
}

// Shared option plumbing for the dynamic workflow and replay: both must build
// the exact same WasabiOptions or the record's config digest will not match.
WasabiOptions DynamicOptionsFor(const fs::path& root, const CliOptions& cli) {
  WasabiOptions options = OptionsFor(root);
  options.jobs = cli.jobs;
  options.robust.fail_fast = cli.fail_fast;
  options.robust.max_quarantined = cli.max_quarantined;
  options.robust.chaos = cli.chaos;
  options.prober.repetitions = cli.repetitions;
  options.interp.engine =
      cli.engine == "tree" ? EngineKind::kTree : EngineKind::kVm;
  return options;
}

// Replays one recorded run in isolation (docs/FLAKINESS.md). Exit 0 when the
// replayed decision stream and verdict are byte-identical to the record, 1 on
// any divergence or load failure.
int Replay(const fs::path& root, const CliOptions& cli) {
  mj::Program program;
  std::vector<SkippedFile> skipped;
  if (!LoadProgram(root, program, &skipped)) {
    return 1;
  }
  mj::ProgramIndex index(program);
  Wasabi tool(program, index, DynamicOptionsFor(root, cli));
  ObsSinks obs(cli);
  tool.set_observability(obs.tracer_ptr, obs.metrics_ptr, obs.progress_ptr, obs.journal_ptr);
  ReplayOutcome outcome = tool.ReplayRun(cli.record_dir,
                                         static_cast<uint64_t>(cli.replay_run_id));
  if (!ExportObservability(cli, tool.options().app_name, obs)) {
    return 1;
  }
  if (!outcome.ok) {
    std::cerr << "error: replay failed: " << outcome.error << "\n";
    return 1;
  }
  if (!outcome.executed) {
    std::cout << "run " << cli.replay_run_id
              << " was admission-skipped during the recorded campaign; recorded verdict \""
              << outcome.recorded_verdict << "\" stands\n";
    return 0;
  }
  std::cout << "replayed run " << cli.replay_run_id << ": verdict \""
            << outcome.replayed_verdict << "\" (recorded \"" << outcome.recorded_verdict
            << "\")\n";
  if (outcome.stream_identical && outcome.verdict_identical) {
    std::cout << "decision stream: identical (" << outcome.recorded.events.size()
              << " events)\n";
    return 0;
  }
  if (!outcome.stream_identical) {
    std::cout << "decision stream: DIVERGED at " << outcome.divergence << "\n";
  }
  if (!outcome.verdict_identical) {
    std::cout << "verdict: DIVERGED\n";
  }
  return 1;
}

int DynamicWorkflow(const fs::path& root, const CliOptions& cli) {
  mj::Program program;
  std::vector<SkippedFile> skipped;
  if (!LoadProgram(root, program, &skipped)) {
    return 1;
  }
  mj::ProgramIndex index(program);
  WasabiOptions options = DynamicOptionsFor(root, cli);
  options.record_dir = cli.record_dir;
  Wasabi tool(program, index, options);
  ObsSinks obs(cli);
  tool.set_observability(obs.tracer_ptr, obs.metrics_ptr, obs.progress_ptr, obs.journal_ptr);
  std::unique_ptr<CacheStore> cache = OpenCliCache(cli);
  tool.set_cache(cache.get());
  DynamicResult result = tool.RunDynamicWorkflow();
  FinishCliCache(cache.get(), obs.metrics_ptr);
  if (!result.record_error.empty()) {
    std::cerr << "warning: recording failed: " << result.record_error << "\n";
  }
  ReportHealth health;
  health.skipped_files = skipped;
  health.quarantined = result.quarantined;
  {
    // Report formatting gets its own span so a trace accounts for the whole
    // wall clock, not just the analysis phases.
    ScopedSpan report_span(obs.tracer_ptr, "phase.report");
    if (cli.json) {
      std::cout << AnalysisReportToJson(result.bugs, health);
    } else {
      std::cout << result.total_tests << " unit tests, " << result.tests_covering_retry
                << " cover retry; " << result.planned_runs << " injected runs (naive: "
                << result.naive_runs << ") on " << result.jobs_used << " worker(s)\n";
      if (result.probed_runs > 0) {
        std::cout << "flakiness prober: " << result.probed_runs << " failing run(s) probed — "
                  << result.stable_runs << " stable, " << result.flaky_runs << " flaky, "
                  << result.chaos_induced_runs << " chaos-induced\n";
      }
      std::cout << result.bugs.size() << " bug report(s):\n";
      for (const BugReport& bug : result.bugs) {
        std::cout << "  " << bug.file << ":" << bug.location.line << "\t"
                  << BugTypeName(bug.type) << "\t" << bug.coordinator;
        if (bug.probed) {
          std::cout << "\t[" << VerdictStabilityName(bug.stability)
                    << (bug.flaky_cause.empty() ? "" : ": " + bug.flaky_cause) << "]";
        }
        std::cout << "\n\t" << bug.detail << "\n";
      }
      if (health.degraded()) {
        std::cout << "DEGRADED: " << health.skipped_files.size() << " file(s) skipped, "
                  << health.quarantined.size() << " run(s) quarantined";
        if (result.robustness.recovered > 0) {
          std::cout << " (" << result.robustness.recovered << " recovered by retry)";
        }
        std::cout << "\n";
        for (const SkippedFile& file : health.skipped_files) {
          std::cout << "  skipped " << file.path << ": " << file.reason << "\n";
        }
        for (const RunFailure& failure : health.quarantined) {
          std::cout << "  quarantined run " << failure.run_id << " ["
                    << RunFailureKindName(failure.kind) << "] " << failure.test << " @ "
                    << failure.location << ": " << failure.detail << "\n";
        }
      }
    }
  }
  if (cli.storm) {
    // Output-neutral storm phase: the simulation runs after the campaign and
    // feeds only the obs sinks (journal/metrics/trace, and --storm-out), so
    // stdout is byte-identical with and without --storm.
    std::vector<EdgeRetryProfile> profiles = ExtractRetryProfiles(program, index, cli.jobs);
    StormReport storm = RunStormSim(options.app_name, profiles, cli.storm_options,
                                    obs.journal_ptr);
    ExportStormStats(storm, obs.metrics_ptr, obs.tracer_ptr);
    if (!cli.storm_out.empty() &&
        !WriteFileOrComplain(cli.storm_out, StormReportToJson(storm), "storm report")) {
      return 1;
    }
  }
  if (!ExportObservability(cli, options.app_name, obs)) {
    return 1;
  }
  if (result.robustness.aborted) {
    std::cerr << "error: campaign aborted: quarantine limit (--max-quarantined "
              << cli.max_quarantined << ") exceeded\n";
    return 1;
  }
  return 0;
}

// `wasabi storm`: extracts every service's retry policy by probing (src/storm/
// profile.h) and replays them against a shared backend in the deterministic
// discrete-event simulation (docs/STORM.md). The report (JSON with --json,
// summary text otherwise) and the kStorm journal stream are byte-identical at
// any --jobs N and across repeated same-seed runs.
int StormCommand(const fs::path& root, const CliOptions& cli) {
  mj::Program program;
  std::vector<SkippedFile> skipped;
  if (!LoadProgram(root, program, &skipped)) {
    return 1;
  }
  mj::ProgramIndex index(program);
  const std::string app = OptionsFor(root).app_name;
  ObsSinks obs(cli);
  std::vector<EdgeRetryProfile> profiles = ExtractRetryProfiles(program, index, cli.jobs);
  if (profiles.empty()) {
    std::cerr << "error: no storm-profilable services (zero-arg handle() plus send()) under "
              << root << "\n";
    return 1;
  }
  StormReport report = RunStormSim(app, profiles, cli.storm_options, obs.journal_ptr);
  ExportStormStats(report, obs.metrics_ptr, obs.tracer_ptr);
  std::string json = StormReportToJson(report);
  if (!cli.storm_out.empty() && !WriteFileOrComplain(cli.storm_out, json, "storm report")) {
    return 1;
  }
  if (cli.json) {
    std::cout << json;
  } else {
    std::cout << StormReportToText(report);
  }
  if (!ExportObservability(cli, app, obs)) {
    return 1;
  }
  return 0;
}

// `wasabi repair`: the automated repair loop (docs/REPAIR.md). Runs the full
// detection pipeline, synthesizes a template patch for every confirmed WHEN/
// storm verdict, and validates each patch with a cache-sliced re-campaign.
// The report (JSON with --json, summary text otherwise) is byte-identical at
// any --jobs N, with the cache off/cold/warm, and under either --engine.
int RepairCommand(const fs::path& root, const CliOptions& cli) {
  mj::Program program;
  std::vector<SkippedFile> skipped;
  if (!LoadProgram(root, program, &skipped)) {
    return 1;
  }
  mj::ProgramIndex index(program);
  ObsSinks obs(cli);
  std::unique_ptr<CacheStore> cache = OpenCliCache(cli);
  RepairOptions options;
  options.wasabi = DynamicOptionsFor(root, cli);
  // Sinks and the cache ride on the baseline options; RunRepair detaches the
  // sinks (but keeps the cache — that is the sliced re-campaign) for every
  // nested validation run.
  options.wasabi.tracer = obs.tracer_ptr;
  options.wasabi.metrics = obs.metrics_ptr;
  options.wasabi.progress = obs.progress_ptr;
  options.wasabi.journal = obs.journal_ptr;
  options.wasabi.cache = cache.get();
  options.storm = cli.storm_options;
  RepairReport report = RunRepair(program, index, options);
  ExportRepairStats(report, obs.metrics_ptr);
  FinishCliCache(cache.get(), obs.metrics_ptr);
  std::string json = RepairReportToJson(report);
  if (!cli.repair_out.empty() && !WriteFileOrComplain(cli.repair_out, json, "repair report")) {
    return 1;
  }
  if (cli.json) {
    std::cout << json;
  } else {
    std::cout << RepairReportToText(report);
  }
  if (!ExportObservability(cli, options.wasabi.app_name, obs, json)) {
    return 1;
  }
  return 0;
}

// `wasabi report`: offline renderer. Consumes a journal JSON written by
// --journal-out (plus optional --metrics/--trace artifacts from the same run)
// and writes the self-contained HTML dashboard. No analysis is executed, so
// the output is a pure function of the input files.
int ReportCommand(int argc, char** argv) {
  auto fail = [](const std::string& message) {
    std::cerr << "error: " << message << "\n";
    return Usage();
  };
  std::string journal_path;
  std::string metrics_path;
  std::string trace_path;
  std::string repair_path;
  std::string out_path;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    std::string name = arg;
    std::string value;
    bool has_value = false;
    if (size_t eq = arg.find('='); arg.rfind("--", 0) == 0 && eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    }
    if (!has_value) {
      if (i + 1 >= argc) {
        return fail("option " + name + " requires a value");
      }
      value = argv[++i];
    }
    if (value.empty()) {
      return fail("option " + name + " needs a non-empty path");
    }
    if (name == "--journal") {
      journal_path = value;
    } else if (name == "--metrics") {
      metrics_path = value;
    } else if (name == "--trace") {
      trace_path = value;
    } else if (name == "--repair") {
      repair_path = value;
    } else if (name == "--out") {
      out_path = value;
    } else {
      return fail("unknown option '" + arg + "'");
    }
  }
  if (journal_path.empty()) {
    return fail("report requires --journal=FILE");
  }
  if (out_path.empty()) {
    return fail("report requires --out=FILE");
  }
  auto read_file = [](const std::string& path, std::string* text) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    *text = buffer.str();
    return true;
  };
  std::string journal_text;
  if (!read_file(journal_path, &journal_text)) {
    std::cerr << "error: cannot read journal " << journal_path << "\n";
    return 1;
  }
  std::vector<JournalEvent> events;
  std::string app;
  std::string parse_error;
  if (!RetryJournal::ParseJson(journal_text, &events, &app, &parse_error)) {
    std::cerr << "error: malformed journal " << journal_path << ": " << parse_error << "\n";
    return 1;
  }
  std::string metrics_text;
  if (!metrics_path.empty() && !read_file(metrics_path, &metrics_text)) {
    std::cerr << "error: cannot read metrics " << metrics_path << "\n";
    return 1;
  }
  std::string trace_text;
  if (!trace_path.empty() && !read_file(trace_path, &trace_text)) {
    std::cerr << "error: cannot read trace " << trace_path << "\n";
    return 1;
  }
  std::string repair_text;
  if (!repair_path.empty() && !read_file(repair_path, &repair_text)) {
    std::cerr << "error: cannot read repair report " << repair_path << "\n";
    return 1;
  }
  RetryStatsReport stats = ComputeRetryStats(events);
  std::string html =
      RenderHtmlReport(app, events, stats, metrics_text, trace_text, repair_text);
  std::ofstream out(out_path, std::ios::binary);
  out << html;
  if (!out) {
    std::cerr << "error: cannot write report to " << out_path << "\n";
    return 1;
  }
  std::cout << "wrote retry report for " << app << " (" << events.size() << " events, "
            << html.size() << " bytes) to " << out_path << "\n";
  return 0;
}

int Study() {
  std::cout << "70 studied retry issues across 6 applications.\n\nBy root cause:\n";
  for (auto [cause, count] : StudyCountByRootCause()) {
    std::cout << "  " << StudyRootCauseName(cause) << ": " << count << "\n";
  }
  std::cout << "\nBy mechanism:\n";
  for (auto [mechanism, count] : StudyCountByMechanism()) {
    std::cout << "  " << RetryMechanismName(mechanism) << ": " << count << "\n";
  }
  std::cout << "\nNamed issues:\n";
  for (const StudyIssue& issue : StudyDataset()) {
    if (issue.pinned) {
      std::cout << "  " << issue.id << " — " << issue.summary << "\n";
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  std::string command = argv[1];
  if (command == "study") {
    return Study();
  }
  if (command == "report") {
    // No corpus directory: report renders existing artifacts.
    return ReportCommand(argc, argv);
  }
  if (argc < 3) {
    return Usage();
  }
  fs::path root = argv[2];
  CliOptions cli;
  if (!ParseOptions(argc, argv, 3, &cli)) {
    return 2;
  }
  if (!cli.storm_out.empty() && command != "storm" && !cli.storm) {
    std::cerr << "error: option --storm-out requires the storm command or --storm\n";
    return Usage();
  }
  if (!cli.storm_flag.empty() && command != "storm" && command != "repair" && !cli.storm) {
    std::cerr << "error: option " << cli.storm_flag
              << " requires the storm or repair command, or --storm\n";
    return Usage();
  }
  if (cli.repair_flag && command != "repair") {
    std::cerr << "error: option --repair-out only applies to the repair command\n";
    return Usage();
  }
  if (cli.storm && command != "test" && command != "analyze") {
    std::cerr << "error: option --storm only applies to the test/analyze command\n";
    return Usage();
  }
  if (!cli.corpus_app.empty() && command != "dump-corpus") {
    std::cerr << "error: option --app only applies to the dump-corpus command\n";
    return Usage();
  }
  if (command == "storm") {
    return StormCommand(root, cli);
  }
  if (command == "repair") {
    return RepairCommand(root, cli);
  }
  if (cli.replay_run_id >= 0) {
    if (cli.record_dir.empty()) {
      std::cerr << "error: option --replay requires --record DIR (the record to replay from)\n";
      return Usage();
    }
    if (command != "test" && command != "analyze") {
      std::cerr << "error: option --replay only applies to the test/analyze command\n";
      return Usage();
    }
    return Replay(root, cli);
  }
  if (command == "dump-corpus") {
    return DumpCorpus(root, cli);
  }
  if (command == "identify") {
    return Identify(root, cli);
  }
  if (command == "static") {
    return StaticWorkflow(root, cli);
  }
  if (command == "test" || command == "analyze") {
    return DynamicWorkflow(root, cli);
  }
  return Usage();
}
