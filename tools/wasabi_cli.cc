// wasabi — command-line driver for the retry-bug detection toolkit.
//
// Usage:
//   wasabi dump-corpus <dir>          write the 8 evaluation applications' mj
//                                     sources (and MANIFEST.txt) under <dir>
//   wasabi identify <dir>             retry-structure inventory for the mj
//                                     sources under <dir> (recursive)
//   wasabi static <dir>               static workflow: LLM WHEN bugs + IF
//                                     retry-ratio outliers
//   wasabi test <dir>                 dynamic workflow: repurposed unit tests
//                                     with fault injection and oracles
//   wasabi study                      print the §2 issue-study summary
//
// Options:
//   --json                            machine-readable bug reports
//   --jobs N                          worker threads for the injection
//                                     campaign (default: all hardware
//                                     threads; output is identical for any N)
//   --trace-out=FILE                  write a Chrome trace-event JSON of the
//                                     run (open in chrome://tracing/Perfetto)
//   --metrics-out=FILE                write the flat metrics JSON
//   --progress                        periodic campaign progress on stderr
//
// Instrumentation never touches stdout: reports are byte-identical with and
// without --trace-out/--metrics-out/--progress. Unknown options and options
// missing a required value are rejected with exit code 2.
//
// Directory layout convention: every *.mj file is part of the application;
// classes whose names end in "Test" are unit tests. The directory's base name
// is used as the application name in reports.

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/report_json.h"
#include "src/core/wasabi.h"
#include "src/corpus/corpus.h"
#include "src/lang/parser.h"
#include "src/obs/metrics.h"
#include "src/obs/progress.h"
#include "src/obs/trace.h"
#include "src/study/study.h"

namespace fs = std::filesystem;

namespace {

using namespace wasabi;

int Usage() {
  std::cerr << "usage: wasabi <dump-corpus|identify|static|test|study> [dir] [--json]"
               " [--jobs N] [--trace-out=FILE] [--metrics-out=FILE] [--progress]\n";
  return 2;
}

// Parsed command-line options shared by the analysis commands.
struct CliOptions {
  bool json = false;
  bool progress = false;
  int jobs = 0;  // 0 = all hardware threads (DefaultJobCount).
  std::string trace_out;
  std::string metrics_out;
};

// Strict flag parsing: every `--name=value` / `--name value` form must match
// a known option, and value-taking options must actually get a value — a
// typo like --trace-ot=t.json fails loudly instead of silently running an
// uninstrumented campaign. Returns false after printing the usage line.
bool ParseOptions(int argc, char** argv, int first, CliOptions* options) {
  auto fail = [](const std::string& message) {
    std::cerr << "error: " << message << "\n";
    Usage();
    return false;
  };
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    std::string name = arg;
    std::string value;
    bool has_value = false;
    if (size_t eq = arg.find('='); arg.rfind("--", 0) == 0 && eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    }
    auto take_value = [&](const char* flag) {
      if (has_value) {
        return true;
      }
      if (i + 1 < argc) {
        value = argv[++i];
        return true;
      }
      std::cerr << "error: option " << flag << " requires a value\n";
      return false;
    };
    if (name == "--json" || name == "--progress") {
      if (has_value) {
        return fail("option " + name + " does not take a value");
      }
      (name == "--json" ? options->json : options->progress) = true;
    } else if (name == "--jobs") {
      if (!take_value("--jobs")) {
        Usage();
        return false;
      }
      char* end = nullptr;
      long jobs = std::strtol(value.c_str(), &end, 10);
      if (value.empty() || end == value.c_str() || *end != '\0' || jobs < 0) {
        return fail("option --jobs needs a non-negative integer, got '" + value + "'");
      }
      options->jobs = static_cast<int>(jobs);
    } else if (name == "--trace-out") {
      if (!take_value("--trace-out")) {
        Usage();
        return false;
      }
      options->trace_out = value;
    } else if (name == "--metrics-out") {
      if (!take_value("--metrics-out")) {
        Usage();
        return false;
      }
      options->metrics_out = value;
    } else {
      return fail("unknown option '" + arg + "'");
    }
  }
  return true;
}

// Exports requested trace/metrics files after a workflow. Returns false (with
// a message) when a file cannot be written.
bool ExportObservability(const CliOptions& cli, Tracer& tracer, const MetricsRegistry& metrics) {
  if (!cli.trace_out.empty()) {
    std::ofstream out(cli.trace_out);
    out << tracer.ToChromeJson();
    if (!out) {
      std::cerr << "error: cannot write trace to " << cli.trace_out << "\n";
      return false;
    }
  }
  if (!cli.metrics_out.empty()) {
    std::ofstream out(cli.metrics_out);
    out << metrics.ToJson();
    if (!out) {
      std::cerr << "error: cannot write metrics to " << cli.metrics_out << "\n";
      return false;
    }
  }
  return true;
}

// Loads every .mj file under `root` (recursively) into a program. Paths are
// recorded relative to `root` so reports are readable.
bool LoadProgram(const fs::path& root, mj::Program& program) {
  mj::DiagnosticEngine diag;
  std::vector<fs::path> files;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(root, ec), end; it != end && !ec;
       it.increment(ec)) {
    if (it->is_regular_file() && it->path().extension() == ".mj") {
      files.push_back(it->path());
    }
  }
  if (ec) {
    std::cerr << "error: cannot read " << root << ": " << ec.message() << "\n";
    return false;
  }
  if (files.empty()) {
    std::cerr << "error: no .mj files under " << root << "\n";
    return false;
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& file : files) {
    std::ifstream in(file);
    std::ostringstream text;
    text << in.rdbuf();
    std::string name = fs::relative(file, root, ec).generic_string();
    program.AddUnit(mj::ParseSource(name, text.str(), diag));
  }
  if (diag.has_errors()) {
    std::cerr << diag.FormatAll(nullptr);
    return false;
  }
  return true;
}

int DumpCorpus(const fs::path& root) {
  for (const std::string& name : CorpusAppNames()) {
    CorpusApp app = BuildCorpusApp(name);
    std::ostringstream manifest;
    manifest << "# Seeded bugs for " << app.display_name << "\n";
    for (const SeededBug& bug : app.bugs) {
      manifest << bug.id << "\t" << BugTypeName(bug.type) << "\t" << bug.coordinator << "\t"
               << bug.note << "\n";
    }
    for (const auto& unit : app.program.units()) {
      fs::path out_path = root / unit->file().name();
      std::error_code ec;
      fs::create_directories(out_path.parent_path(), ec);
      std::ofstream out(out_path);
      out << unit->file().text();
    }
    fs::path manifest_path = root / name / "MANIFEST.txt";
    std::ofstream out(manifest_path);
    out << manifest.str();
    std::cout << "wrote " << app.source_files << " files + manifest under "
              << (root / name).generic_string() << "\n";
  }
  return 0;
}

WasabiOptions OptionsFor(const fs::path& root) {
  WasabiOptions options;
  options.app_name = root.filename().generic_string();
  if (options.app_name.empty()) {
    options.app_name = "app";
  }
  return options;
}

int Identify(const fs::path& root) {
  mj::Program program;
  if (!LoadProgram(root, program)) {
    return 1;
  }
  mj::ProgramIndex index(program);
  Wasabi tool(program, index, OptionsFor(root));
  IdentificationResult result = tool.IdentifyRetryStructures();
  std::cout << result.structures.size() << " retry structures ("
            << result.candidate_loops_without_keyword_filter
            << " candidate loops before keyword filtering):\n";
  for (const RetryStructure& structure : result.structures) {
    std::cout << "  " << structure.file << ":" << structure.location.line << "\t"
              << structure.coordinator << "\t" << RetryMechanismName(structure.mechanism)
              << "\t"
              << (structure.found_by.both()    ? "codeql+llm"
                  : structure.found_by.codeql ? "codeql"
                                              : "llm")
              << "\t" << structure.locations.size() << " location(s)\n";
  }
  return 0;
}

// Sinks backing the --trace-out/--metrics-out/--progress flags. The pointers
// are null unless the matching flag was given, so an unflagged run takes the
// exact uninstrumented code paths.
struct ObsSinks {
  explicit ObsSinks(const CliOptions& cli)
      : progress_meter(&std::cerr),
        tracer_ptr(cli.trace_out.empty() ? nullptr : &tracer),
        metrics_ptr(cli.metrics_out.empty() ? nullptr : &metrics),
        progress_ptr(cli.progress ? &progress_meter : nullptr) {}

  Tracer tracer;
  MetricsRegistry metrics;
  ProgressMeter progress_meter;
  Tracer* tracer_ptr;
  MetricsRegistry* metrics_ptr;
  ProgressMeter* progress_ptr;
};

int StaticWorkflow(const fs::path& root, const CliOptions& cli) {
  bool json = cli.json;
  mj::Program program;
  if (!LoadProgram(root, program)) {
    return 1;
  }
  mj::ProgramIndex index(program);
  Wasabi tool(program, index, OptionsFor(root));
  ObsSinks obs(cli);
  tool.set_observability(obs.tracer_ptr, obs.metrics_ptr, obs.progress_ptr);
  StaticResult result = tool.RunStaticWorkflow();
  if (!ExportObservability(cli, obs.tracer, obs.metrics)) {
    return 1;
  }
  if (json) {
    std::vector<BugReport> all = result.when_bugs;
    all.insert(all.end(), result.if_bugs.begin(), result.if_bugs.end());
    std::cout << BugReportsToJson(all);
    return 0;
  }
  std::cout << result.when_bugs.size() << " WHEN report(s):\n";
  for (const BugReport& bug : result.when_bugs) {
    std::cout << "  " << bug.file << ":" << bug.location.line << "\t" << BugTypeName(bug.type)
              << "\t" << bug.coordinator << "\n";
  }
  std::cout << result.if_bugs.size() << " IF report(s):\n";
  for (const BugReport& bug : result.if_bugs) {
    std::cout << "  " << bug.file << ":" << bug.location.line << "\t" << bug.exception << "\t"
              << bug.detail << "\n";
  }
  std::cout << "LLM usage: " << result.llm_usage.calls << " calls, ~"
            << result.llm_usage.prompt_tokens << " tokens\n";
  return 0;
}

int DynamicWorkflow(const fs::path& root, const CliOptions& cli) {
  mj::Program program;
  if (!LoadProgram(root, program)) {
    return 1;
  }
  mj::ProgramIndex index(program);
  WasabiOptions options = OptionsFor(root);
  options.jobs = cli.jobs;
  Wasabi tool(program, index, options);
  ObsSinks obs(cli);
  tool.set_observability(obs.tracer_ptr, obs.metrics_ptr, obs.progress_ptr);
  DynamicResult result = tool.RunDynamicWorkflow();
  {
    // Report formatting gets its own span so a trace accounts for the whole
    // wall clock, not just the analysis phases.
    ScopedSpan report_span(obs.tracer_ptr, "phase.report");
    if (cli.json) {
      std::cout << BugReportsToJson(result.bugs);
    } else {
      std::cout << result.total_tests << " unit tests, " << result.tests_covering_retry
                << " cover retry; " << result.planned_runs << " injected runs (naive: "
                << result.naive_runs << ") on " << result.jobs_used << " worker(s)\n";
      std::cout << result.bugs.size() << " bug report(s):\n";
      for (const BugReport& bug : result.bugs) {
        std::cout << "  " << bug.file << ":" << bug.location.line << "\t"
                  << BugTypeName(bug.type) << "\t" << bug.coordinator << "\n\t" << bug.detail
                  << "\n";
      }
    }
  }
  if (!ExportObservability(cli, obs.tracer, obs.metrics)) {
    return 1;
  }
  return 0;
}

int Study() {
  std::cout << "70 studied retry issues across 6 applications.\n\nBy root cause:\n";
  for (auto [cause, count] : StudyCountByRootCause()) {
    std::cout << "  " << StudyRootCauseName(cause) << ": " << count << "\n";
  }
  std::cout << "\nBy mechanism:\n";
  for (auto [mechanism, count] : StudyCountByMechanism()) {
    std::cout << "  " << RetryMechanismName(mechanism) << ": " << count << "\n";
  }
  std::cout << "\nNamed issues:\n";
  for (const StudyIssue& issue : StudyDataset()) {
    if (issue.pinned) {
      std::cout << "  " << issue.id << " — " << issue.summary << "\n";
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  std::string command = argv[1];
  if (command == "study") {
    return Study();
  }
  if (argc < 3) {
    return Usage();
  }
  fs::path root = argv[2];
  CliOptions cli;
  if (!ParseOptions(argc, argv, 3, &cli)) {
    return 2;
  }
  if (command == "dump-corpus") {
    return DumpCorpus(root);
  }
  if (command == "identify") {
    return Identify(root);
  }
  if (command == "static") {
    return StaticWorkflow(root, cli);
  }
  if (command == "test") {
    return DynamicWorkflow(root, cli);
  }
  return Usage();
}
