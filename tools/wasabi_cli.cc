// wasabi — command-line driver for the retry-bug detection toolkit.
//
// Usage:
//   wasabi dump-corpus <dir>          write the 8 evaluation applications' mj
//                                     sources (and MANIFEST.txt) under <dir>
//   wasabi identify <dir>             retry-structure inventory for the mj
//                                     sources under <dir> (recursive)
//   wasabi static <dir>               static workflow: LLM WHEN bugs + IF
//                                     retry-ratio outliers
//   wasabi test <dir>                 dynamic workflow: repurposed unit tests
//                                     with fault injection and oracles
//   wasabi study                      print the §2 issue-study summary
//
// Options:
//   --json                            machine-readable bug reports
//   --jobs N                          worker threads for the injection
//                                     campaign (default: all hardware
//                                     threads; output is identical for any N)
//
// Directory layout convention: every *.mj file is part of the application;
// classes whose names end in "Test" are unit tests. The directory's base name
// is used as the application name in reports.

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/report_json.h"
#include "src/core/wasabi.h"
#include "src/corpus/corpus.h"
#include "src/lang/parser.h"
#include "src/study/study.h"

namespace fs = std::filesystem;

namespace {

using namespace wasabi;

int Usage() {
  std::cerr << "usage: wasabi <dump-corpus|identify|static|test|study> [dir] [--json]"
               " [--jobs N]\n";
  return 2;
}

// Loads every .mj file under `root` (recursively) into a program. Paths are
// recorded relative to `root` so reports are readable.
bool LoadProgram(const fs::path& root, mj::Program& program) {
  mj::DiagnosticEngine diag;
  std::vector<fs::path> files;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(root, ec), end; it != end && !ec;
       it.increment(ec)) {
    if (it->is_regular_file() && it->path().extension() == ".mj") {
      files.push_back(it->path());
    }
  }
  if (ec) {
    std::cerr << "error: cannot read " << root << ": " << ec.message() << "\n";
    return false;
  }
  if (files.empty()) {
    std::cerr << "error: no .mj files under " << root << "\n";
    return false;
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& file : files) {
    std::ifstream in(file);
    std::ostringstream text;
    text << in.rdbuf();
    std::string name = fs::relative(file, root, ec).generic_string();
    program.AddUnit(mj::ParseSource(name, text.str(), diag));
  }
  if (diag.has_errors()) {
    std::cerr << diag.FormatAll(nullptr);
    return false;
  }
  return true;
}

int DumpCorpus(const fs::path& root) {
  for (const std::string& name : CorpusAppNames()) {
    CorpusApp app = BuildCorpusApp(name);
    std::ostringstream manifest;
    manifest << "# Seeded bugs for " << app.display_name << "\n";
    for (const SeededBug& bug : app.bugs) {
      manifest << bug.id << "\t" << BugTypeName(bug.type) << "\t" << bug.coordinator << "\t"
               << bug.note << "\n";
    }
    for (const auto& unit : app.program.units()) {
      fs::path out_path = root / unit->file().name();
      std::error_code ec;
      fs::create_directories(out_path.parent_path(), ec);
      std::ofstream out(out_path);
      out << unit->file().text();
    }
    fs::path manifest_path = root / name / "MANIFEST.txt";
    std::ofstream out(manifest_path);
    out << manifest.str();
    std::cout << "wrote " << app.source_files << " files + manifest under "
              << (root / name).generic_string() << "\n";
  }
  return 0;
}

WasabiOptions OptionsFor(const fs::path& root) {
  WasabiOptions options;
  options.app_name = root.filename().generic_string();
  if (options.app_name.empty()) {
    options.app_name = "app";
  }
  return options;
}

int Identify(const fs::path& root) {
  mj::Program program;
  if (!LoadProgram(root, program)) {
    return 1;
  }
  mj::ProgramIndex index(program);
  Wasabi tool(program, index, OptionsFor(root));
  IdentificationResult result = tool.IdentifyRetryStructures();
  std::cout << result.structures.size() << " retry structures ("
            << result.candidate_loops_without_keyword_filter
            << " candidate loops before keyword filtering):\n";
  for (const RetryStructure& structure : result.structures) {
    std::cout << "  " << structure.file << ":" << structure.location.line << "\t"
              << structure.coordinator << "\t" << RetryMechanismName(structure.mechanism)
              << "\t"
              << (structure.found_by.both()    ? "codeql+llm"
                  : structure.found_by.codeql ? "codeql"
                                              : "llm")
              << "\t" << structure.locations.size() << " location(s)\n";
  }
  return 0;
}

int StaticWorkflow(const fs::path& root, bool json) {
  mj::Program program;
  if (!LoadProgram(root, program)) {
    return 1;
  }
  mj::ProgramIndex index(program);
  Wasabi tool(program, index, OptionsFor(root));
  StaticResult result = tool.RunStaticWorkflow();
  if (json) {
    std::vector<BugReport> all = result.when_bugs;
    all.insert(all.end(), result.if_bugs.begin(), result.if_bugs.end());
    std::cout << BugReportsToJson(all);
    return 0;
  }
  std::cout << result.when_bugs.size() << " WHEN report(s):\n";
  for (const BugReport& bug : result.when_bugs) {
    std::cout << "  " << bug.file << ":" << bug.location.line << "\t" << BugTypeName(bug.type)
              << "\t" << bug.coordinator << "\n";
  }
  std::cout << result.if_bugs.size() << " IF report(s):\n";
  for (const BugReport& bug : result.if_bugs) {
    std::cout << "  " << bug.file << ":" << bug.location.line << "\t" << bug.exception << "\t"
              << bug.detail << "\n";
  }
  std::cout << "LLM usage: " << result.llm_usage.calls << " calls, ~"
            << result.llm_usage.prompt_tokens << " tokens\n";
  return 0;
}

int DynamicWorkflow(const fs::path& root, bool json, int jobs) {
  mj::Program program;
  if (!LoadProgram(root, program)) {
    return 1;
  }
  mj::ProgramIndex index(program);
  WasabiOptions options = OptionsFor(root);
  options.jobs = jobs;
  Wasabi tool(program, index, options);
  DynamicResult result = tool.RunDynamicWorkflow();
  if (json) {
    std::cout << BugReportsToJson(result.bugs);
    return 0;
  }
  std::cout << result.total_tests << " unit tests, " << result.tests_covering_retry
            << " cover retry; " << result.planned_runs << " injected runs (naive: "
            << result.naive_runs << ") on " << result.jobs_used << " worker(s)\n";
  std::cout << result.bugs.size() << " bug report(s):\n";
  for (const BugReport& bug : result.bugs) {
    std::cout << "  " << bug.file << ":" << bug.location.line << "\t" << BugTypeName(bug.type)
              << "\t" << bug.coordinator << "\n\t" << bug.detail << "\n";
  }
  return 0;
}

int Study() {
  std::cout << "70 studied retry issues across 6 applications.\n\nBy root cause:\n";
  for (auto [cause, count] : StudyCountByRootCause()) {
    std::cout << "  " << StudyRootCauseName(cause) << ": " << count << "\n";
  }
  std::cout << "\nBy mechanism:\n";
  for (auto [mechanism, count] : StudyCountByMechanism()) {
    std::cout << "  " << RetryMechanismName(mechanism) << ": " << count << "\n";
  }
  std::cout << "\nNamed issues:\n";
  for (const StudyIssue& issue : StudyDataset()) {
    if (issue.pinned) {
      std::cout << "  " << issue.id << " — " << issue.summary << "\n";
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  std::string command = argv[1];
  if (command == "study") {
    return Study();
  }
  if (argc < 3) {
    return Usage();
  }
  fs::path root = argv[2];
  bool json = false;
  int jobs = 0;  // 0 = all hardware threads (DefaultJobCount).
  for (int i = 3; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--jobs" && i + 1 < argc) {
      char* end = nullptr;
      jobs = static_cast<int>(std::strtol(argv[++i], &end, 10));
      if (end == argv[i] || *end != '\0' || jobs < 0) {
        return Usage();
      }
    } else {
      return Usage();
    }
  }
  if (command == "dump-corpus") {
    return DumpCorpus(root);
  }
  if (command == "identify") {
    return Identify(root);
  }
  if (command == "static") {
    return StaticWorkflow(root, json);
  }
  if (command == "test") {
    return DynamicWorkflow(root, json, jobs);
  }
  return Usage();
}
